//! Scene composition: background synthesis and object placement.

use hirise_imaging::draw;
use hirise_imaging::{Rect, RgbImage};
use rand::Rng;

use crate::dataset::DatasetSpec;
use crate::object::{self, hsv_to_rgb, ObjectClass};

/// One ground-truth object in a scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SceneObject {
    /// Object class.
    pub class: ObjectClass,
    /// Tight bounding box in image coordinates.
    pub bbox: Rect,
}

/// A rendered scene with its ground truth.
#[derive(Debug, Clone)]
pub struct Scene {
    /// The rendered RGB canvas (normalised irradiance).
    pub image: RgbImage,
    /// Ground-truth objects (render order).
    pub objects: Vec<SceneObject>,
}

impl Scene {
    /// Ground-truth boxes of one class.
    pub fn boxes_of(&self, class: ObjectClass) -> Vec<Rect> {
        self.objects.iter().filter(|o| o.class == class).map(|o| o.bbox).collect()
    }

    /// All ground-truth boxes.
    pub fn all_boxes(&self) -> Vec<Rect> {
        self.objects.iter().map(|o| o.bbox).collect()
    }
}

/// Deterministic scene generator for one [`DatasetSpec`].
#[derive(Debug, Clone)]
pub struct SceneGenerator {
    spec: DatasetSpec,
}

impl SceneGenerator {
    /// Creates a generator for `spec`.
    pub fn new(spec: DatasetSpec) -> Self {
        Self { spec }
    }

    /// The wrapped spec.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    fn paint_background<R: Rng + ?Sized>(&self, img: &mut RgbImage, rng: &mut R) {
        let (w, h) = img.dimensions();
        // Sky-to-ground vertical gradient with slight channel tinting.
        let sky = rng.gen_range(0.55..0.7);
        let ground = rng.gen_range(0.3..0.45);
        for (ci, tint) in [(0usize, 0.98f32), (1, 1.0), (2, 1.04)] {
            let plane = &mut *img.planes_mut()[ci];
            for y in 0..h {
                let t = y as f32 / (h - 1).max(1) as f32;
                let v = (sky + (ground - sky) * t) * tint;
                for x in 0..w {
                    plane.set(x, y, v);
                }
            }
        }
        // Low-amplitude additive noise so the background is not perfectly flat.
        let seed: u64 = rng.gen();
        for (i, plane) in img.planes_mut().into_iter().enumerate() {
            let mut t = draw::TextureRng::new(seed ^ ((i as u64) << 32));
            for v in plane.as_mut_slice() {
                *v += 0.02 * (t.next_f32() * 2.0 - 1.0);
            }
        }
        // Distractor rectangles: moderately saturated but *untextured*
        // blobs (signage, bins, parked structures). At full resolution the
        // missing fine texture separates them from objects of interest; at
        // heavy pooling the objects lose their texture too and the
        // distractors start costing precision — one of the mechanisms
        // behind the paper's accuracy-vs-resolution trend.
        for i in 0..self.spec.clutter_rects {
            let cw = rng.gen_range(w / 16..w / 4).max(2);
            let chh = rng.gen_range(h / 16..h / 4).max(2);
            let x = rng.gen_range(0..w.saturating_sub(cw).max(1));
            let y = rng.gen_range(0..h.saturating_sub(chh).max(1));
            let sat = if i % 2 == 0 { rng.gen_range(0.05..0.2) } else { rng.gen_range(0.3..0.6) };
            let color = hsv_to_rgb(rng.gen_range(0.0..1.0), sat, rng.gen_range(0.3..0.7));
            draw::fill_rect_rgb(img, Rect::new(x, y, cw, chh), color);
        }
        // A couple of road-like lines.
        for _ in 0..2 {
            let y0 = rng.gen_range(0..h) as i64;
            let y1 = rng.gen_range(0..h) as i64;
            let shade = rng.gen_range(0.2..0.3);
            let [pr, pg, pb] = img.planes_mut();
            draw::draw_line(pr, 0, y0, w as i64 - 1, y1, shade);
            draw::draw_line(pg, 0, y0, w as i64 - 1, y1, shade);
            draw::draw_line(pb, 0, y0, w as i64 - 1, y1, shade);
        }
    }

    /// Generates one `width × height` scene.
    ///
    /// # Panics
    ///
    /// Panics if `width`/`height` are too small to hold the smallest object
    /// of the preset (< ~16 px for person presets).
    pub fn generate<R: Rng + ?Sized>(&self, width: u32, height: u32, rng: &mut R) -> Scene {
        let mut image = RgbImage::new(width, height);
        self.paint_background(&mut image, rng);

        let count = rng.gen_range(self.spec.objects_per_image.0..=self.spec.objects_per_image.1);
        let mut objects: Vec<SceneObject> = Vec::with_capacity(count);
        let mut placed = 0usize;
        while placed < count {
            let cluster = rng
                .gen_range(self.spec.cluster_size.0..=self.spec.cluster_size.1)
                .min(count - placed);
            let ccx = rng.gen_range(0.1..0.9) * width as f64;
            let ccy = rng.gen_range(0.15..0.85) * height as f64;
            for _ in 0..cluster {
                let class = self.spec.classes[rng.gen_range(0..self.spec.classes.len())];
                let scale = rng.gen_range(self.spec.scale_range.0..self.spec.scale_range.1);
                let oh = ((scale * height as f64) as u32).max(4);
                let aspect = class.aspect() as f64 * rng.gen_range(0.85..1.15);
                let ow = ((oh as f64 * aspect) as u32).max(3);
                let spread = self.spec.cluster_spread;
                let jx = rng.gen_range(-spread..spread) * ow as f64;
                let jy = rng.gen_range(-spread..spread) * oh as f64 * 0.4;
                let x = (ccx + jx - ow as f64 / 2.0).clamp(0.0, (width.saturating_sub(ow)) as f64)
                    as u32;
                let y = (ccy + jy - oh as f64 / 2.0).clamp(0.0, (height.saturating_sub(oh)) as f64)
                    as u32;
                let bbox = Rect::new(x, y, ow.min(width), oh.min(height));
                objects.push(SceneObject { class, bbox });
                placed += 1;
            }
        }

        // Render back-to-front (top of frame first) so nearer objects
        // overdraw farther ones, like a real crowd.
        objects.sort_by_key(|o| o.bbox.y);
        let mut all = Vec::with_capacity(objects.len() * 2);
        for obj in &objects {
            object::render_object(&mut image, obj.class, obj.bbox, rng);
            all.push(*obj);
            if self.spec.annotate_heads && obj.class == ObjectClass::Person {
                // The head sub-rectangle matches the renderer's layout.
                let b = obj.bbox;
                let hx = b.x + (b.w as f32 * 0.28) as u32;
                let hw = ((b.w as f32 * 0.44) as u32).max(1);
                let hh = ((b.h as f32 * 0.22) as u32).max(1);
                all.push(SceneObject {
                    class: ObjectClass::Head,
                    bbox: Rect::new(hx, b.y, hw, hh),
                });
            }
        }

        Scene { image, objects: all }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_object_counts() {
        let gen = SceneGenerator::new(DatasetSpec::dhdcampus_like());
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let scene = gen.generate(320, 240, &mut rng);
            let n = scene.objects.len();
            assert!((3..=8).contains(&n), "object count {n}");
        }
    }

    #[test]
    fn crowdhuman_scene_has_heads_for_every_person() {
        let gen = SceneGenerator::new(DatasetSpec::crowdhuman_like());
        let mut rng = StdRng::seed_from_u64(5);
        let scene = gen.generate(640, 480, &mut rng);
        let persons = scene.boxes_of(ObjectClass::Person).len();
        let heads = scene.boxes_of(ObjectClass::Head).len();
        assert_eq!(persons, heads);
        assert!((13..=19).contains(&persons));
    }

    #[test]
    fn boxes_stay_inside_image() {
        for spec in DatasetSpec::paper_presets() {
            let gen = SceneGenerator::new(spec);
            let mut rng = StdRng::seed_from_u64(17);
            let scene = gen.generate(400, 300, &mut rng);
            for o in &scene.objects {
                assert!(
                    o.bbox.fits_within(400, 300),
                    "{} box {} escapes the canvas",
                    o.class,
                    o.bbox
                );
                assert!(!o.bbox.is_degenerate());
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let gen = SceneGenerator::new(DatasetSpec::visdrone_like());
        let a = gen.generate(320, 240, &mut StdRng::seed_from_u64(99));
        let b = gen.generate(320, 240, &mut StdRng::seed_from_u64(99));
        assert_eq!(a.objects, b.objects);
        assert_eq!(a.image, b.image);
    }

    #[test]
    fn different_seeds_differ() {
        let gen = SceneGenerator::new(DatasetSpec::visdrone_like());
        let a = gen.generate(320, 240, &mut StdRng::seed_from_u64(1));
        let b = gen.generate(320, 240, &mut StdRng::seed_from_u64(2));
        assert_ne!(a.objects, b.objects);
    }

    #[test]
    fn visdrone_objects_are_tiny() {
        let gen = SceneGenerator::new(DatasetSpec::visdrone_like());
        let mut rng = StdRng::seed_from_u64(2);
        let scene = gen.generate(640, 480, &mut rng);
        for o in &scene.objects {
            assert!(o.bbox.h <= 480 / 10, "visdrone object too large: {}", o.bbox);
        }
    }

    #[test]
    fn background_is_not_flat() {
        let gen = SceneGenerator::new(DatasetSpec::dhdcampus_like());
        let mut rng = StdRng::seed_from_u64(4);
        let scene = gen.generate(160, 120, &mut rng);
        let p = scene.image.g();
        assert!(p.max() - p.min() > 0.1, "background lacks structure");
    }
}
