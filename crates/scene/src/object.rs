//! Object classes and their renderers.
//!
//! Every renderer paints a recognisable object into a bounding box on an
//! RGB canvas. Renderers are deliberately built from three ingredients the
//! experiments rely on:
//!
//! 1. **coarse structure** (solid blobs with centre–surround contrast) that
//!    a stage-1 detector can find,
//! 2. **fine texture** (1–3-pixel stripes and checkers) that average
//!    pooling erases — making small or heavily pooled objects hard,
//! 3. **colour saturation** that grayscale conversion removes.

use hirise_imaging::draw;
use hirise_imaging::{Rect, RgbImage};
use rand::Rng;

/// Object classes across all dataset presets (superset of the per-dataset
/// label spaces; VisDrone-like uses all ten).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjectClass {
    /// Standing person (CrowdHuman body / DHD "person").
    Person,
    /// Human head (CrowdHuman head annotations; stage-2 face tasks).
    Head,
    /// Person on a bicycle (DHD "cyclist").
    Cyclist,
    /// Passenger car.
    Car,
    /// Van.
    Van,
    /// Truck.
    Truck,
    /// Bus.
    Bus,
    /// Parked or ridden bicycle.
    Bicycle,
    /// Motorcycle.
    Motor,
    /// Three-wheeler.
    Tricycle,
}

impl ObjectClass {
    /// All classes, in stable index order.
    pub const ALL: [ObjectClass; 10] = [
        ObjectClass::Person,
        ObjectClass::Head,
        ObjectClass::Cyclist,
        ObjectClass::Car,
        ObjectClass::Van,
        ObjectClass::Truck,
        ObjectClass::Bus,
        ObjectClass::Bicycle,
        ObjectClass::Motor,
        ObjectClass::Tricycle,
    ];

    /// Stable numeric id (index into [`ObjectClass::ALL`]).
    pub fn id(&self) -> usize {
        Self::ALL.iter().position(|c| c == self).expect("class is in ALL")
    }

    /// Class from its numeric id.
    pub fn from_id(id: usize) -> Option<ObjectClass> {
        Self::ALL.get(id).copied()
    }

    /// Typical width/height aspect ratio of this class's bounding box.
    pub fn aspect(&self) -> f32 {
        match self {
            ObjectClass::Person => 0.40,
            ObjectClass::Head => 1.0,
            ObjectClass::Cyclist => 0.65,
            ObjectClass::Car => 1.9,
            ObjectClass::Van => 1.6,
            ObjectClass::Truck => 2.2,
            ObjectClass::Bus => 2.5,
            ObjectClass::Bicycle => 0.55,
            ObjectClass::Motor => 0.6,
            ObjectClass::Tricycle => 1.1,
        }
    }

    /// Whether the class is vehicle-like (drawn with body/wheels rather
    /// than head/torso).
    pub fn is_vehicle(&self) -> bool {
        matches!(
            self,
            ObjectClass::Car
                | ObjectClass::Van
                | ObjectClass::Truck
                | ObjectClass::Bus
                | ObjectClass::Tricycle
        )
    }
}

impl std::fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ObjectClass::Person => "person",
            ObjectClass::Head => "head",
            ObjectClass::Cyclist => "cyclist",
            ObjectClass::Car => "car",
            ObjectClass::Van => "van",
            ObjectClass::Truck => "truck",
            ObjectClass::Bus => "bus",
            ObjectClass::Bicycle => "bicycle",
            ObjectClass::Motor => "motor",
            ObjectClass::Tricycle => "tricycle",
        };
        f.write_str(s)
    }
}

/// HSV→RGB with `h` in `0.0..1.0`.
pub fn hsv_to_rgb(h: f32, s: f32, v: f32) -> (f32, f32, f32) {
    let h6 = (h.rem_euclid(1.0)) * 6.0;
    let i = h6.floor() as i32 % 6;
    let f = h6 - h6.floor();
    let p = v * (1.0 - s);
    let q = v * (1.0 - f * s);
    let t = v * (1.0 - (1.0 - f) * s);
    match i {
        0 => (v, t, p),
        1 => (q, v, p),
        2 => (p, v, t),
        3 => (p, q, v),
        4 => (t, p, v),
        _ => (v, p, q),
    }
}

fn sub_rect(b: Rect, fx: f32, fy: f32, fw: f32, fh: f32) -> Rect {
    let x = b.x + (b.w as f32 * fx) as u32;
    let y = b.y + (b.h as f32 * fy) as u32;
    let w = ((b.w as f32 * fw) as u32).max(1);
    let h = ((b.h as f32 * fh) as u32).max(1);
    Rect::new(x, y, w, h)
}

fn fill_rgb_rect(img: &mut RgbImage, r: Rect, color: (f32, f32, f32)) {
    draw::fill_rect_rgb(img, r, color);
}

fn fill_rgb_ellipse(img: &mut RgbImage, r: Rect, (cr, cg, cb): (f32, f32, f32)) {
    let [pr, pg, pb] = img.planes_mut();
    draw::fill_ellipse(pr, r, cr);
    draw::fill_ellipse(pg, r, cg);
    draw::fill_ellipse(pb, r, cb);
}

fn stripes_rgb(img: &mut RgbImage, r: Rect, period: u32, a: (f32, f32, f32), b: (f32, f32, f32)) {
    let [pr, pg, pb] = img.planes_mut();
    draw::fill_stripes(pr, r, period, a.0, b.0);
    draw::fill_stripes(pg, r, period, a.1, b.1);
    draw::fill_stripes(pb, r, period, a.2, b.2);
}

/// Skin tone with a small random variation.
fn skin<R: Rng + ?Sized>(rng: &mut R) -> (f32, f32, f32) {
    let v: f32 = rng.gen_range(0.75..0.95);
    (v, v * rng.gen_range(0.68..0.78), v * rng.gen_range(0.52..0.62))
}

fn draw_person_like<R: Rng + ?Sized>(
    img: &mut RgbImage,
    bbox: Rect,
    rng: &mut R,
    with_wheel: bool,
) {
    // Head with hair texture on top.
    let head = sub_rect(bbox, 0.28, 0.0, 0.44, 0.22);
    fill_rgb_ellipse(img, head, skin(rng));
    let hair = sub_rect(bbox, 0.28, 0.0, 0.44, 0.09);
    let hair_dark = rng.gen_range(0.03..0.12);
    stripes_rgb(
        img,
        hair,
        1,
        (hair_dark, hair_dark, hair_dark),
        (hair_dark * 3.0, hair_dark * 2.5, hair_dark * 2.0),
    );

    // Torso: saturated clothing with fine weave texture (the colour cue
    // grayscale loses and the texture cue pooling loses).
    let hue: f32 = rng.gen_range(0.0..1.0);
    let base = hsv_to_rgb(hue, rng.gen_range(0.65..0.95), rng.gen_range(0.55..0.85));
    let accent = hsv_to_rgb(hue, 0.4, 0.35);
    let torso = sub_rect(bbox, 0.12, 0.22, 0.76, 0.42);
    stripes_rgb(img, torso, 2, base, accent);

    // Legs: two darker columns.
    let leg_color = hsv_to_rgb(rng.gen_range(0.55..0.7), 0.5, rng.gen_range(0.2..0.4));
    let leg_h = if with_wheel { 0.22 } else { 0.36 };
    fill_rgb_rect(img, sub_rect(bbox, 0.18, 0.64, 0.24, leg_h), leg_color);
    fill_rgb_rect(img, sub_rect(bbox, 0.58, 0.64, 0.24, leg_h), leg_color);

    if with_wheel {
        // Bicycle wheels under the rider.
        let dark = (0.06, 0.06, 0.08);
        fill_rgb_ellipse(img, sub_rect(bbox, 0.02, 0.78, 0.45, 0.22), dark);
        fill_rgb_ellipse(img, sub_rect(bbox, 0.53, 0.78, 0.45, 0.22), dark);
        fill_rgb_ellipse(img, sub_rect(bbox, 0.12, 0.84, 0.25, 0.1), (0.5, 0.5, 0.55));
        fill_rgb_ellipse(img, sub_rect(bbox, 0.63, 0.84, 0.25, 0.1), (0.5, 0.5, 0.55));
    }

    // Eyes only render meaningfully when the head is large enough; at small
    // scales they vanish — exactly the fine feature argument of Fig. 1.
    if head.w >= 8 && head.h >= 6 {
        let eye = (0.05, 0.05, 0.08);
        fill_rgb_rect(img, sub_rect(bbox, 0.36, 0.08, 0.07, 0.03), eye);
        fill_rgb_rect(img, sub_rect(bbox, 0.57, 0.08, 0.07, 0.03), eye);
    }
}

fn draw_head<R: Rng + ?Sized>(img: &mut RgbImage, bbox: Rect, rng: &mut R) {
    fill_rgb_ellipse(img, bbox, skin(rng));
    let hair = sub_rect(bbox, 0.0, 0.0, 1.0, 0.35);
    let d = rng.gen_range(0.03..0.12);
    stripes_rgb(img, hair, 1, (d, d, d), (d * 3.0, d * 2.5, d * 2.0));
    if bbox.w >= 10 {
        let eye = (0.05, 0.05, 0.08);
        fill_rgb_rect(img, sub_rect(bbox, 0.22, 0.42, 0.16, 0.1), eye);
        fill_rgb_rect(img, sub_rect(bbox, 0.62, 0.42, 0.16, 0.1), eye);
        fill_rgb_rect(img, sub_rect(bbox, 0.35, 0.72, 0.3, 0.07), (0.5, 0.2, 0.2));
    }
}

fn draw_vehicle<R: Rng + ?Sized>(img: &mut RgbImage, bbox: Rect, class: ObjectClass, rng: &mut R) {
    let hue: f32 = rng.gen_range(0.0..1.0);
    let sat = if matches!(class, ObjectClass::Truck | ObjectClass::Van) {
        rng.gen_range(0.2..0.5)
    } else {
        rng.gen_range(0.6..0.95)
    };
    let body_color = hsv_to_rgb(hue, sat, rng.gen_range(0.5..0.9));
    // Body over the lower 2/3, cabin/windows above.
    fill_rgb_rect(img, sub_rect(bbox, 0.0, 0.35, 1.0, 0.45), body_color);
    let window = (0.25, 0.35, 0.5);
    match class {
        ObjectClass::Bus => {
            // Row of windows: a periodic texture pooling blurs away.
            for i in 0..5 {
                fill_rgb_rect(img, sub_rect(bbox, 0.05 + 0.19 * i as f32, 0.1, 0.12, 0.28), window);
            }
            fill_rgb_rect(img, sub_rect(bbox, 0.0, 0.05, 1.0, 0.06), body_color);
        }
        _ => {
            fill_rgb_rect(img, sub_rect(bbox, 0.2, 0.1, 0.26, 0.28), window);
            fill_rgb_rect(img, sub_rect(bbox, 0.54, 0.1, 0.26, 0.28), window);
        }
    }
    // Wheels.
    let dark = (0.05, 0.05, 0.06);
    fill_rgb_ellipse(img, sub_rect(bbox, 0.08, 0.72, 0.22, 0.28), dark);
    fill_rgb_ellipse(img, sub_rect(bbox, 0.70, 0.72, 0.22, 0.28), dark);
}

fn draw_two_wheeler<R: Rng + ?Sized>(img: &mut RgbImage, bbox: Rect, rng: &mut R) {
    let dark = (0.08, 0.08, 0.1);
    fill_rgb_ellipse(img, sub_rect(bbox, 0.0, 0.55, 0.5, 0.45), dark);
    fill_rgb_ellipse(img, sub_rect(bbox, 0.5, 0.55, 0.5, 0.45), dark);
    let frame = hsv_to_rgb(rng.gen_range(0.0..1.0), 0.85, 0.7);
    fill_rgb_rect(img, sub_rect(bbox, 0.1, 0.3, 0.8, 0.18), frame);
    fill_rgb_rect(img, sub_rect(bbox, 0.42, 0.0, 0.16, 0.4), frame);
}

/// Renders `class` into `bbox` on the canvas. Pixels outside the canvas are
/// clipped; the caller is responsible for placing boxes sensibly.
pub fn render_object<R: Rng + ?Sized>(
    img: &mut RgbImage,
    class: ObjectClass,
    bbox: Rect,
    rng: &mut R,
) {
    match class {
        ObjectClass::Person => draw_person_like(img, bbox, rng, false),
        ObjectClass::Cyclist => draw_person_like(img, bbox, rng, true),
        ObjectClass::Head => draw_head(img, bbox, rng),
        ObjectClass::Bicycle | ObjectClass::Motor => draw_two_wheeler(img, bbox, rng),
        c if c.is_vehicle() => draw_vehicle(img, bbox, c, rng),
        _ => unreachable!("all classes handled"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_imaging::color;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn class_ids_roundtrip() {
        for class in ObjectClass::ALL {
            assert_eq!(ObjectClass::from_id(class.id()), Some(class));
        }
        assert_eq!(ObjectClass::from_id(99), None);
    }

    #[test]
    fn aspects_distinguish_people_from_vehicles() {
        assert!(ObjectClass::Person.aspect() < 1.0);
        assert!(ObjectClass::Bus.aspect() > 2.0);
        assert!(ObjectClass::Head.aspect() == 1.0);
    }

    #[test]
    fn hsv_primaries() {
        let (r, g, b) = hsv_to_rgb(0.0, 1.0, 1.0);
        assert!((r - 1.0).abs() < 1e-6 && g.abs() < 1e-6 && b.abs() < 1e-6);
        let (r, g, b) = hsv_to_rgb(1.0 / 3.0, 1.0, 1.0);
        assert!(r.abs() < 1e-6 && (g - 1.0).abs() < 1e-6 && b.abs() < 1e-6);
        let (r, g, b) = hsv_to_rgb(0.5, 0.0, 0.7);
        assert!((r - 0.7).abs() < 1e-6 && (g - 0.7).abs() < 1e-6 && (b - 0.7).abs() < 1e-6);
    }

    #[test]
    fn rendered_person_contrasts_with_background() {
        let mut img = RgbImage::from_fn(64, 96, |_, _| (0.45, 0.45, 0.45));
        let mut rng = StdRng::seed_from_u64(3);
        let bbox = Rect::new(16, 8, 32, 80);
        render_object(&mut img, ObjectClass::Person, bbox, &mut rng);
        // The object region has higher variance than the flat background.
        let gray = color::rgb_to_gray_mean(&img);
        let obj = gray.plane().crop(bbox).unwrap();
        let bg = gray.plane().crop(Rect::new(0, 0, 12, 96)).unwrap();
        let var = |p: &hirise_imaging::Plane| {
            let m = p.mean();
            p.as_slice().iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / p.len() as f32
        };
        assert!(var(&obj) > 10.0 * var(&bg).max(1e-9), "object not textured enough");
    }

    #[test]
    fn rendered_person_has_color_saturation() {
        let mut img = RgbImage::from_fn(64, 96, |_, _| (0.45, 0.45, 0.45));
        let mut rng = StdRng::seed_from_u64(3);
        let bbox = Rect::new(16, 8, 32, 80);
        render_object(&mut img, ObjectClass::Person, bbox, &mut rng);
        let sat = color::saturation(&img);
        let obj_sat = sat.crop(bbox).unwrap().mean();
        assert!(obj_sat > 0.05, "object saturation {obj_sat} too low");
    }

    #[test]
    fn all_classes_render_without_panicking() {
        let mut rng = StdRng::seed_from_u64(1);
        for class in ObjectClass::ALL {
            let mut img = RgbImage::new(48, 48);
            render_object(&mut img, class, Rect::new(4, 4, 40, 40), &mut rng);
            // Tiny boxes must also work.
            render_object(&mut img, class, Rect::new(0, 0, 3, 3), &mut rng);
            // Boxes protruding past the canvas clip instead of panicking.
            render_object(&mut img, class, Rect::new(40, 40, 20, 20), &mut rng);
        }
    }

    #[test]
    fn display_names_unique() {
        let names: std::collections::HashSet<String> =
            ObjectClass::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(names.len(), ObjectClass::ALL.len());
    }
}
