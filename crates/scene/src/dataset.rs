//! Dataset presets calibrated to the statistics the paper's experiments
//! depend on.
//!
//! | preset | mirrors | calibration targets |
//! |---|---|---|
//! | [`DatasetSpec::crowdhuman_like`] | CrowdHuman | ~16 persons/image in dense clusters; Σbox ≈ 27 % of frame, union ≈ 9 % (back-solved from Fig. 7 transfer shares and Fig. 8 stage-2 energies); head boxes ≈ 4.4 % of frame width (Table 3 ROI column) |
//! | [`DatasetSpec::dhdcampus_like`] | TJU-DHD-Campus | few, larger, mostly separate persons/cyclists |
//! | [`DatasetSpec::visdrone_like`] | VisDrone | many tiny objects over 10 classes — the most resolution-sensitive preset |

use crate::object::ObjectClass;

/// Parameters of a synthetic dataset family.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Human-readable preset name.
    pub name: &'static str,
    /// Label space of the preset.
    pub classes: Vec<ObjectClass>,
    /// Min/max objects per image (inclusive).
    pub objects_per_image: (usize, usize),
    /// Object bounding-box height as a fraction of image height (min, max).
    pub scale_range: (f64, f64),
    /// Objects per spatial cluster (min, max); clusters produce the box
    /// overlap that differentiates sum-of-areas from union-of-areas.
    pub cluster_size: (usize, usize),
    /// In-cluster jitter as a fraction of object size; smaller = heavier
    /// overlap.
    pub cluster_spread: f64,
    /// Number of low-saturation distractor rectangles in the background.
    pub clutter_rects: usize,
    /// Whether each rendered person also contributes a `Head` ground-truth
    /// box (CrowdHuman annotates both bodies and heads).
    pub annotate_heads: bool,
}

impl DatasetSpec {
    /// CrowdHuman-like: dense crowds of people.
    pub fn crowdhuman_like() -> Self {
        Self {
            name: "crowdhuman-like",
            classes: vec![ObjectClass::Person],
            objects_per_image: (13, 19),
            scale_range: (0.18, 0.30),
            cluster_size: (4, 6),
            cluster_spread: 0.30,
            clutter_rects: 6,
            annotate_heads: true,
        }
    }

    /// TJU-DHD-Campus-like: sparse pedestrians and cyclists.
    pub fn dhdcampus_like() -> Self {
        Self {
            name: "dhdcampus-like",
            classes: vec![ObjectClass::Person, ObjectClass::Cyclist],
            objects_per_image: (3, 8),
            scale_range: (0.14, 0.30),
            cluster_size: (1, 2),
            cluster_spread: 1.2,
            clutter_rects: 8,
            annotate_heads: false,
        }
    }

    /// VisDrone-like: aerial viewpoint, many tiny objects, 10 classes.
    pub fn visdrone_like() -> Self {
        Self {
            name: "visdrone-like",
            classes: ObjectClass::ALL.to_vec(),
            objects_per_image: (20, 36),
            scale_range: (0.030, 0.085),
            cluster_size: (1, 3),
            cluster_spread: 1.5,
            clutter_rects: 12,
            annotate_heads: false,
        }
    }

    /// The three presets evaluated in the paper's Table 2, in paper order.
    pub fn paper_presets() -> [DatasetSpec; 3] {
        [Self::crowdhuman_like(), Self::dhdcampus_like(), Self::visdrone_like()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_distinct_names() {
        let names: std::collections::HashSet<_> =
            DatasetSpec::paper_presets().iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn crowdhuman_is_densest_and_annotates_heads() {
        let ch = DatasetSpec::crowdhuman_like();
        let dhd = DatasetSpec::dhdcampus_like();
        assert!(ch.objects_per_image.0 > dhd.objects_per_image.1);
        assert!(ch.annotate_heads);
        assert!(!dhd.annotate_heads);
        assert!(ch.cluster_spread < dhd.cluster_spread);
    }

    #[test]
    fn visdrone_has_smallest_objects_and_all_classes() {
        let vd = DatasetSpec::visdrone_like();
        assert!(vd.scale_range.1 < DatasetSpec::dhdcampus_like().scale_range.0);
        assert_eq!(vd.classes.len(), 10);
    }

    #[test]
    fn scale_ranges_are_well_formed() {
        for spec in DatasetSpec::paper_presets() {
            assert!(spec.scale_range.0 < spec.scale_range.1);
            assert!(spec.scale_range.1 < 1.0);
            assert!(spec.objects_per_image.0 <= spec.objects_per_image.1);
            assert!(spec.cluster_size.0 >= 1);
        }
    }
}
