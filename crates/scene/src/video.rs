//! Deterministic synthetic video: scenes whose objects move.
//!
//! The still-image generator ([`crate::SceneGenerator`]) samples every
//! frame independently, which models a photo dataset but not a camera: on
//! real video, objects move a few pixels per frame and consecutive frames
//! are heavily correlated. That correlation is exactly what the temporal
//! HiRISE pipeline (`hirise::temporal`) exploits — track ROIs across
//! frames, re-detect only on keyframes or drift — so its evaluation needs
//! ground-truth *tracks*, not just boxes.
//!
//! [`VideoGenerator`] provides them: a seeded set of objects with
//! constant-velocity motion, each either **bouncing** off the canvas
//! edges (specular reflection, so the analytic position is a pure
//! function of time) or **exiting** the frame and staying gone. Every
//! frame is a pure function of `(spec, seed, frame index)` — no
//! accumulated state — so frame `t` can be generated without frames
//! `0..t`, sequences can be re-generated bit-identically for golden
//! tests, and parallel workers need no coordination.
//!
//! Object appearance (clothing colour, texture phase) is derived from the
//! seed and track id alone, so an object looks the same in every frame it
//! appears in — the stability a mean-intensity drift trigger relies on.
//!
//! # Example
//!
//! ```
//! use hirise_scene::{VideoGenerator, VideoSpec};
//!
//! let video = VideoGenerator::new(VideoSpec::surveillance(), 320, 240, 7);
//! let frame = video.frame(5);
//! assert_eq!(frame.image.dimensions(), (320, 240));
//! assert!(!frame.objects.is_empty());
//! // Pure function of the index: regeneration is bit-identical.
//! assert_eq!(video.frame(5).image, frame.image);
//! ```

use hirise_imaging::draw;
use hirise_imaging::{Rect, RgbImage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::object::{self, hsv_to_rgb, ObjectClass};

/// Parameters of a synthetic video sequence family.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoSpec {
    /// Min/max moving objects per sequence (inclusive).
    pub objects: (usize, usize),
    /// Label space sampled for the moving objects.
    pub classes: Vec<ObjectClass>,
    /// Object bounding-box height as a fraction of frame height (min, max).
    pub scale_range: (f64, f64),
    /// Speed magnitude in pixels per frame (min, max).
    pub speed_range: (f64, f64),
    /// Fraction of objects that leave the frame instead of bouncing.
    pub exit_fraction: f64,
    /// Static low-saturation distractor rectangles in the background.
    pub clutter_rects: usize,
}

impl VideoSpec {
    /// Surveillance-like default: a few large pedestrians/cyclists moving
    /// 1–3 px/frame, a quarter of them eventually leaving the frame.
    pub fn surveillance() -> Self {
        Self {
            objects: (3, 4),
            classes: vec![ObjectClass::Person, ObjectClass::Cyclist],
            scale_range: (0.20, 0.32),
            speed_range: (0.8, 3.0),
            exit_fraction: 0.25,
            clutter_rects: 6,
        }
    }
}

/// How one object's position evolves over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Motion {
    /// Specular reflection at the canvas edges; never leaves the frame.
    Bounce,
    /// Straight constant-velocity line; once fully outside, gone for good.
    Exit,
}

/// Sampled parameters of one ground-truth track (fixed for the sequence).
#[derive(Debug, Clone, Copy)]
struct TrackParams {
    class: ObjectClass,
    /// Box size, pixels.
    w: u32,
    h: u32,
    /// Top-left position at frame 0.
    x0: f64,
    y0: f64,
    /// Velocity, pixels per frame.
    vx: f64,
    vy: f64,
    motion: Motion,
    /// Seed of the per-frame appearance RNG (stable across frames).
    appearance: u64,
}

/// One ground-truth object instance in one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VideoObject {
    /// Stable track id (index into the sequence's track set).
    pub track: u32,
    /// Object class.
    pub class: ObjectClass,
    /// Bounding box, clipped to the canvas (partially exited objects
    /// shrink; fully exited objects are omitted from the frame).
    pub bbox: Rect,
}

/// One rendered video frame with its ground truth.
#[derive(Debug, Clone)]
pub struct VideoFrame {
    /// Frame index within the sequence.
    pub index: u32,
    /// The rendered RGB canvas (normalised irradiance).
    pub image: RgbImage,
    /// Ground-truth objects visible in this frame, in track-id order.
    pub objects: Vec<VideoObject>,
}

/// Reflects `p` into `0.0..=max` (triangle wave), the closed form of
/// constant-velocity motion with elastic bounces at 0 and `max`.
/// Shared with the scenario generators (`crate::scenario`).
pub(crate) fn reflect(p: f64, max: f64) -> f64 {
    if max <= 0.0 {
        return 0.0;
    }
    let period = 2.0 * max;
    let m = p.rem_euclid(period);
    if m > max {
        period - m
    } else {
        m
    }
}

/// Static background shared by every frame of a sequence: vertical
/// sky-to-ground gradient, untextured clutter rectangles, road lines
/// and low-amplitude texture noise (the same ingredients as the
/// still-scene generator, so detector calibrations transfer). Shared by
/// [`VideoGenerator`] and the scenario generators (`crate::scenario`).
pub(crate) fn paint_background(clutter_rects: usize, w: u32, h: u32, rng: &mut StdRng) -> RgbImage {
    let mut img = RgbImage::new(w, h);
    let sky = rng.gen_range(0.55..0.7);
    let ground = rng.gen_range(0.3..0.45);
    for (ci, tint) in [(0usize, 0.98f32), (1, 1.0), (2, 1.04)] {
        let plane = &mut *img.planes_mut()[ci];
        for y in 0..h {
            let t = y as f32 / (h - 1).max(1) as f32;
            let v = (sky + (ground - sky) * t) * tint;
            for x in 0..w {
                plane.set(x, y, v);
            }
        }
    }
    let noise_seed: u64 = rng.gen();
    for (i, plane) in img.planes_mut().into_iter().enumerate() {
        let mut t = draw::TextureRng::new(noise_seed ^ ((i as u64) << 32));
        for v in plane.as_mut_slice() {
            *v += 0.02 * (t.next_f32() * 2.0 - 1.0);
        }
    }
    for i in 0..clutter_rects {
        let cw = rng.gen_range(w / 16..w / 4).max(2);
        let ch = rng.gen_range(h / 16..h / 4).max(2);
        let x = rng.gen_range(0..w.saturating_sub(cw).max(1));
        let y = rng.gen_range(0..h.saturating_sub(ch).max(1));
        let sat = if i % 2 == 0 { rng.gen_range(0.05..0.2) } else { rng.gen_range(0.3..0.6) };
        let color = hsv_to_rgb(rng.gen_range(0.0..1.0), sat, rng.gen_range(0.3..0.7));
        draw::fill_rect_rgb(&mut img, Rect::new(x, y, cw, ch), color);
    }
    for _ in 0..2 {
        let y0 = rng.gen_range(0..h) as i64;
        let y1 = rng.gen_range(0..h) as i64;
        let shade = rng.gen_range(0.2..0.3);
        let [pr, pg, pb] = img.planes_mut();
        draw::draw_line(pr, 0, y0, w as i64 - 1, y1, shade);
        draw::draw_line(pg, 0, y0, w as i64 - 1, y1, shade);
        draw::draw_line(pb, 0, y0, w as i64 - 1, y1, shade);
    }
    img
}

/// Deterministic video-sequence generator; see the module docs.
#[derive(Debug, Clone)]
pub struct VideoGenerator {
    spec: VideoSpec,
    width: u32,
    height: u32,
    background: RgbImage,
    tracks: Vec<TrackParams>,
}

impl VideoGenerator {
    /// Samples a `width × height` sequence from `spec` under `seed`: the
    /// static background, and every track's size, start position,
    /// velocity, motion mode and appearance.
    ///
    /// # Panics
    ///
    /// Panics when `width`/`height` are too small to hold the smallest
    /// object of the spec (< ~16 px for person-scale presets).
    pub fn new(spec: VideoSpec, width: u32, height: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let background = paint_background(spec.clutter_rects, width, height, &mut rng);
        let count = rng.gen_range(spec.objects.0..=spec.objects.1);
        let mut tracks = Vec::with_capacity(count);
        for id in 0..count {
            let class = spec.classes[rng.gen_range(0..spec.classes.len())];
            let scale = rng.gen_range(spec.scale_range.0..spec.scale_range.1);
            let h = (((scale * height as f64) as u32).max(4)).min(height);
            let aspect = class.aspect() as f64 * rng.gen_range(0.85..1.15);
            let w = (((h as f64 * aspect) as u32).max(3)).min(width);
            // Spawn positions are spread across vertical bands: ground
            // truth for *tracking* wants tracks that start as distinct
            // objects (overlap still develops as they move), and a heap
            // of objects spawned on top of each other evaluates the
            // detector's crowd behaviour, not the tracker.
            let band = width as f64 / count as f64;
            let lo = (band * id as f64).min((width - w) as f64);
            let hi = (band * (id + 1) as f64 - w as f64).clamp(lo, (width - w) as f64);
            let x0 = rng.gen_range(lo..=hi);
            let y0 = rng.gen_range(0.0..=(height - h) as f64);
            let speed = rng.gen_range(spec.speed_range.0..spec.speed_range.1);
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            let motion = if rng.gen_range(0.0..1.0) < spec.exit_fraction {
                Motion::Exit
            } else {
                Motion::Bounce
            };
            tracks.push(TrackParams {
                class,
                w,
                h,
                x0,
                y0,
                vx: speed * angle.cos(),
                vy: speed * angle.sin(),
                motion,
                appearance: seed ^ (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            });
        }
        Self { spec, width, height, background, tracks }
    }

    /// The wrapped spec.
    pub fn spec(&self) -> &VideoSpec {
        &self.spec
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of ground-truth tracks in the sequence (objects that have
    /// exited still count; they are simply absent from later frames).
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }

    /// The (unclipped) analytic top-left of track `t` at `frame`, in
    /// floating-point pixels. Bouncing tracks reflect into the canvas;
    /// exiting tracks run straight.
    fn position(&self, t: &TrackParams, frame: u32) -> (f64, f64) {
        let dt = frame as f64;
        let (px, py) = (t.x0 + t.vx * dt, t.y0 + t.vy * dt);
        match t.motion {
            Motion::Bounce => {
                (reflect(px, (self.width - t.w) as f64), reflect(py, (self.height - t.h) as f64))
            }
            Motion::Exit => (px, py),
        }
    }

    /// The visible (canvas-clipped) box of track `t` at `frame`, or
    /// `None` once the object is fully outside.
    fn visible_box(&self, t: &TrackParams, frame: u32) -> Option<Rect> {
        let (px, py) = self.position(t, frame);
        let (x0, y0) = (px.round() as i64, py.round() as i64);
        let (x1, y1) = (x0 + t.w as i64, y0 + t.h as i64);
        let cx0 = x0.max(0);
        let cy0 = y0.max(0);
        let cx1 = x1.min(self.width as i64);
        let cy1 = y1.min(self.height as i64);
        if cx0 < cx1 && cy0 < cy1 {
            Some(Rect::new(cx0 as u32, cy0 as u32, (cx1 - cx0) as u32, (cy1 - cy0) as u32))
        } else {
            None
        }
    }

    /// Ground-truth boxes of `frame`, in track-id order, without
    /// rendering — cheap enough to call per frame during IoU evaluation.
    pub fn ground_truth(&self, frame: u32) -> Vec<VideoObject> {
        self.tracks
            .iter()
            .enumerate()
            .filter_map(|(id, t)| {
                self.visible_box(t, frame).map(|bbox| VideoObject {
                    track: id as u32,
                    class: t.class,
                    bbox,
                })
            })
            .collect()
    }

    /// Renders frame `frame`: the shared background plus every visible
    /// object at its analytic position. Pure function of the index.
    pub fn frame(&self, frame: u32) -> VideoFrame {
        let mut image = self.background.clone();
        let objects = self.ground_truth(frame);
        // Render back-to-front (top of frame first) so nearer objects
        // overdraw farther ones; the ground truth stays in track order.
        let mut order: Vec<usize> = (0..objects.len()).collect();
        order.sort_by_key(|&i| (objects[i].bbox.y, objects[i].track));
        for &i in &order {
            let obj = &objects[i];
            // The appearance RNG restarts from the same seed every frame,
            // so the object's colours and texture do not flicker.
            let mut rng = StdRng::seed_from_u64(self.tracks[obj.track as usize].appearance);
            object::render_object(&mut image, obj.class, obj.bbox, &mut rng);
        }
        VideoFrame { index: frame, image, objects }
    }

    /// Renders frames `0..count`.
    pub fn frames(&self, count: u32) -> Vec<VideoFrame> {
        (0..count).map(|i| self.frame(i)).collect()
    }

    /// Renders frames `0..count`, keeping only the images — the shape the
    /// stream executors consume.
    pub fn images(&self, count: u32) -> Vec<RgbImage> {
        (0..count).map(|i| self.frame(i).image).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(seed: u64) -> VideoGenerator {
        VideoGenerator::new(VideoSpec::surveillance(), 160, 120, seed)
    }

    #[test]
    fn frames_are_pure_functions_of_the_index() {
        let video = generator(11);
        let a = video.frame(7);
        let b = video.frame(7);
        assert_eq!(a.image, b.image);
        assert_eq!(a.objects, b.objects);
        // Equal to the batch API, without generating frames 0..7 first.
        let batch = video.frames(8);
        assert_eq!(batch[7].image, a.image);
        assert_eq!(batch[7].objects, a.objects);
    }

    #[test]
    fn same_seed_reproduces_different_seeds_differ() {
        let a = generator(3).frame(2);
        let b = generator(3).frame(2);
        assert_eq!(a.image, b.image);
        let c = generator(4).frame(2);
        assert_ne!(a.image, c.image);
    }

    #[test]
    fn objects_move_between_frames() {
        let video = generator(5);
        let first = video.ground_truth(0);
        let later = video.ground_truth(12);
        assert!(!first.is_empty());
        let moved =
            first.iter().any(|a| later.iter().any(|b| b.track == a.track && b.bbox != a.bbox));
        assert!(moved, "no track moved over 12 frames");
    }

    #[test]
    fn boxes_stay_inside_the_canvas() {
        let video = generator(9);
        for t in 0..40 {
            for obj in video.ground_truth(t) {
                assert!(
                    obj.bbox.fits_within(160, 120),
                    "frame {t}: {} escapes the canvas",
                    obj.bbox
                );
                assert!(!obj.bbox.is_degenerate());
            }
        }
    }

    #[test]
    fn bouncing_tracks_never_leave() {
        let spec = VideoSpec { exit_fraction: 0.0, ..VideoSpec::surveillance() };
        let video = VideoGenerator::new(spec, 160, 120, 21);
        for t in (0..200).step_by(17) {
            assert_eq!(
                video.ground_truth(t).len(),
                video.track_count(),
                "a bouncing track vanished at frame {t}"
            );
        }
    }

    #[test]
    fn exiting_tracks_eventually_leave_for_good() {
        let spec = VideoSpec { exit_fraction: 1.0, ..VideoSpec::surveillance() };
        let video = VideoGenerator::new(spec, 160, 120, 2);
        assert_eq!(video.ground_truth(0).len(), video.track_count());
        // With ~1 px/frame minimum speed, 2000 frames clear a 160 px
        // canvas many times over.
        let gone_at = (0..2000).find(|&t| video.ground_truth(t).is_empty());
        let gone_at = gone_at.expect("exit-mode objects never left the frame");
        // Exited means exited: later frames stay empty.
        for t in [gone_at + 1, gone_at + 50, gone_at + 500] {
            assert!(video.ground_truth(t).is_empty(), "an exited object returned at frame {t}");
        }
    }

    #[test]
    fn ground_truth_matches_rendered_frame() {
        let video = generator(13);
        let frame = video.frame(6);
        assert_eq!(frame.objects, video.ground_truth(6));
        assert_eq!(frame.index, 6);
        // Track ids are stable and ordered.
        let ids: Vec<u32> = frame.objects.iter().map(|o| o.track).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn appearance_is_stable_across_frames() {
        // A slow object's pixels at its box centre should be identical a
        // frame apart when the box lands on the same pixel grid: the
        // appearance RNG must not advance with time. Use zero-speed
        // bounds to pin the box in place.
        let spec = VideoSpec {
            speed_range: (1e-9, 2e-9),
            exit_fraction: 0.0,
            ..VideoSpec::surveillance()
        };
        let video = VideoGenerator::new(spec, 160, 120, 31);
        assert_eq!(video.frame(0).image, video.frame(40).image);
    }

    #[test]
    fn images_helper_matches_frames() {
        let video = generator(17);
        let images = video.images(3);
        let frames = video.frames(3);
        assert_eq!(images.len(), 3);
        for (img, fr) in images.iter().zip(&frames) {
            assert_eq!(*img, fr.image);
        }
    }
}
