//! RAF-DB-like synthetic facial-expression patches.
//!
//! Seven classes matching the RAF-DB label space. Each class is encoded by
//! geometric face features — mouth curvature/opening, eye aperture and brow
//! angle — drawn at a base resolution and then *downscaled to the ROI size
//! under test*. The features span only a few pixels, so aggressive
//! downscaling merges them: a 14×14 patch (the ROI a 320×240 array yields
//! in Table 3) is nearly class-ambiguous, while 112×112 is easy. This
//! reproduces the paper's accuracy-vs-ROI-size saturation curve with a real
//! trainable classifier (`hirise-nn`).

use hirise_imaging::draw;
use hirise_imaging::{Plane, Rect, RgbImage};
use rand::Rng;

use crate::object::hsv_to_rgb;

/// RAF-DB's seven basic expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Expression {
    /// Wide eyes, open round mouth.
    Surprise,
    /// Wide eyes, open flat mouth, raised brows.
    Fear,
    /// Narrowed eyes, asymmetric wavy mouth.
    Disgust,
    /// Upward-curved mouth.
    Happy,
    /// Downward-curved mouth, inner-raised brows.
    Sad,
    /// Narrowed eyes, steep inward-down brows, pressed mouth.
    Anger,
    /// Relaxed features, straight mouth.
    Neutral,
}

impl Expression {
    /// All classes in stable order.
    pub const ALL: [Expression; 7] = [
        Expression::Surprise,
        Expression::Fear,
        Expression::Disgust,
        Expression::Happy,
        Expression::Sad,
        Expression::Anger,
        Expression::Neutral,
    ];

    /// Stable numeric id.
    pub fn id(&self) -> usize {
        Self::ALL.iter().position(|e| e == self).expect("expression is in ALL")
    }

    /// Class from id.
    pub fn from_id(id: usize) -> Option<Expression> {
        Self::ALL.get(id).copied()
    }
}

impl std::fmt::Display for Expression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Expression::Surprise => "surprise",
            Expression::Fear => "fear",
            Expression::Disgust => "disgust",
            Expression::Happy => "happy",
            Expression::Sad => "sad",
            Expression::Anger => "anger",
            Expression::Neutral => "neutral",
        };
        f.write_str(s)
    }
}

/// Generator for expression patches at a configurable base resolution.
#[derive(Debug, Clone)]
pub struct FacePatchGenerator {
    base: u32,
}

impl FacePatchGenerator {
    /// Creates a generator rendering at `base × base` pixels (default in
    /// the experiments: 112, the largest Table-3 ROI).
    pub fn new(base: u32) -> Self {
        Self { base: base.max(16) }
    }

    /// Base resolution.
    pub fn base_size(&self) -> u32 {
        self.base
    }

    fn thick_point(plane: &mut Plane, x: f32, y: f32, r: u32, v: f32) {
        let rect = Rect::new(
            (x - r as f32).max(0.0) as u32,
            (y - r as f32).max(0.0) as u32,
            2 * r + 1,
            2 * r + 1,
        );
        draw::fill_rect(plane, rect, v);
    }

    fn stroke_curve(
        img: &mut RgbImage,
        color: (f32, f32, f32),
        thickness: u32,
        points: impl Iterator<Item = (f32, f32)>,
    ) {
        let pts: Vec<(f32, f32)> = points.collect();
        let [pr, pg, pb] = img.planes_mut();
        for &(x, y) in &pts {
            Self::thick_point(pr, x, y, thickness, color.0);
            Self::thick_point(pg, x, y, thickness, color.1);
            Self::thick_point(pb, x, y, thickness, color.2);
        }
    }

    /// Renders one face patch of class `expr` with per-sample jitter drawn
    /// from `rng`.
    pub fn generate<R: Rng + ?Sized>(&self, expr: Expression, rng: &mut R) -> RgbImage {
        let s = self.base as f32;
        let mut img = RgbImage::new(self.base, self.base);

        // Background (shoulders/backdrop).
        let bg =
            hsv_to_rgb(rng.gen_range(0.0..1.0), rng.gen_range(0.05..0.3), rng.gen_range(0.25..0.5));
        draw::fill_rect_rgb(&mut img, Rect::new(0, 0, self.base, self.base), bg);

        // Face ellipse with slight tone variation.
        let tone: f32 = rng.gen_range(0.7..0.95);
        let face_color = (tone, tone * rng.gen_range(0.7..0.8), tone * rng.gen_range(0.55..0.65));
        let fx = rng.gen_range(0.04..0.10);
        let face = Rect::new(
            (s * fx) as u32,
            (s * 0.06) as u32,
            (s * (1.0 - 2.0 * fx)) as u32,
            (s * 0.9) as u32,
        );
        let [pr, pg, pb] = img.planes_mut();
        draw::fill_ellipse(pr, face, face_color.0);
        draw::fill_ellipse(pg, face, face_color.1);
        draw::fill_ellipse(pb, face, face_color.2);

        // Hair: fine stripes across the top (high-frequency texture).
        let hair_dark = rng.gen_range(0.02..0.15);
        let hair = Rect::new(face.x, face.y, face.w, (s * 0.18) as u32);
        let [pr, pg, pb] = img.planes_mut();
        draw::fill_stripes(pr, hair, 1, hair_dark, hair_dark * 2.5);
        draw::fill_stripes(pg, hair, 1, hair_dark * 0.9, hair_dark * 2.2);
        draw::fill_stripes(pb, hair, 1, hair_dark * 0.8, hair_dark * 1.9);

        let jx = rng.gen_range(-0.02..0.02);
        let jy = rng.gen_range(-0.02..0.02);
        let cx = s * (0.5 + jx);
        let eye_y = s * (0.42 + jy);
        let eye_dx = s * rng.gen_range(0.16..0.20);

        // Eye aperture per class.
        let aperture = match expr {
            Expression::Surprise | Expression::Fear => rng.gen_range(0.085..0.105),
            Expression::Anger | Expression::Disgust => rng.gen_range(0.025..0.04),
            _ => rng.gen_range(0.055..0.07),
        };
        let eye_w = s * 0.13;
        let eye_h = (s * aperture).max(1.0);
        let eye_color = (0.95, 0.95, 0.97);
        let pupil = (0.06, 0.05, 0.1);
        for side in [-1.0f32, 1.0] {
            let ex = cx + side * eye_dx - eye_w / 2.0;
            let ey = eye_y - eye_h / 2.0;
            let e = Rect::new(
                ex.max(0.0) as u32,
                ey.max(0.0) as u32,
                eye_w as u32,
                eye_h.ceil() as u32,
            );
            let [pr, pg, pb] = img.planes_mut();
            draw::fill_ellipse(pr, e, eye_color.0);
            draw::fill_ellipse(pg, e, eye_color.1);
            draw::fill_ellipse(pb, e, eye_color.2);
            let pw = (eye_w * 0.4) as u32;
            let ph = (eye_h * 0.8).max(1.0) as u32;
            let p = Rect::new(
                (cx + side * eye_dx - pw as f32 / 2.0).max(0.0) as u32,
                (eye_y - ph as f32 / 2.0).max(0.0) as u32,
                pw.max(1),
                ph,
            );
            let [pr, pg, pb] = img.planes_mut();
            draw::fill_ellipse(pr, p, pupil.0);
            draw::fill_ellipse(pg, p, pupil.1);
            draw::fill_ellipse(pb, p, pupil.2);
        }

        // Brows: angle encodes anger/sadness/fear.
        let brow_angle = match expr {
            Expression::Anger => -0.10, // inner ends pulled down
            Expression::Sad => 0.08,    // inner ends raised
            Expression::Fear | Expression::Surprise => 0.05,
            _ => rng.gen_range(-0.01..0.01),
        };
        let brow_color = (hair_dark, hair_dark, hair_dark);
        for side in [-1.0f32, 1.0] {
            let n = 12;
            let base_y = eye_y
                - s * (0.085
                    + if matches!(expr, Expression::Surprise | Expression::Fear) {
                        0.03
                    } else {
                        0.0
                    });
            let pts = (0..=n).map(move |i| {
                let t = i as f32 / n as f32; // 0 at inner end
                let x = cx + side * (s * 0.06 + t * s * 0.16);
                let y = base_y - side * 0.0 + (t - 0.5) * 0.0
                    - brow_angle * s * (1.0 - t) * side * side
                    + brow_angle * s * (t - 0.5);
                (x, y)
            });
            Self::stroke_curve(&mut img, brow_color, (s / 56.0).max(1.0) as u32, pts);
        }

        // Mouth: the strongest class cue.
        let mouth_y = s * (0.72 + rng.gen_range(-0.015..0.015));
        let mouth_w = s * rng.gen_range(0.26..0.34);
        let lip = (0.55, 0.15, 0.18);
        match expr {
            Expression::Happy | Expression::Sad => {
                // Subtle curvature: ~5 px of bow at 112 px, fractions of a
                // pixel at 14 px — the resolution-limited cue of Table 3.
                let curv = s * 0.05 * if expr == Expression::Happy { 1.0 } else { -1.0 };
                let n = 24;
                let pts = (0..=n).map(move |i| {
                    let t = i as f32 / n as f32 * 2.0 - 1.0;
                    (cx + t * mouth_w / 2.0, mouth_y + curv * (t * t - 0.5))
                });
                Self::stroke_curve(&mut img, lip, (s / 56.0).max(1.0) as u32, pts);
            }
            Expression::Surprise => {
                // Open round mouth with dark interior.
                let mw = mouth_w * 0.55;
                let mh = s * rng.gen_range(0.08..0.11);
                let m = Rect::new(
                    (cx - mw / 2.0) as u32,
                    (mouth_y - mh / 2.0) as u32,
                    mw as u32,
                    mh as u32,
                );
                let [pr, pg, pb] = img.planes_mut();
                draw::fill_ellipse(pr, m, 0.1);
                draw::fill_ellipse(pg, m, 0.05);
                draw::fill_ellipse(pb, m, 0.07);
            }
            Expression::Fear => {
                // Open but wide/flat mouth — at low resolution this merges
                // with surprise's round mouth.
                let mh = s * rng.gen_range(0.05..0.075);
                let m = Rect::new(
                    (cx - mouth_w / 2.0) as u32,
                    (mouth_y - mh / 2.0) as u32,
                    mouth_w as u32,
                    mh as u32,
                );
                let [pr, pg, pb] = img.planes_mut();
                draw::fill_ellipse(pr, m, 0.12);
                draw::fill_ellipse(pg, m, 0.06);
                draw::fill_ellipse(pb, m, 0.08);
            }
            Expression::Disgust => {
                // Asymmetric wavy line: one corner pulled up slightly.
                let n = 24;
                let curv = s * 0.03;
                let pts = (0..=n).map(move |i| {
                    let t = i as f32 / n as f32 * 2.0 - 1.0;
                    (cx + t * mouth_w / 2.0, mouth_y - curv * t - curv * 0.6 * (3.0 * t).sin())
                });
                Self::stroke_curve(&mut img, lip, (s / 56.0).max(1.0) as u32, pts);
            }
            Expression::Anger => {
                // Pressed thin straight mouth; differs from neutral mainly
                // by the brow angle and narrowed eyes — fine cues.
                let m = Rect::new(
                    (cx - mouth_w / 2.0) as u32,
                    mouth_y as u32,
                    mouth_w as u32,
                    ((s / 56.0).max(1.0)) as u32,
                );
                draw::fill_rect_rgb(&mut img, m, (0.45, 0.13, 0.15));
            }
            Expression::Neutral => {
                let m = Rect::new(
                    (cx - mouth_w / 2.0) as u32,
                    mouth_y as u32,
                    mouth_w as u32,
                    ((s / 48.0).max(1.0)) as u32,
                );
                draw::fill_rect_rgb(&mut img, m, lip);
            }
        }

        // Nose: small vertical shading, common to all classes.
        let nose = Rect::new(
            (cx - s * 0.02) as u32,
            (s * 0.52) as u32,
            (s * 0.04).max(1.0) as u32,
            (s * 0.12) as u32,
        );
        draw::fill_rect_rgb(
            &mut img,
            nose,
            (face_color.0 * 0.8, face_color.1 * 0.8, face_color.2 * 0.8),
        );

        // Sensor-independent appearance noise.
        let seed: u64 = rng.gen();
        for (i, plane) in img.planes_mut().into_iter().enumerate() {
            let mut t = draw::TextureRng::new(seed ^ (i as u64));
            for v in plane.as_mut_slice() {
                *v = (*v + 0.015 * (t.next_f32() * 2.0 - 1.0)).clamp(0.0, 1.0);
            }
        }
        img
    }

    /// Generates a labelled dataset with `per_class` samples per class.
    pub fn dataset<R: Rng + ?Sized>(
        &self,
        per_class: usize,
        rng: &mut R,
    ) -> Vec<(RgbImage, Expression)> {
        let mut out = Vec::with_capacity(per_class * Expression::ALL.len());
        for _ in 0..per_class {
            for expr in Expression::ALL {
                out.push((self.generate(expr, rng), expr));
            }
        }
        out
    }
}

impl Default for FacePatchGenerator {
    fn default() -> Self {
        Self::new(112)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_imaging::{metrics, ops};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn expression_ids_roundtrip() {
        for e in Expression::ALL {
            assert_eq!(Expression::from_id(e.id()), Some(e));
        }
        assert_eq!(Expression::from_id(7), None);
    }

    #[test]
    fn patches_have_requested_size() {
        let gen = FacePatchGenerator::new(64);
        let mut rng = StdRng::seed_from_u64(1);
        let img = gen.generate(Expression::Happy, &mut rng);
        assert_eq!(img.dimensions(), (64, 64));
    }

    #[test]
    fn happy_and_sad_differ_at_high_res() {
        // Averaged over samples, the mouth region differs strongly between
        // happy (bright corners up) and sad at full resolution.
        let gen = FacePatchGenerator::new(112);
        let mut rng = StdRng::seed_from_u64(2);
        let happy = gen.generate(Expression::Happy, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(2);
        let sad = gen.generate(Expression::Sad, &mut rng2);
        // Same jitter seed: the only difference is the class features.
        let diff = metrics::mae(
            &hirise_imaging::color::rgb_to_gray_mean(&happy).into_plane(),
            &hirise_imaging::color::rgb_to_gray_mean(&sad).into_plane(),
        )
        .unwrap();
        assert!(diff > 0.001, "classes indistinguishable at 112px: {diff}");
    }

    #[test]
    fn downscaling_shrinks_class_separation() {
        let gen = FacePatchGenerator::new(112);
        let mut ra = StdRng::seed_from_u64(5);
        let mut rb = StdRng::seed_from_u64(5);
        let a = gen.generate(Expression::Surprise, &mut ra);
        let b = gen.generate(Expression::Anger, &mut rb);
        let ga = hirise_imaging::color::rgb_to_gray_mean(&a);
        let gb = hirise_imaging::color::rgb_to_gray_mean(&b);
        let d_hi = metrics::mae(ga.plane(), gb.plane()).unwrap();
        let a14 = ops::resize_gray(&ga, 14, 14).unwrap();
        let b14 = ops::resize_gray(&gb, 14, 14).unwrap();
        let d_lo = metrics::mae(a14.plane(), b14.plane()).unwrap();
        assert!(d_lo < d_hi, "class separation did not shrink: hi={d_hi} lo={d_lo}");
    }

    #[test]
    fn dataset_is_balanced() {
        let gen = FacePatchGenerator::new(32);
        let mut rng = StdRng::seed_from_u64(9);
        let data = gen.dataset(3, &mut rng);
        assert_eq!(data.len(), 21);
        for e in Expression::ALL {
            assert_eq!(data.iter().filter(|(_, l)| *l == e).count(), 3);
        }
    }

    #[test]
    fn all_expressions_render_all_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        for size in [16, 28, 112] {
            let gen = FacePatchGenerator::new(size);
            for e in Expression::ALL {
                let img = gen.generate(e, &mut rng);
                assert_eq!(img.width(), size.max(16));
                // Values stay in range.
                assert!(img.r().max() <= 1.0 && img.r().min() >= 0.0);
            }
        }
    }
}
