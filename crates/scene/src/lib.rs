//! # hirise-scene
//!
//! Synthetic dataset generator standing in for the paper's evaluation data
//! (CrowdHuman, TJU-DHD-Campus, VisDrone and RAF-DB), which cannot be
//! redistributed or downloaded here.
//!
//! The substitution preserves what the experiments actually consume:
//!
//! * **ROI statistics** — box counts, size distributions, overlap (sum vs
//!   union area): these drive the data-transfer (Fig. 7) and energy
//!   (Fig. 8) results. Presets are calibrated so the generated statistics
//!   match the values back-solved from the paper's own numbers
//!   (CrowdHuman-like: Σbox ≈ 27 % of the frame, union ≈ 9 %, j ≈ 16).
//! * **Resolution-dependent detectability** — objects carry fine texture
//!   (hair stripes, clothing weave, face features) that `k×k` pooling
//!   destroys, plus colour saturation cues that grayscale mode removes.
//!   This reproduces the Table-2 accuracy/resolution trade-off and the
//!   RGB-vs-gray gap.
//! * **Expression recognisability vs ROI size** — RAF-DB-like face patches
//!   whose class evidence (mouth curvature, eye aperture, brow angle)
//!   vanishes under downscaling, reproducing Table 3's accuracy column.
//! * **Temporal coherence** — [`VideoGenerator`] extends the still scenes
//!   with seeded constant-velocity ground-truth tracks (bounce or exit at
//!   the frame edges), the workload the temporal ROI-tracking pipeline
//!   (`hirise::temporal`) is evaluated on.
//! * **Stress scenarios** — [`ScenarioGenerator`] renders the table-driven
//!   scenario fleet ([`ScenarioSpec::fleet`]): occlusion/crossing,
//!   approach/recede scale change, illumination drift + flicker, keyed
//!   sensor defects, 20+-object crowds, and empty-scene departures — the
//!   matrix every tracked-pipeline change is benchmarked and gated on.
//!
//! # Example
//!
//! ```
//! use hirise_scene::{DatasetSpec, SceneGenerator};
//! use rand::SeedableRng;
//!
//! let spec = DatasetSpec::crowdhuman_like();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let scene = SceneGenerator::new(spec).generate(640, 480, &mut rng);
//! assert!(!scene.objects.is_empty());
//! ```

pub mod dataset;
pub mod domains;
pub mod object;
pub mod rafdb;
pub mod scenario;
pub mod scene;
pub mod stats;
pub mod video;

pub use dataset::DatasetSpec;
pub use object::ObjectClass;
pub use rafdb::{Expression, FacePatchGenerator};
pub use scenario::{
    Illumination, ScenarioGenerator, ScenarioSpec, SensorDefects, TrackBlueprint, TrackPath,
};
pub use scene::{Scene, SceneGenerator, SceneObject};
pub use stats::BoxStats;
pub use video::{VideoFrame, VideoGenerator, VideoObject, VideoSpec};
