//! The central keyed-RNG domain-tag registry for the seed-keyed stream
//! space.
//!
//! Every keyed sub-stream derived from a *scenario/fleet seed* — the
//! scenario generator's defect streams and the whole `hirise-fault`
//! schedule — packs its stream id as `(domain << 56) | site`. A domain
//! collision silently correlates two supposedly independent stream
//! families (the determinism contract still holds, but the *statistics*
//! are broken and nothing panics), so the tags live here, in one
//! module, and nowhere else:
//!
//! * `hirise-lint`'s `rng-domain-registry` rule statically rejects
//!   literal domain tags defined outside this file and duplicate values
//!   inside it.
//! * [`ALL`] enumerates the registry so tests can assert pairwise
//!   distinctness at runtime too.
//!
//! The sensor's *readout* noise domains (`hirise-sensor`'s private
//! `noise::domain`) are deliberately **not** here: they live in a
//! per-readout-op key space (`frame_key(noise_seed, op)`) that never
//! shares a key with the scenario seed, so their small tag values can
//! coexist with [`HOT`]/[`ROW`] without correlation. That module
//! carries an explicit lint waiver saying so.
//!
//! Tag values are load-bearing: they are pinned by the scenario golden
//! CSVs and the chaos/recovery baselines. Never renumber an existing
//! tag; append new ones.

/// Scenario defects: hot-pixel site stream (one sub-stream per defect
/// index).
pub const HOT: u64 = 0x01;
/// Scenario defects: row-noise stream (one sub-stream per
/// `(frame, row)` pair).
pub const ROW: u64 = 0x02;

/// Fault plan: persistently dead (all-zero) sensor rows.
pub const DEAD_ROW: u64 = 0x11;
/// Fault plan: persistently stuck (fixed-level) sensor rows.
pub const STUCK_ROW: u64 = 0x12;
/// Fault plan: whole-frame blanking (a dropped exposure reads as
/// black).
pub const BLANK: u64 = 0x13;
/// Fault plan: saturation bursts — a band of rows pinned at full scale
/// for a contiguous window of frames.
pub const SATURATE: u64 = 0x14;
/// Fault plan: NaN speckle — isolated pixels whose value is NaN, which
/// poisons downstream feature scores.
pub const NAN: u64 = 0x15;
/// Fault plan: injected panics inside the serve-side frame critical
/// section.
pub const PANIC: u64 = 0x16;
/// Fault plan: injected session stalls (simulated latency).
pub const STALL: u64 = 0x17;
/// Fault plan: injected process crashes (the whole engine dies at a
/// tick boundary and must warm-restart from snapshot + journal).
pub const CRASH: u64 = 0x18;

/// Every registered tag, by name — the runtime complement of the static
/// registry check (tests assert pairwise distinctness over this table).
pub const ALL: &[(&str, u64)] = &[
    ("HOT", HOT),
    ("ROW", ROW),
    ("DEAD_ROW", DEAD_ROW),
    ("STUCK_ROW", STUCK_ROW),
    ("BLANK", BLANK),
    ("SATURATE", SATURATE),
    ("NAN", NAN),
    ("PANIC", PANIC),
    ("STALL", STALL),
    ("CRASH", CRASH),
];

/// Bits available for the site index within a stream id. Typed `u32`
/// (a shift width), not `u64`: in this file, `const _: u64` literals
/// are domain tags by definition — the lint registry parser collects
/// exactly those.
pub const SITE_BITS: u32 = 56;

/// Packs a `(domain, site)` pair into one sub-stream id: the domain tag
/// in the top byte, the site index in the low [`SITE_BITS`] bits.
#[inline]
pub fn stream(domain: u64, site: u64) -> u64 {
    (domain << SITE_BITS) | (site & ((1u64 << SITE_BITS) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_tags_are_pairwise_distinct() {
        for (i, (na, va)) in ALL.iter().enumerate() {
            for (nb, vb) in &ALL[i + 1..] {
                assert_ne!(va, vb, "domain tags {na} and {nb} collide on {va:#x}");
            }
        }
    }

    #[test]
    fn tags_fit_in_the_top_byte() {
        for (name, v) in ALL {
            assert!(*v <= 0xFF, "domain tag {name} = {v:#x} does not fit in the top byte");
        }
    }

    #[test]
    fn stream_packs_domain_high_and_site_low() {
        assert_eq!(stream(DEAD_ROW, 0), 0x11 << 56);
        assert_eq!(stream(DEAD_ROW, 5), (0x11 << 56) | 5);
        assert_eq!(stream(HOT, 7) >> SITE_BITS, HOT);
        // Oversized sites mask instead of corrupting the domain byte.
        assert_eq!(stream(PANIC, u64::MAX) >> SITE_BITS, PANIC);
    }
}
