//! Scenario fleet: table-driven stress videos with ground truth.
//!
//! [`VideoGenerator`](crate::VideoGenerator) samples its tracks from a
//! spec's distributions, which is the right shape for *statistical*
//! workloads but cannot pose the situations a tracking policy actually
//! fails on. The scenario fleet fills that gap: each [`ScenarioSpec`]
//! preset lays out a hand-constructed situation —
//!
//! * **crossing** — tracks converging on the canvas centre, so their
//!   boxes overlap (occlusion) mid-sequence and separate again;
//! * **scale** — one approaching track that grows a few percent per
//!   frame and one receding track that shrinks, defeating any tracker
//!   that assumes constant object size;
//! * **illumination** — a global brightness drift plus sinusoidal
//!   flicker ([`Illumination`]), perturbing the mean-intensity drift
//!   trigger without moving a single ground-truth box;
//! * **defects** — fixed hot pixels and per-frame row noise
//!   ([`SensorDefects`]) drawn from the keyed counter RNG with the same
//!   domain-separation idiom as the sensor's noise streams, so the
//!   defect pattern is a pure function of `(seed, site)`;
//! * **crowded** — an exact 24-object crowd of small bouncing targets,
//!   far beyond the ROI budget of the reference configuration;
//! * **departure** — every track exits early, leaving a long empty
//!   tail (the case that used to NaN empty-clip accuracy ratios);
//! * **clean** — the unperturbed layout the VGA→4K resolution sweep
//!   runs on.
//!
//! Every preset is resolution-independent (track blueprints live in
//! canvas fractions) so the same scenario renders at 160×120 for golden
//! tests and at 3840×2160 for the sweep, and every frame is — exactly
//! as for `VideoGenerator` — a pure function of `(spec, seed, frame
//! index)`: no accumulated state, bit-identical regeneration.
//!
//! # Example
//!
//! ```
//! use hirise_scene::{ScenarioGenerator, ScenarioSpec};
//!
//! let scenario = ScenarioGenerator::new(ScenarioSpec::crossing(), 320, 240, 7);
//! let frame = scenario.frame(5);
//! assert_eq!(frame.image.dimensions(), (320, 240));
//! // Pure function of the index: regeneration is bit-identical.
//! assert_eq!(scenario.frame(5).image, frame.image);
//! ```

use hirise_imaging::{Rect, RgbImage};
use rand::rngs::{KeyedRng, StdRng};
use rand::{Rng, RngCore, SeedableRng};

use crate::object::{self, ObjectClass};
use crate::video::{paint_background, reflect, VideoFrame, VideoObject};

// The defect-stream domain tags ([`crate::domains::HOT`] /
// [`crate::domains::ROW`]) come from the central seed-keyed registry so
// they can never collide with the fault plan's tags (or anything else
// derived from the same seed); `hirise-lint` enforces that statically.
use crate::domains as domain;

/// Global per-frame brightness model: linear drift plus sinusoidal
/// flicker, both multiplicative on the rendered irradiance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Illumination {
    /// Linear brightness drift per frame (e.g. `-0.005` dims the scene
    /// by 0.5 % of nominal per frame).
    pub drift_per_frame: f64,
    /// Sinusoidal flicker amplitude as a fraction of the drifted level.
    pub flicker_amplitude: f64,
    /// Flicker period in frames (> 0).
    pub flicker_period: f64,
}

impl Illumination {
    /// No drift, no flicker: `factor` is identically 1.
    pub fn none() -> Self {
        Self { drift_per_frame: 0.0, flicker_amplitude: 0.0, flicker_period: 1.0 }
    }

    /// The brightness factor applied to frame `frame`:
    /// `(1 + drift·t) · (1 + amplitude·sin(2πt / period))`, floored at 0
    /// (a long dimming drift saturates at black rather than inverting).
    pub fn factor(&self, frame: u32) -> f64 {
        let t = frame as f64;
        let drift = (1.0 + self.drift_per_frame * t).max(0.0);
        let flicker =
            1.0 + self.flicker_amplitude * (std::f64::consts::TAU * t / self.flicker_period).sin();
        (drift * flicker).max(0.0)
    }

    /// Inclusive bounds of [`Illumination::factor`] over frames
    /// `0..=last`: the drift envelope times the flicker envelope. Every
    /// per-frame factor is provably inside (the property suite holds
    /// this over the fleet's presets).
    pub fn factor_bounds(&self, last: u32) -> (f64, f64) {
        let end = (1.0 + self.drift_per_frame * last as f64).max(0.0);
        let (drift_lo, drift_hi) = (end.min(1.0), end.max(1.0));
        let amp = self.flicker_amplitude.abs();
        ((drift_lo * (1.0 - amp)).max(0.0), drift_hi * (1.0 + amp))
    }
}

/// Static sensor-defect model injected into every rendered frame.
///
/// Both defect families draw from [`KeyedRng`] sub-streams of the
/// scenario seed (see [`module docs`](self)): hot-pixel sites are fixed
/// for the whole sequence (stuck-bright photosites), row offsets are a
/// pure function of `(frame, row)` — so frames remain pure functions of
/// their index even with defects on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorDefects {
    /// Hot (stuck-bright) pixels per megapixel of canvas.
    pub hot_pixels_per_mpx: f64,
    /// The level a hot pixel is stuck at, all channels.
    pub hot_level: f32,
    /// Row-noise amplitude: each row of each frame gets one uniform
    /// offset in `[-amplitude, amplitude]` added to all channels.
    pub row_noise: f32,
}

impl SensorDefects {
    /// A defect-free sensor.
    pub fn none() -> Self {
        Self { hot_pixels_per_mpx: 0.0, hot_level: 0.98, row_noise: 0.0 }
    }
}

/// How one scenario track's position evolves over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackPath {
    /// Specular reflection at the canvas edges; never leaves the frame.
    Bounce,
    /// Straight constant-velocity line; once fully outside, gone for
    /// good.
    Exit,
    /// Straight line with the box *centre* clamped to the canvas — the
    /// motion mode of growing/shrinking tracks, whose bounce bounds
    /// would otherwise vary with the time-dependent size.
    Hold,
}

/// One hand-laid-out track in resolution-independent units: positions
/// and horizontal velocity are fractions of the canvas width, vertical
/// ones of the height, per frame — so a preset crosses the canvas at
/// the same *frame* regardless of the rendered resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackBlueprint {
    /// Object class (fixes the box aspect ratio).
    pub class: ObjectClass,
    /// Box-centre position at frame 0, canvas fractions.
    pub cx: f64,
    /// See [`TrackBlueprint::cx`].
    pub cy: f64,
    /// Velocity, canvas fractions per frame.
    pub vx: f64,
    /// See [`TrackBlueprint::vx`].
    pub vy: f64,
    /// Box height at frame 0 as a fraction of the canvas height.
    pub height: f64,
    /// Multiplicative per-frame size change (1.0 = constant size;
    /// growing/shrinking tracks must use [`TrackPath::Hold`]).
    pub growth: f64,
    /// Position evolution mode.
    pub path: TrackPath,
}

impl TrackBlueprint {
    /// A constant-size bouncing track — the common case.
    fn bouncing(class: ObjectClass, cx: f64, cy: f64, vx: f64, vy: f64, height: f64) -> Self {
        Self { class, cx, cy, vx, vy, height, growth: 1.0, path: TrackPath::Bounce }
    }
}

/// One table entry of the scenario fleet: explicit track blueprints plus
/// an optional sampled crowd, under a brightness and defect model.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Stable scenario name (keys golden CSVs and committed bench JSON).
    pub name: &'static str,
    /// Hand-laid-out tracks.
    pub tracks: Vec<TrackBlueprint>,
    /// Additional seed-sampled bouncing tracks on top of
    /// [`ScenarioSpec::tracks`] (the crowd preset); the total track
    /// count is exactly `tracks.len() + crowd`.
    pub crowd: usize,
    /// Crowd box-height range, canvas-height fractions.
    pub crowd_scale: (f64, f64),
    /// Crowd speed-magnitude range, canvas fractions per frame.
    pub crowd_speed: (f64, f64),
    /// Global brightness model.
    pub illumination: Illumination,
    /// Injected sensor defects.
    pub defects: SensorDefects,
    /// Static low-saturation distractor rectangles in the background.
    pub clutter_rects: usize,
}

impl ScenarioSpec {
    /// Base spec shared by the presets: no crowd, no perturbations.
    fn base(name: &'static str, tracks: Vec<TrackBlueprint>) -> Self {
        Self {
            name,
            tracks,
            crowd: 0,
            crowd_scale: (0.08, 0.16),
            crowd_speed: (0.004, 0.012),
            illumination: Illumination::none(),
            defects: SensorDefects::none(),
            clutter_rects: 6,
        }
    }

    /// Occlusion: two pedestrians converging horizontally (their boxes
    /// overlap around frame 17 and separate again) plus a cyclist
    /// crossing the same region vertically.
    pub fn crossing() -> Self {
        Self::base(
            "crossing",
            vec![
                TrackBlueprint {
                    class: ObjectClass::Person,
                    cx: 0.15,
                    cy: 0.48,
                    vx: 0.02,
                    vy: 0.0,
                    height: 0.26,
                    growth: 1.0,
                    path: TrackPath::Exit,
                },
                TrackBlueprint {
                    class: ObjectClass::Person,
                    cx: 0.85,
                    cy: 0.52,
                    vx: -0.02,
                    vy: 0.0,
                    height: 0.28,
                    growth: 1.0,
                    path: TrackPath::Exit,
                },
                TrackBlueprint::bouncing(ObjectClass::Cyclist, 0.5, 0.15, 0.0, 0.015, 0.24),
            ],
        )
    }

    /// Scale change: an approaching pedestrian growing ~3.5 %/frame and
    /// a receding cyclist shrinking ~3 %/frame, both centre-held.
    pub fn scale() -> Self {
        Self::base(
            "scale",
            vec![
                TrackBlueprint {
                    class: ObjectClass::Person,
                    cx: 0.3,
                    cy: 0.5,
                    vx: 0.002,
                    vy: 0.0,
                    height: 0.16,
                    growth: 1.035,
                    path: TrackPath::Hold,
                },
                TrackBlueprint {
                    class: ObjectClass::Cyclist,
                    cx: 0.72,
                    cy: 0.5,
                    vx: -0.002,
                    vy: 0.0,
                    height: 0.34,
                    growth: 0.97,
                    path: TrackPath::Hold,
                },
            ],
        )
    }

    /// Illumination stress: the clean layout under a −0.6 %/frame
    /// brightness drift with ±8 % flicker every 6 frames. Ground truth
    /// is identical to `clean` — only the pixels change.
    pub fn illumination() -> Self {
        Self {
            name: "illumination",
            illumination: Illumination {
                drift_per_frame: -0.006,
                flicker_amplitude: 0.08,
                flicker_period: 6.0,
            },
            ..Self::clean()
        }
    }

    /// Sensor defects: the clean layout plus 120 hot pixels per
    /// megapixel and ±3 % row noise from the keyed defect streams.
    pub fn defects() -> Self {
        Self {
            name: "defects",
            defects: SensorDefects { hot_pixels_per_mpx: 120.0, hot_level: 0.98, row_noise: 0.03 },
            ..Self::clean()
        }
    }

    /// Crowding: exactly 24 small sampled targets bouncing through the
    /// canvas — triple the reference configuration's ROI budget.
    pub fn crowded() -> Self {
        Self { name: "crowded", crowd: 24, ..Self::base("crowded", Vec::new()) }
    }

    /// Departure: every track exits within the first third of a
    /// 32-frame clip, so most frames are object-free — the empty-clip
    /// edge case the accuracy ratios must not NaN on.
    pub fn departure() -> Self {
        Self::base(
            "departure",
            vec![
                TrackBlueprint {
                    class: ObjectClass::Person,
                    cx: 0.12,
                    cy: 0.4,
                    vx: -0.03,
                    vy: 0.0,
                    height: 0.26,
                    growth: 1.0,
                    path: TrackPath::Exit,
                },
                TrackBlueprint {
                    class: ObjectClass::Cyclist,
                    cx: 0.88,
                    cy: 0.6,
                    vx: 0.035,
                    vy: 0.0,
                    height: 0.28,
                    growth: 1.0,
                    path: TrackPath::Exit,
                },
                TrackBlueprint {
                    class: ObjectClass::Person,
                    cx: 0.5,
                    cy: 0.12,
                    vx: 0.0,
                    vy: -0.03,
                    height: 0.24,
                    growth: 1.0,
                    path: TrackPath::Exit,
                },
            ],
        )
    }

    /// The unperturbed three-track layout: two bouncing pedestrians and
    /// a bouncing cyclist. Payload of the VGA→4K resolution sweep and
    /// base layout of the illumination/defect presets.
    pub fn clean() -> Self {
        Self::base(
            "clean",
            vec![
                TrackBlueprint::bouncing(ObjectClass::Person, 0.2, 0.35, 0.008, 0.004, 0.27),
                TrackBlueprint::bouncing(ObjectClass::Person, 0.6, 0.62, -0.006, 0.006, 0.24),
                TrackBlueprint::bouncing(ObjectClass::Cyclist, 0.82, 0.3, -0.009, -0.003, 0.3),
            ],
        )
    }

    /// The whole fleet, in table order.
    pub fn fleet() -> Vec<ScenarioSpec> {
        vec![
            Self::crossing(),
            Self::scale(),
            Self::illumination(),
            Self::defects(),
            Self::crowded(),
            Self::departure(),
            Self::clean(),
        ]
    }

    /// Looks a preset up by its [`ScenarioSpec::name`].
    pub fn by_name(name: &str) -> Option<ScenarioSpec> {
        Self::fleet().into_iter().find(|s| s.name == name)
    }
}

/// One resolved track in pixel units (fixed for the sequence).
#[derive(Debug, Clone, Copy)]
struct ScenarioTrack {
    class: ObjectClass,
    /// Box centre at frame 0, pixels.
    cx0: f64,
    cy0: f64,
    /// Velocity, pixels per frame.
    vx: f64,
    vy: f64,
    /// Box height at frame 0, pixels.
    h0: f64,
    /// Width/height ratio (fixed per track).
    aspect: f64,
    /// Multiplicative per-frame size change.
    growth: f64,
    path: TrackPath,
    /// Seed of the per-frame appearance RNG (stable across frames).
    appearance: u64,
}

/// Deterministic scenario-sequence generator; see the module docs.
#[derive(Debug, Clone)]
pub struct ScenarioGenerator {
    spec: ScenarioSpec,
    width: u32,
    height: u32,
    background: RgbImage,
    tracks: Vec<ScenarioTrack>,
    /// Fixed hot-pixel sites (empty without defects).
    hot_pixels: Vec<(u32, u32)>,
    /// Key of the per-`(frame, row)` row-noise stream.
    row_key: u64,
}

impl ScenarioGenerator {
    /// Resolves `spec` onto a `width × height` canvas under `seed`: the
    /// static background, the explicit blueprints scaled to pixels, the
    /// sampled crowd, and the keyed defect sites.
    ///
    /// # Panics
    ///
    /// Panics when the canvas is too small to hold the spec's smallest
    /// object (< ~16 px for person-scale presets).
    pub fn new(spec: ScenarioSpec, width: u32, height: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let background = paint_background(spec.clutter_rects, width, height, &mut rng);
        let (w, h) = (width as f64, height as f64);
        let mut tracks: Vec<ScenarioTrack> = Vec::with_capacity(spec.tracks.len() + spec.crowd);
        for bp in &spec.tracks {
            tracks.push(ScenarioTrack {
                class: bp.class,
                cx0: bp.cx * w,
                cy0: bp.cy * h,
                vx: bp.vx * w,
                vy: bp.vy * h,
                h0: bp.height * h,
                aspect: bp.class.aspect() as f64,
                growth: bp.growth,
                path: bp.path,
                appearance: 0, // filled below, by final track id
            });
        }
        for _ in 0..spec.crowd {
            let class = if rng.gen_range(0.0..1.0) < 0.7 {
                ObjectClass::Person
            } else {
                ObjectClass::Cyclist
            };
            let scale = rng.gen_range(spec.crowd_scale.0..spec.crowd_scale.1);
            let speed = rng.gen_range(spec.crowd_speed.0..spec.crowd_speed.1);
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            tracks.push(ScenarioTrack {
                class,
                cx0: rng.gen_range(0.0..1.0) * w,
                cy0: rng.gen_range(0.0..1.0) * h,
                vx: speed * angle.cos() * w,
                vy: speed * angle.sin() * h,
                h0: scale * h,
                aspect: class.aspect() as f64,
                growth: 1.0,
                path: TrackPath::Bounce,
                appearance: 0,
            });
        }
        for (id, t) in tracks.iter_mut().enumerate() {
            t.appearance = seed ^ (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }

        let hot_key = KeyedRng::derive_key(seed, domain::stream(domain::HOT, 0));
        let hot_count = (spec.defects.hot_pixels_per_mpx * w * h / 1e6).round() as u64;
        let hot_pixels = (0..hot_count)
            .map(|i| {
                let mut r = KeyedRng::for_stream(hot_key, i);
                (r.gen_range(0..width), r.gen_range(0..height))
            })
            .collect();
        let row_key = KeyedRng::derive_key(seed, domain::stream(domain::ROW, 0));
        Self { spec, width, height, background, tracks, hot_pixels, row_key }
    }

    /// The wrapped spec.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The scenario's stable name.
    pub fn name(&self) -> &'static str {
        self.spec.name
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of ground-truth tracks (explicit + crowd; exited tracks
    /// still count, they are simply absent from later frames).
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }

    /// The fixed hot-pixel sites (empty without defects).
    pub fn hot_pixel_sites(&self) -> &[(u32, u32)] {
        &self.hot_pixels
    }

    /// Box size of track `t` at `frame`, pixels (clamped to the canvas
    /// and to the minimum renderable size).
    fn size(&self, t: &ScenarioTrack, frame: u32) -> (f64, f64) {
        let h = (t.h0 * t.growth.powi(frame as i32)).clamp(4.0, self.height as f64);
        let w = (h * t.aspect).clamp(3.0, self.width as f64);
        (w, h)
    }

    /// The analytic box centre of track `t` at `frame`, pixels.
    fn center(&self, t: &ScenarioTrack, frame: u32) -> (f64, f64) {
        let dt = frame as f64;
        let (w, h) = self.size(t, frame);
        let (cx, cy) = (t.cx0 + t.vx * dt, t.cy0 + t.vy * dt);
        match t.path {
            TrackPath::Bounce => (
                reflect(cx - w / 2.0, (self.width as f64 - w).max(0.0)) + w / 2.0,
                reflect(cy - h / 2.0, (self.height as f64 - h).max(0.0)) + h / 2.0,
            ),
            TrackPath::Exit => (cx, cy),
            TrackPath::Hold => {
                (cx.clamp(0.0, self.width as f64), cy.clamp(0.0, self.height as f64))
            }
        }
    }

    /// The visible (canvas-clipped) box of track `t` at `frame`, or
    /// `None` once the object is fully outside.
    fn visible_box(&self, t: &ScenarioTrack, frame: u32) -> Option<Rect> {
        let (w, h) = self.size(t, frame);
        let (cx, cy) = self.center(t, frame);
        let (x0, y0) = ((cx - w / 2.0).round() as i64, (cy - h / 2.0).round() as i64);
        let (x1, y1) = (x0 + w.round() as i64, y0 + h.round() as i64);
        let cx0 = x0.max(0);
        let cy0 = y0.max(0);
        let cx1 = x1.min(self.width as i64);
        let cy1 = y1.min(self.height as i64);
        if cx0 < cx1 && cy0 < cy1 {
            Some(Rect::new(cx0 as u32, cy0 as u32, (cx1 - cx0) as u32, (cy1 - cy0) as u32))
        } else {
            None
        }
    }

    /// Ground-truth boxes of `frame`, in track-id order, without
    /// rendering.
    pub fn ground_truth(&self, frame: u32) -> Vec<VideoObject> {
        self.tracks
            .iter()
            .enumerate()
            .filter_map(|(id, t)| {
                self.visible_box(t, frame).map(|bbox| VideoObject {
                    track: id as u32,
                    class: t.class,
                    bbox,
                })
            })
            .collect()
    }

    /// The row-noise offset of `(frame, row)` (0 without defects): one
    /// keyed uniform draw in `[-amplitude, amplitude]`.
    fn row_offset(&self, frame: u32, row: u32) -> f32 {
        let amp = self.spec.defects.row_noise;
        if amp == 0.0 {
            return 0.0;
        }
        let site = (u64::from(frame) << 32) | u64::from(row);
        let bits = KeyedRng::for_stream(self.row_key, site).next_u64() >> 40;
        amp * (2.0 * (bits as f32 / (1u64 << 24) as f32) - 1.0)
    }

    /// Renders frame `frame`: the shared background, every visible
    /// object at its analytic position and size, then — in sensor
    /// order — the illumination factor, the row noise, and the
    /// stuck-bright hot pixels. Pure function of the index.
    pub fn frame(&self, frame: u32) -> VideoFrame {
        let mut image = self.background.clone();
        let objects = self.ground_truth(frame);
        // Render back-to-front (top of frame first) so nearer objects
        // overdraw farther ones; on crossing scenarios this is what
        // produces the actual pixel-level occlusion.
        let mut order: Vec<usize> = (0..objects.len()).collect();
        order.sort_by_key(|&i| (objects[i].bbox.y, objects[i].track));
        for &i in &order {
            let obj = &objects[i];
            // The appearance RNG restarts from the same seed every frame,
            // so the object's colours and texture do not flicker.
            let mut rng = StdRng::seed_from_u64(self.tracks[obj.track as usize].appearance);
            object::render_object(&mut image, obj.class, obj.bbox, &mut rng);
        }
        let factor = self.spec.illumination.factor(frame) as f32;
        if factor != 1.0 {
            for plane in image.planes_mut() {
                for v in plane.as_mut_slice() {
                    *v = (*v * factor).clamp(0.0, 1.0);
                }
            }
        }
        if self.spec.defects.row_noise != 0.0 {
            for y in 0..self.height {
                let offset = self.row_offset(frame, y);
                for plane in image.planes_mut() {
                    let row = plane.row_mut(y);
                    for v in row {
                        *v = (*v + offset).clamp(0.0, 1.0);
                    }
                }
            }
        }
        for &(x, y) in &self.hot_pixels {
            for plane in image.planes_mut() {
                plane.set(x, y, self.spec.defects.hot_level);
            }
        }
        VideoFrame { index: frame, image, objects }
    }

    /// Renders frames `0..count`.
    pub fn frames(&self, count: u32) -> Vec<VideoFrame> {
        (0..count).map(|i| self.frame(i)).collect()
    }

    /// Renders frames `0..count`, keeping only the images.
    pub fn images(&self, count: u32) -> Vec<RgbImage> {
        (0..count).map(|i| self.frame(i).image).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(spec: ScenarioSpec, seed: u64) -> ScenarioGenerator {
        ScenarioGenerator::new(spec, 160, 120, seed)
    }

    #[test]
    fn fleet_names_are_unique_and_resolvable() {
        let fleet = ScenarioSpec::fleet();
        assert!(fleet.len() >= 6, "the fleet shrank to {}", fleet.len());
        let mut names: Vec<&str> = fleet.iter().map(|s| s.name).collect();
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len, "duplicate scenario names");
        for spec in &fleet {
            assert_eq!(ScenarioSpec::by_name(spec.name).as_ref(), Some(spec));
        }
        assert!(ScenarioSpec::by_name("no-such-scenario").is_none());
    }

    #[test]
    fn frames_are_pure_functions_of_the_index() {
        for spec in ScenarioSpec::fleet() {
            let name = spec.name;
            let a = generator(spec.clone(), 11);
            let b = generator(spec, 11);
            let (fa, fb) = (a.frame(7), b.frame(7));
            assert_eq!(fa.image, fb.image, "{name}: frame 7 not reproducible");
            assert_eq!(fa.objects, fb.objects, "{name}: ground truth not reproducible");
            // Batch API agrees without generating 0..7 first.
            assert_eq!(a.frames(8)[7].image, fa.image, "{name}");
        }
    }

    #[test]
    fn crossing_tracks_actually_occlude() {
        let g = generator(ScenarioSpec::crossing(), 5);
        let max_overlap = (0..32)
            .map(|t| {
                let gt = g.ground_truth(t);
                let mut best = 0.0f64;
                for i in 0..gt.len() {
                    for j in i + 1..gt.len() {
                        best = best.max(gt[i].bbox.iou(&gt[j].bbox));
                    }
                }
                best
            })
            .fold(0.0, f64::max);
        assert!(max_overlap > 0.3, "crossing tracks never occlude (max IoU {max_overlap:.3})");
        // And they start separated.
        let gt0 = g.ground_truth(0);
        for i in 0..gt0.len() {
            for j in i + 1..gt0.len() {
                assert!(gt0[i].bbox.iou(&gt0[j].bbox) < 0.1, "tracks spawn overlapped");
            }
        }
    }

    #[test]
    fn scale_tracks_grow_and_shrink() {
        let g = generator(ScenarioSpec::scale(), 5);
        let at = |frame: u32, track: u32| {
            g.ground_truth(frame)
                .into_iter()
                .find(|o| o.track == track)
                .map(|o| o.bbox.h)
                .expect("track visible")
        };
        assert!(at(24, 0) > at(0, 0) * 2, "approaching track did not grow");
        assert!(at(24, 1) * 2 < at(0, 1), "receding track did not shrink");
    }

    #[test]
    fn illumination_changes_pixels_but_not_ground_truth() {
        let lit = generator(ScenarioSpec::illumination(), 9);
        let clean = generator(ScenarioSpec::clean(), 9);
        for t in [0u32, 5, 11] {
            assert_eq!(lit.ground_truth(t), clean.ground_truth(t), "frame {t}");
        }
        // Frame 0 has factor 1 (no drift yet, sin(0)=0) — identical to
        // clean; later frames must differ.
        assert_eq!(lit.frame(0).image, clean.frame(0).image);
        assert_ne!(lit.frame(5).image, clean.frame(5).image);
        // Dimming drift: later frames are darker on average.
        let mean = |img: &RgbImage| {
            let planes = img.planes();
            planes.iter().map(|p| p.mean() as f64).sum::<f64>() / 3.0
        };
        assert!(mean(&lit.frame(30).image) < mean(&lit.frame(0).image) * 0.95);
    }

    #[test]
    fn defects_pin_hot_pixels_across_frames() {
        let g = generator(ScenarioSpec::defects(), 13);
        let sites = g.hot_pixel_sites().to_vec();
        assert!(!sites.is_empty(), "120/Mpx on 160x120 should give ≥ 2 hot pixels");
        let level = g.spec().defects.hot_level;
        for t in [0u32, 3, 9] {
            let frame = g.frame(t);
            for &(x, y) in &sites {
                for plane in frame.image.planes() {
                    assert_eq!(
                        plane.get(x, y),
                        level,
                        "hot pixel ({x},{y}) not stuck at frame {t}"
                    );
                }
            }
        }
        // Row noise varies per frame: two frames differ even where no
        // object moved through (compare full images; objects move too).
        assert_ne!(g.frame(1).image, g.frame(2).image);
    }

    #[test]
    fn crowded_spawns_exactly_the_requested_count() {
        let spec = ScenarioSpec::crowded();
        let expected = spec.tracks.len() + spec.crowd;
        assert!(expected >= 20, "crowd preset must have 20+ objects");
        let g = ScenarioGenerator::new(spec, 320, 240, 17);
        assert_eq!(g.track_count(), expected);
        // All bouncing: every track visible in every frame.
        for t in [0u32, 9, 40] {
            assert_eq!(g.ground_truth(t).len(), expected, "a crowd track vanished at frame {t}");
        }
    }

    #[test]
    fn departure_empties_the_scene_for_good() {
        let g = generator(ScenarioSpec::departure(), 3);
        assert!(!g.ground_truth(0).is_empty());
        let gone_at = (0..64).find(|&t| g.ground_truth(t).is_empty());
        let gone_at = gone_at.expect("departure tracks never left");
        assert!(gone_at <= 16, "departure too slow (empty only at frame {gone_at})");
        for t in [gone_at + 1, gone_at + 10, gone_at + 100] {
            assert!(g.ground_truth(t).is_empty(), "an exited object returned at frame {t}");
        }
    }

    #[test]
    fn boxes_stay_inside_the_canvas_across_the_fleet() {
        for spec in ScenarioSpec::fleet() {
            let name = spec.name;
            let g = generator(spec, 9);
            for t in 0..40 {
                for obj in g.ground_truth(t) {
                    assert!(
                        obj.bbox.fits_within(160, 120),
                        "{name} frame {t}: {} escapes the canvas",
                        obj.bbox
                    );
                    assert!(!obj.bbox.is_degenerate(), "{name} frame {t}: degenerate box");
                }
            }
        }
    }

    #[test]
    fn illumination_factor_stays_within_bounds() {
        let ill =
            Illumination { drift_per_frame: -0.006, flicker_amplitude: 0.08, flicker_period: 6.0 };
        let (lo, hi) = ill.factor_bounds(48);
        for t in 0..=48 {
            let f = ill.factor(t);
            assert!((lo..=hi).contains(&f), "factor({t}) = {f} outside [{lo}, {hi}]");
        }
        assert_eq!(Illumination::none().factor(123), 1.0);
    }

    #[test]
    fn rendered_pixels_stay_normalised_under_perturbations() {
        for spec in [ScenarioSpec::illumination(), ScenarioSpec::defects()] {
            let name = spec.name;
            let g = generator(spec, 7);
            for t in [0u32, 4, 20] {
                for plane in g.frame(t).image.planes() {
                    for &v in plane.as_slice() {
                        assert!(
                            (0.0..=1.0).contains(&v),
                            "{name} frame {t}: pixel {v} out of range"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn seeds_differ_defects_reproduce() {
        let a = generator(ScenarioSpec::defects(), 3);
        let b = generator(ScenarioSpec::defects(), 3);
        let c = generator(ScenarioSpec::defects(), 4);
        assert_eq!(a.frame(2).image, b.frame(2).image);
        assert_eq!(a.hot_pixel_sites(), b.hot_pixel_sites());
        assert_ne!(a.frame(2).image, c.frame(2).image);
    }
}
