//! Box statistics over generated scenes.
//!
//! The transfer/energy experiments (Fig. 7, Fig. 8, Table 3) consume
//! *statistics* of the ground-truth ROIs rather than the pixels themselves:
//! per-image box count, the sum of box areas (each box shipped separately)
//! and the area of their union (each pixel converted once). This module
//! measures those statistics over freshly generated scenes.

use hirise_imaging::rect::{sum_area, union_area};
use rand::Rng;

use crate::object::ObjectClass;
use crate::scene::{Scene, SceneGenerator};

/// Aggregated box statistics over a sample of scenes.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxStats {
    /// Number of scenes measured.
    pub scenes: usize,
    /// Median boxes per image.
    pub median_count: usize,
    /// Median of (sum of box areas) / (image area).
    pub median_sum_area_frac: f64,
    /// Median of (union of box areas) / (image area).
    pub median_union_area_frac: f64,
    /// Median box width, pixels.
    pub median_box_w: u32,
    /// Median box height, pixels.
    pub median_box_h: u32,
}

fn median_u64(values: &mut [u64]) -> u64 {
    values.sort_unstable();
    if values.is_empty() {
        0
    } else {
        values[values.len() / 2]
    }
}

fn median_f64(values: &mut [f64]) -> f64 {
    // `total_cmp` keeps the sort total if a measurement ever goes NaN
    // (the old `partial_cmp().expect()` panicked mid-sort instead).
    values.sort_by(|a, b| a.total_cmp(b));
    if values.is_empty() {
        0.0
    } else {
        values[values.len() / 2]
    }
}

impl BoxStats {
    /// Measures statistics over already-generated scenes, optionally
    /// filtered to one class (`None` = all classes).
    pub fn measure(scenes: &[Scene], class: Option<ObjectClass>) -> BoxStats {
        let mut counts = Vec::with_capacity(scenes.len());
        let mut sums = Vec::with_capacity(scenes.len());
        let mut unions = Vec::with_capacity(scenes.len());
        let mut widths = Vec::new();
        let mut heights = Vec::new();
        for s in scenes {
            let boxes = match class {
                Some(c) => s.boxes_of(c),
                None => s.all_boxes(),
            };
            let image_area = (s.image.width() as u64 * s.image.height() as u64) as f64;
            counts.push(boxes.len() as u64);
            sums.push(sum_area(&boxes) as f64 / image_area);
            unions.push(union_area(&boxes) as f64 / image_area);
            for b in &boxes {
                widths.push(b.w as u64);
                heights.push(b.h as u64);
            }
        }
        BoxStats {
            scenes: scenes.len(),
            median_count: median_u64(&mut counts) as usize,
            median_sum_area_frac: median_f64(&mut sums),
            median_union_area_frac: median_f64(&mut unions),
            median_box_w: median_u64(&mut widths) as u32,
            median_box_h: median_u64(&mut heights) as u32,
        }
    }

    /// Generates `n` scenes of `width × height` and measures them.
    pub fn sample<R: Rng + ?Sized>(
        generator: &SceneGenerator,
        width: u32,
        height: u32,
        n: usize,
        class: Option<ObjectClass>,
        rng: &mut R,
    ) -> BoxStats {
        let scenes: Vec<Scene> = (0..n).map(|_| generator.generate(width, height, rng)).collect();
        Self::measure(&scenes, class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn median_survives_nan_measurements() {
        // `total_cmp` sorts NaN (positive) past every real value, so a
        // poisoned measurement shifts the median instead of panicking
        // mid-sort (the old `partial_cmp().expect()` behaviour).
        let mut values = [1.0, f64::NAN, 2.0];
        assert_eq!(median_f64(&mut values), 2.0);
        let mut clean = [3.0, 1.0, 2.0];
        assert_eq!(median_f64(&mut clean), 2.0);
    }

    #[test]
    fn crowdhuman_stats_match_paper_calibration() {
        let gen = SceneGenerator::new(DatasetSpec::crowdhuman_like());
        let mut rng = StdRng::seed_from_u64(1234);
        let stats = BoxStats::sample(&gen, 512, 384, 24, Some(ObjectClass::Person), &mut rng);
        // Paper back-solved targets: Σ≈27%, union≈9.2%, j≈16.
        assert!(
            (stats.median_count as i64 - 16).abs() <= 3,
            "person count median {}",
            stats.median_count
        );
        assert!(
            (stats.median_sum_area_frac - 0.27).abs() < 0.08,
            "sum area frac {}",
            stats.median_sum_area_frac
        );
        assert!(
            (stats.median_union_area_frac - 0.092).abs() < 0.05,
            "union area frac {}",
            stats.median_union_area_frac
        );
        // Crowds overlap: the sum must exceed the union substantially.
        assert!(stats.median_sum_area_frac > 1.8 * stats.median_union_area_frac);
    }

    #[test]
    fn head_boxes_match_table3_roi_fraction() {
        let gen = SceneGenerator::new(DatasetSpec::crowdhuman_like());
        let mut rng = StdRng::seed_from_u64(42);
        let stats = BoxStats::sample(&gen, 640, 480, 16, Some(ObjectClass::Head), &mut rng);
        // Table 3: the median head ROI is ~4.4% of array width (112/2560).
        let frac = stats.median_box_w as f64 / 640.0;
        assert!((frac - 0.044).abs() < 0.02, "head width fraction {frac}");
    }

    #[test]
    fn visdrone_has_smallest_boxes_and_lowest_coverage() {
        let mut rng = StdRng::seed_from_u64(7);
        let ch = BoxStats::sample(
            &SceneGenerator::new(DatasetSpec::crowdhuman_like()),
            512,
            384,
            8,
            Some(ObjectClass::Person),
            &mut rng,
        );
        let vd = BoxStats::sample(
            &SceneGenerator::new(DatasetSpec::visdrone_like()),
            512,
            384,
            8,
            None,
            &mut rng,
        );
        assert!(vd.median_box_h < ch.median_box_h / 2);
        assert!(vd.median_sum_area_frac < ch.median_sum_area_frac / 2.0);
    }

    #[test]
    fn empty_input_is_all_zero() {
        let stats = BoxStats::measure(&[], None);
        assert_eq!(stats.scenes, 0);
        assert_eq!(stats.median_count, 0);
        assert_eq!(stats.median_sum_area_frac, 0.0);
    }
}
