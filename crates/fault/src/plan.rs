//! The seeded fault plan: every fault a pure function of
//! `(seed, domain, site, frame)`.
//!
//! A [`FaultPlan`] is the chaos suite's single source of truth. Like
//! the sensor's keyed noise and the scenario generators, it is built on
//! the counter-based [`KeyedRng`] block function, so a fault decision
//! is randomly accessible — no draw depends on how many draws anyone
//! else made. Two consequences the whole layer leans on:
//!
//! * **Reproducibility**: a seed is a complete description of the fault
//!   schedule. A failing chaos run can be replayed exactly from its
//!   seed, on any machine, at any worker count.
//! * **Order-independence**: workers consult the plan concurrently in
//!   arbitrary interleavings and still see identical schedules — the
//!   determinism contract extends through the fault layer.
//!
//! Domains separate fault families (a dead-row decision never shares a
//! stream with a panic decision); sites separate injection points (a
//! sensor row, a serve session); the counter separates frames or rows
//! within a site.

use rand::rngs::KeyedRng;

/// Sub-stream domain tags: one domain per fault family, so no two
/// families ever correlate. The values live in the central seed-keyed
/// registry ([`hirise_scene::domains`]) alongside the scenario
/// generator's defect streams — one namespace, statically checked for
/// collisions by `hirise-lint` — and are re-exported here so fault code
/// keeps its `domain::*` spelling.
pub mod domain {
    pub use hirise_scene::domains::{
        stream, BLANK, CRASH, DEAD_ROW, NAN, PANIC, SATURATE, STALL, STUCK_ROW,
    };
}

/// Sensor-side fault rates. All rates are probabilities in `[0, 1]`;
/// zero (the default) disables the family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorFaults {
    /// Per-row probability of being dead (all zero) for the whole run.
    pub dead_row_rate: f64,
    /// Per-row probability of being stuck at [`SensorFaults::stuck_level`]
    /// for the whole run.
    pub stuck_row_rate: f64,
    /// The level stuck rows read at (bright by default: stuck-bright
    /// rows are the drift-cue hazard case).
    pub stuck_level: f32,
    /// Per-frame probability of whole-frame blanking.
    pub blank_frame_rate: f64,
    /// Per-window probability of a saturation burst.
    pub saturate_rate: f64,
    /// Rows in a saturation band.
    pub saturate_rows: u32,
    /// Frames per saturation window (a burst covers a whole window).
    pub saturate_burst: u32,
}

impl Default for SensorFaults {
    fn default() -> Self {
        Self {
            dead_row_rate: 0.0,
            stuck_row_rate: 0.0,
            stuck_level: 0.95,
            blank_frame_rate: 0.0,
            saturate_rate: 0.0,
            saturate_rows: 8,
            saturate_burst: 4,
        }
    }
}

/// Pipeline-side fault rates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PipelineFaults {
    /// Per-frame probability of a panic inside the frame critical
    /// section.
    pub panic_rate: f64,
    /// Per-frame probability of NaN speckle.
    pub nan_rate: f64,
    /// Pixels poisoned per NaN-speckled frame.
    pub nan_pixels: u32,
}

/// Serve-side fault rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeFaults {
    /// Per-frame probability of a simulated stall.
    pub stall_rate: f64,
    /// Simulated stall magnitude, ms.
    pub stall_ms: f64,
    /// Per-tick probability of a whole-process crash (consulted at tick
    /// boundaries by [`crate::CrashPlan`]).
    pub crash_rate: f64,
}

impl Default for ServeFaults {
    fn default() -> Self {
        Self { stall_rate: 0.0, stall_ms: 100.0, crash_rate: 0.0 }
    }
}

/// The complete fault model: per-family rates plus an explicit panic
/// schedule for tests that need a fault at an exact `(site, frame)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultConfig {
    /// Sensor fault family.
    pub sensor: SensorFaults,
    /// Pipeline fault family.
    pub pipeline: PipelineFaults,
    /// Serve fault family.
    pub serve: ServeFaults,
    /// Explicit `(site, frame)` panic injections, independent of
    /// [`PipelineFaults::panic_rate`] — the acceptance scenario pins its
    /// fault here rather than fishing for a rate draw.
    pub panic_at: Vec<(u64, u32)>,
    /// Explicit `(site, tick)` process-crash injections, independent of
    /// [`ServeFaults::crash_rate`] — the recovery acceptance pins its
    /// crash tick here.
    pub crash_at: Vec<(u64, u64)>,
}

impl FaultConfig {
    /// Adds an explicit panic at `(site, frame)`.
    pub fn panic_at(mut self, site: u64, frame: u32) -> Self {
        self.panic_at.push((site, frame));
        self
    }

    /// Adds an explicit process crash at `(site, tick)`.
    pub fn crash_at(mut self, site: u64, tick: u64) -> Self {
        self.crash_at.push((site, tick));
        self
    }

    /// Checks every rate is a probability and every magnitude finite.
    ///
    /// # Errors
    ///
    /// [`hirise::HiriseError::InvalidConfig`] naming the offending
    /// field.
    pub fn validate(&self) -> hirise::Result<()> {
        let invalid = |reason: String| hirise::HiriseError::InvalidConfig { reason };
        let rates = [
            ("dead_row_rate", self.sensor.dead_row_rate),
            ("stuck_row_rate", self.sensor.stuck_row_rate),
            ("blank_frame_rate", self.sensor.blank_frame_rate),
            ("saturate_rate", self.sensor.saturate_rate),
            ("panic_rate", self.pipeline.panic_rate),
            ("nan_rate", self.pipeline.nan_rate),
            ("stall_rate", self.serve.stall_rate),
            ("crash_rate", self.serve.crash_rate),
        ];
        for (name, rate) in rates {
            // `!(…)` keeps NaN out as well as the out-of-range values.
            if !(0.0..=1.0).contains(&rate) {
                return Err(invalid(format!("{name} must be a probability in [0, 1] ({rate})")));
            }
        }
        if !self.sensor.stuck_level.is_finite() {
            return Err(invalid(format!(
                "stuck_level must be finite ({})",
                self.sensor.stuck_level
            )));
        }
        if self.sensor.saturate_burst == 0 {
            return Err(invalid("saturate_burst must be ≥ 1".into()));
        }
        if !(self.serve.stall_ms >= 0.0) {
            return Err(invalid(format!(
                "stall_ms must be a non-negative number ({})",
                self.serve.stall_ms
            )));
        }
        Ok(())
    }
}

/// A seeded, validated fault schedule. Every query is a pure function
/// of `(seed, domain, site, counter)` — see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    config: FaultConfig,
}

impl FaultPlan {
    /// Creates a plan from a seed and a fault model.
    ///
    /// # Errors
    ///
    /// As for [`FaultConfig::validate`].
    pub fn new(seed: u64, config: FaultConfig) -> hirise::Result<Self> {
        config.validate()?;
        Ok(Self { seed, config })
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault model.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The raw 64-bit draw for `(domain, site, counter)` — the block
    /// function every fault decision reduces to.
    pub fn draw(&self, domain: u64, site: u64, counter: u64) -> u64 {
        let key = KeyedRng::derive_key(self.seed, domain::stream(domain, site));
        KeyedRng::block(key, counter)
    }

    /// A Bernoulli decision at `rate` over the draw's top 53 bits
    /// (an exact dyadic uniform in `[0, 1)`).
    pub fn chance(&self, domain: u64, site: u64, counter: u64, rate: f64) -> bool {
        rate > 0.0 && (self.draw(domain, site, counter) >> 11) as f64 / ((1u64 << 53) as f64) < rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_and_domain_separated() {
        let plan = FaultPlan::new(7, FaultConfig::default()).unwrap();
        assert_eq!(plan.draw(domain::PANIC, 3, 9), plan.draw(domain::PANIC, 3, 9));
        // Different domain, site, or counter each decorrelate.
        assert_ne!(plan.draw(domain::PANIC, 3, 9), plan.draw(domain::STALL, 3, 9));
        assert_ne!(plan.draw(domain::PANIC, 3, 9), plan.draw(domain::PANIC, 4, 9));
        assert_ne!(plan.draw(domain::PANIC, 3, 9), plan.draw(domain::PANIC, 3, 10));
        // And a different seed changes everything.
        let other = FaultPlan::new(8, FaultConfig::default()).unwrap();
        assert_ne!(plan.draw(domain::PANIC, 3, 9), other.draw(domain::PANIC, 3, 9));
    }

    #[test]
    fn chance_tracks_its_rate() {
        let plan = FaultPlan::new(0xC0FFEE, FaultConfig::default()).unwrap();
        for rate in [0.0, 0.1, 0.5] {
            let hits = (0..4000).filter(|&i| plan.chance(domain::BLANK, 0, i, rate)).count() as f64;
            let observed = hits / 4000.0;
            assert!((observed - rate).abs() < 0.03, "rate {rate}: observed {observed} too far off");
        }
        // Rate 1 always fires; rate 0 never does (even the >= 0 draw).
        assert!(plan.chance(domain::BLANK, 0, 0, 1.0));
        assert!(!plan.chance(domain::BLANK, 0, 0, 0.0));
    }

    #[test]
    fn validate_rejects_degenerate_models() {
        assert!(FaultConfig::default().validate().is_ok());
        let mut bad = FaultConfig::default();
        bad.pipeline.panic_rate = 1.5;
        assert!(bad.validate().is_err());
        let mut nan = FaultConfig::default();
        nan.sensor.blank_frame_rate = f64::NAN;
        assert!(nan.validate().is_err());
        let mut stuck = FaultConfig::default();
        stuck.sensor.stuck_level = f32::INFINITY;
        assert!(stuck.validate().is_err());
        let mut burst = FaultConfig::default();
        burst.sensor.saturate_burst = 0;
        assert!(burst.validate().is_err());
        let mut stall = FaultConfig::default();
        stall.serve.stall_ms = -1.0;
        assert!(stall.validate().is_err());
    }

    #[test]
    fn stream_packing_matches_the_scenario_layout() {
        assert_eq!(domain::stream(domain::DEAD_ROW, 0), 0x11 << 56);
        assert_eq!(domain::stream(domain::DEAD_ROW, 5), (0x11 << 56) | 5);
        // Sites beyond 56 bits wrap into the site field, never the
        // domain tag.
        assert_eq!(domain::stream(domain::PANIC, u64::MAX) >> 56, 0x16);
    }
}
