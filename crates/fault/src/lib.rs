//! `hirise-fault`: deterministic, seeded fault injection for the
//! HiRISE reproduction.
//!
//! The scenario fleet models *benign* stress (acquisition noise, hot
//! pixels, flicker); this crate is the hostile half. Every injected
//! fault is a pure function of `(seed, domain, site, frame)` through
//! the same counter-based keyed-RNG sub-streams the sensor noise and
//! scenario defects already use — so a chaos run is as reproducible and
//! worker-count-invariant as a clean one (verification layer 10 in
//! DESIGN.md).
//!
//! Three fault families, one [`FaultPlan`]:
//!
//! * **Sensor** ([`sensor`]): persistent dead/stuck rows, whole-frame
//!   blanking, saturation bursts, NaN speckle — applied to frames by
//!   [`apply_frame_faults`], wired into a fleet via
//!   [`faulty_source_for`].
//! * **Pipeline**: injected panics inside the serve engine's per-frame
//!   critical section (the unwind path a pool/detect panic would take)
//!   and NaN feature scores via the speckle above.
//! * **Serve** ([`serve`]): simulated session stalls for the deadline
//!   watchdog, plus the explicit panic schedule the acceptance tests
//!   pin — both delivered through [`ChaosInjector`], an implementation
//!   of [`hirise_serve::FaultInjector`] — and whole-process crashes at
//!   tick boundaries ([`CrashPlan`]), the kill schedule behind the
//!   serve layer's snapshot + journal warm-restart
//!   (`hirise_serve::recover`).
//!
//! The recovery machinery these faults exercise lives where the state
//! lives: `hirise-serve` quarantines a panicking session behind its
//! isolation boundary and `hirise::temporal` rewinds the session's
//! tracker to its last keyframe checkpoint
//! ([`hirise::temporal::TrackerCheckpoint`]). This crate only decides
//! *what goes wrong when* — deterministically.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use hirise_fault::{ChaosInjector, FaultConfig, FaultPlan};
//! use hirise_serve::{FaultAction, FaultInjector, SessionId};
//!
//! # fn main() -> Result<(), hirise::HiriseError> {
//! // Panic session 3's frame 7, nothing else.
//! let plan = Arc::new(FaultPlan::new(42, FaultConfig::default().panic_at(3, 7))?);
//! let injector = ChaosInjector::new(plan);
//! assert_eq!(injector.action(SessionId(3), 7), FaultAction::Panic);
//! assert_eq!(injector.action(SessionId(3), 6), FaultAction::None);
//! # Ok(())
//! # }
//! ```

pub mod plan;
pub mod sensor;
pub mod serve;

pub use plan::{domain, FaultConfig, FaultPlan, PipelineFaults, SensorFaults, ServeFaults};
pub use sensor::{apply_frame_faults, pin_rows, FrameFaultLog};
pub use serve::{faulty_source_for, ChaosInjector, CrashPlan};
