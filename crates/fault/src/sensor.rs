//! Sensor-side fault application: turning a clean frame into what a
//! defective array would have captured.
//!
//! [`apply_frame_faults`] mutates one frame in place according to a
//! [`FaultPlan`]: persistent dead/stuck rows (pure in `(seed, site,
//! row)` — the same rows every frame, like real silicon), whole-frame
//! blanking, saturation bursts over contiguous frame windows, and NaN
//! speckle. It is the function a fault-wrapping
//! [`hirise_serve::FrameSource`] closes over, and stays pure in
//! `(plan, site, frame)` so wrapped sources keep the determinism
//! contract.

use hirise_imaging::RgbImage;

use crate::plan::{domain, FaultPlan};

/// What [`apply_frame_faults`] did to one frame, for assertions and
/// availability accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameFaultLog {
    /// Rows zeroed by the persistent dead-row defect map.
    pub dead_rows: u32,
    /// Rows pinned at the stuck level by the persistent stuck-row map.
    pub stuck_rows: u32,
    /// Whether the whole frame was blanked.
    pub blanked: bool,
    /// Whether a saturation burst covered this frame.
    pub saturated: bool,
    /// Pixels poisoned with NaN.
    pub nan_pixels: u32,
}

impl FrameFaultLog {
    /// Whether the frame left this pass untouched.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// Pins `count` rows starting at `y0` to `level` across all three
/// channels — the stuck/saturated-row primitive, exposed so tests can
/// force a defect at an exact position instead of fishing for a seed.
pub fn pin_rows(img: &mut RgbImage, y0: u32, count: u32, level: f32) {
    let height = img.height();
    for plane in img.planes_mut() {
        for y in y0..(y0 + count).min(height) {
            plane.row_mut(y).fill(level);
        }
    }
}

/// Applies the plan's sensor faults to `site`'s frame `frame` in place.
/// Pure in `(plan, site, frame, img)`: re-applying to an identical
/// clean frame reproduces the identical faulty frame.
pub fn apply_frame_faults(
    plan: &FaultPlan,
    site: u64,
    frame: u32,
    img: &mut RgbImage,
) -> FrameFaultLog {
    let faults = plan.config().sensor;
    let nan = plan.config().pipeline;
    let (width, height) = (img.width(), img.height());
    let mut log = FrameFaultLog::default();

    // Whole-frame blanking first: a dropped exposure reads as black and
    // makes every other per-pixel fault moot this frame.
    if plan.chance(domain::BLANK, site, u64::from(frame), faults.blank_frame_rate) {
        for plane in img.planes_mut() {
            for y in 0..height {
                plane.row_mut(y).fill(0.0);
            }
        }
        log.blanked = true;
        return log;
    }

    // Persistent row defects: the counter is the *row*, not the frame,
    // so the defect map is fixed for the whole run — like real silicon.
    for y in 0..height {
        if plan.chance(domain::DEAD_ROW, site, u64::from(y), faults.dead_row_rate) {
            pin_rows(img, y, 1, 0.0);
            log.dead_rows += 1;
        } else if plan.chance(domain::STUCK_ROW, site, u64::from(y), faults.stuck_row_rate) {
            pin_rows(img, y, 1, faults.stuck_level);
            log.stuck_rows += 1;
        }
    }

    // Saturation bursts: one decision per window of `saturate_burst`
    // frames, so a burst covers a contiguous frame span (an overexposed
    // pass, not per-frame glitter). Even/odd counters split the
    // fire/position draws within the window's stream.
    let window = u64::from(frame) / u64::from(faults.saturate_burst.max(1));
    if plan.chance(domain::SATURATE, site, window << 1, faults.saturate_rate) {
        let start = (plan.draw(domain::SATURATE, site, (window << 1) | 1)
            % u64::from(height.max(1))) as u32;
        pin_rows(img, start, faults.saturate_rows, 1.0);
        log.saturated = true;
    }

    // NaN speckle: isolated poisoned pixels whose NaN propagates into
    // pooled features and detector scores downstream.
    if nan.nan_pixels > 0 && plan.chance(domain::NAN, site, u64::from(frame), nan.nan_rate) {
        for i in 0..nan.nan_pixels {
            let pos = plan.draw(domain::NAN, site, (u64::from(frame) << 16) | u64::from(i + 1));
            let x = (pos % u64::from(width.max(1))) as u32;
            let y = ((pos >> 32) % u64::from(height.max(1))) as u32;
            img.set_pixel(x, y, (f32::NAN, f32::NAN, f32::NAN));
            log.nan_pixels += 1;
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultConfig;

    fn gray(w: u32, h: u32) -> RgbImage {
        RgbImage::from_fn(w, h, |_, _| (0.4, 0.4, 0.4))
    }

    fn plan(config: FaultConfig) -> FaultPlan {
        FaultPlan::new(0xFA017, config).unwrap()
    }

    #[test]
    fn zero_rates_leave_the_frame_untouched() {
        let plan = plan(FaultConfig::default());
        let clean = gray(32, 24);
        let mut img = clean.clone();
        let log = apply_frame_faults(&plan, 0, 0, &mut img);
        assert!(log.is_clean());
        assert_eq!(img, clean);
    }

    #[test]
    fn application_is_pure_in_site_and_frame() {
        let mut config = FaultConfig::default();
        config.sensor.stuck_row_rate = 0.2;
        config.sensor.blank_frame_rate = 0.1;
        config.sensor.saturate_rate = 0.3;
        config.pipeline.nan_rate = 0.2;
        config.pipeline.nan_pixels = 3;
        let plan = plan(config);
        for frame in 0..6 {
            let mut a = gray(48, 32);
            let mut b = gray(48, 32);
            assert_eq!(
                apply_frame_faults(&plan, 2, frame, &mut a),
                apply_frame_faults(&plan, 2, frame, &mut b)
            );
            assert_eq!(a, b, "frame {frame} not reproducible");
        }
    }

    #[test]
    fn row_defects_persist_across_frames() {
        let mut config = FaultConfig::default();
        config.sensor.dead_row_rate = 0.15;
        config.sensor.stuck_row_rate = 0.15;
        let plan = plan(config);
        let mut first = gray(16, 64);
        let log0 = apply_frame_faults(&plan, 1, 0, &mut first);
        assert!(log0.dead_rows > 0 && log0.stuck_rows > 0, "rates too low to exercise: {log0:?}");
        let mut later = gray(16, 64);
        let log9 = apply_frame_faults(&plan, 1, 9, &mut later);
        // The defect *map* is frame-independent…
        assert_eq!((log0.dead_rows, log0.stuck_rows), (log9.dead_rows, log9.stuck_rows));
        assert_eq!(first, later);
        // …but site-dependent: another sensor has other defects.
        let mut other = gray(16, 64);
        let other_log = apply_frame_faults(&plan, 7, 0, &mut other);
        assert_ne!((log0.dead_rows, log0.stuck_rows), (other_log.dead_rows, other_log.stuck_rows));
    }

    #[test]
    fn blanking_zeroes_every_channel() {
        let mut config = FaultConfig::default();
        config.sensor.blank_frame_rate = 1.0;
        let plan = plan(config);
        let mut img = gray(8, 8);
        let log = apply_frame_faults(&plan, 0, 3, &mut img);
        assert!(log.blanked);
        for plane in img.planes() {
            assert!(plane.as_slice().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn saturation_bursts_cover_whole_windows() {
        let mut config = FaultConfig::default();
        config.sensor.saturate_rate = 0.5;
        config.sensor.saturate_rows = 4;
        config.sensor.saturate_burst = 4;
        let plan = plan(config);
        let saturated_at = |frame: u32| {
            let mut img = gray(16, 32);
            apply_frame_faults(&plan, 0, frame, &mut img).saturated
        };
        // Within one window every frame agrees; find both a hot and a
        // cold window to prove the rate draw is per-window.
        let windows: Vec<bool> = (0..16).map(|w| saturated_at(w * 4)).collect();
        assert!(windows.iter().any(|&s| s) && windows.iter().any(|&s| !s), "{windows:?}");
        for (w, &expected) in windows.iter().enumerate() {
            for offset in 1..4 {
                assert_eq!(saturated_at(w as u32 * 4 + offset), expected, "window {w} split");
            }
        }
    }

    #[test]
    fn nan_speckle_poisons_the_requested_pixel_count() {
        let mut config = FaultConfig::default();
        config.pipeline.nan_rate = 1.0;
        config.pipeline.nan_pixels = 5;
        let plan = plan(config);
        let mut img = gray(32, 24);
        let log = apply_frame_faults(&plan, 0, 0, &mut img);
        assert_eq!(log.nan_pixels, 5);
        let [r, _, _] = img.planes();
        let poisoned = r.as_slice().iter().filter(|v| v.is_nan()).count();
        assert!((1..=5).contains(&poisoned), "{poisoned} NaN pixels (draws may collide)");
    }

    #[test]
    fn pin_rows_clamps_to_the_frame() {
        let mut img = gray(8, 8);
        pin_rows(&mut img, 6, 10, 1.0);
        let [r, _, _] = img.planes();
        assert!(r.row(5).iter().all(|&v| v == 0.4));
        assert!(r.row(6).iter().all(|&v| v == 1.0));
        assert!(r.row(7).iter().all(|&v| v == 1.0));
    }
}
