//! Wiring the fault plan into the serve engine: the chaos injector and
//! fault-wrapped frame sources.
//!
//! `hirise-serve` exposes two seams and stays ignorant of any fault
//! model; this module fills both from one [`FaultPlan`]:
//!
//! * [`ChaosInjector`] implements [`hirise_serve::FaultInjector`] —
//!   panics and stalls inside the engine's frame critical section,
//!   keyed by `(session id, frame index)`.
//! * [`faulty_source_for`] mirrors [`hirise_serve::source_for`] but
//!   wraps the scenario generator in [`apply_frame_faults`], so the
//!   frames themselves carry the plan's sensor defects. The wrapper is
//!   pure in the frame index, preserving the determinism contract.
//!
//! The **site** of every serve-layer fault is the engine-assigned
//! session id (admission order), which is itself deterministic for a
//! fixed driver schedule — so one seed fixes the whole chaos run.

use std::sync::Arc;

use hirise_scene::{ScenarioGenerator, ScenarioSpec};
use hirise_serve::{FaultAction, FaultInjector, FrameSource, SessionId, SessionSpec};

use crate::plan::{domain, FaultPlan};
use crate::sensor::apply_frame_faults;

/// A [`FaultInjector`] driven by a [`FaultPlan`]: explicit
/// [`crate::FaultConfig::panic_at`] entries first, then the seeded
/// panic and stall rates.
#[derive(Debug, Clone)]
pub struct ChaosInjector {
    plan: Arc<FaultPlan>,
}

impl ChaosInjector {
    /// Creates an injector over a shared plan.
    pub fn new(plan: Arc<FaultPlan>) -> Self {
        Self { plan }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl FaultInjector for ChaosInjector {
    fn action(&self, session: SessionId, frame_index: u32) -> FaultAction {
        let site = session.0;
        let config = self.plan.config();
        if config.panic_at.contains(&(site, frame_index))
            || self.plan.chance(
                domain::PANIC,
                site,
                u64::from(frame_index),
                config.pipeline.panic_rate,
            )
        {
            return FaultAction::Panic;
        }
        if self.plan.chance(domain::STALL, site, u64::from(frame_index), config.serve.stall_rate) {
            return FaultAction::Stall { stall_ms: config.serve.stall_ms };
        }
        FaultAction::None
    }
}

/// The process-death half of the fault model: decides at which tick
/// boundaries a whole engine dies, keyed by `site` (a fleet or replica
/// id, so independent replicas draw independent crash schedules).
///
/// Explicit [`crate::FaultConfig::crash_at`] entries fire first, then
/// the seeded [`crate::ServeFaults::crash_rate`] — the same
/// explicit-then-rate layering as [`ChaosInjector`]. Pure in
/// `(seed, site, tick)`, so a crash schedule reproduces exactly across
/// reruns, which is what lets the recovery tests pin warm-restart
/// outputs bit-identical to uninterrupted runs.
#[derive(Debug, Clone)]
pub struct CrashPlan {
    plan: Arc<FaultPlan>,
}

impl CrashPlan {
    /// Creates a crash schedule over a shared plan.
    pub fn new(plan: Arc<FaultPlan>) -> Self {
        Self { plan }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether the process at `site` dies at the boundary of `tick` —
    /// the oracle shape `hirise_serve::run_plans_journaled` consumes.
    pub fn crashes_at(&self, site: u64, tick: u64) -> bool {
        let config = self.plan.config();
        config.crash_at.contains(&(site, tick))
            || self.plan.chance(domain::CRASH, site, tick, config.serve.crash_rate)
    }

    /// The first crash tick for `site` in `ticks`, if any — how a bench
    /// turns an open-ended schedule into one concrete kill point.
    pub fn first_crash_in(&self, site: u64, ticks: std::ops::Range<u64>) -> Option<u64> {
        ticks.into_iter().find(|&tick| self.crashes_at(site, tick))
    }
}

/// A scenario-backed frame source whose frames pass through the plan's
/// sensor faults, keyed by `site` (`None` for an unknown scenario
/// name). The fault-free counterpart of this source is exactly
/// [`hirise_serve::source_for`] — a plan whose sensor rates are all
/// zero produces bit-identical frames.
pub fn faulty_source_for(
    spec: &SessionSpec,
    width: u32,
    height: u32,
    plan: &Arc<FaultPlan>,
    site: u64,
) -> Option<FrameSource> {
    let scenario = ScenarioSpec::by_name(&spec.scenario)?;
    let generator = ScenarioGenerator::new(scenario, width, height, spec.seed);
    let plan = Arc::clone(plan);
    Some(FrameSource::Generated(Box::new(move |index| {
        let mut img = generator.frame(index).image;
        apply_frame_faults(&plan, site, index, &mut img);
        img
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultConfig;

    fn arc_plan(config: FaultConfig) -> Arc<FaultPlan> {
        Arc::new(FaultPlan::new(0xCA05, config).unwrap())
    }

    #[test]
    fn explicit_panics_override_the_rates() {
        let injector = ChaosInjector::new(arc_plan(FaultConfig::default().panic_at(2, 5)));
        assert_eq!(injector.action(SessionId(2), 5), FaultAction::Panic);
        assert_eq!(injector.action(SessionId(2), 4), FaultAction::None);
        assert_eq!(injector.action(SessionId(3), 5), FaultAction::None);
    }

    #[test]
    fn seeded_rates_fire_deterministically() {
        let mut config = FaultConfig::default();
        config.pipeline.panic_rate = 0.25;
        config.serve.stall_rate = 0.25;
        config.serve.stall_ms = 80.0;
        let injector = ChaosInjector::new(arc_plan(config));
        let schedule: Vec<FaultAction> =
            (0..64).map(|f| injector.action(SessionId(1), f)).collect();
        assert_eq!(
            schedule,
            (0..64).map(|f| injector.action(SessionId(1), f)).collect::<Vec<_>>(),
            "schedule must be pure"
        );
        assert!(schedule.contains(&FaultAction::Panic));
        assert!(schedule.contains(&FaultAction::Stall { stall_ms: 80.0 }));
        assert!(schedule.contains(&FaultAction::None));
    }

    #[test]
    fn zero_rate_sources_match_the_clean_ones() {
        let spec = SessionSpec::default().scenario("clean").seed(11);
        let clean = hirise_serve::source_for(&spec, 64, 48).unwrap();
        let wrapped =
            faulty_source_for(&spec, 64, 48, &arc_plan(FaultConfig::default()), 0).unwrap();
        // Compare through a session-free render: both sources are pure
        // in the index, so frame 3 is a complete probe.
        let (FrameSource::Scenario(generator), FrameSource::Generated(render)) = (&clean, &wrapped)
        else {
            panic!("unexpected source shapes");
        };
        assert_eq!(generator.frame(3).image, render(3));
    }

    #[test]
    fn faulty_sources_differ_and_reproduce() {
        let spec = SessionSpec::default().scenario("clean").seed(11);
        let mut config = FaultConfig::default();
        config.sensor.stuck_row_rate = 0.25;
        let plan = arc_plan(config);
        let spec_clean = hirise_serve::source_for(&spec, 64, 48).unwrap();
        let (FrameSource::Scenario(generator), FrameSource::Generated(a)) =
            (&spec_clean, &faulty_source_for(&spec, 64, 48, &plan, 1).unwrap())
        else {
            panic!("unexpected source shapes");
        };
        assert_ne!(generator.frame(0).image, a(0), "defects did not land");
        let FrameSource::Generated(b) = faulty_source_for(&spec, 64, 48, &plan, 1).unwrap() else {
            panic!("unexpected source shape");
        };
        assert_eq!(a(0), b(0), "same plan and site must reproduce");
    }

    #[test]
    fn explicit_crashes_override_the_rate() {
        let crash = CrashPlan::new(arc_plan(FaultConfig::default().crash_at(0, 7)));
        assert!(crash.crashes_at(0, 7));
        assert!(!crash.crashes_at(0, 6));
        assert!(!crash.crashes_at(1, 7), "the schedule is per-site");
        assert_eq!(crash.first_crash_in(0, 0..32), Some(7));
        assert_eq!(crash.first_crash_in(1, 0..32), None);
    }

    #[test]
    fn seeded_crash_schedule_is_pure_and_site_separated() {
        let mut config = FaultConfig::default();
        config.serve.crash_rate = 0.2;
        let crash = CrashPlan::new(arc_plan(config));
        let schedule: Vec<bool> = (0..64).map(|t| crash.crashes_at(3, t)).collect();
        assert_eq!(schedule, (0..64).map(|t| crash.crashes_at(3, t)).collect::<Vec<_>>());
        assert!(schedule.contains(&true), "rate 0.2 over 64 ticks should fire");
        assert!(schedule.contains(&false));
        assert_ne!(
            schedule,
            (0..64).map(|t| crash.crashes_at(4, t)).collect::<Vec<_>>(),
            "different sites must draw different schedules"
        );
        assert_eq!(
            crash.first_crash_in(3, 0..64),
            (0..64).find(|&t| schedule[t as usize]),
            "first_crash_in must agree with the per-tick oracle"
        );
    }

    #[test]
    fn crash_rate_is_validated_as_a_probability() {
        let mut bad = FaultConfig::default();
        bad.serve.crash_rate = 2.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn unknown_scenarios_are_refused() {
        let spec = SessionSpec::default().scenario("no-such-preset");
        assert!(faulty_source_for(&spec, 64, 48, &arc_plan(FaultConfig::default()), 0).is_none());
    }
}
