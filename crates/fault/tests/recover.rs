//! End-to-end crash recovery under the full fault matrix: sensor
//! defects on the frames, a pinned panic quarantine in flight, and a
//! [`CrashPlan`]-scheduled process death — warm-restarted from snapshot
//! plus journal and pinned bit-identical to the uninterrupted run.
//!
//! The serve-layer suite (`hirise-serve/tests/recover.rs`) sweeps crash
//! ticks with hand-rolled injectors; this test wires the same protocol
//! through the seeded fault plan, so one seed describes the *entire*
//! hostile run — defects, panics, and the kill schedule.

use std::sync::Arc;

use hirise::{HiriseConfig, SensorConfig, TemporalConfig};
use hirise_fault::{faulty_source_for, ChaosInjector, CrashPlan, FaultConfig, FaultPlan};
use hirise_serve::{
    run_plans_journaled, ArrivalJournal, FaultInjector, FrameSource, ServeConfig, ServeEngine,
    ServeSummary, SessionPlan, SessionSpec, TrafficConfig,
};

const W: u32 = 64;
const H: u32 = 48;
/// The fleet's site id in the crash domain (one replica under test).
const FLEET: u64 = 0;

fn serve_config(plan: &Arc<FaultPlan>) -> ServeConfig {
    let detector = hirise::DetectorConfig { score_threshold: 0.2, ..Default::default() };
    let pipeline = HiriseConfig::builder(W, H)
        .pooling(2)
        .sensor(SensorConfig::noiseless())
        .detector(detector)
        .max_rois(4)
        .roi_margin(4)
        .build()
        .unwrap();
    let injector: Arc<dyn FaultInjector> = Arc::new(ChaosInjector::new(Arc::clone(plan)));
    ServeConfig::new(pipeline)
        .temporal(TemporalConfig::default().keyframe_interval(4).drift_threshold(1.0))
        .rated_sessions(4)
        .max_sessions(16)
        .queue_capacity(4)
        .quantum(2)
        .latency_window(64)
        .fault(injector)
}

/// The fault-wrapped source factory: pure in the spec (the site is
/// recovered from the plan list, which is itself pure in the traffic
/// seed), so a restore rebuilds byte-identical defective frames.
fn factory_for(
    plans: &[SessionPlan],
    plan: &Arc<FaultPlan>,
) -> impl Fn(&SessionSpec) -> Option<FrameSource> {
    let names: Vec<String> = plans.iter().map(|p| p.spec.name.clone()).collect();
    let plan = Arc::clone(plan);
    move |spec: &SessionSpec| {
        let site = names.iter().position(|n| n == &spec.name)? as u64;
        faulty_source_for(spec, W, H, &plan, site)
    }
}

fn assert_runs_identical(a: &ServeSummary, b: &ServeSummary, label: &str) {
    assert_eq!(a.ticks, b.ticks, "{label}: ticks");
    assert_eq!(a.frames, b.frames, "{label}: frames");
    assert_eq!(a.completed, b.completed, "{label}: completed");
    assert_eq!(a.dropped, b.dropped, "{label}: dropped");
    assert_eq!(a.deferred, b.deferred, "{label}: deferrals");
    assert_eq!(a.quarantined, b.quarantined, "{label}: quarantined");
    assert_eq!(a.recovered, b.recovered, "{label}: recovered");
    assert_eq!(a.max_recovery_frames, b.max_recovery_frames, "{label}: recovery span");
    assert_eq!(a.max_shed_level, b.max_shed_level, "{label}: shed");
    assert_eq!(a.energy_mj.to_bits(), b.energy_mj.to_bits(), "{label}: energy");
    assert_eq!(a.sessions.len(), b.sessions.len(), "{label}: session count");
    for (x, y) in a.sessions.iter().zip(&b.sessions) {
        assert_eq!(x.id, y.id, "{label}: session order");
        assert_eq!(x.summary, y.summary, "{label}: session {} stream diverged", x.name);
        assert_eq!(
            (x.poisoned, x.quarantines, x.recoveries, x.deferred),
            (y.poisoned, y.quarantines, y.recoveries, y.deferred),
            "{label}: session {} fault history diverged",
            x.name
        );
    }
}

#[test]
fn seeded_crash_recovers_a_fully_faulted_fleet_bit_identically() {
    // One seed fixes everything hostile about this run: stuck sensor
    // rows on every session's frames, a pinned panic (session 2, frame
    // 6) that quarantines mid-run, and the seeded per-tick crash draw
    // that kills the process.
    let mut fault_config = FaultConfig::default().panic_at(2, 6);
    fault_config.sensor.stuck_row_rate = 0.08;
    fault_config.serve.crash_rate = 0.12;
    let plan = Arc::new(FaultPlan::new(0xDEC0DE, fault_config).unwrap());
    let plans = hirise_serve::generate(&TrafficConfig::default().sessions(6));
    let factory = factory_for(&plans, &plan);

    // Uninterrupted reference — same faults, no process death.
    let mut engine = ServeEngine::new(serve_config(&plan)).unwrap();
    let mut journal = ArrivalJournal::new();
    run_plans_journaled(&mut engine, &plans, &factory, &mut journal, 0, None, &mut |_| false)
        .unwrap();
    let baseline = engine.summary();
    assert_eq!(baseline.quarantined, 1, "the pinned panic must land");
    assert_eq!(baseline.recovered, 1);
    let total_ticks = baseline.ticks;

    // The kill schedule comes from the plan itself, not a hand piloted
    // oracle: the first seeded crash inside the run's span.
    let crash = CrashPlan::new(Arc::clone(&plan));
    let crash_tick = crash
        .first_crash_in(FLEET, 1..total_ticks)
        .expect("crash_rate 0.12 must fire within the run");

    // Crash leg: journaled drive with periodic snapshots, killed by the
    // seeded schedule.
    let mut engine = ServeEngine::new(serve_config(&plan)).unwrap();
    let mut journal = ArrivalJournal::new();
    let outcome =
        run_plans_journaled(&mut engine, &plans, &factory, &mut journal, 3, None, &mut |tick| {
            crash.crashes_at(FLEET, tick)
        })
        .unwrap();
    assert_eq!(outcome.crashed_at, Some(crash_tick));
    drop(engine);

    // Warm restart: restore the last snapshot (or cold-start), replay
    // the journal tail, resume the un-attempted plans.
    let mut recovered = match outcome.snapshot {
        Some(snapshot) => ServeEngine::restore(&snapshot, serve_config(&plan), &factory).unwrap(),
        None => ServeEngine::new(serve_config(&plan)).unwrap(),
    };
    recovered.replay_from(&journal, &factory).unwrap();
    run_plans_journaled(
        &mut recovered,
        &plans[journal.admissions()..],
        &factory,
        &mut journal,
        3,
        None,
        &mut |_| false,
    )
    .unwrap();
    assert_runs_identical(
        &baseline,
        &recovered.summary(),
        &format!("seeded crash at tick {crash_tick}"),
    );
}
