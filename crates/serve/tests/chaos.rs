//! Chaos tests for the serve engine: session-level failure isolation,
//! checkpoint recovery, structured worker-panic surfacing, the deadline
//! watchdog, and slot-recycling hygiene.
//!
//! The injectors here are deliberately tiny hand-rolled
//! [`FaultInjector`]s pinned to exact `(session, frame)` coordinates —
//! the seeded fault *matrix* lives in `hirise-fault` and the chaos
//! benchmark; these tests pin the recovery machinery itself.

use std::sync::Arc;

use hirise::{HiriseConfig, SensorConfig, TemporalConfig};
use hirise_imaging::{draw, Rect, RgbImage};
use hirise_serve::{
    FaultAction, FaultInjector, FrameSource, Priority, ServeConfig, ServeEngine, ServeError,
    ServeSummary, SessionId, SessionSpec,
};

const W: u32 = 64;
const H: u32 = 48;
/// The keyframe cadence every test runs at — and therefore the pinned
/// recovery budget: a session restored from its checkpoint reaches the
/// next scheduled keyframe within one interval.
const INTERVAL: u32 = 4;

/// A short clip with one moving textured object.
fn clip(frames: u32, phase: u32) -> Vec<RgbImage> {
    (0..frames)
        .map(|i| {
            let mut img = RgbImage::from_fn(W, H, |_, _| (0.35, 0.35, 0.35));
            let x = 6 + (phase * 5 + i * 2) % (W / 2);
            let obj = Rect::new(x, 12, 12, 20);
            draw::fill_rect_rgb(&mut img, obj, (0.9, 0.4, 0.2));
            let [pr, _, _] = img.planes_mut();
            draw::fill_stripes(pr, obj, 2, 0.95, 0.55);
            img
        })
        .collect()
}

fn serve_config(rated: usize) -> ServeConfig {
    let detector = hirise::DetectorConfig { score_threshold: 0.2, ..Default::default() };
    let pipeline = HiriseConfig::builder(W, H)
        .pooling(2)
        .sensor(SensorConfig::noiseless())
        .detector(detector)
        .max_rois(4)
        .roi_margin(4)
        .build()
        .unwrap();
    ServeConfig::new(pipeline)
        .temporal(TemporalConfig::default().keyframe_interval(INTERVAL).drift_threshold(1.0))
        .rated_sessions(rated)
        .max_sessions(4 * rated)
        .queue_capacity(4)
        .quantum(2)
        .latency_window(64)
}

/// Panics exactly one `(session, frame)` pair.
#[derive(Debug)]
struct PanicAt {
    session: u64,
    frame: u32,
}

impl FaultInjector for PanicAt {
    fn action(&self, session: SessionId, frame_index: u32) -> FaultAction {
        if session.0 == self.session && frame_index == self.frame {
            FaultAction::Panic
        } else {
            FaultAction::None
        }
    }
}

/// Stalls every frame of one session by a fixed simulated latency.
#[derive(Debug)]
struct StallOne {
    session: u64,
    stall_ms: f64,
}

impl FaultInjector for StallOne {
    fn action(&self, session: SessionId, _frame_index: u32) -> FaultAction {
        if session.0 == self.session {
            FaultAction::Stall { stall_ms: self.stall_ms }
        } else {
            FaultAction::None
        }
    }
}

/// Admits `count` clip-backed sessions and drives the engine to
/// completion with the given worker count (`None` = serial path).
fn run_fleet(
    config: ServeConfig,
    count: usize,
    frames: u32,
    workers: Option<usize>,
) -> ServeSummary {
    let mut engine = ServeEngine::new(config).unwrap();
    for i in 0..count {
        let spec = SessionSpec::default()
            .name(format!("s{i}"))
            .frames(frames)
            .priority(Priority::Normal)
            .frames_per_tick(2);
        engine.admit(spec, FrameSource::Frames(clip(8, i as u32))).unwrap();
    }
    loop {
        engine.tick();
        if engine.active_sessions() == 0 {
            return engine.summary();
        }
        match workers {
            None => engine.serve(u64::MAX).unwrap(),
            Some(w) => engine.serve_parallel(w).unwrap(),
        };
    }
}

#[test]
fn quarantined_session_recovers_and_the_fleet_is_unperturbed() {
    // The acceptance scenario: 8 sessions, a panic injected mid-stream
    // into session 3, at every worker count. The fleet must complete
    // with nothing dropped, exactly one session quarantined and
    // recovered within the keyframe budget, and every *other* session
    // bit-identical to a fault-free run.
    const SESSIONS: usize = 8;
    const FRAMES: u32 = 16;
    const FAULTED: u64 = 3;
    let faulted = FAULTED as usize;
    let fault: Arc<dyn FaultInjector> = Arc::new(PanicAt { session: FAULTED, frame: 6 });

    let clean = run_fleet(serve_config(SESSIONS), SESSIONS, FRAMES, None);
    assert_eq!(clean.quarantined, 0);
    assert_eq!(clean.max_shed_level, 0, "the scenario must be fault-only, not overloaded");

    let chaos = run_fleet(serve_config(SESSIONS).fault(Arc::clone(&fault)), SESSIONS, FRAMES, None);
    // Nothing dropped, every session completed — including the faulted
    // one, whose panicked frame is consumed rather than retried.
    assert_eq!(chaos.dropped, 0);
    assert_eq!(chaos.completed, SESSIONS as u64);
    assert_eq!(chaos.active, 0);
    // Exactly one quarantine, fully recovered, within the pinned frame
    // budget (the next scheduled keyframe after the checkpoint).
    assert_eq!(chaos.quarantined, 1);
    assert_eq!(chaos.recovered, 1);
    assert!(
        (1..=INTERVAL).contains(&chaos.max_recovery_frames),
        "recovery took {} frames, budget is {INTERVAL}",
        chaos.max_recovery_frames
    );
    // The poisoned frame never reached the tracker, so the fleet folded
    // one frame fewer than the clean run.
    assert_eq!(chaos.frames, clean.frames - 1);
    let report = &chaos.sessions[faulted];
    assert!(report.poisoned);
    assert_eq!((report.quarantines, report.recoveries, report.poisoned_frames), (1, 1, 1));
    assert!(report.completed, "the faulted session must still finish its stream");
    // Every other session is bit-identical to the fault-free run.
    for (c, f) in clean.sessions.iter().zip(&chaos.sessions) {
        assert_eq!(c.id, f.id);
        if c.id.0 == FAULTED {
            assert_ne!(c.summary, f.summary, "the fault must be observable on its session");
            continue;
        }
        assert!(!f.poisoned);
        assert_eq!(c.summary, f.summary, "session {} perturbed by another's fault", c.name);
        assert_eq!(c.deferred, f.deferred);
    }

    // And the whole chaos run — quarantine decision, recovery span,
    // per-session outputs — is invariant to the worker count.
    for workers in [1, 2, 4] {
        let parallel = run_fleet(
            serve_config(SESSIONS).fault(Arc::clone(&fault)),
            SESSIONS,
            FRAMES,
            Some(workers),
        );
        assert_eq!(parallel.quarantined, 1, "{workers} workers");
        assert_eq!(parallel.recovered, 1);
        assert_eq!(parallel.max_recovery_frames, chaos.max_recovery_frames);
        assert_eq!(parallel.frames, chaos.frames);
        for (a, b) in parallel.sessions.iter().zip(&chaos.sessions) {
            assert_eq!(a.summary, b.summary, "session {} diverged at {workers} workers", b.name);
            assert_eq!(
                (a.poisoned, a.quarantines, a.recoveries, a.max_recovery_frames),
                (b.poisoned, b.quarantines, b.recoveries, b.max_recovery_frames)
            );
        }
    }
}

#[test]
fn frame_zero_fault_cold_starts_and_still_recovers() {
    // A panic before any checkpoint exists: the session falls back to a
    // tracker reset and recovers at the very next frame (frame index 0
    // is always a keyframe).
    let fault: Arc<dyn FaultInjector> = Arc::new(PanicAt { session: 0, frame: 0 });
    let summary = run_fleet(serve_config(4).fault(fault), 1, 8, None);
    assert_eq!(summary.dropped, 0);
    assert_eq!(summary.completed, 1);
    assert_eq!(summary.quarantined, 1);
    assert_eq!(summary.recovered, 1);
    assert_eq!(summary.max_recovery_frames, 1, "cold start recovers at the next keyframe");
    assert_eq!(summary.frames, 7, "the poisoned frame is consumed, not folded");
}

#[test]
fn disabled_isolation_surfaces_a_structured_worker_panic() {
    // The engine.rs regression: a worker panic must surface as
    // `ServeError::WorkerPanicked`, never abort the caller through a
    // poisoned join. Serial and parallel paths both.
    let fault: Arc<dyn FaultInjector> = Arc::new(PanicAt { session: 1, frame: 2 });
    for workers in [None, Some(2), Some(4)] {
        let config = serve_config(4).fault(Arc::clone(&fault)).isolate_sessions(false);
        let mut engine = ServeEngine::new(config).unwrap();
        for i in 0..4 {
            let spec = SessionSpec::default().name(format!("s{i}")).frames(8).frames_per_tick(2);
            engine.admit(spec, FrameSource::Frames(clip(8, i))).unwrap();
        }
        let error = loop {
            engine.tick();
            let outcome = match workers {
                None => engine.serve(u64::MAX),
                Some(w) => engine.serve_parallel(w),
            };
            if let Err(e) = outcome {
                break e;
            }
        };
        let ServeError::WorkerPanicked { message, .. } = &error else {
            panic!("expected WorkerPanicked, got {error:?}");
        };
        assert!(message.contains("injected fault"), "panic payload lost in transit: {message:?}");
        assert!(error.to_string().contains("panicked"));
    }
}

#[test]
fn watchdog_escalates_a_stalled_session_before_it_defers() {
    // Session 0 stalls 10 s per frame against a 250 ms deadline; the
    // watchdog must count every miss and escalate exactly that session
    // one shed rung — on an otherwise unloaded fleet whose base level
    // never leaves 0.
    const FRAMES: u32 = 12;
    let fault: Arc<dyn FaultInjector> = Arc::new(StallOne { session: 0, stall_ms: 10_000.0 });
    let config = serve_config(8).fault(fault).deadline_ms(250.0);
    let summary = run_fleet(config, 2, FRAMES, None);
    assert_eq!(summary.dropped, 0);
    assert_eq!(summary.completed, 2);
    // The fleet gauge reports the deepest rung any frame was stamped
    // with — here that is the watchdog's rung, not overload.
    assert_eq!(summary.max_shed_level, 1);
    let (stalled, healthy) = (&summary.sessions[0], &summary.sessions[1]);
    assert_eq!(stalled.deadline_misses, u64::from(FRAMES), "every stalled frame over deadline");
    assert_eq!(stalled.max_shed_level, 1, "stalled session escalated one rung");
    assert!(stalled.p99_ms >= 10_000.0, "stall must dominate the recorded tail");
    assert_eq!(healthy.deadline_misses, 0);
    assert_eq!(healthy.max_shed_level, 0, "escalation must not leak to healthy sessions");
    assert_eq!(summary.deadline_misses, u64::from(FRAMES));
    // Escalation is degradation: the stalled session runs a wider
    // keyframe cadence than its healthy twin, not a shorter stream.
    assert_eq!(stalled.summary.frames, u64::from(FRAMES));
    assert!(
        stalled.summary.keyframes < healthy.summary.keyframes,
        "rung 1 must widen the stalled session's cadence ({} vs {})",
        stalled.summary.keyframes,
        healthy.summary.keyframes
    );
}

#[test]
fn recycled_slot_starts_with_fresh_metrics() {
    // Slot hygiene: a single-slot slab serves a stalled tenant to
    // completion, then a healthy one in the *same* slot. Nothing of the
    // first tenant — latency reservoir, deadline misses, queue depth —
    // may bleed into the second's report.
    let fault: Arc<dyn FaultInjector> = Arc::new(StallOne { session: 0, stall_ms: 10_000.0 });
    let config = serve_config(1).max_sessions(1).fault(fault).deadline_ms(250.0);
    let mut engine = ServeEngine::new(config).unwrap();
    let admit = |engine: &mut ServeEngine, name: &str| {
        let spec = SessionSpec::default().name(name).frames(6).frames_per_tick(2);
        engine.admit(spec, FrameSource::Frames(clip(8, 0))).unwrap()
    };
    let first = admit(&mut engine, "stalled");
    engine.drain().unwrap();
    assert_eq!(engine.active_sessions(), 0, "slot must be free again");
    let second = admit(&mut engine, "fresh");
    assert_eq!((first, second), (SessionId(0), SessionId(1)));
    engine.drain().unwrap();
    let summary = engine.summary();
    let (stalled, fresh) = (&summary.sessions[0], &summary.sessions[1]);
    assert_eq!(stalled.deadline_misses, 6);
    assert!(stalled.p99_ms >= 10_000.0);
    // The recycled slot's tenant sees none of it: every retained sample
    // is a real (sub-stall) measurement and the counters start at zero.
    assert_eq!(fresh.deadline_misses, 0);
    assert_eq!(fresh.max_shed_level, 0);
    assert_eq!(fresh.deferred, 0);
    assert_eq!(fresh.latency_ms.len(), 6, "reservoir must hold exactly the new tenant's frames");
    assert!(
        fresh.latency_ms.iter().all(|&ms| ms < 10_000.0),
        "stale latency bled into the recycled slot: {:?}",
        fresh.latency_ms
    );
    assert!(fresh.p99_ms < 10_000.0, "stale p99 bled into the recycled slot");
    assert_eq!(fresh.summary.frames, 6, "stale queue entries would distort the frame count");
}
