//! Crash-recovery acceptance for the serve layer: a process death at
//! *any* tick, recovered from the last snapshot plus the arrival
//! journal, must leave every session bit-identical to an uninterrupted
//! run — serially and at every worker count.
//!
//! The suite also pins the safety half of the contract: corrupted
//! snapshots are rejected whole (never half-restored), config drift is
//! refused by fingerprint, and a journal that cannot be the engine's
//! own is refused by tick accounting.

use std::sync::Arc;

use hirise::{HiriseConfig, SensorConfig, TemporalConfig};
use hirise_serve::{
    run_plans_journaled, ArrivalJournal, EngineSnapshot, FaultAction, FaultInjector, FrameSource,
    ReplayError, RestoreError, ServeConfig, ServeEngine, ServeSummary, SessionId, SessionPlan,
    SessionSpec, TrafficConfig,
};

use proptest::prelude::*;

const W: u32 = 64;
const H: u32 = 48;
/// Keyframe cadence — and therefore the pinned fault-recovery budget.
const INTERVAL: u32 = 4;

fn serve_config(rated: usize) -> ServeConfig {
    let detector = hirise::DetectorConfig { score_threshold: 0.2, ..Default::default() };
    let pipeline = HiriseConfig::builder(W, H)
        .pooling(2)
        .sensor(SensorConfig::noiseless())
        .detector(detector)
        .max_rois(4)
        .roi_margin(4)
        .build()
        .unwrap();
    ServeConfig::new(pipeline)
        .temporal(TemporalConfig::default().keyframe_interval(INTERVAL).drift_threshold(1.0))
        .rated_sessions(rated)
        .max_sessions(4 * rated)
        .queue_capacity(4)
        .quantum(2)
        .latency_window(64)
}

/// The canonical source factory: scenario-backed sources regenerated
/// from the spec alone.
fn factory(spec: &SessionSpec) -> Option<FrameSource> {
    hirise_serve::source_for(spec, W, H)
}

/// Asserts every *deterministic* field of two fleet summaries is
/// identical — everything except wall-clock latency, which is measured,
/// not computed, and so is exempt from the replay contract.
fn assert_fleet_identical(a: &ServeSummary, b: &ServeSummary, label: &str) {
    assert_eq!(a.ticks, b.ticks, "{label}: ticks");
    assert_eq!(a.admitted, b.admitted, "{label}: admitted");
    assert_eq!(a.rejected, b.rejected, "{label}: rejected");
    assert_eq!(a.dropped, b.dropped, "{label}: dropped");
    assert_eq!(a.completed, b.completed, "{label}: completed");
    assert_eq!(a.active, b.active, "{label}: active");
    assert_eq!(a.frames, b.frames, "{label}: frames");
    assert_eq!(a.keyframes, b.keyframes, "{label}: keyframes");
    assert_eq!(a.drift_refreshes, b.drift_refreshes, "{label}: drift refreshes");
    assert_eq!(a.tracked_frames, b.tracked_frames, "{label}: tracked frames");
    assert_eq!(a.energy_mj.to_bits(), b.energy_mj.to_bits(), "{label}: energy not bit-identical");
    assert_eq!(a.deferred, b.deferred, "{label}: deferrals");
    assert_eq!(a.quarantined, b.quarantined, "{label}: quarantined");
    assert_eq!(a.recovered, b.recovered, "{label}: recovered");
    assert_eq!(a.max_recovery_frames, b.max_recovery_frames, "{label}: recovery span");
    assert_eq!(a.deadline_misses, b.deadline_misses, "{label}: deadline misses");
    assert_eq!(a.shed_level, b.shed_level, "{label}: shed level");
    assert_eq!(a.max_shed_level, b.max_shed_level, "{label}: max shed level");
    assert_eq!(a.sessions.len(), b.sessions.len(), "{label}: session count");
    for (x, y) in a.sessions.iter().zip(&b.sessions) {
        let tag = format!("{label}: session {}", x.name);
        assert_eq!(x.id, y.id, "{tag}: id");
        assert_eq!(x.name, y.name, "{tag}: name");
        assert_eq!(x.priority, y.priority, "{tag}: priority");
        assert_eq!(x.completed, y.completed, "{tag}: completed");
        assert_eq!(x.deferred, y.deferred, "{tag}: deferred");
        assert_eq!(x.max_shed_level, y.max_shed_level, "{tag}: shed level");
        assert_eq!(x.poisoned, y.poisoned, "{tag}: poisoned");
        assert_eq!(x.poisoned_frames, y.poisoned_frames, "{tag}: poisoned frames");
        assert_eq!(x.quarantines, y.quarantines, "{tag}: quarantines");
        assert_eq!(x.recoveries, y.recoveries, "{tag}: recoveries");
        assert_eq!(x.max_recovery_frames, y.max_recovery_frames, "{tag}: recovery span");
        assert_eq!(x.summary, y.summary, "{tag}: stream summary diverged");
    }
}

/// Drives `plans` to completion with journaling but no crash; returns
/// the summary and the reference journal.
fn uninterrupted(config: ServeConfig, plans: &[SessionPlan]) -> (ServeSummary, ArrivalJournal) {
    let mut engine = ServeEngine::new(config).unwrap();
    let mut journal = ArrivalJournal::new();
    let outcome =
        run_plans_journaled(&mut engine, plans, &factory, &mut journal, 0, None, &mut |_| false)
            .unwrap();
    assert!(outcome.crashed_at.is_none());
    (engine.summary(), journal)
}

/// Kills the engine at `crash_tick`, then performs the full recovery
/// protocol: restore the last snapshot (or cold-start), replay the
/// journal tail, resume the un-attempted plan tail. Returns the final
/// summary and the (continued) journal.
fn crash_and_recover(
    config_for: &dyn Fn() -> ServeConfig,
    plans: &[SessionPlan],
    snapshot_every: u64,
    crash_tick: u64,
    workers: Option<usize>,
) -> (ServeSummary, ArrivalJournal) {
    let mut engine = ServeEngine::new(config_for()).unwrap();
    let mut journal = ArrivalJournal::new();
    let outcome = run_plans_journaled(
        &mut engine,
        plans,
        &factory,
        &mut journal,
        snapshot_every,
        workers,
        &mut |tick| tick == crash_tick,
    )
    .unwrap();
    if outcome.crashed_at.is_none() {
        // The fleet drained before the oracle fired — nothing to
        // recover; the run *is* the uninterrupted run.
        return (engine.summary(), journal);
    }
    drop(engine); // the process is dead; only snapshot + journal survive

    // Snapshots round-trip through their serialized envelope, exactly
    // as a restart off stable storage would read them back.
    let mut recovered = match outcome.snapshot {
        Some(snapshot) => {
            let bytes = snapshot.into_bytes();
            let reread = EngineSnapshot::from_bytes(bytes).expect("persisted snapshot must reopen");
            ServeEngine::restore(&reread, config_for(), &factory).expect("restore must succeed")
        }
        None => ServeEngine::new(config_for()).unwrap(),
    };
    recovered.replay_from(&journal, &factory).expect("replay must succeed");
    assert_eq!(recovered.ticks(), journal.ticks(), "replay must land on the journal's boundary");
    let tail = &plans[journal.admissions()..];
    run_plans_journaled(
        &mut recovered,
        tail,
        &factory,
        &mut journal,
        snapshot_every,
        workers,
        &mut |_| false,
    )
    .unwrap();
    (recovered.summary(), journal)
}

#[test]
fn crash_at_any_tick_recovers_bit_identically() {
    // The tentpole acceptance: 8 mixed sessions under shed pressure
    // (rated 3 < 8 live), killed at *every* tick of the run, must
    // recover to the exact uninterrupted outcome — counters, energy,
    // shed history, per-session stream summaries, and the journal
    // itself.
    let plans = hirise_serve::generate(&TrafficConfig::default().sessions(8));
    let config_for = || serve_config(3);
    let (baseline, baseline_journal) = uninterrupted(config_for(), &plans);
    assert_eq!(baseline.dropped, 0);
    assert_eq!(baseline.completed, 8);
    assert!(baseline.max_shed_level > 0, "the mix must exercise shed state in the snapshot");
    let total_ticks = baseline.ticks;
    assert!(total_ticks > 6, "workload too short to sweep: {total_ticks} ticks");

    for crash_tick in 1..total_ticks {
        let (summary, journal) = crash_and_recover(&config_for, &plans, 3, crash_tick, None);
        assert_fleet_identical(&baseline, &summary, &format!("crash at tick {crash_tick}"));
        assert_eq!(
            journal, baseline_journal,
            "crash at tick {crash_tick}: recovered journal diverged"
        );
    }
}

#[test]
fn recovery_is_worker_count_invariant() {
    // The same crash/recover cycle at parallel worker counts lands on
    // the same serial baseline: enqueue-time shed stamping makes the
    // replay exact regardless of how the slab is sharded.
    let plans = hirise_serve::generate(&TrafficConfig::default().sessions(8));
    let config_for = || serve_config(3);
    let (baseline, _) = uninterrupted(config_for(), &plans);
    let crash_ticks = [2, 3, baseline.ticks / 2, baseline.ticks - 2];
    for workers in [1usize, 2, 4] {
        for &crash_tick in &crash_ticks {
            let (summary, _) = crash_and_recover(&config_for, &plans, 4, crash_tick, Some(workers));
            assert_fleet_identical(
                &baseline,
                &summary,
                &format!("{workers} workers, crash at tick {crash_tick}"),
            );
        }
    }
}

#[test]
fn cold_start_replay_recovers_without_any_snapshot() {
    // snapshot_every = 0 disables snapshots entirely: recovery then
    // cold-starts a fresh engine and replays the whole journal — the
    // degenerate (slowest, always-correct) end of the MTTR spectrum.
    let plans = hirise_serve::generate(&TrafficConfig::default().sessions(6));
    let config_for = || serve_config(3);
    let (baseline, _) = uninterrupted(config_for(), &plans);
    let (summary, _) = crash_and_recover(&config_for, &plans, 0, baseline.ticks / 2, None);
    assert_fleet_identical(&baseline, &summary, "cold-start replay");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Satellite: encode→decode identity over arbitrary fleet shapes.
    // `snapshot(restore(snapshot(e)))` must equal `snapshot(e)` byte
    // for byte — covering tracker states mid-stream, queue stamps,
    // shed/priority spread, latency rings, and free-list order, all
    // randomized through the traffic generator.
    #[test]
    fn snapshot_restore_snapshot_is_byte_identical(
        sessions in 2usize..7,
        seed in 0u64..1_000,
        rated in 1usize..4,
        stop_tick in 1u64..10,
    ) {
        let plans = hirise_serve::generate(
            &TrafficConfig::default().sessions(sessions).seed(seed),
        );
        let mut engine = ServeEngine::new(serve_config(rated)).unwrap();
        let mut journal = ArrivalJournal::new();
        let outcome = run_plans_journaled(
            &mut engine,
            &plans,
            &factory,
            &mut journal,
            1,
            None,
            &mut |tick| tick >= stop_tick,
        )
        .unwrap();
        if let Some(snapshot) = outcome.snapshot {
            let restored =
                ServeEngine::restore(&snapshot, serve_config(rated), &factory).unwrap();
            let again = restored.snapshot();
            prop_assert_eq!(
                again.as_bytes(),
                snapshot.as_bytes(),
                "restore must reconstruct the slab exactly"
            );
            prop_assert_eq!(again.ticks(), snapshot.ticks());
            prop_assert_eq!(again.live_sessions(), snapshot.live_sessions());
        }
    }
}

#[test]
fn mid_tick_snapshot_round_trips_queued_frames() {
    // Snapshots at the contract's boundary always see drained queues;
    // this one is taken mid-tick (arrivals enqueued, nothing served) so
    // the queue stamps, pending counters, and backpressure deferrals
    // all take the codec path — and must survive it bit-exactly.
    let mut engine = ServeEngine::new(serve_config(2)).unwrap();
    for i in 0..4u64 {
        let spec = SessionSpec::default()
            .name(format!("q{i}"))
            .scenario("crossing")
            .seed(i)
            .frames(12)
            .frames_per_tick(3);
        let source = factory(&spec).unwrap();
        engine.admit(spec, source).unwrap();
    }
    for _ in 0..3 {
        engine.tick(); // queues fill (capacity 4 < 3 frames/tick backlog)
    }
    let snapshot = engine.snapshot();
    assert!(snapshot.live_sessions() == 4);
    let restored = ServeEngine::restore(&snapshot, serve_config(2), &factory).unwrap();
    assert_eq!(restored.snapshot().as_bytes(), snapshot.as_bytes());
    // Both engines then drain to the same deterministic outcome.
    let mut original = engine;
    let mut restored = restored;
    original.drain().unwrap();
    restored.drain().unwrap();
    assert_fleet_identical(&original.summary(), &restored.summary(), "post-restore drain");
}

#[test]
fn corrupted_snapshots_are_rejected_never_half_restored() {
    // Satellite: flip single bits across the envelope — every one must
    // be caught at `from_bytes` (truncation/magic/version/checksum),
    // before any field decode, so no restore path ever sees them.
    let plans = hirise_serve::generate(&TrafficConfig::default().sessions(4));
    let mut engine = ServeEngine::new(serve_config(2)).unwrap();
    let mut journal = ArrivalJournal::new();
    run_plans_journaled(&mut engine, &plans, &factory, &mut journal, 0, None, &mut |t| t >= 3)
        .unwrap();
    let snapshot = engine.snapshot();
    let bytes = snapshot.as_bytes().to_vec();
    assert!(EngineSnapshot::from_bytes(bytes.clone()).is_ok());
    for bit in (0..bytes.len() * 8).step_by(97) {
        let mut corrupt = bytes.clone();
        corrupt[bit / 8] ^= 1 << (bit % 8);
        assert!(
            EngineSnapshot::from_bytes(corrupt).is_err(),
            "bit flip at {bit} slipped past envelope validation"
        );
    }
    // Truncation at every prefix is likewise rejected.
    for len in 0..bytes.len().min(64) {
        assert!(EngineSnapshot::from_bytes(bytes[..len].to_vec()).is_err());
    }
    // And the journal envelope holds to the same standard.
    let jbytes = journal.to_bytes();
    assert!(ArrivalJournal::from_bytes(&jbytes).is_ok());
    for bit in (0..jbytes.len() * 8).step_by(61) {
        let mut corrupt = jbytes.clone();
        corrupt[bit / 8] ^= 1 << (bit % 8);
        assert!(
            ArrivalJournal::from_bytes(&corrupt).is_err(),
            "journal bit flip at {bit} slipped past validation"
        );
    }
}

#[test]
fn restore_refuses_a_config_fingerprint_mismatch() {
    // Replaying under a different policy would silently diverge; the
    // fingerprint check turns that into a structured refusal.
    let plans = hirise_serve::generate(&TrafficConfig::default().sessions(4));
    let mut engine = ServeEngine::new(serve_config(2)).unwrap();
    let mut journal = ArrivalJournal::new();
    run_plans_journaled(&mut engine, &plans, &factory, &mut journal, 0, None, &mut |t| t >= 3)
        .unwrap();
    let snapshot = engine.snapshot();
    let drifted = serve_config(2).quantum(3);
    match ServeEngine::restore(&snapshot, drifted, &factory) {
        Err(RestoreError::ConfigMismatch { snapshot: s, config: c }) => assert_ne!(s, c),
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
    // The same snapshot still restores under the faithful config.
    assert!(ServeEngine::restore(&snapshot, serve_config(2), &factory).is_ok());
}

#[test]
fn replay_refuses_a_journal_shorter_than_the_engine() {
    let plans = hirise_serve::generate(&TrafficConfig::default().sessions(4));
    let mut engine = ServeEngine::new(serve_config(2)).unwrap();
    let mut journal = ArrivalJournal::new();
    run_plans_journaled(&mut engine, &plans, &factory, &mut journal, 2, None, &mut |t| t >= 4)
        .unwrap();
    let snapshot = engine.snapshot();
    let mut restored = ServeEngine::restore(&snapshot, serve_config(2), &factory).unwrap();
    let stale = ArrivalJournal::new(); // pretend the journal was lost
    match restored.replay_from(&stale, &factory) {
        Err(ReplayError::MissingTicks { engine_ticks, journal_ticks }) => {
            assert_eq!(engine_ticks, snapshot.ticks());
            assert_eq!(journal_ticks, 0);
        }
        other => panic!("expected MissingTicks, got {other:?}"),
    }
}

#[test]
fn journal_round_trips_and_counts_its_records() {
    let plans = hirise_serve::generate(&TrafficConfig::default().sessions(5));
    let mut engine = ServeEngine::new(serve_config(2)).unwrap();
    let mut journal = ArrivalJournal::new();
    run_plans_journaled(&mut engine, &plans, &factory, &mut journal, 0, None, &mut |_| false)
        .unwrap();
    assert_eq!(journal.admissions(), plans.len(), "every admission attempt journaled");
    assert_eq!(journal.ticks(), engine.ticks(), "every tick boundary journaled");
    let reread = ArrivalJournal::from_bytes(&journal.to_bytes()).unwrap();
    assert_eq!(reread, journal, "journal must survive its envelope round-trip");
}

/// Panics exactly one `(session, frame)` pair — the chaos suite's
/// injector, here combined with a process crash.
#[derive(Debug)]
struct PanicAt {
    session: u64,
    frame: u32,
}

impl FaultInjector for PanicAt {
    fn action(&self, session: SessionId, frame_index: u32) -> FaultAction {
        if session.0 == self.session && frame_index == self.frame {
            FaultAction::Panic
        } else {
            FaultAction::None
        }
    }
}

#[test]
fn crash_during_a_quarantine_recovery_window_still_converges() {
    // Satellite: compound failure. Session 2 panics at frame 6 (tick 4
    // at 2 frames/tick; its checkpoint recovery completes at frame 8,
    // tick 5) and the *process* crashes around that window:
    //   (snapshot 3, crash 4) — restore pre-quarantine, the fault
    //     re-fires during replay;
    //   (snapshot 4, crash 5) — the snapshot itself captures the
    //     mid-recovery session state;
    //   (snapshot 2, crash 4) — snapshot at the crash tick: empty
    //     replay tail, recovery completes purely post-restore.
    // Every combination must converge to the uninterrupted chaos run,
    // within the keyframe recovery budget, with a blast radius of
    // exactly one session versus a fault-free fleet.
    let plans: Vec<SessionPlan> = (0..4u64)
        .map(|i| SessionPlan {
            at_tick: 0,
            spec: SessionSpec::default()
                .name(format!("c{i}"))
                .scenario("clean")
                .seed(0x5EED + i)
                .frames(16)
                .frames_per_tick(2),
        })
        .collect();
    let fault: Arc<dyn FaultInjector> = Arc::new(PanicAt { session: 2, frame: 6 });
    let faulted_config = || serve_config(4).fault(Arc::clone(&fault));

    let (clean, _) = uninterrupted(serve_config(4), &plans);
    assert_eq!(clean.quarantined, 0);
    let (chaos, _) = uninterrupted(faulted_config(), &plans);
    assert_eq!(chaos.quarantined, 1);
    assert_eq!(chaos.recovered, 1);
    assert!(
        (1..=INTERVAL).contains(&chaos.max_recovery_frames),
        "recovery took {} frames, budget is {INTERVAL}",
        chaos.max_recovery_frames
    );
    assert_eq!(chaos.frames, clean.frames - 1, "the poisoned frame is consumed, not folded");
    // Blast radius: only the faulted session differs from the clean run.
    for (c, f) in clean.sessions.iter().zip(&chaos.sessions) {
        if c.id.0 == 2 {
            assert_ne!(c.summary, f.summary, "the fault must be observable on its session");
        } else {
            assert!(!f.poisoned);
            assert_eq!(c.summary, f.summary, "fault bled into session {}", c.name);
        }
    }

    for (snapshot_every, crash_tick) in [(3u64, 4u64), (4, 5), (2, 4)] {
        let label = format!("snapshot every {snapshot_every}, crash at {crash_tick}");
        let (summary, _) =
            crash_and_recover(&faulted_config, &plans, snapshot_every, crash_tick, None);
        assert_fleet_identical(&chaos, &summary, &label);
    }
}
