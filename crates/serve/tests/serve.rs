//! Integration tests for the serve engine: the overload contract
//! (degrade, never drop), backpressure, admission, and the
//! interleaving-invariance extension of the determinism contract.

use hirise::{HiriseConfig, SensorConfig, TemporalConfig};
use hirise_imaging::{draw, Rect, RgbImage};
use hirise_serve::{
    generate, run_plans, AdmitError, FrameSource, Priority, ServeConfig, ServeEngine, SessionSpec,
    TrafficConfig,
};

const W: u32 = 64;
const H: u32 = 48;

/// A short clip with one moving textured object.
fn clip(frames: u32, phase: u32) -> Vec<RgbImage> {
    (0..frames)
        .map(|i| {
            let mut img = RgbImage::from_fn(W, H, |_, _| (0.35, 0.35, 0.35));
            let x = 6 + (phase * 5 + i * 2) % (W / 2);
            let obj = Rect::new(x, 12, 12, 20);
            draw::fill_rect_rgb(&mut img, obj, (0.9, 0.4, 0.2));
            let [pr, _, _] = img.planes_mut();
            draw::fill_stripes(pr, obj, 2, 0.95, 0.55);
            img
        })
        .collect()
}

fn pipeline_config() -> HiriseConfig {
    let detector = hirise::DetectorConfig { score_threshold: 0.2, ..Default::default() };
    HiriseConfig::builder(W, H)
        .pooling(2)
        .sensor(SensorConfig::noiseless())
        .detector(detector)
        .max_rois(4)
        .roi_margin(4)
        .build()
        .unwrap()
}

fn serve_config(rated: usize) -> ServeConfig {
    ServeConfig::new(pipeline_config())
        .temporal(TemporalConfig::default().keyframe_interval(4).drift_threshold(1.0))
        .rated_sessions(rated)
        .max_sessions(4 * rated)
        .queue_capacity(4)
        .quantum(2)
        .latency_window(64)
}

/// Admits `count` clip-backed sessions of `frames` frames each, with a
/// priority spread (session i % 3: 0 → High, 1 → Normal, 2 → Low).
fn admit_fleet(engine: &mut ServeEngine, count: usize, frames: u32) {
    for i in 0..count {
        let priority = match i % 3 {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };
        let spec = SessionSpec::default()
            .name(format!("s{i}"))
            .frames(frames)
            .priority(priority)
            .frames_per_tick(2);
        engine.admit(spec, FrameSource::Frames(clip(8, i as u32))).unwrap();
    }
}

#[test]
fn overload_degrades_before_dropping_anything() {
    // 2× the rated load: the ISSUE's acceptance scenario. Degradation
    // must engage and every session must still complete every frame.
    let rated = 4;
    let mut engine = ServeEngine::new(serve_config(rated)).unwrap();
    admit_fleet(&mut engine, 2 * rated, 12);
    engine.drain().unwrap();
    let summary = engine.summary();

    assert_eq!(summary.dropped, 0, "an admitted session must never be dropped");
    assert_eq!(summary.admitted, 2 * rated as u64);
    assert_eq!(summary.completed, 2 * rated as u64, "every session must finish");
    assert_eq!(summary.active, 0);
    assert_eq!(summary.frames, 2 * rated as u64 * 12, "every frame must be served");
    // At load 2.0 the default ladder sits at base level 2; the gauge
    // reports the deepest rung any frame was stamped with, and low
    // priority rides one rung above the base.
    assert_eq!(summary.max_shed_level, 3, "degradation did not engage at 2× rated load");
    for report in &summary.sessions {
        assert!(report.completed, "session {} unfinished", report.name);
        assert_eq!(report.summary.frames, 12);
    }

    // The same fleet on a generously rated engine never sheds — and
    // schedules strictly more keyframes, because overload widened the
    // loaded fleet's keyframe interval (degradation, not drops).
    let mut unshed = ServeEngine::new(serve_config(64)).unwrap();
    admit_fleet(&mut unshed, 2 * rated, 12);
    unshed.drain().unwrap();
    let baseline = unshed.summary();
    assert_eq!(baseline.max_shed_level, 0);
    assert_eq!(baseline.frames, summary.frames);
    assert!(
        summary.keyframes < baseline.keyframes,
        "shedding should widen keyframe intervals: {} keyframes shed vs {} unshed",
        summary.keyframes,
        baseline.keyframes
    );
    // Degraded sensing is cheaper sensing: the paper's budget argument,
    // one level up.
    assert!(
        summary.energy_mj < baseline.energy_mj,
        "shedding should reduce sensor energy: {} mJ shed vs {} mJ unshed",
        summary.energy_mj,
        baseline.energy_mj
    );
}

#[test]
fn shedding_follows_priority_order() {
    // At base level 1 (just past rated), low-priority sessions are two
    // rungs in while high-priority sessions still run clean.
    let rated = 4;
    let config = serve_config(rated);
    let mut engine = ServeEngine::new(config).unwrap();
    // 6 active sessions → load 1.5 → base level 1 (strictly past 1.0,
    // not past 1.5).
    admit_fleet(&mut engine, 6, 12);
    engine.drain().unwrap();
    let summary = engine.summary();
    assert_eq!(summary.dropped, 0);
    assert_eq!(summary.max_shed_level, 2, "the gauge tops out at low priority's rung");
    let max_for = |p: Priority| {
        summary.sessions.iter().filter(|r| r.priority == p).map(|r| r.max_shed_level).max().unwrap()
    };
    assert_eq!(max_for(Priority::High), 0, "high priority degraded at base level 1");
    assert_eq!(max_for(Priority::Normal), 1);
    assert_eq!(max_for(Priority::Low), 2, "low priority must degrade first");
}

#[test]
fn backpressure_defers_but_serves_everything() {
    // Arrivals outrun the queue: 6 frames/tick into a 4-deep queue.
    // The overflow must be deferred to later ticks — and still served.
    let mut engine = ServeEngine::new(serve_config(8).queue_capacity(4)).unwrap();
    let spec = SessionSpec::default().frames(30).frames_per_tick(6);
    engine.admit(spec, FrameSource::Frames(clip(8, 0))).unwrap();
    engine.drain().unwrap();
    let summary = engine.summary();
    assert_eq!(summary.frames, 30, "deferred frames must eventually be served");
    assert_eq!(summary.dropped, 0);
    assert!(summary.deferred > 0, "queue bound never engaged — backpressure untested");
    assert_eq!(summary.completed, 1);
}

#[test]
fn admission_cap_refuses_at_the_door() {
    let config = serve_config(1).max_sessions(2);
    let mut engine = ServeEngine::new(config).unwrap();
    let admit = |engine: &mut ServeEngine, name: &str| {
        engine.admit(SessionSpec::default().name(name).frames(4), FrameSource::Frames(clip(4, 0)))
    };
    admit(&mut engine, "a").unwrap();
    admit(&mut engine, "b").unwrap();
    let refused = admit(&mut engine, "c");
    assert!(matches!(refused, Err(AdmitError::Full { active: 2, max_sessions: 2 })));
    assert_eq!(engine.rejected(), 1);
    assert_eq!(engine.active_sessions(), 2);
    // Degenerate admissions are refused with a reason, not counted
    // against the cap... and an empty clip cannot enter the slab.
    let empty = engine.admit(SessionSpec::default(), FrameSource::Frames(Vec::new()));
    assert!(matches!(empty, Err(AdmitError::Invalid { .. })));
    let zero_frames = admit(&mut engine, "d");
    assert!(matches!(zero_frames, Err(AdmitError::Full { .. })));
    // Draining frees the slab for new admissions.
    engine.drain().unwrap();
    admit(&mut engine, "e").unwrap();
    assert_eq!(engine.summary().rejected, 2, "\"c\" and \"d\" both hit the cap");
}

/// Runs the same overloaded fleet under a given serve driver and
/// returns the per-session summaries in admission order.
fn run_fleet_with(
    drive: impl Fn(&mut ServeEngine) -> Result<u64, hirise_serve::ServeError>,
) -> hirise_serve::ServeSummary {
    let mut engine = ServeEngine::new(serve_config(4)).unwrap();
    admit_fleet(&mut engine, 8, 10);
    loop {
        engine.tick();
        if engine.active_sessions() == 0 {
            return engine.summary();
        }
        drive(&mut engine).unwrap();
    }
}

#[test]
fn per_session_outputs_are_invariant_to_worker_count() {
    // The determinism contract, extended to the serve layer: for a
    // fixed tick schedule (serve-to-dry each tick), the per-session
    // outputs are bit-identical whether the slab is drained serially or
    // by any number of shard workers. Shed levels were stamped at
    // enqueue, sessions share no mutable state, and the sensor noise is
    // position-keyed — nothing observes the scheduling.
    let serial = run_fleet_with(|e| e.serve(u64::MAX));
    assert_eq!(serial.max_shed_level, 3, "fleet must be overloaded for the test to bite");
    for workers in [1, 2, 4] {
        let parallel = run_fleet_with(|e| e.serve_parallel(workers));
        assert_eq!(parallel.sessions.len(), serial.sessions.len());
        for (p, s) in parallel.sessions.iter().zip(&serial.sessions) {
            assert_eq!(p.id, s.id);
            assert_eq!(p.summary, s.summary, "session {} diverged at {workers} workers", s.name);
            assert_eq!(p.max_shed_level, s.max_shed_level);
            assert_eq!(p.deferred, s.deferred);
        }
        assert_eq!(parallel.frames, serial.frames);
        assert_eq!(parallel.energy_mj, serial.energy_mj);
    }
}

#[test]
fn per_session_outputs_are_invariant_to_serve_chunking_below_rated_load() {
    // Below rated load the shed trajectory is identically zero, so even
    // the serve *budget* chunking (how many frames each serve call
    // processes before yielding) cannot affect any session's output —
    // frames just wait longer in their queues.
    let run = |budget: u64| {
        let mut engine = ServeEngine::new(serve_config(16)).unwrap();
        admit_fleet(&mut engine, 4, 10);
        loop {
            engine.tick();
            if engine.active_sessions() == 0 {
                return engine.summary();
            }
            let mut guard = 0;
            while engine.serve(budget).unwrap() == budget {
                guard += 1;
                assert!(guard < 10_000, "serve loop runaway");
            }
        }
    };
    let fine = run(1);
    let coarse = run(u64::MAX);
    assert_eq!(fine.max_shed_level, 0);
    assert_eq!(fine.sessions.len(), coarse.sessions.len());
    for (a, b) in fine.sessions.iter().zip(&coarse.sessions) {
        assert_eq!(a.summary, b.summary, "session {} diverged under budget chunking", b.name);
    }
}

#[test]
fn traffic_driven_stress_run_completes_everything() {
    // The seeded synthetic workload end to end: scenario-backed
    // sessions, bursts, arrival spread, cap refusals — everything the
    // saturation benchmark drives, at test scale.
    let mut engine = ServeEngine::new(serve_config(4)).unwrap();
    let plans = generate(&TrafficConfig::default().sessions(12).seed(7));
    run_plans(&mut engine, &plans).unwrap();
    let summary = engine.summary();
    assert_eq!(summary.dropped, 0);
    assert_eq!(summary.admitted + summary.rejected, 12);
    assert_eq!(summary.completed, summary.admitted);
    assert_eq!(summary.active, 0);
    let expected: u64 = plans.iter().map(|p| u64::from(p.spec.frames)).sum();
    assert_eq!(summary.frames, expected, "refusals should be zero at this cap");
    assert!(summary.max_shed_level > 0, "12 sessions over rated 4 must shed");
    assert_eq!(
        summary.frames,
        summary.keyframes + summary.drift_refreshes + summary.tracked_frames
    );
    // The latency plumbing produced real measurements.
    assert!(summary.p50_ms > 0.0 && summary.p99_ms >= summary.p50_ms);
    // And the run reproduces bit-for-bit from the same seed.
    let mut again = ServeEngine::new(serve_config(4)).unwrap();
    run_plans(&mut again, &generate(&TrafficConfig::default().sessions(12).seed(7))).unwrap();
    let second = again.summary();
    assert_eq!(second.frames, summary.frames);
    assert_eq!(second.energy_mj, summary.energy_mj);
    for (a, b) in second.sessions.iter().zip(&summary.sessions) {
        assert_eq!(a.summary, b.summary);
    }
}
