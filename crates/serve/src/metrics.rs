//! Per-session latency observability in fixed memory.
//!
//! A long-lived service cannot keep every frame latency, so each session
//! records into a [`LatencyReservoir`]: a fixed-size ring over the most
//! recent `window` samples. Percentiles use the **nearest-rank** method
//! (the classic `ceil(p/100 · n)`-th order statistic), which always
//! returns an observed sample — no interpolation, so a reported p99 is a
//! latency some frame actually paid.

/// Fixed-size ring of the most recent latency samples, milliseconds.
///
/// Recording is allocation-free after construction (the ring is
/// pre-allocated to its window); percentile queries sort a copy and are
/// meant for summary time, not the per-frame hot path.
#[derive(Debug, Clone)]
pub struct LatencyReservoir {
    samples: Vec<f64>,
    head: usize,
    window: usize,
    recorded: u64,
}

impl LatencyReservoir {
    /// An empty reservoir retaining at most `window` samples (`0`
    /// retains nothing).
    pub fn new(window: usize) -> Self {
        Self { samples: Vec::with_capacity(window), head: 0, window, recorded: 0 }
    }

    /// Records one latency sample, evicting the oldest once full.
    pub fn record(&mut self, latency_ms: f64) {
        self.recorded += 1;
        if self.window == 0 {
            return;
        }
        if self.samples.len() < self.window {
            self.samples.push(latency_ms);
        } else {
            self.samples[self.head] = latency_ms;
            self.head = (self.head + 1) % self.window;
        }
    }

    /// Retained samples, in no particular order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Total samples ever recorded (not capped by the window).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Retained sample count.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Nearest-rank percentile over the retained window (`0.0` when
    /// empty).
    pub fn percentile(&self, p: f64) -> f64 {
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        nearest_rank(&sorted, p)
    }

    /// Median latency over the retained window.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Tail latency over the retained window.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Serializes the ring (window, eviction cursor, lifetime count,
    /// samples) into an open snapshot envelope.
    pub(crate) fn encode_into(&self, enc: &mut hirise::recover::Encoder) {
        enc.u64(self.window as u64);
        enc.u64(self.head as u64);
        enc.u64(self.recorded);
        enc.seq(self.samples.len());
        for &sample in &self.samples {
            enc.f64(sample);
        }
    }

    /// Reads a ring written by [`LatencyReservoir::encode_into`].
    pub(crate) fn decode_from(
        dec: &mut hirise::recover::Decoder<'_>,
    ) -> std::result::Result<Self, hirise::RecoverError> {
        let window = dec.u64()? as usize;
        let head = dec.u64()? as usize;
        let recorded = dec.u64()?;
        let len = dec.seq(8)?;
        if len > window || head >= window.max(1) {
            return Err(hirise::RecoverError::malformed(format!(
                "latency ring: {len} samples / cursor {head} in a window of {window}"
            )));
        }
        let mut samples = Vec::with_capacity(window);
        for _ in 0..len {
            samples.push(dec.f64()?);
        }
        Ok(Self { samples, head, window, recorded })
    }
}

/// Nearest-rank percentile of an ascending-sorted sample set: the
/// `ceil(p/100 · n)`-th smallest sample (rank clamped to `1..=n`), or
/// `0.0` for an empty set.
pub fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_golden_values_on_1_to_100() {
        // With n = 100 the nearest-rank percentile is the textbook
        // identity: pX is the X-th smallest sample.
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(nearest_rank(&samples, 50.0), 50.0);
        assert_eq!(nearest_rank(&samples, 90.0), 90.0);
        assert_eq!(nearest_rank(&samples, 99.0), 99.0);
        assert_eq!(nearest_rank(&samples, 100.0), 100.0);
        assert_eq!(nearest_rank(&samples, 1.0), 1.0);
    }

    #[test]
    fn nearest_rank_golden_values_on_small_sets() {
        let samples = [10.0, 20.0, 30.0, 40.0];
        // ceil(0.50 · 4) = 2nd, ceil(0.99 · 4) = 4th, ceil(0.01 · 4) = 1st.
        assert_eq!(nearest_rank(&samples, 50.0), 20.0);
        assert_eq!(nearest_rank(&samples, 99.0), 40.0);
        assert_eq!(nearest_rank(&samples, 1.0), 10.0);
        // A single sample is every percentile.
        assert_eq!(nearest_rank(&[7.5], 1.0), 7.5);
        assert_eq!(nearest_rank(&[7.5], 99.0), 7.5);
        // Degenerate requests stay in range rather than indexing out.
        assert_eq!(nearest_rank(&samples, 0.0), 10.0);
        assert_eq!(nearest_rank(&samples, 200.0), 40.0);
    }

    #[test]
    fn empty_reservoir_reports_zero() {
        let r = LatencyReservoir::new(8);
        assert!(r.is_empty());
        assert_eq!(r.percentile(50.0), 0.0);
        assert_eq!(r.p99(), 0.0);
    }

    #[test]
    fn reservoir_ring_keeps_the_most_recent_window() {
        let mut r = LatencyReservoir::new(8);
        for i in 1..=20 {
            r.record(f64::from(i));
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.recorded(), 20);
        let mut kept = r.samples().to_vec();
        kept.sort_by(f64::total_cmp);
        assert_eq!(kept, (13..=20).map(f64::from).collect::<Vec<_>>());
        // Percentiles are over the window, not the full history.
        assert_eq!(r.p50(), 16.0);
        assert_eq!(r.p99(), 20.0);
    }

    #[test]
    fn zero_window_reservoir_counts_but_retains_nothing() {
        let mut r = LatencyReservoir::new(0);
        for _ in 0..5 {
            r.record(1.0);
        }
        assert_eq!(r.recorded(), 5);
        assert!(r.is_empty());
        assert_eq!(r.p50(), 0.0);
    }
}
