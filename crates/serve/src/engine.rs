//! The serve engine: session slab, admission control, tick-driven
//! shedding, and deficit-round-robin frame scheduling.
//!
//! # Lifecycle
//!
//! Sessions are [`ServeEngine::admit`]ted into a fixed slab (refused —
//! never silently queued or dropped — past `max_sessions`). Time
//! advances in [`ServeEngine::tick`]s: each tick retires finished
//! sessions, recomputes the fleet's shed level from the deterministic
//! load ratio `active / rated_sessions`, and lets every session move
//! this tick's frame arrivals into its bounded queue, stamping each
//! queued frame with the session's current shed level. Between ticks,
//! [`ServeEngine::serve`] (or [`ServeEngine::serve_parallel`]) drains
//! the queues round-robin, `quantum` frames per session per round.
//!
//! # Determinism
//!
//! The shed level is computed only at tick time from admission/retire
//! counts, and stamped per frame at enqueue time — never read during
//! serving. A session's output is therefore a pure function of its
//! `(spec, source, arrival schedule, stamped level trajectory)`: for a
//! fixed tick/serve driver schedule, worker counts, slot placement, and
//! round-robin order cannot change any session's frames, counters, or
//! energy fold. The integration tests pin this bit-for-bit.
//!
//! # No drops, by construction
//!
//! There is no code path that discards an admitted session or a
//! generated frame: overload widens keyframe intervals and shrinks ROI
//! margins (the [`ShedPolicy`] ladder), and full queues defer arrivals
//! to later ticks. [`ServeSummary::dropped`] exists to pin that
//! contract at 0 in every report.

use std::sync::Arc;

use hirise::{HiriseConfig, HiriseError, PipelineScratch, Result, TemporalConfig};

use crate::fault::FaultInjector;
use crate::session::{FrameSource, Session, SessionReport, SessionSpec};
use crate::shed::ShedPolicy;

/// Engine-assigned session identity: the admission sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Why [`ServeEngine::admit`] refused a session. Refusal at the door is
/// the only "no" the engine ever says — an admitted session is never
/// dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The slab is at its hard cap.
    Full {
        /// Sessions currently live.
        active: usize,
        /// The configured cap.
        max_sessions: usize,
    },
    /// The spec or source is degenerate (zero frames, empty clip, …).
    Invalid {
        /// Description of the violated constraint.
        reason: String,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Full { active, max_sessions } => {
                write!(f, "admission refused: {active} active sessions at the cap {max_sessions}")
            }
            AdmitError::Invalid { reason } => write!(f, "admission refused: {reason}"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Why a serve pass failed. With session isolation on (the default) a
/// panicking session is quarantined rather than surfaced here, so
/// [`ServeError::WorkerPanicked`] only appears when isolation is
/// explicitly disabled or a worker fails outside any session's frame.
#[derive(Debug)]
pub enum ServeError {
    /// A serve worker thread panicked. Replaces the old fleet-fatal
    /// `handle.join().expect(...)`: the caller gets a structured error
    /// (and every other worker still wound down cleanly) instead of an
    /// abort.
    WorkerPanicked {
        /// The slab shard index of the panicking worker (`0` for the
        /// serial path).
        worker: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A frame-level pipeline failure (the session's queue state stays
    /// consistent — the failed frame is consumed).
    Frame(HiriseError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::WorkerPanicked { worker, message } => {
                write!(f, "serve worker {worker} panicked: {message}")
            }
            ServeError::Frame(e) => write!(f, "frame failure: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Frame(e) => Some(e),
            ServeError::WorkerPanicked { .. } => None,
        }
    }
}

impl From<HiriseError> for ServeError {
    fn from(e: HiriseError) -> Self {
        ServeError::Frame(e)
    }
}

/// Extracts a human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Configuration of a [`ServeEngine`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The per-session pipeline configuration (shared; sessions differ
    /// only in their frame sources and specs).
    pub pipeline: HiriseConfig,
    /// The undegraded temporal policy — shed level 0.
    pub temporal: TemporalConfig,
    /// The load the fleet is provisioned for; the shed ladder engages on
    /// `active / rated_sessions`.
    pub rated_sessions: usize,
    /// Hard admission cap (slab size, ≥ `rated_sessions`).
    pub max_sessions: usize,
    /// Bounded per-session frame queue length (≥ 1).
    pub queue_capacity: usize,
    /// Deficit-round-robin quantum: frames served per session per
    /// scheduling round (≥ 1).
    pub quantum: u32,
    /// Latency reservoir window per session.
    pub latency_window: usize,
    /// The overload shed ladder.
    pub shed: ShedPolicy,
    /// Optional per-frame fault oracle (chaos testing); `None` disables
    /// injection entirely.
    pub fault: Option<Arc<dyn FaultInjector>>,
    /// Wrap each session's frame work in a panic boundary: a panicking
    /// session is quarantined and restored from its keyframe checkpoint
    /// while the fleet keeps serving. Off, a panic escapes to the serve
    /// worker and surfaces as [`ServeError::WorkerPanicked`].
    pub isolate_sessions: bool,
    /// Per-frame latency deadline for the watchdog, ms (`0` disables
    /// it). A frame over deadline escalates its session one shed rung on
    /// the next tick's arrivals — the session gets cheaper before the
    /// queue starts deferring.
    pub deadline_ms: f64,
}

impl ServeConfig {
    /// A small default fleet: rated for 8 sessions, capped at 32,
    /// session isolation on, no fault injection, watchdog disabled.
    pub fn new(pipeline: HiriseConfig) -> Self {
        Self {
            pipeline,
            temporal: TemporalConfig::default(),
            rated_sessions: 8,
            max_sessions: 32,
            queue_capacity: 8,
            quantum: 2,
            latency_window: 128,
            shed: ShedPolicy::default(),
            fault: None,
            isolate_sessions: true,
            deadline_ms: 0.0,
        }
    }

    /// Sets the undegraded temporal policy.
    pub fn temporal(mut self, temporal: TemporalConfig) -> Self {
        self.temporal = temporal;
        self
    }

    /// Sets the rated session count.
    pub fn rated_sessions(mut self, rated: usize) -> Self {
        self.rated_sessions = rated;
        self
    }

    /// Sets the hard admission cap.
    pub fn max_sessions(mut self, max: usize) -> Self {
        self.max_sessions = max;
        self
    }

    /// Sets the per-session queue bound.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the round-robin quantum.
    pub fn quantum(mut self, quantum: u32) -> Self {
        self.quantum = quantum;
        self
    }

    /// Sets the latency reservoir window.
    pub fn latency_window(mut self, window: usize) -> Self {
        self.latency_window = window;
        self
    }

    /// Sets the shed ladder.
    pub fn shed(mut self, shed: ShedPolicy) -> Self {
        self.shed = shed;
        self
    }

    /// Installs a per-frame fault oracle.
    pub fn fault(mut self, fault: Arc<dyn FaultInjector>) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Enables or disables the per-session panic boundary.
    pub fn isolate_sessions(mut self, isolate: bool) -> Self {
        self.isolate_sessions = isolate;
        self
    }

    /// Sets the per-frame watchdog deadline, ms (`0` disables it).
    pub fn deadline_ms(mut self, deadline_ms: f64) -> Self {
        self.deadline_ms = deadline_ms;
        self
    }

    /// Checks the fleet shape and both embedded policies.
    ///
    /// # Errors
    ///
    /// [`hirise::HiriseError::InvalidConfig`] for a degenerate fleet
    /// (zero rated load, cap below rated, zero queue or quantum) or
    /// embedded policy.
    pub fn validate(&self) -> Result<()> {
        self.temporal.validate()?;
        self.shed.validate()?;
        let invalid = |reason: String| hirise::HiriseError::InvalidConfig { reason };
        if self.rated_sessions == 0 {
            return Err(invalid("rated_sessions must be ≥ 1".into()));
        }
        if self.max_sessions < self.rated_sessions {
            return Err(invalid(format!(
                "max_sessions ({}) must be ≥ rated_sessions ({})",
                self.max_sessions, self.rated_sessions
            )));
        }
        if self.queue_capacity == 0 {
            return Err(invalid("queue_capacity must be ≥ 1".into()));
        }
        if self.quantum == 0 {
            return Err(invalid("quantum must be ≥ 1".into()));
        }
        // `!(x >= 0.0)` rather than `x < 0.0`: rejects NaN too.
        if !(self.deadline_ms >= 0.0) {
            return Err(invalid(format!(
                "deadline_ms must be a non-negative number ({})",
                self.deadline_ms
            )));
        }
        Ok(())
    }
}

/// Fleet-wide observability: counters, shed gauges, and latency
/// percentiles over the merged per-session windows.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Ticks elapsed.
    pub ticks: u64,
    /// Sessions admitted.
    pub admitted: u64,
    /// Sessions refused at the door (the cap).
    pub rejected: u64,
    /// Sessions dropped after admission — **structurally zero**: no
    /// engine code path discards an admitted session. The field pins
    /// the contract in every report and gate.
    pub dropped: u64,
    /// Sessions that served every requested frame.
    pub completed: u64,
    /// Sessions still live.
    pub active: u64,
    /// Frames served across all sessions.
    pub frames: u64,
    /// Scheduled full-detection frames across all sessions.
    pub keyframes: u64,
    /// Drift-triggered re-detections across all sessions.
    pub drift_refreshes: u64,
    /// Pure tracked frames across all sessions.
    pub tracked_frames: u64,
    /// Sensor-side energy across all sessions, millijoules.
    pub energy_mj: f64,
    /// Total (frame × tick) backpressure deferrals.
    pub deferred: u64,
    /// Sessions that were ever quarantined (a frame of theirs panicked
    /// inside the isolation boundary).
    pub quarantined: u64,
    /// Quarantined sessions whose every fault has recovered — the
    /// tracker restored from its keyframe checkpoint and reached the
    /// next detection frame.
    pub recovered: u64,
    /// The longest fault-to-recovery span any session paid, in served
    /// frames.
    pub max_recovery_frames: u32,
    /// Frames that exceeded the watchdog deadline, across all sessions.
    pub deadline_misses: u64,
    /// The fleet's shed base level at the last tick.
    pub shed_level: u8,
    /// The highest base level any tick reached.
    pub max_shed_level: u8,
    /// Median frame latency over the merged windows, ms.
    pub p50_ms: f64,
    /// Tail frame latency over the merged windows, ms.
    pub p99_ms: f64,
    /// Per-session reports (completed and live), in admission order.
    pub sessions: Vec<SessionReport>,
}

impl std::fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "serve: {} sessions ({} done, {} live, {} refused, {} dropped), \
             {} frames over {} ticks, shed {}/{} now/max, \
             p50 {:.3} ms, p99 {:.3} ms, {} deferrals, \
             {} quarantined ({} recovered, worst {} frames)",
            self.admitted,
            self.completed,
            self.active,
            self.rejected,
            self.dropped,
            self.frames,
            self.ticks,
            self.shed_level,
            self.max_shed_level,
            self.p50_ms,
            self.p99_ms,
            self.deferred,
            self.quarantined,
            self.recovered,
            self.max_recovery_frames,
        )
    }
}

/// The multi-tenant engine. See the module docs for the lifecycle.
#[derive(Debug)]
pub struct ServeEngine {
    // Fields are `pub(crate)` (not private) solely for the snapshot /
    // restore codec in [`crate::recover`], which must see the whole
    // slab to persist it.
    pub(crate) config: ServeConfig,
    /// The session slab: `max_sessions` fixed slots.
    pub(crate) slots: Vec<Option<Session>>,
    /// Free slot indices (top of the stack is the next admission's
    /// slot); seeded in reverse so slots fill in index order.
    pub(crate) free: Vec<usize>,
    /// The serial-path scratch, reused across every frame of every
    /// session.
    scratch: PipelineScratch,
    pub(crate) ticks: u64,
    pub(crate) admitted: u64,
    pub(crate) rejected: u64,
    pub(crate) active: usize,
    pub(crate) base_level: u8,
    pub(crate) max_base_level: u8,
    pub(crate) completed: Vec<SessionReport>,
}

impl ServeEngine {
    /// Creates an engine with an empty slab.
    ///
    /// # Errors
    ///
    /// [`hirise::HiriseError::InvalidConfig`] as for
    /// [`ServeConfig::validate`].
    pub fn new(config: ServeConfig) -> Result<Self> {
        config.validate()?;
        let max = config.max_sessions;
        Ok(Self {
            config,
            slots: (0..max).map(|_| None).collect(),
            free: (0..max).rev().collect(),
            scratch: PipelineScratch::new(),
            ticks: 0,
            admitted: 0,
            rejected: 0,
            active: 0,
            base_level: 0,
            max_base_level: 0,
            completed: Vec::new(),
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Ticks elapsed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Sessions currently live in the slab.
    pub fn active_sessions(&self) -> usize {
        self.active
    }

    /// Sessions admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Sessions refused at the cap so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The fleet's shed base level as of the last tick.
    pub fn shed_level(&self) -> u8 {
        self.base_level
    }

    /// Admits a session into the slab.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Full`] at the hard cap (counted in
    /// [`ServeEngine::rejected`]); [`AdmitError::Invalid`] for a
    /// degenerate spec or source. Refusal is the engine's only "no" —
    /// once admitted, a session is never dropped.
    pub fn admit(
        &mut self,
        spec: SessionSpec,
        source: FrameSource,
    ) -> std::result::Result<SessionId, AdmitError> {
        if let Err(reason) = spec.validate() {
            return Err(AdmitError::Invalid { reason });
        }
        if source.is_empty() {
            return Err(AdmitError::Invalid { reason: "frame source is empty".into() });
        }
        let Some(slot) = self.free.pop() else {
            self.rejected += 1;
            return Err(AdmitError::Full {
                active: self.active,
                max_sessions: self.config.max_sessions,
            });
        };
        let id = SessionId(self.admitted);
        match Session::new(id, spec, source, &self.config) {
            Ok(session) => {
                self.slots[slot] = Some(session);
                self.admitted += 1;
                self.active += 1;
                Ok(id)
            }
            Err(e) => {
                self.free.push(slot);
                Err(AdmitError::Invalid { reason: e.to_string() })
            }
        }
    }

    /// Advances fleet time: retires finished sessions, recomputes the
    /// shed base level from the load ratio, and generates every live
    /// session's arrivals (stamped with its priority-biased level).
    pub fn tick(&mut self) {
        self.ticks += 1;
        self.retire();
        let load = self.active as f64 / self.config.rated_sessions as f64;
        self.base_level = self.config.shed.base_level(load);
        self.max_base_level = self.max_base_level.max(self.base_level);
        let Self { slots, config, base_level, .. } = self;
        for session in slots.iter_mut().flatten() {
            let level = config.shed.level_for(*base_level, session.priority());
            session.arrive(level);
        }
    }

    /// Moves finished sessions out of the slab into the completed list,
    /// freeing their slots. Runs in slot order, so the completed list
    /// ordering is a pure function of the tick/serve schedule.
    fn retire(&mut self) {
        for slot in 0..self.slots.len() {
            if self.slots[slot].as_ref().is_some_and(Session::is_done) {
                let session = self.slots[slot].take().expect("checked above");
                self.completed.push(session.report());
                self.free.push(slot);
                self.active -= 1;
            }
        }
    }

    /// Serves up to `budget` frames round-robin on the calling thread:
    /// each round visits the slab in slot order giving every session up
    /// to `quantum` frames, until the queues are dry or the budget is
    /// spent. Returns the frames served.
    ///
    /// # Errors
    ///
    /// The first frame failure aborts the pass (the session's queue
    /// state stays consistent — the failed frame is consumed). With
    /// [`ServeConfig::isolate_sessions`] off, a panicking frame
    /// surfaces as [`ServeError::WorkerPanicked`] instead of unwinding
    /// through the caller.
    pub fn serve(&mut self, budget: u64) -> std::result::Result<u64, ServeError> {
        let Self { slots, config, scratch, .. } = self;
        Self::serve_shard(slots, config, scratch, budget, 0)
    }

    /// The round-robin inner loop shared by the serial path and each
    /// parallel worker: serves `chunk`'s sessions until dry or `budget`
    /// is spent. A panic escaping a session (isolation off) is caught
    /// *here*, once per pass, and surfaced as
    /// [`ServeError::WorkerPanicked`] tagged with `worker`.
    fn serve_shard(
        chunk: &mut [Option<Session>],
        config: &ServeConfig,
        scratch: &mut PipelineScratch,
        budget: u64,
        worker: usize,
    ) -> std::result::Result<u64, ServeError> {
        let mut pass = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || -> std::result::Result<u64, ServeError> {
                let mut served = 0u64;
                loop {
                    let mut progressed = false;
                    for session in chunk.iter_mut().flatten() {
                        let mut quantum = config.quantum;
                        while quantum > 0
                            && served < budget
                            && session.serve_one(config, scratch)?
                        {
                            served += 1;
                            quantum -= 1;
                            progressed = true;
                        }
                        if served >= budget {
                            return Ok(served);
                        }
                    }
                    if !progressed {
                        return Ok(served);
                    }
                }
            },
        ));
        if let Err(payload) = &pass {
            pass = Ok(Err(ServeError::WorkerPanicked {
                worker,
                message: panic_message(payload.as_ref()),
            }));
        }
        pass.expect("panic converted above")
    }

    /// Drains every queued frame across `workers` threads: the slab is
    /// split into contiguous slot shards, each served round-robin by one
    /// worker with its own [`PipelineScratch`] (scratch is frame-local,
    /// so per-worker reuse is safe in a per-session world). Per-session
    /// outputs are bit-identical to the serial path at any worker count
    /// — sessions never share mutable state and levels were stamped at
    /// enqueue. Returns the frames served.
    ///
    /// # Errors
    ///
    /// The first frame failure (by worker order) is returned; other
    /// shards still wind down cleanly. A worker that panics outright —
    /// possible only with [`ServeConfig::isolate_sessions`] off, since
    /// the per-session boundary otherwise quarantines the panic first —
    /// surfaces as [`ServeError::WorkerPanicked`] rather than aborting
    /// the caller: the join below never unwinds.
    pub fn serve_parallel(&mut self, workers: usize) -> std::result::Result<u64, ServeError> {
        let Self { slots, config, .. } = self;
        let config = &*config;
        let shard = slots.len().div_ceil(workers.max(1));
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (worker, chunk) in slots.chunks_mut(shard).enumerate() {
                handles.push(scope.spawn(move || -> std::result::Result<u64, ServeError> {
                    let mut scratch = PipelineScratch::new();
                    Self::serve_shard(chunk, config, &mut scratch, u64::MAX, worker)
                }));
            }
            let mut total = 0u64;
            let mut first_error = None;
            for (worker, handle) in handles.into_iter().enumerate() {
                // `serve_shard` converts panics into errors, so a join
                // failure can only come from a panic outside the serve
                // loop itself — still turned into a structured error
                // rather than an abort.
                let outcome = handle.join().unwrap_or_else(|payload| {
                    Err(ServeError::WorkerPanicked {
                        worker,
                        message: panic_message(payload.as_ref()),
                    })
                });
                match outcome {
                    Ok(n) => total += n,
                    Err(e) if first_error.is_none() => first_error = Some(e),
                    Err(_) => {}
                }
            }
            first_error.map_or(Ok(total), Err)
        })
    }

    /// Runs tick/serve cycles until every admitted session has completed
    /// and been retired. Returns the frames served.
    ///
    /// # Errors
    ///
    /// As for [`ServeEngine::serve`].
    pub fn drain(&mut self) -> std::result::Result<u64, ServeError> {
        let mut served = 0u64;
        loop {
            self.tick();
            if self.active == 0 {
                return Ok(served);
            }
            served += self.serve(u64::MAX)?;
        }
    }

    /// The fleet-wide summary over completed and live sessions.
    pub fn summary(&self) -> ServeSummary {
        let mut sessions = self.completed.clone();
        for session in self.slots.iter().flatten() {
            sessions.push(session.report());
        }
        sessions.sort_by_key(|r| r.id);
        let mut frames = 0u64;
        let mut keyframes = 0u64;
        let mut drift_refreshes = 0u64;
        let mut tracked_frames = 0u64;
        let mut energy_mj = 0.0;
        let mut deferred = 0u64;
        let mut quarantined = 0u64;
        let mut recovered = 0u64;
        let mut max_recovery_frames = 0u32;
        let mut deadline_misses = 0u64;
        let mut max_shed_level = self.max_base_level;
        let mut merged: Vec<f64> = Vec::new();
        for report in &sessions {
            frames += report.summary.frames;
            keyframes += report.summary.keyframes;
            drift_refreshes += report.summary.drift_refreshes;
            tracked_frames += report.summary.tracked_frames;
            energy_mj += report.summary.energy_mj;
            deferred += report.deferred;
            if report.poisoned {
                quarantined += 1;
                if report.recoveries == report.quarantines {
                    recovered += 1;
                }
            }
            max_recovery_frames = max_recovery_frames.max(report.max_recovery_frames);
            deadline_misses += report.deadline_misses;
            max_shed_level = max_shed_level.max(report.max_shed_level);
            merged.extend_from_slice(&report.latency_ms);
        }
        merged.sort_by(f64::total_cmp);
        ServeSummary {
            ticks: self.ticks,
            admitted: self.admitted,
            rejected: self.rejected,
            dropped: 0,
            completed: self.completed.len() as u64,
            active: self.active as u64,
            frames,
            keyframes,
            drift_refreshes,
            tracked_frames,
            energy_mj,
            deferred,
            quarantined,
            recovered,
            max_recovery_frames,
            deadline_misses,
            shed_level: self.base_level,
            max_shed_level,
            p50_ms: crate::metrics::nearest_rank(&merged, 50.0),
            p99_ms: crate::metrics::nearest_rank(&merged, 99.0),
            sessions,
        }
    }
}
