//! Crash-consistent serving: engine snapshots, the write-ahead arrival
//! journal, and deterministic warm restart.
//!
//! # The crash-recovery contract
//!
//! The serve layer's determinism contract — every frame a pure function
//! of `(spec, seed, arrival/tick schedule)` — makes process-level
//! recovery *exact* rather than best-effort. Two artifacts suffice:
//!
//! * an [`EngineSnapshot`]: the full [`ServeEngine`] slab serialized
//!   through the checksummed [`hirise::recover`] envelope — per-session
//!   tracker state (as [`hirise::temporal::TrackerCheckpoint`]s, the
//!   live state plus the quarantine recovery anchor), counters-only
//!   [`hirise::stream::SequenceSummary`], queued frame stamps, shed /
//!   priority / watchdog state, latency rings, free-list order, and the
//!   engine counters;
//! * an [`ArrivalJournal`]: an append-only record of **admission events
//!   and tick boundaries only**. Frames are never journaled — arrivals
//!   are pure in the traffic seed, so replay regenerates them through
//!   the same source factory that built them the first time.
//!
//! A crash at any tick then recovers by [`ServeEngine::restore`]-ing
//! the last snapshot and [`ServeEngine::replay_from`]-ing the journal
//! tail; the tests pin the result **bit-identical** to an uninterrupted
//! run, at any worker count.
//!
//! # Snapshot discipline
//!
//! Exact replay leans on the driver discipline every canonical driver
//! ([`crate::traffic::run_plans`], [`ServeEngine::drain`], and
//! [`run_plans_journaled`] here) already follows: admissions happen
//! before the tick, and each tick is followed by one serve-to-dry pass.
//! Snapshots are taken at a tick boundary — after the serve pass,
//! before the next tick's admissions — so every journal record up to
//! and including the snapshot tick's boundary is *inside* the snapshot,
//! and everything after it is the replay tail. [`replay_from`]
//! resynchronizes by counting tick records, so the journal may be
//! arbitrarily older than the snapshot (e.g. journal from tick 0,
//! snapshot from tick 40).
//!
//! [`replay_from`]: ServeEngine::replay_from

use hirise::recover::{fnv1a64, Decoder, Encoder};
use hirise::stream::SequenceSummary;
use hirise::{HiriseError, RecoverError};

use crate::engine::{AdmitError, ServeConfig, ServeEngine, ServeError, SessionId};
use crate::session::{FrameSource, Session, SessionReport, SessionSpec};
use crate::shed::Priority;
use crate::traffic::SessionPlan;

/// Snapshot envelope magic ("HiRise SNapshot").
const SNAPSHOT_MAGIC: [u8; 4] = *b"HRSN";
/// Journal envelope magic ("HiRise JourNaL").
const JOURNAL_MAGIC: [u8; 4] = *b"HRJL";
/// Shared format version of both artifacts.
const FORMAT_VERSION: u16 = 1;

/// Rebuilds a session's frame source from its spec — the serializable
/// stand-in for the sources themselves, which may hold closures. Must
/// return the *same pure function of the frame index* the original
/// admission used (e.g. [`crate::traffic::source_for`], or a fault
/// layer's wrapped equivalent), or replay exactness is forfeit.
pub type SourceFactory<'a> = &'a dyn Fn(&SessionSpec) -> Option<FrameSource>;

/// Why a snapshot could not be restored. No variant leaves a partially
/// restored engine behind: the envelope checksum is verified before any
/// field is read, and the engine is built whole or not at all.
#[derive(Debug)]
pub enum RestoreError {
    /// The snapshot bytes were rejected (truncated, corrupted, wrong
    /// version — see [`RecoverError`]).
    Codec(RecoverError),
    /// The snapshot was taken under a different engine configuration
    /// (fingerprints over every deterministic config field differ).
    ConfigMismatch {
        /// Fingerprint stored in the snapshot.
        snapshot: u64,
        /// Fingerprint of the config offered for restore.
        config: u64,
    },
    /// The source factory could not rebuild a session's frame source.
    Source {
        /// The session's display name.
        name: String,
        /// The scenario it asked for.
        scenario: String,
    },
    /// The offered configuration (or a rebuilt session) failed
    /// validation.
    Invalid(HiriseError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Codec(e) => write!(f, "snapshot rejected: {e}"),
            RestoreError::ConfigMismatch { snapshot, config } => write!(
                f,
                "config fingerprint mismatch: snapshot {snapshot:#018x}, offered {config:#018x}"
            ),
            RestoreError::Source { name, scenario } => {
                write!(f, "cannot rebuild the frame source of {name:?} (scenario {scenario:?})")
            }
            RestoreError::Invalid(e) => write!(f, "restored state is invalid: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RestoreError::Codec(e) => Some(e),
            RestoreError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RecoverError> for RestoreError {
    fn from(e: RecoverError) -> Self {
        RestoreError::Codec(e)
    }
}

/// Why a journal replay (or a journaled drive) failed.
#[derive(Debug)]
pub enum ReplayError {
    /// The journal has fewer tick records than the engine has already
    /// lived through — it cannot be the journal of this run.
    MissingTicks {
        /// Ticks the restored engine has served.
        engine_ticks: u64,
        /// Tick records the journal holds.
        journal_ticks: u64,
    },
    /// The source factory could not rebuild an admission's source.
    Source {
        /// The session's display name.
        name: String,
        /// The scenario it asked for.
        scenario: String,
    },
    /// A journaled admission was refused as invalid — impossible for a
    /// journal written by a successful run under the same config.
    Admit {
        /// The refusal reason.
        reason: String,
    },
    /// A serve pass failed during replay.
    Serve(ServeError),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::MissingTicks { engine_ticks, journal_ticks } => write!(
                f,
                "journal too short: engine is at tick {engine_ticks}, journal holds {journal_ticks}"
            ),
            ReplayError::Source { name, scenario } => {
                write!(f, "cannot rebuild the frame source of {name:?} (scenario {scenario:?})")
            }
            ReplayError::Admit { reason } => write!(f, "journaled admission refused: {reason}"),
            ReplayError::Serve(e) => write!(f, "serve failure during replay: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

/// Fingerprint of every *deterministic* field of a [`ServeConfig`] —
/// everything that shapes outputs except the fault injector, which is
/// attachment-time state a restored engine may legitimately swap (the
/// chaos tests attach the same plan; a production restart would attach
/// none). Restore refuses a snapshot whose fingerprint differs, since
/// replaying under a different policy would silently diverge. The hash
/// goes through `Debug` formatting, so it is stable within one build —
/// exactly the scope a crash-restart needs — not across releases.
pub fn config_fingerprint(config: &ServeConfig) -> u64 {
    let text = format!(
        "{:?}|{:?}|{}|{}|{}|{}|{}|{:?}|{}|{}",
        config.pipeline,
        config.temporal,
        config.rated_sessions,
        config.max_sessions,
        config.queue_capacity,
        config.quantum,
        config.latency_window,
        config.shed,
        config.isolate_sessions,
        config.deadline_ms,
    );
    fnv1a64(text.as_bytes())
}

fn encode_priority(priority: Priority, enc: &mut Encoder) {
    enc.u8(match priority {
        Priority::High => 0,
        Priority::Normal => 1,
        Priority::Low => 2,
    });
}

fn decode_priority(dec: &mut Decoder<'_>) -> Result<Priority, RecoverError> {
    match dec.u8()? {
        0 => Ok(Priority::High),
        1 => Ok(Priority::Normal),
        2 => Ok(Priority::Low),
        other => Err(RecoverError::malformed(format!("priority discriminant {other}"))),
    }
}

pub(crate) fn encode_spec(spec: &SessionSpec, enc: &mut Encoder) {
    enc.str(&spec.name);
    enc.str(&spec.scenario);
    enc.u64(spec.seed);
    enc.u32(spec.frames);
    encode_priority(spec.priority, enc);
    enc.u32(spec.frames_per_tick);
    enc.u32(spec.burst_every);
    enc.u32(spec.burst_extra);
}

pub(crate) fn decode_spec(dec: &mut Decoder<'_>) -> Result<SessionSpec, RecoverError> {
    Ok(SessionSpec {
        name: dec.str()?,
        scenario: dec.str()?,
        seed: dec.u64()?,
        frames: dec.u32()?,
        priority: decode_priority(dec)?,
        frames_per_tick: dec.u32()?,
        burst_every: dec.u32()?,
        burst_extra: dec.u32()?,
    })
}

/// Encodes the counters-only projection of a [`SequenceSummary`] — the
/// same projection sessions maintain (report capacity 0): frame-kind
/// counters, aggregate totals, and the per-kind energy fold. Wall-clock
/// stage timings are deliberately dropped (they are not part of any
/// determinism contract), as are retained reports (structurally empty
/// at capacity 0).
pub(crate) fn encode_summary(summary: &SequenceSummary, enc: &mut Encoder) {
    enc.u64(summary.frames);
    enc.u64(summary.keyframes);
    enc.u64(summary.drift_refreshes);
    enc.u64(summary.tracked_frames);
    enc.u64(summary.aggregate.conversions);
    enc.u64(summary.aggregate.pooling_outputs);
    enc.u64(summary.aggregate.transfer_bits);
    enc.u64(summary.aggregate.rois);
    enc.u64(summary.aggregate.peak_image_bytes);
    enc.f64(summary.energy_mj);
    enc.f64(summary.energy_mj_keyframes);
    enc.f64(summary.energy_mj_drift);
    enc.f64(summary.energy_mj_tracked);
}

pub(crate) fn decode_summary(dec: &mut Decoder<'_>) -> Result<SequenceSummary, RecoverError> {
    let mut summary = SequenceSummary::with_report_capacity(0);
    summary.frames = dec.u64()?;
    summary.keyframes = dec.u64()?;
    summary.drift_refreshes = dec.u64()?;
    summary.tracked_frames = dec.u64()?;
    summary.aggregate.conversions = dec.u64()?;
    summary.aggregate.pooling_outputs = dec.u64()?;
    summary.aggregate.transfer_bits = dec.u64()?;
    summary.aggregate.rois = dec.u64()?;
    summary.aggregate.peak_image_bytes = dec.u64()?;
    summary.energy_mj = dec.f64()?;
    summary.energy_mj_keyframes = dec.f64()?;
    summary.energy_mj_drift = dec.f64()?;
    summary.energy_mj_tracked = dec.f64()?;
    Ok(summary)
}

fn encode_report(report: &SessionReport, enc: &mut Encoder) {
    enc.u64(report.id.0);
    enc.str(&report.name);
    encode_priority(report.priority, enc);
    enc.bool(report.completed);
    enc.u64(report.deferred);
    enc.u8(report.max_shed_level);
    enc.bool(report.poisoned);
    enc.u64(report.poisoned_frames);
    enc.u64(report.quarantines);
    enc.u64(report.recoveries);
    enc.u32(report.max_recovery_frames);
    enc.u64(report.deadline_misses);
    enc.f64(report.p50_ms);
    enc.f64(report.p99_ms);
    enc.seq(report.latency_ms.len());
    for &sample in &report.latency_ms {
        enc.f64(sample);
    }
    encode_summary(&report.summary, enc);
}

fn decode_report(dec: &mut Decoder<'_>) -> Result<SessionReport, RecoverError> {
    let id = SessionId(dec.u64()?);
    let name = dec.str()?;
    let priority = decode_priority(dec)?;
    let completed = dec.bool()?;
    let deferred = dec.u64()?;
    let max_shed_level = dec.u8()?;
    let poisoned = dec.bool()?;
    let poisoned_frames = dec.u64()?;
    let quarantines = dec.u64()?;
    let recoveries = dec.u64()?;
    let max_recovery_frames = dec.u32()?;
    let deadline_misses = dec.u64()?;
    let p50_ms = dec.f64()?;
    let p99_ms = dec.f64()?;
    let samples = dec.seq(8)?;
    let mut latency_ms = Vec::with_capacity(samples);
    for _ in 0..samples {
        latency_ms.push(dec.f64()?);
    }
    let summary = decode_summary(dec)?;
    Ok(SessionReport {
        id,
        name,
        priority,
        completed,
        deferred,
        max_shed_level,
        poisoned,
        poisoned_frames,
        quarantines,
        recoveries,
        max_recovery_frames,
        deadline_misses,
        p50_ms,
        p99_ms,
        latency_ms,
        summary,
    })
}

/// A serialized, checksummed image of a whole [`ServeEngine`] at a tick
/// boundary. Construction (either path) validates the envelope, so a
/// held `EngineSnapshot` is always structurally opener-checked; the
/// full field decode happens at [`ServeEngine::restore`].
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    bytes: Vec<u8>,
    fingerprint: u64,
    ticks: u64,
    live_sessions: u64,
}

impl EngineSnapshot {
    /// Validates and adopts snapshot bytes (e.g. read back from disk).
    ///
    /// # Errors
    ///
    /// [`RecoverError`] when the envelope is truncated, mis-tagged, the
    /// wrong version, or fails its checksum — corruption is rejected
    /// here, whole, before any restore is attempted.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, RecoverError> {
        let mut dec = Decoder::new(&bytes, SNAPSHOT_MAGIC, FORMAT_VERSION)?;
        let fingerprint = dec.u64()?;
        let ticks = dec.u64()?;
        let _admitted = dec.u64()?;
        let _rejected = dec.u64()?;
        let live_sessions = dec.u64()?;
        Ok(Self { bytes, fingerprint, ticks, live_sessions })
    }

    /// The serialized envelope (write this to stable storage).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the snapshot into its envelope bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Envelope size in bytes (header and checksum included).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the envelope is empty (never: the header alone is 6
    /// bytes).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The [`config_fingerprint`] the snapshot was taken under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The engine tick the snapshot was taken at.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Live sessions in the snapshotted slab.
    pub fn live_sessions(&self) -> u64 {
        self.live_sessions
    }
}

/// One write-ahead record: everything nondeterministic about a serve
/// run is *when sessions arrive relative to ticks* — so that is all the
/// journal stores.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// An admission attempt (written before [`ServeEngine::admit`] is
    /// called — write-ahead, so a crash between journal append and
    /// admission replays the admission rather than losing it).
    Admit(SessionSpec),
    /// A tick boundary; replay follows each with one serve-to-dry pass.
    Tick,
}

/// The append-only arrival journal. See [`JournalRecord`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArrivalJournal {
    records: Vec<JournalRecord>,
}

impl ArrivalJournal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an admission attempt (call *before* admitting).
    pub fn record_admit(&mut self, spec: &SessionSpec) {
        self.records.push(JournalRecord::Admit(spec.clone()));
    }

    /// Appends a tick boundary (call when the driver ticks the engine).
    pub fn record_tick(&mut self) {
        self.records.push(JournalRecord::Tick);
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Total records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Tick-boundary records in the journal.
    pub fn ticks(&self) -> u64 {
        self.records.iter().filter(|r| matches!(r, JournalRecord::Tick)).count() as u64
    }

    /// Admission records in the journal — also the index of the next
    /// un-attempted plan when a driver resumes a plan list after
    /// restore (every attempt was journaled, refused or not).
    pub fn admissions(&self) -> usize {
        self.records.iter().filter(|r| matches!(r, JournalRecord::Admit(_))).count()
    }

    /// Serializes the journal into its checksummed envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new(JOURNAL_MAGIC, FORMAT_VERSION);
        enc.seq(self.records.len());
        for record in &self.records {
            match record {
                JournalRecord::Tick => enc.u8(0),
                JournalRecord::Admit(spec) => {
                    enc.u8(1);
                    encode_spec(spec, &mut enc);
                }
            }
        }
        enc.finish()
    }

    /// Reads a journal written by [`ArrivalJournal::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`RecoverError`] for a truncated, corrupted, or mis-versioned
    /// envelope.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RecoverError> {
        let mut dec = Decoder::new(bytes, JOURNAL_MAGIC, FORMAT_VERSION)?;
        let count = dec.seq(1)?;
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            records.push(match dec.u8()? {
                0 => JournalRecord::Tick,
                1 => JournalRecord::Admit(decode_spec(&mut dec)?),
                other => {
                    return Err(RecoverError::malformed(format!("journal record tag {other}")))
                }
            });
        }
        dec.finish()?;
        Ok(Self { records })
    }
}

impl ServeEngine {
    /// Serializes the whole engine — counters, free-list order,
    /// completed reports, and every live session — into a checksummed
    /// [`EngineSnapshot`]. Meant to be taken at a tick boundary (after
    /// the tick's serve-to-dry pass, before the next tick's
    /// admissions); see the module docs for why replay leans on that
    /// discipline.
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut enc = Encoder::new(SNAPSHOT_MAGIC, FORMAT_VERSION);
        enc.u64(config_fingerprint(&self.config));
        enc.u64(self.ticks);
        enc.u64(self.admitted);
        enc.u64(self.rejected);
        enc.u64(self.active as u64);
        enc.u8(self.base_level);
        enc.u8(self.max_base_level);
        enc.seq(self.free.len());
        for &slot in &self.free {
            enc.u32(slot as u32);
        }
        enc.seq(self.completed.len());
        for report in &self.completed {
            encode_report(report, &mut enc);
        }
        enc.seq(self.slots.len());
        for slot in &self.slots {
            match slot {
                None => enc.bool(false),
                Some(session) => {
                    enc.bool(true);
                    session.encode_into(&mut enc);
                }
            }
        }
        let bytes = enc.finish();
        EngineSnapshot {
            bytes,
            fingerprint: config_fingerprint(&self.config),
            ticks: self.ticks,
            live_sessions: self.active as u64,
        }
    }

    /// Rebuilds an engine from a snapshot: the inverse of
    /// [`ServeEngine::snapshot`], given the same configuration
    /// (fingerprint-checked; the fault injector slot is exempt) and a
    /// source factory that regenerates each session's frames from its
    /// spec. All-or-nothing: any decode failure returns the error and
    /// no engine.
    ///
    /// # Errors
    ///
    /// [`RestoreError`] — codec rejection, config fingerprint mismatch,
    /// an unbuildable frame source, or invalid configuration.
    pub fn restore(
        snapshot: &EngineSnapshot,
        config: ServeConfig,
        source_for: SourceFactory<'_>,
    ) -> Result<Self, RestoreError> {
        let offered = config_fingerprint(&config);
        let mut dec = Decoder::new(&snapshot.bytes, SNAPSHOT_MAGIC, FORMAT_VERSION)?;
        let recorded = dec.u64()?;
        if recorded != offered {
            return Err(RestoreError::ConfigMismatch { snapshot: recorded, config: offered });
        }
        let ticks = dec.u64()?;
        let admitted = dec.u64()?;
        let rejected = dec.u64()?;
        let active = dec.u64()? as usize;
        let base_level = dec.u8()?;
        let max_base_level = dec.u8()?;
        let free_len = dec.seq(4)?;
        let mut free = Vec::with_capacity(free_len);
        for _ in 0..free_len {
            let slot = dec.u32()? as usize;
            if slot >= config.max_sessions {
                return Err(RecoverError::malformed(format!(
                    "free slot {slot} outside a slab of {}",
                    config.max_sessions
                ))
                .into());
            }
            free.push(slot);
        }
        let completed_len = dec.seq(8)?;
        let mut completed = Vec::with_capacity(completed_len);
        for _ in 0..completed_len {
            completed.push(decode_report(&mut dec)?);
        }
        let slot_count = dec.seq(1)?;
        if slot_count != config.max_sessions {
            return Err(RecoverError::malformed(format!(
                "snapshot slab holds {slot_count} slots, config says {}",
                config.max_sessions
            ))
            .into());
        }
        let mut slots: Vec<Option<Session>> = Vec::with_capacity(slot_count);
        for _ in 0..slot_count {
            if dec.bool()? {
                slots.push(Some(Session::decode_from(&mut dec, &config, source_for)?));
            } else {
                slots.push(None);
            }
        }
        dec.finish()?;
        let live = slots.iter().filter(|s| s.is_some()).count();
        if live != active || live + free.len() != config.max_sessions {
            return Err(RecoverError::malformed(format!(
                "slab accounting: {live} live sessions, {} free slots, active counter {active}",
                free.len()
            ))
            .into());
        }
        let mut engine = ServeEngine::new(config).map_err(RestoreError::Invalid)?;
        engine.slots = slots;
        engine.free = free;
        engine.ticks = ticks;
        engine.admitted = admitted;
        engine.rejected = rejected;
        engine.active = active;
        engine.base_level = base_level;
        engine.max_base_level = max_base_level;
        engine.completed = completed;
        Ok(engine)
    }

    /// Replays a journal tail against this (typically just-restored)
    /// engine: skips past the tick boundaries the engine has already
    /// lived through, then re-performs every remaining record — an
    /// admission per [`JournalRecord::Admit`] (cap refusals replay as
    /// refusals), a tick plus one serve-to-dry pass per
    /// [`JournalRecord::Tick`] — exactly the canonical driver
    /// discipline. Returns the frames served during replay (the
    /// recovery's MTTR numerator).
    ///
    /// # Errors
    ///
    /// [`ReplayError`] — a journal shorter than the engine's own tick
    /// count, an unbuildable source, an invalid admission, or a serve
    /// failure.
    pub fn replay_from(
        &mut self,
        journal: &ArrivalJournal,
        source_for: SourceFactory<'_>,
    ) -> Result<u64, ReplayError> {
        let journal_ticks = journal.ticks();
        if journal_ticks < self.ticks {
            return Err(ReplayError::MissingTicks { engine_ticks: self.ticks, journal_ticks });
        }
        let mut skip = self.ticks;
        let mut served = 0u64;
        for record in journal.records() {
            if skip > 0 {
                if matches!(record, JournalRecord::Tick) {
                    skip -= 1;
                }
                continue;
            }
            match record {
                JournalRecord::Admit(spec) => {
                    let source = source_for(spec).ok_or_else(|| ReplayError::Source {
                        name: spec.name.clone(),
                        scenario: spec.scenario.clone(),
                    })?;
                    match self.admit(spec.clone(), source) {
                        Ok(_) | Err(AdmitError::Full { .. }) => {}
                        Err(AdmitError::Invalid { reason }) => {
                            return Err(ReplayError::Admit { reason });
                        }
                    }
                }
                JournalRecord::Tick => {
                    self.tick();
                    served += self.serve(u64::MAX).map_err(ReplayError::Serve)?;
                }
            }
        }
        Ok(served)
    }
}

/// The outcome of one [`run_plans_journaled`] drive.
#[derive(Debug)]
pub struct JournaledOutcome {
    /// Frames served before returning.
    pub served: u64,
    /// The most recent periodic snapshot (`None` before the first
    /// boundary — recovery then cold-starts a fresh engine and replays
    /// the whole journal).
    pub snapshot: Option<EngineSnapshot>,
    /// `Some(tick)` when the crash oracle fired and the drive stopped
    /// mid-run; `None` on completion.
    pub crashed_at: Option<u64>,
}

/// [`crate::traffic::run_plans`] with crash consistency bolted on: the
/// same admissions-then-tick-then-serve-to-dry discipline, plus (1)
/// every admission attempt and tick boundary appended to `journal`
/// (write-ahead: the admit record lands before the engine sees the
/// session), (2) a snapshot taken every `snapshot_every` ticks (`0`
/// disables), at the contract's tick-boundary point, and (3) a crash
/// oracle consulted after each boundary — when it fires, the drive
/// stops as a simulated process death and reports
/// [`JournaledOutcome::crashed_at`]. `workers` selects the serial serve
/// path (`None`) or [`ServeEngine::serve_parallel`].
///
/// To resume after a crash: restore the last snapshot (or a fresh
/// engine when `None`), [`ServeEngine::replay_from`] the journal, then
/// call this again with the un-attempted plan tail
/// (`&plans[journal.admissions()..]`) and the same journal.
///
/// # Errors
///
/// [`ReplayError`] — an unknown scenario, an invalid spec, or a serve
/// failure.
pub fn run_plans_journaled(
    engine: &mut ServeEngine,
    plans: &[SessionPlan],
    source_for: SourceFactory<'_>,
    journal: &mut ArrivalJournal,
    snapshot_every: u64,
    workers: Option<usize>,
    crash_at: &mut dyn FnMut(u64) -> bool,
) -> Result<JournaledOutcome, ReplayError> {
    let mut next = 0usize;
    let mut served = 0u64;
    let mut snapshot = None;
    loop {
        while next < plans.len() && plans[next].at_tick <= engine.ticks() {
            let plan = &plans[next];
            journal.record_admit(&plan.spec);
            let source = source_for(&plan.spec).ok_or_else(|| ReplayError::Source {
                name: plan.spec.name.clone(),
                scenario: plan.spec.scenario.clone(),
            })?;
            match engine.admit(plan.spec.clone(), source) {
                Ok(_) | Err(AdmitError::Full { .. }) => {}
                Err(AdmitError::Invalid { reason }) => return Err(ReplayError::Admit { reason }),
            }
            next += 1;
        }
        journal.record_tick();
        engine.tick();
        if next == plans.len() && engine.active_sessions() == 0 {
            return Ok(JournaledOutcome { served, snapshot, crashed_at: None });
        }
        served += match workers {
            None => engine.serve(u64::MAX),
            Some(w) => engine.serve_parallel(w),
        }
        .map_err(ReplayError::Serve)?;
        if snapshot_every > 0 && engine.ticks().is_multiple_of(snapshot_every) {
            snapshot = Some(engine.snapshot());
        }
        if crash_at(engine.ticks()) {
            return Ok(JournaledOutcome { served, snapshot, crashed_at: Some(engine.ticks()) });
        }
    }
}
