//! `hirise-serve`: a multi-tenant session layer over the HiRISE
//! temporal pipeline.
//!
//! The repo's other crates process one workload per call; a deployed
//! fleet faces thousands of concurrent video sessions. This crate is
//! the long-lived service layer in between (verification layer 9 in
//! DESIGN.md):
//!
//! * **Session slab** ([`ServeEngine`]): fixed slots, each holding one
//!   session's [`hirise::temporal::TrackerState`], counters-only
//!   [`hirise::stream::SequenceSummary`], bounded frame queue, and
//!   latency reservoir. Workers bring their own
//!   [`hirise::PipelineScratch`] (frame-local on every path), so the
//!   steady state serves frames with zero heap allocations — the same
//!   contract `tests/alloc.rs` pins for the single-session paths.
//! * **Scheduler**: tick-driven arrivals into bounded per-session
//!   queues with backpressure (full queues defer, never drop), drained
//!   deficit-round-robin — `quantum` frames per session per round — on
//!   one thread ([`ServeEngine::serve`]) or across slab shards
//!   ([`ServeEngine::serve_parallel`]).
//! * **Admission + graceful degradation** ([`ShedPolicy`]): past the
//!   hard cap, sessions are refused at the door; past rated load,
//!   sessions *degrade* instead of dropping — keyframe intervals widen
//!   and ROI margins shrink, lowest [`Priority`] first, via the live
//!   [`hirise::TrackingPipeline`] policy hooks.
//! * **Observability** ([`ServeSummary`]): per-session p50/p99 from
//!   fixed nearest-rank reservoirs ([`LatencyReservoir`]), frame-kind
//!   counters, shed gauges, and a `dropped` field that is structurally
//!   zero.
//! * **Failure isolation** ([`FaultInjector`], [`ServeError`]): each
//!   session's frame work runs behind a panic boundary (on by default) —
//!   a panicking session is quarantined and its tracker restored from
//!   its last keyframe checkpoint
//!   ([`hirise::temporal::TrackerCheckpoint`]) while the fleet keeps
//!   serving; worker panics surface as structured
//!   [`ServeError::WorkerPanicked`] instead of aborting the caller; a
//!   per-frame deadline watchdog escalates a stalled session one shed
//!   rung before its queue starts deferring.
//! * **Traffic** ([`traffic`]): seeded synthetic session mixes over the
//!   `hirise_scene` scenario presets — the stress suite and the
//!   `serve_stages` saturation benchmark share one workload definition.
//!
//! Determinism extends the repo-wide contract: shed levels are computed
//! only at tick time and stamped per frame at enqueue, so each
//! session's output is a pure function of `(spec, seed, arrival/tick
//! schedule)` — bit-identical at any worker count or serve
//! interleaving for a fixed driver schedule.
//!
//! # Example
//!
//! ```
//! use hirise::HiriseConfig;
//! use hirise_serve::{FrameSource, ServeConfig, ServeEngine, SessionSpec};
//! use hirise_imaging::RgbImage;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pipeline = HiriseConfig::builder(64, 64).pooling(4).build()?;
//! let mut engine = ServeEngine::new(ServeConfig::new(pipeline))?;
//! let clip: Vec<RgbImage> = (0..4)
//!     .map(|i| RgbImage::from_fn(64, 64, |x, y| {
//!         let v = ((x / 8 + y / 8 + i) % 2) as f32 * 0.4 + 0.3;
//!         (v, v, 0.5)
//!     }))
//!     .collect();
//! engine.admit(SessionSpec::default().frames(8), FrameSource::Frames(clip))?;
//! engine.drain()?;
//! let summary = engine.summary();
//! assert_eq!(summary.frames, 8);
//! assert_eq!(summary.dropped, 0);
//! # Ok(())
//! # }
//! ```

pub mod engine;
pub mod fault;
pub mod metrics;
pub mod recover;
pub mod session;
pub mod shed;
pub mod traffic;

pub use engine::{AdmitError, ServeConfig, ServeEngine, ServeError, ServeSummary, SessionId};
pub use fault::{FaultAction, FaultInjector};
pub use metrics::{nearest_rank, LatencyReservoir};
pub use recover::{
    config_fingerprint, run_plans_journaled, ArrivalJournal, EngineSnapshot, JournalRecord,
    JournaledOutcome, ReplayError, RestoreError, SourceFactory,
};
pub use session::{FrameSource, SessionReport, SessionSpec};
pub use shed::{Priority, ShedPolicy};
pub use traffic::{generate, run_plans, source_for, SessionPlan, TrafficConfig};
