//! One tenant of the serve engine: its frame source, tracker, bounded
//! queue, and fixed-size observability.
//!
//! A session is the unit of multi-tenancy. Everything a session needs
//! across frames lives here — [`hirise::temporal::TrackerState`], the
//! running [`SequenceSummary`] (counters only, no per-frame retention),
//! the [`LatencyReservoir`], and the bounded frame queue — so the
//! engine's slab slot is self-contained and a slot can be served by any
//! worker with any [`hirise::PipelineScratch`] (the scratch is
//! frame-local on every path, which is what makes per-*worker* scratch
//! safe in a per-*session* world).
//!
//! Determinism: each queued frame is stamped with its shed level at
//! enqueue time, so the pipeline configuration a frame is processed
//! under is fixed the moment it enters the system — scheduling order,
//! serve budgets, and worker counts can no longer affect the output.

use std::borrow::Cow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use hirise::stream::SequenceSummary;
use hirise::temporal::{TrackerCheckpoint, TrackerState, TrackingPipeline};
use hirise::{PipelineScratch, Result, RgbImage};
use hirise_scene::ScenarioGenerator;

use crate::engine::{ServeConfig, ServeError, SessionId};
use crate::fault::FaultAction;
use crate::metrics::LatencyReservoir;
use crate::shed::Priority;

/// What a session wants: how many frames, at what arrival shape, at
/// which priority.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Display name (reports only).
    pub name: String,
    /// Scenario preset name for scenario-backed sources
    /// ([`crate::traffic::source_for`]); ignored for pre-materialised
    /// clips.
    pub scenario: String,
    /// Seed for the session's scenario generator.
    pub seed: u64,
    /// Total frames the session will submit (≥ 1).
    pub frames: u32,
    /// Where the session lands on the shed ladder under load.
    pub priority: Priority,
    /// Nominal frame arrivals per engine tick (≥ 1).
    pub frames_per_tick: u32,
    /// Every `burst_every`-th tick delivers `burst_extra` extra frames
    /// (`0` disables bursts).
    pub burst_every: u32,
    /// Extra frames per burst tick.
    pub burst_extra: u32,
}

impl Default for SessionSpec {
    /// A short clean-scenario session: 16 frames, one per tick, normal
    /// priority, no bursts.
    fn default() -> Self {
        Self {
            name: "session".into(),
            scenario: "clean".into(),
            seed: 0,
            frames: 16,
            priority: Priority::Normal,
            frames_per_tick: 1,
            burst_every: 0,
            burst_extra: 0,
        }
    }
}

impl SessionSpec {
    /// Sets the display name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the scenario preset name.
    pub fn scenario(mut self, scenario: impl Into<String>) -> Self {
        self.scenario = scenario.into();
        self
    }

    /// Sets the scenario seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the total frame count.
    pub fn frames(mut self, frames: u32) -> Self {
        self.frames = frames;
        self
    }

    /// Sets the shed priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the nominal arrivals per tick.
    pub fn frames_per_tick(mut self, frames_per_tick: u32) -> Self {
        self.frames_per_tick = frames_per_tick;
        self
    }

    /// Sets the burst shape: `extra` additional frames every `every`-th
    /// tick.
    pub fn burst(mut self, every: u32, extra: u32) -> Self {
        self.burst_every = every;
        self.burst_extra = extra;
        self
    }

    pub(crate) fn validate(&self) -> std::result::Result<(), String> {
        if self.frames == 0 {
            return Err("session must submit at least one frame".into());
        }
        if self.frames_per_tick == 0 {
            return Err("session must arrive at least one frame per tick".into());
        }
        Ok(())
    }
}

/// Where a session's frames come from.
pub enum FrameSource {
    /// A pre-materialised clip, cycled if the session outlives it.
    /// Serving borrows frames in place — the choice for the
    /// zero-allocation and determinism tests.
    Frames(Vec<RgbImage>),
    /// Frames rendered on demand by a scenario generator (pure in the
    /// frame index, so just as deterministic — but each frame is an
    /// allocation, so this is the capacity-realism choice, not the
    /// zero-alloc one).
    Scenario(Box<ScenarioGenerator>),
    /// Frames produced by an arbitrary function of the index — the hook
    /// a fault layer uses to wrap a generator in sensor-defect
    /// injection without this crate depending on any fault model. The
    /// function must be pure in the index for the determinism contract
    /// to hold.
    Generated(Box<dyn Fn(u32) -> RgbImage + Send + Sync>),
}

impl FrameSource {
    /// The frame at `index` (pure: same index, same frame).
    fn frame(&self, index: u32) -> Cow<'_, RgbImage> {
        match self {
            FrameSource::Frames(clip) => Cow::Borrowed(&clip[index as usize % clip.len()]),
            FrameSource::Scenario(generator) => Cow::Owned(generator.frame(index).image),
            FrameSource::Generated(render) => Cow::Owned(render(index)),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        matches!(self, FrameSource::Frames(clip) if clip.is_empty())
    }
}

impl std::fmt::Debug for FrameSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameSource::Frames(clip) => write!(f, "FrameSource::Frames({} frames)", clip.len()),
            FrameSource::Scenario(g) => write!(f, "FrameSource::Scenario({})", g.name()),
            FrameSource::Generated(_) => write!(f, "FrameSource::Generated"),
        }
    }
}

/// Fixed-capacity ring of `(frame_index, shed_level)` entries — the
/// bounded per-session queue. `push` refuses when full (backpressure),
/// it never overwrites: a queued frame is a promise.
#[derive(Debug)]
struct FrameQueue {
    entries: Vec<(u32, u8)>,
    head: usize,
    len: usize,
}

impl FrameQueue {
    fn new(capacity: usize) -> Self {
        Self { entries: vec![(0, 0); capacity], head: 0, len: 0 }
    }

    fn push(&mut self, entry: (u32, u8)) -> bool {
        if self.len == self.entries.len() {
            return false;
        }
        let tail = (self.head + self.len) % self.entries.len();
        self.entries[tail] = entry;
        self.len += 1;
        true
    }

    fn pop(&mut self) -> Option<(u32, u8)> {
        if self.len == 0 {
            return None;
        }
        let entry = self.entries[self.head];
        self.head = (self.head + 1) % self.entries.len();
        self.len -= 1;
        Some(entry)
    }
}

/// A live slab entry: spec, source, tracker, queue, stats.
#[derive(Debug)]
pub(crate) struct Session {
    id: SessionId,
    spec: SessionSpec,
    source: FrameSource,
    tracker: TrackingPipeline,
    state: TrackerState,
    summary: SequenceSummary,
    latency: LatencyReservoir,
    queue: FrameQueue,
    /// Next frame index to enqueue.
    next_frame: u32,
    /// Frames arrived but not yet queued (held back by backpressure).
    pending: u32,
    served: u32,
    /// Total (frame × tick) deferrals: each pending frame counts once
    /// per tick it spends waiting for queue space.
    deferred: u64,
    ticks: u64,
    /// Shed level currently built into the tracker.
    applied_level: u8,
    max_shed_level: u8,
    /// The recovery anchor: snapshotted after every detection frame, so
    /// a quarantined fault rewinds at most one keyframe interval.
    checkpoint: TrackerCheckpoint,
    /// Whether any frame of this session ever panicked in isolation.
    poisoned: bool,
    /// Frames whose processing panicked (each consumed, never retried —
    /// a deterministic fault would re-fire forever).
    poisoned_frames: u64,
    /// Quarantine events (one per poisoned frame).
    quarantines: u64,
    /// Completed recoveries: the tracker restored from its checkpoint
    /// and reached the next detection frame.
    recoveries: u64,
    /// `served` count at the most recent unrecovered fault.
    recovering_since: Option<u32>,
    /// The longest fault-to-recovery span paid so far, in served frames.
    max_recovery_frames: u32,
    /// Frames over the watchdog deadline.
    deadline_misses: u64,
    /// One extra shed rung stamped on the next arrivals after a
    /// deadline miss (the watchdog escalation); cleared by an on-time
    /// frame.
    watchdog_boost: u8,
}

impl Session {
    pub(crate) fn new(
        id: SessionId,
        spec: SessionSpec,
        source: FrameSource,
        config: &ServeConfig,
    ) -> Result<Self> {
        let tracker = TrackingPipeline::new(config.pipeline.clone(), config.temporal)?;
        Ok(Self {
            id,
            spec,
            source,
            tracker,
            state: TrackerState::new(),
            // Counters and energy only — a service holding thousands of
            // sessions cannot retain per-frame reports.
            summary: SequenceSummary::with_report_capacity(0),
            latency: LatencyReservoir::new(config.latency_window),
            queue: FrameQueue::new(config.queue_capacity),
            next_frame: 0,
            pending: 0,
            served: 0,
            deferred: 0,
            ticks: 0,
            applied_level: 0,
            max_shed_level: 0,
            checkpoint: TrackerCheckpoint::new(),
            poisoned: false,
            poisoned_frames: 0,
            quarantines: 0,
            recoveries: 0,
            recovering_since: None,
            max_recovery_frames: 0,
            deadline_misses: 0,
            watchdog_boost: 0,
        })
    }

    pub(crate) fn priority(&self) -> Priority {
        self.spec.priority
    }

    pub(crate) fn is_done(&self) -> bool {
        self.served >= self.spec.frames
    }

    /// One engine tick: generate this tick's arrivals, then move as many
    /// waiting frames into the bounded queue as fit, stamping each with
    /// the session's current shed `level`. What does not fit stays
    /// pending — deferred, never dropped.
    ///
    /// A session the watchdog caught over deadline is escalated one
    /// extra rung before its frames can start deferring: getting
    /// cheaper is the first response to a stall, falling behind the
    /// second.
    pub(crate) fn arrive(&mut self, level: u8) {
        let level = (level + self.watchdog_boost).min(3);
        self.ticks += 1;
        let mut due = self.spec.frames_per_tick;
        if self.spec.burst_every > 0 && self.ticks.is_multiple_of(u64::from(self.spec.burst_every))
        {
            due += self.spec.burst_extra;
        }
        let remaining = self.spec.frames - self.next_frame - self.pending;
        self.pending += due.min(remaining);
        let mut stamped = false;
        while self.pending > 0 && self.queue.push((self.next_frame, level)) {
            self.next_frame += 1;
            self.pending -= 1;
            stamped = true;
        }
        if stamped {
            self.max_shed_level = self.max_shed_level.max(level);
        }
        self.deferred += u64::from(self.pending);
    }

    /// Serves the oldest queued frame through `scratch`, applying the
    /// frame's stamped shed level first (a cheap policy swap on the rung
    /// transitions, a no-op otherwise). Returns `false` when the queue
    /// is empty.
    ///
    /// With [`ServeConfig::isolate_sessions`] on, the frame's critical
    /// section (fault injection, frame render, tracker step) runs
    /// behind a panic boundary: a panic quarantines *this session* —
    /// the frame is counted consumed (a deterministic fault would
    /// re-fire forever if retried), the tracker rewinds to its last
    /// keyframe checkpoint, and the fleet keeps serving. With isolation
    /// off the panic unwinds to the serve worker, where
    /// [`crate::ServeEngine`] converts it to
    /// [`ServeError::WorkerPanicked`].
    pub(crate) fn serve_one(
        &mut self,
        config: &ServeConfig,
        scratch: &mut PipelineScratch,
    ) -> std::result::Result<bool, ServeError> {
        let Some((index, level)) = self.queue.pop() else {
            return Ok(false);
        };
        if level != self.applied_level {
            let (temporal, margin) =
                config.shed.apply(level, config.temporal, config.pipeline.roi_margin);
            self.tracker.set_temporal(temporal).map_err(ServeError::Frame)?;
            if self.tracker.pipeline().config().roi_margin != margin {
                self.tracker.set_roi_margin(margin);
            }
            self.applied_level = level;
        }
        let action =
            config.fault.as_deref().map_or(FaultAction::None, |f| f.action(self.id, index));
        let start = Instant::now();
        let outcome = if config.isolate_sessions {
            catch_unwind(AssertUnwindSafe(|| self.frame_step(action, index, scratch)))
        } else {
            Ok(self.frame_step(action, index, scratch))
        };
        let report = match outcome {
            Err(_payload) => {
                self.quarantine();
                return Ok(true);
            }
            Ok(Err(e)) => return Err(ServeError::Frame(e)),
            Ok(Ok(report)) => report,
        };
        let mut latency_ms = start.elapsed().as_secs_f64() * 1e3;
        if let FaultAction::Stall { stall_ms } = action {
            latency_ms += stall_ms;
        }
        self.latency.record(latency_ms);
        if config.deadline_ms > 0.0 {
            if latency_ms > config.deadline_ms {
                self.deadline_misses += 1;
                self.watchdog_boost = 1;
            } else {
                self.watchdog_boost = 0;
            }
        }
        self.summary.fold(&report, false);
        self.served += 1;
        if report.kind.ran_detection() {
            // A detection frame both completes any in-flight recovery
            // (the track set is fresh again) and becomes the next
            // recovery anchor.
            if let Some(since) = self.recovering_since.take() {
                self.recoveries += 1;
                self.max_recovery_frames = self.max_recovery_frames.max(self.served - since);
            }
            self.state.checkpoint_into(&mut self.checkpoint);
        }
        Ok(true)
    }

    /// The per-frame critical section: everything that runs behind the
    /// isolation boundary. An injected [`FaultAction::Panic`] fires
    /// here, on the same unwind path a panic inside the pool/detect
    /// stages would take.
    fn frame_step(
        &mut self,
        action: FaultAction,
        index: u32,
        scratch: &mut PipelineScratch,
    ) -> Result<hirise::TemporalFrameReport> {
        if action == FaultAction::Panic {
            panic!("injected fault: session {} frame {index}", self.id);
        }
        let frame = self.source.frame(index);
        self.tracker.run_frame(frame.as_ref(), &mut self.state, scratch)
    }

    /// Quarantines a panicked frame: consume it, mark the session
    /// poisoned, and rewind the tracker to its last keyframe checkpoint
    /// (cold-start when no checkpoint exists yet). The session keeps
    /// serving — recovery completes at the next detection frame.
    fn quarantine(&mut self) {
        self.served += 1;
        self.poisoned = true;
        self.poisoned_frames += 1;
        self.quarantines += 1;
        if self.recovering_since.is_none() {
            self.recovering_since = Some(self.served);
        }
        if !self.state.restore_from(&self.checkpoint) {
            self.state.reset();
        }
    }

    /// Serializes every persistent field of this slab entry into an
    /// open snapshot envelope. The live tracker state is captured
    /// through a fresh [`TrackerCheckpoint`] (the same persistent-field
    /// projection quarantine recovery uses — per-frame association
    /// buffers are rebuilt on the next frame anyway), alongside the
    /// separate recovery-anchor checkpoint, which may lag it by up to
    /// one keyframe interval.
    pub(crate) fn encode_into(&self, enc: &mut hirise::recover::Encoder) {
        crate::recover::encode_spec(&self.spec, enc);
        enc.u64(self.id.0);
        let mut live = TrackerCheckpoint::new();
        self.state.checkpoint_into(&mut live);
        live.encode_into(enc);
        self.checkpoint.encode_into(enc);
        crate::recover::encode_summary(&self.summary, enc);
        self.latency.encode_into(enc);
        enc.seq(self.queue.len);
        for k in 0..self.queue.len {
            let (frame, level) =
                self.queue.entries[(self.queue.head + k) % self.queue.entries.len()];
            enc.u32(frame);
            enc.u8(level);
        }
        enc.u32(self.next_frame);
        enc.u32(self.pending);
        enc.u32(self.served);
        enc.u64(self.deferred);
        enc.u64(self.ticks);
        enc.u8(self.applied_level);
        enc.u8(self.max_shed_level);
        enc.bool(self.poisoned);
        enc.u64(self.poisoned_frames);
        enc.u64(self.quarantines);
        enc.u64(self.recoveries);
        enc.bool(self.recovering_since.is_some());
        enc.u32(self.recovering_since.unwrap_or(0));
        enc.u32(self.max_recovery_frames);
        enc.u64(self.deadline_misses);
        enc.u8(self.watchdog_boost);
    }

    /// Rebuilds a slab entry written by [`Session::encode_into`]. The
    /// frame source is not serializable (it may hold a closure), so
    /// `source_for` regenerates it from the decoded spec — sources are
    /// pure in `(spec, seed)`, which is what makes the rebuilt session
    /// serve bit-identical frames.
    pub(crate) fn decode_from(
        dec: &mut hirise::recover::Decoder<'_>,
        config: &ServeConfig,
        source_for: &dyn Fn(&SessionSpec) -> Option<FrameSource>,
    ) -> std::result::Result<Self, crate::recover::RestoreError> {
        use crate::recover::RestoreError;
        let spec = crate::recover::decode_spec(dec)?;
        let id = SessionId(dec.u64()?);
        let live = TrackerCheckpoint::decode_from(dec)?;
        let anchor = TrackerCheckpoint::decode_from(dec)?;
        let summary = crate::recover::decode_summary(dec)?;
        let latency = LatencyReservoir::decode_from(dec)?;
        let queued = dec.seq(5)?;
        if queued > config.queue_capacity {
            return Err(hirise::RecoverError::malformed(format!(
                "session {id}: {queued} queued frames exceed the queue capacity {}",
                config.queue_capacity
            ))
            .into());
        }
        let mut entries = Vec::with_capacity(queued);
        for _ in 0..queued {
            entries.push((dec.u32()?, dec.u8()?));
        }
        let source = source_for(&spec).ok_or_else(|| RestoreError::Source {
            name: spec.name.clone(),
            scenario: spec.scenario.clone(),
        })?;
        let mut session = Session::new(id, spec, source, config).map_err(RestoreError::Invalid)?;
        for entry in entries {
            let pushed = session.queue.push(entry);
            debug_assert!(pushed, "capacity checked above");
        }
        session.next_frame = dec.u32()?;
        session.pending = dec.u32()?;
        session.served = dec.u32()?;
        session.deferred = dec.u64()?;
        session.ticks = dec.u64()?;
        session.applied_level = dec.u8()?;
        session.max_shed_level = dec.u8()?;
        session.poisoned = dec.bool()?;
        session.poisoned_frames = dec.u64()?;
        session.quarantines = dec.u64()?;
        session.recoveries = dec.u64()?;
        let recovering = dec.bool()?;
        let since = dec.u32()?;
        session.recovering_since = recovering.then_some(since);
        session.max_recovery_frames = dec.u32()?;
        session.deadline_misses = dec.u64()?;
        session.watchdog_boost = dec.u8()?;
        // Re-apply the shed rung the tracker was configured at — the
        // same lazy policy swap `serve_one` performs on a stamped-level
        // transition.
        if session.applied_level != 0 {
            let (temporal, margin) = config.shed.apply(
                session.applied_level,
                config.temporal,
                config.pipeline.roi_margin,
            );
            session.tracker.set_temporal(temporal).map_err(RestoreError::Invalid)?;
            if session.tracker.pipeline().config().roi_margin != margin {
                session.tracker.set_roi_margin(margin);
            }
        }
        if !session.state.restore_from(&live) {
            // A never-captured live checkpoint means the session had
            // served nothing; the fresh state is already correct.
            session.state.reset();
        }
        session.checkpoint = anchor;
        session.summary = summary;
        session.latency = latency;
        Ok(session)
    }

    /// Snapshot of the session's observable state.
    pub(crate) fn report(&self) -> SessionReport {
        SessionReport {
            id: self.id,
            name: self.spec.name.clone(),
            priority: self.spec.priority,
            completed: self.is_done(),
            deferred: self.deferred,
            max_shed_level: self.max_shed_level,
            poisoned: self.poisoned,
            poisoned_frames: self.poisoned_frames,
            quarantines: self.quarantines,
            recoveries: self.recoveries,
            max_recovery_frames: self.max_recovery_frames,
            deadline_misses: self.deadline_misses,
            p50_ms: self.latency.p50(),
            p99_ms: self.latency.p99(),
            latency_ms: self.latency.samples().to_vec(),
            summary: self.summary.clone(),
        }
    }
}

/// Per-session observability, as folded into
/// [`crate::engine::ServeSummary`].
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The engine-assigned id (admission order).
    pub id: SessionId,
    /// The spec's display name.
    pub name: String,
    /// The spec's shed priority.
    pub priority: Priority,
    /// Whether every requested frame was served.
    pub completed: bool,
    /// Total (frame × tick) backpressure deferrals.
    pub deferred: u64,
    /// Highest shed level stamped on any of this session's frames.
    pub max_shed_level: u8,
    /// Whether any frame of this session panicked inside the isolation
    /// boundary. A poisoned session's summary is not comparable to a
    /// fault-free run; an unpoisoned session's is, bit for bit.
    pub poisoned: bool,
    /// Frames whose processing panicked (consumed, never retried).
    pub poisoned_frames: u64,
    /// Quarantine events (one per poisoned frame).
    pub quarantines: u64,
    /// Completed checkpoint recoveries. A session with
    /// `recoveries == quarantines` has fully recovered from every
    /// fault.
    pub recoveries: u64,
    /// The longest fault-to-recovery span paid, in served frames
    /// (`0` when never quarantined).
    pub max_recovery_frames: u32,
    /// Frames that exceeded the watchdog deadline.
    pub deadline_misses: u64,
    /// Median frame latency over the retained window, ms.
    pub p50_ms: f64,
    /// Tail frame latency over the retained window, ms.
    pub p99_ms: f64,
    /// The retained latency window (unordered) — merged by the engine
    /// for fleet-wide percentiles.
    pub latency_ms: Vec<f64>,
    /// Frame-kind counters, aggregates, and the frame-ordered energy
    /// fold. A pure function of `(spec, arrival schedule, shed level
    /// trajectory)` — the determinism tests compare it bit-for-bit
    /// across worker counts and serve interleavings.
    pub summary: SequenceSummary,
}
