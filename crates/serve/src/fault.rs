//! The fault-injection seam: how a chaos layer reaches inside the
//! engine without the engine depending on any fault model.
//!
//! A [`FaultInjector`] is consulted once per served frame with the
//! session id and the frame index about to be processed, and answers
//! with a [`FaultAction`]. The engine knows nothing about fault plans,
//! seeds, or probabilities — `hirise-fault` (or a test) supplies those;
//! the engine only supplies the *recovery* machinery:
//!
//! * [`FaultAction::Panic`] unwinds inside the per-frame critical
//!   section — the same unwind path a panic in the pool/detect stages
//!   would take. With [`crate::ServeConfig::isolate_sessions`] on (the
//!   default) the session is quarantined and restored from its keyframe
//!   checkpoint; with it off, the panic escapes to the serve worker and
//!   surfaces as [`crate::ServeError::WorkerPanicked`].
//! * [`FaultAction::Stall`] adds simulated wall-clock to the frame's
//!   recorded latency (no real sleep — deterministic and fast), which
//!   is what the per-frame deadline watchdog reacts to.
//!
//! Determinism: the injector is consulted with `(session, frame)` only,
//! and implementations are expected to be pure in those arguments —
//! then the fault schedule, quarantine decisions, and watchdog
//! escalations are identical at any worker count.

use crate::engine::SessionId;

/// What the injector wants done to one `(session, frame)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// No fault: process the frame normally.
    None,
    /// Panic inside the frame's critical section (quarantine path).
    Panic,
    /// Add `stall_ms` of simulated latency to the frame (watchdog path).
    Stall {
        /// Simulated stall added to the frame's recorded latency, ms.
        stall_ms: f64,
    },
}

/// A deterministic per-frame fault oracle. Implementations must be pure
/// in `(session, frame_index)` — the engine may consult them from any
/// worker thread in any order.
pub trait FaultInjector: Send + Sync + std::fmt::Debug {
    /// The fault (if any) for `session`'s frame `frame_index`.
    fn action(&self, session: SessionId, frame_index: u32) -> FaultAction;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct PanicAt(u64, u32);

    impl FaultInjector for PanicAt {
        fn action(&self, session: SessionId, frame_index: u32) -> FaultAction {
            if session.0 == self.0 && frame_index == self.1 {
                FaultAction::Panic
            } else {
                FaultAction::None
            }
        }
    }

    #[test]
    fn injector_trait_is_object_safe_and_pure() {
        let injector: Box<dyn FaultInjector> = Box::new(PanicAt(3, 7));
        assert_eq!(injector.action(SessionId(3), 7), FaultAction::Panic);
        assert_eq!(injector.action(SessionId(3), 7), FaultAction::Panic, "must be pure");
        assert_eq!(injector.action(SessionId(3), 8), FaultAction::None);
        assert_eq!(injector.action(SessionId(2), 7), FaultAction::None);
    }
}
