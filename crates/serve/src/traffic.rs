//! Seeded synthetic traffic: the arrival mix the stress suite and the
//! saturation benchmark both drive.
//!
//! [`generate`] expands a [`TrafficConfig`] into a deterministic list of
//! [`SessionPlan`]s — a mix of short and long sessions across the
//! scenario presets, a priority spread, bursty arrival shapes, and
//! admission times spread over the first few ticks. Everything derives
//! from one `splitmix64` stream, so a seed is a complete description of
//! the workload.

use hirise::HiriseError;
use hirise_scene::{ScenarioGenerator, ScenarioSpec};

use crate::engine::{AdmitError, ServeEngine, ServeError};
use crate::session::{FrameSource, SessionSpec};
use crate::shed::Priority;

/// Scenario presets the generator rotates through — the cheap,
/// structurally distinct ones (the heavy defect/crowd presets belong to
/// the scenario benchmark, not fleet traffic).
const SCENARIOS: [&str; 4] = ["clean", "crossing", "scale", "departure"];

/// SplitMix64: the tiny, high-quality step generator (Steele et al.,
/// *Fast Splittable Pseudorandom Number Generators*) every derived
/// quantity here draws from.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shape of a synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Sessions to plan.
    pub sessions: usize,
    /// Workload seed — the only source of variation.
    pub seed: u64,
    /// Frame count of a short session.
    pub short_frames: u32,
    /// Frame count of a long session.
    pub long_frames: u32,
    /// Fraction of sessions that are long.
    pub long_fraction: f64,
    /// Admissions spread uniformly over the first `arrival_span` ticks.
    pub arrival_span: u64,
    /// Burst cadence for bursty sessions (every N-th tick).
    pub burst_every: u32,
    /// Extra frames per burst tick.
    pub burst_extra: u32,
}

impl Default for TrafficConfig {
    /// A short/long 3:1 mix arriving over 4 ticks, half the sessions
    /// bursty.
    fn default() -> Self {
        Self {
            sessions: 16,
            seed: 0xF1EE7,
            short_frames: 8,
            long_frames: 24,
            long_fraction: 0.25,
            arrival_span: 4,
            burst_every: 3,
            burst_extra: 2,
        }
    }
}

impl TrafficConfig {
    /// Sets the session count.
    pub fn sessions(mut self, sessions: usize) -> Self {
        self.sessions = sessions;
        self
    }

    /// Sets the workload seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One planned admission: when, and what.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionPlan {
    /// Engine tick count at (or after) which the session is admitted.
    pub at_tick: u64,
    /// The session to admit.
    pub spec: SessionSpec,
}

/// Expands a traffic config into admission plans, sorted by arrival
/// tick (stably, so same-tick plans keep generation order). Pure in the
/// config: the same seed always yields the same workload.
pub fn generate(config: &TrafficConfig) -> Vec<SessionPlan> {
    let mut rng = config.seed;
    let mut plans: Vec<SessionPlan> = (0..config.sessions)
        .map(|i| {
            let draw = splitmix64(&mut rng);
            let seed = splitmix64(&mut rng);
            let long = ((draw >> 32) as f64 / (1u64 << 32) as f64) < config.long_fraction;
            let scenario = SCENARIOS[(draw & 0xFF) as usize % SCENARIOS.len()];
            let priority = match (draw >> 8) & 0x3 {
                0 => Priority::High,
                1 => Priority::Low,
                _ => Priority::Normal,
            };
            let bursty = (draw >> 10) & 1 == 1;
            let at_tick = (draw >> 16) % config.arrival_span.max(1);
            let mut spec = SessionSpec::default()
                .name(format!("s{i:04}"))
                .scenario(scenario)
                .seed(seed)
                .frames(if long { config.long_frames } else { config.short_frames })
                .priority(priority);
            if bursty {
                spec = spec.burst(config.burst_every, config.burst_extra);
            }
            SessionPlan { at_tick, spec }
        })
        .collect();
    plans.sort_by_key(|p| p.at_tick);
    plans
}

/// Builds a scenario-backed frame source for a spec (`None` for an
/// unknown scenario name).
pub fn source_for(spec: &SessionSpec, width: u32, height: u32) -> Option<FrameSource> {
    let scenario = ScenarioSpec::by_name(&spec.scenario)?;
    Some(FrameSource::Scenario(Box::new(ScenarioGenerator::new(
        scenario, width, height, spec.seed,
    ))))
}

/// Drives an engine through a plan list (sorted by `at_tick`, as
/// [`generate`] returns it) to completion: admissions on schedule, one
/// serve-to-dry pass per tick. Cap refusals are counted by the engine
/// ([`ServeEngine::rejected`]), not treated as failures. Returns the
/// frames served.
///
/// # Errors
///
/// [`HiriseError::InvalidConfig`] (as [`ServeError::Frame`]) for an
/// unknown scenario name or a degenerate spec; frame failures as for
/// [`ServeEngine::serve`].
pub fn run_plans(
    engine: &mut ServeEngine,
    plans: &[SessionPlan],
) -> std::result::Result<u64, ServeError> {
    let (width, height) =
        (engine.config().pipeline.array_width, engine.config().pipeline.array_height);
    let mut next = 0;
    let mut served = 0u64;
    loop {
        while next < plans.len() && plans[next].at_tick <= engine.ticks() {
            let plan = &plans[next];
            let source = source_for(&plan.spec, width, height).ok_or_else(|| {
                HiriseError::InvalidConfig {
                    reason: format!("unknown scenario {:?}", plan.spec.scenario),
                }
            })?;
            match engine.admit(plan.spec.clone(), source) {
                Ok(_) | Err(AdmitError::Full { .. }) => {}
                Err(AdmitError::Invalid { reason }) => {
                    return Err(HiriseError::InvalidConfig { reason }.into());
                }
            }
            next += 1;
        }
        engine.tick();
        if next == plans.len() && engine.active_sessions() == 0 {
            return Ok(served);
        }
        served += engine.serve(u64::MAX)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_pure_in_the_seed() {
        let config = TrafficConfig::default().sessions(32);
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a, b);
        let c = generate(&config.seed(99));
        assert_ne!(a, c, "a different seed must change the workload");
    }

    #[test]
    fn generated_mix_covers_the_advertised_axes() {
        let plans = generate(&TrafficConfig::default().sessions(64));
        assert_eq!(plans.len(), 64);
        assert!(plans.windows(2).all(|w| w[0].at_tick <= w[1].at_tick), "not sorted by arrival");
        assert!(plans.iter().all(|p| p.at_tick < 4), "arrivals outside the span");
        let longs = plans.iter().filter(|p| p.spec.frames == 24).count();
        let shorts = plans.iter().filter(|p| p.spec.frames == 8).count();
        assert_eq!(longs + shorts, 64);
        assert!(longs > 0 && shorts > longs, "short/long mix missing or inverted");
        assert!(plans.iter().any(|p| p.spec.burst_every > 0), "no bursty sessions");
        assert!(plans.iter().any(|p| p.spec.burst_every == 0), "no smooth sessions");
        for priority in [Priority::High, Priority::Normal, Priority::Low] {
            assert!(
                plans.iter().any(|p| p.spec.priority == priority),
                "priority {priority:?} never drawn"
            );
        }
        let mut scenarios: Vec<&str> = plans.iter().map(|p| p.spec.scenario.as_str()).collect();
        scenarios.sort_unstable();
        scenarios.dedup();
        assert!(scenarios.len() >= 3, "scenario rotation collapsed: {scenarios:?}");
        // Every planned scenario resolves to a real preset.
        for plan in &plans {
            assert!(source_for(&plan.spec, 64, 48).is_some(), "bad scenario {:?}", plan.spec);
        }
    }

    #[test]
    fn unknown_scenarios_are_refused_not_guessed() {
        let spec = SessionSpec::default().scenario("no-such-preset");
        assert!(source_for(&spec, 64, 48).is_none());
    }
}
