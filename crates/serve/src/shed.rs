//! Graceful degradation: the overload shed ladder.
//!
//! HiRISE's premise is that sensing cost is a *budget* to be spent where
//! it buys the most information. Under fleet overload the same idea
//! applies across sessions: instead of dropping whole sessions, every
//! session's sensing budget is degraded a notch — the keyframe cadence
//! widens (fewer full pool + detect frames) and the ROI context margin
//! shrinks (smaller stage-2 readouts) — using exactly the two knobs
//! [`hirise::TemporalConfig`] and [`hirise::HiriseConfig::roi_margin`]
//! already expose to a live [`hirise::TrackingPipeline`].
//!
//! The ladder has four rungs (level `0..=3`). The engine derives a
//! fleet-wide **base level** from the deterministic load ratio
//! `active_sessions / rated_sessions` at each tick; each session then
//! lands one rung away from the base according to its [`Priority`]:
//! low-priority sessions degrade first, high-priority sessions last.
//! Level 0 is always exactly the configured policy — an unloaded fleet
//! serves every session at full quality regardless of priority.

use hirise::{HiriseError, Result, TemporalConfig};

/// How a session ranks when the fleet sheds load. Priority never buys
/// throughput on an unloaded fleet — it only orders who degrades first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Degrades one rung later than the base level.
    High,
    /// Follows the base level.
    #[default]
    Normal,
    /// Degrades one rung earlier than the base level.
    Low,
}

/// The shed ladder: when each level engages and what it costs a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedPolicy {
    /// Load ratios (`active / rated`) strictly above which base levels
    /// 1, 2, 3 engage. Must be positive and non-decreasing.
    pub engage: [f64; 3],
    /// Keyframe-interval multiplier per level (level 0 first; all ≥ 1,
    /// level 0 must be 1 so an unloaded fleet is unmodified).
    pub interval_mult: [u32; 4],
    /// Amount subtracted from the configured `roi_margin` per level
    /// (saturating at 0; level 0 must be 0).
    pub margin_shrink: [u32; 4],
}

impl Default for ShedPolicy {
    /// Level 1 engages just past rated load, level 2 at 1.5×, level 3 at
    /// 2×; each rung widens the cadence by one interval and trims the
    /// ROI margin harder.
    fn default() -> Self {
        Self { engage: [1.0, 1.5, 2.0], interval_mult: [1, 2, 3, 4], margin_shrink: [0, 1, 2, 4] }
    }
}

impl ShedPolicy {
    /// Checks the ladder is monotone and level 0 is a no-op.
    ///
    /// # Errors
    ///
    /// [`HiriseError::InvalidConfig`] on NaN or non-positive engage
    /// thresholds, a non-monotone ladder, a zero interval multiplier, or
    /// a level 0 that modifies the session.
    pub fn validate(&self) -> Result<()> {
        for (i, &e) in self.engage.iter().enumerate() {
            // `!(e > 0.0)` rather than `e <= 0.0`: rejects NaN too.
            if !(e > 0.0) {
                return Err(HiriseError::InvalidConfig {
                    reason: format!("shed engage threshold {i} must be a positive number ({e})"),
                });
            }
        }
        if self.engage.windows(2).any(|w| w[1] < w[0]) {
            return Err(HiriseError::InvalidConfig {
                reason: format!(
                    "shed engage thresholds must be non-decreasing ({:?})",
                    self.engage
                ),
            });
        }
        if self.interval_mult.contains(&0) {
            return Err(HiriseError::InvalidConfig {
                reason: "shed interval multipliers must be ≥ 1".into(),
            });
        }
        if self.interval_mult[0] != 1 || self.margin_shrink[0] != 0 {
            return Err(HiriseError::InvalidConfig {
                reason: "shed level 0 must leave the session unmodified".into(),
            });
        }
        Ok(())
    }

    /// The fleet-wide base level for a load ratio: the number of engage
    /// thresholds strictly exceeded (a load *at* a threshold does not
    /// engage the level — rated load itself is not overload).
    pub fn base_level(&self, load: f64) -> u8 {
        // lint:allow(no-lossy-counter-cast): `engage` is `[f64; 3]`, so
        // the count is at most 3 and always fits u8.
        self.engage.iter().filter(|&&e| load > e).count() as u8
    }

    /// A session's level: the base biased one rung by priority, clamped
    /// to the ladder. A base of 0 sheds nobody — priority only orders
    /// degradation under load, it never degrades an unloaded fleet.
    pub fn level_for(&self, base: u8, priority: Priority) -> u8 {
        if base == 0 {
            return 0;
        }
        let bias: i8 = match priority {
            Priority::High => -1,
            Priority::Normal => 0,
            Priority::Low => 1,
        };
        (base as i8 + bias).clamp(0, 3) as u8
    }

    /// The degraded per-session knobs at `level`: the temporal policy
    /// with a widened keyframe interval, and the shrunk ROI margin.
    pub fn apply(
        &self,
        level: u8,
        base: TemporalConfig,
        base_margin: u32,
    ) -> (TemporalConfig, u32) {
        let level = (level as usize).min(3);
        let mut temporal = base;
        temporal.keyframe_interval =
            base.keyframe_interval.saturating_mul(self.interval_mult[level]).max(1);
        (temporal, base_margin.saturating_sub(self.margin_shrink[level]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_level_engages_strictly_past_each_threshold() {
        let policy = ShedPolicy::default();
        assert_eq!(policy.base_level(0.0), 0);
        assert_eq!(policy.base_level(1.0), 0, "rated load itself is not overload");
        assert_eq!(policy.base_level(1.01), 1);
        assert_eq!(policy.base_level(1.5), 1);
        assert_eq!(policy.base_level(1.51), 2);
        assert_eq!(policy.base_level(2.0), 2, "2× load sits at level 2");
        assert_eq!(policy.base_level(2.5), 3);
        assert_eq!(policy.base_level(f64::INFINITY), 3);
        // NaN load (impossible from integer counts, but cheap to pin)
        // engages nothing rather than something arbitrary.
        assert_eq!(policy.base_level(f64::NAN), 0);
    }

    #[test]
    fn priority_orders_who_degrades_first() {
        let policy = ShedPolicy::default();
        // Unloaded: nobody sheds, whatever the priority.
        for p in [Priority::High, Priority::Normal, Priority::Low] {
            assert_eq!(policy.level_for(0, p), 0);
        }
        // Base 1: low sessions are already two rungs in, high still clean.
        assert_eq!(policy.level_for(1, Priority::Low), 2);
        assert_eq!(policy.level_for(1, Priority::Normal), 1);
        assert_eq!(policy.level_for(1, Priority::High), 0);
        // The ladder clamps at both ends.
        assert_eq!(policy.level_for(3, Priority::Low), 3);
        assert_eq!(policy.level_for(3, Priority::High), 2);
    }

    #[test]
    fn apply_widens_the_cadence_and_shrinks_the_margin() {
        let policy = ShedPolicy::default();
        let base = TemporalConfig::default().keyframe_interval(4);
        let (t0, m0) = policy.apply(0, base, 4);
        assert_eq!((t0.keyframe_interval, m0), (4, 4), "level 0 is the configured policy");
        let (t2, m2) = policy.apply(2, base, 4);
        assert_eq!((t2.keyframe_interval, m2), (12, 2));
        let (t3, m3) = policy.apply(3, base, 4);
        assert_eq!((t3.keyframe_interval, m3), (16, 0), "margin shrink saturates at zero");
        // Every rung of the ladder yields a valid temporal policy.
        for level in 0..=3 {
            policy.apply(level, base, 4).0.validate().unwrap();
        }
        // Out-of-range levels clamp to the top rung.
        assert_eq!(policy.apply(9, base, 4), policy.apply(3, base, 4));
    }

    #[test]
    fn validate_rejects_degenerate_ladders() {
        assert!(ShedPolicy::default().validate().is_ok());
        let nan = ShedPolicy { engage: [1.0, f64::NAN, 2.0], ..Default::default() };
        assert!(nan.validate().is_err());
        let zero = ShedPolicy { engage: [0.0, 1.5, 2.0], ..Default::default() };
        assert!(zero.validate().is_err());
        let decreasing = ShedPolicy { engage: [2.0, 1.5, 1.0], ..Default::default() };
        assert!(decreasing.validate().is_err());
        let dead_interval = ShedPolicy { interval_mult: [1, 2, 0, 4], ..Default::default() };
        assert!(dead_interval.validate().is_err());
        let hot_level0 = ShedPolicy { interval_mult: [2, 2, 3, 4], ..Default::default() };
        assert!(hot_level0.validate().is_err());
        let shrunk_level0 = ShedPolicy { margin_shrink: [1, 1, 2, 4], ..Default::default() };
        assert!(shrunk_level0.validate().is_err());
    }
}
