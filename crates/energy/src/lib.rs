//! # hirise-energy
//!
//! Energy and cost models for the HiRISE system: the analytical relations
//! of the paper's Table 1 plus the calibrated per-operation energies
//! behind Fig. 8 and Table 3.
//!
//! Calibration provenance (every constant is back-solved from numbers the
//! paper itself reports):
//!
//! * **ADC conversion energy** ([`AdcEnergy::PAPER_45NM_8BIT`]):
//!   the baseline "1.843 mJ per 2560×1920 RGB image" divided by its
//!   `2560·1920·3` conversions → 125 pJ/conversion (consistent with the
//!   cited 45 nm 8-bit folding ADC).
//! * **Analog pooling energy** ([`PoolingEnergy::PAPER_45NM`]): the paper
//!   states the pooling circuitry consumes 1.71–91.4 nJ across all
//!   experiments; the ends correspond to 8×8 gray (76.8 k outputs) and
//!   2×2 RGB (3.69 M outputs) on the 2560×1920 array, both of which fit
//!   ≈23.5 fJ per pooled output.
//! * **Link energy** ([`TransferEnergy`]): the paper reports transfer in
//!   bytes, not joules; a parameterised pJ/bit model is provided for
//!   end-to-end what-if studies and defaults to a typical MIPI-class
//!   10 pJ/bit.
//!
//! # Example
//!
//! ```
//! use hirise_energy::{AdcEnergy, SystemParams, ColorChannels, RoiConversionModel};
//!
//! let params = SystemParams::paper_default(2560, 1920, 2);
//! let baseline = params.conventional();
//! let adc = AdcEnergy::PAPER_45NM_8BIT;
//! // The paper's 1.85 mJ baseline.
//! let mj = adc.energy_joules(baseline.conversions) * 1e3;
//! assert!((mj - 1.843).abs() < 0.01);
//! # let _ = (ColorChannels::Rgb, RoiConversionModel::Union);
//! ```

use std::fmt;

/// Energy model of the ADC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcEnergy {
    /// Joules per conversion.
    pub joules_per_conversion: f64,
}

impl AdcEnergy {
    /// 45 nm 8-bit folding ADC, back-solved from the paper's 1.843 mJ
    /// full-frame baseline: 125 pJ/conversion.
    pub const PAPER_45NM_8BIT: AdcEnergy = AdcEnergy { joules_per_conversion: 125.0e-12 };

    /// Total energy for a number of conversions.
    pub fn energy_joules(&self, conversions: u64) -> f64 {
        self.joules_per_conversion * conversions as f64
    }
}

/// Energy model of the analog averaging circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolingEnergy {
    /// Joules per pooled output (one Fig.-4 circuit settling event).
    pub joules_per_output: f64,
}

impl PoolingEnergy {
    /// Fitted to the paper's stated 1.71–91.4 nJ range: ≈23.5 fJ/output.
    pub const PAPER_45NM: PoolingEnergy = PoolingEnergy { joules_per_output: 23.5e-15 };

    /// Total energy for a number of pooled outputs.
    pub fn energy_joules(&self, outputs: u64) -> f64 {
        self.joules_per_output * outputs as f64
    }
}

/// Energy model of the sensor↔processor link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferEnergy {
    /// Joules per transferred bit.
    pub joules_per_bit: f64,
}

impl Default for TransferEnergy {
    fn default() -> Self {
        // MIPI-class serial link ballpark.
        Self { joules_per_bit: 10.0e-12 }
    }
}

impl TransferEnergy {
    /// Total energy for a number of bits.
    pub fn energy_joules(&self, bits: u64) -> f64 {
        self.joules_per_bit * bits as f64
    }
}

/// Colour configuration of the stage-1 compressed image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorChannels {
    /// Three pooled channels.
    Rgb,
    /// Single pooled channel (extra 3× compression).
    Gray,
}

impl ColorChannels {
    /// Channel count.
    pub fn count(&self) -> u64 {
        match self {
            ColorChannels::Rgb => 3,
            ColorChannels::Gray => 1,
        }
    }
}

/// How stage-2 ADC conversions are counted for overlapping ROIs.
///
/// The paper's data-transfer term `D2 = 3·P·Σ(W_i × H_i)` ships every box
/// separately, while its stage-2 energies are only consistent with each
/// physical pixel being converted **once** (the union of the boxes) — the
/// "intersection over the union of ROI boxes" remark. [`RoiConversionModel::Union`]
/// reproduces the paper; [`RoiConversionModel::Sum`] is the naive
/// alternative used as an ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoiConversionModel {
    /// Convert each pixel in the union of the ROIs once (paper).
    Union,
    /// Convert per box, re-converting overlapped pixels (ablation).
    Sum,
}

/// Bits per box-coordinate word (the `Words` of Table 1).
pub const WORD_BITS: u64 = 16;

/// Words per bounding box (x, y, W, H).
pub const WORDS_PER_BOX: u64 = 4;

/// Inputs of the Table-1 analytical model.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemParams {
    /// Array width `n`, pixels.
    pub n: u64,
    /// Array height `m`, pixels.
    pub m: u64,
    /// ADC precision `P_ADC`, bits.
    pub p_adc: u64,
    /// Pooling factor `k`.
    pub k: u64,
    /// Stage-1 colour mode.
    pub stage1_color: ColorChannels,
    /// Number of ROI boxes `j`.
    pub boxes: u64,
    /// Sum of ROI box areas `Σ(W_i × H_i)`, pixels.
    pub sum_roi_area: u64,
    /// Area of the union of the ROI boxes, pixels.
    pub union_roi_area: u64,
    /// Stage-2 conversion accounting.
    pub roi_conversions: RoiConversionModel,
}

impl SystemParams {
    /// Paper-flavoured defaults: 8-bit ADC, RGB stage-1 pooling, union
    /// conversions, no ROIs yet.
    pub fn paper_default(n: u64, m: u64, k: u64) -> Self {
        Self {
            n,
            m,
            p_adc: 8,
            k,
            stage1_color: ColorChannels::Rgb,
            boxes: 0,
            sum_roi_area: 0,
            union_roi_area: 0,
            roi_conversions: RoiConversionModel::Union,
        }
    }

    /// Installs ROI statistics (builder style).
    pub fn with_rois(mut self, boxes: u64, sum_area: u64, union_area: u64) -> Self {
        self.boxes = boxes;
        self.sum_roi_area = sum_area;
        self.union_roi_area = union_area.min(sum_area);
        self
    }

    /// Conventional single-stage system (Table 1, first row): the full
    /// frame is converted and shipped.
    pub fn conventional(&self) -> CostBreakdown {
        let subpixels = self.n * self.m * 3;
        CostBreakdown {
            label: "conventional",
            transfer_bits_s2p: subpixels * self.p_adc,
            transfer_bits_p2s: 0,
            memory_bytes: subpixels * self.p_adc / 8,
            conversions: subpixels,
            pooling_outputs: 0,
        }
    }

    /// HiRISE stage 1: in-sensor pooled (optionally gray) capture.
    pub fn hirise_stage1(&self) -> CostBreakdown {
        let outputs = (self.n * self.m / (self.k * self.k)) * self.stage1_color.count();
        CostBreakdown {
            label: "hirise stage-1",
            transfer_bits_s2p: outputs * self.p_adc,
            transfer_bits_p2s: self.boxes * WORDS_PER_BOX * WORD_BITS,
            memory_bytes: outputs * self.p_adc / 8,
            conversions: outputs,
            pooling_outputs: outputs,
        }
    }

    /// HiRISE stage 2: selective full-resolution ROI readout.
    pub fn hirise_stage2(&self) -> CostBreakdown {
        let converted_px = match self.roi_conversions {
            RoiConversionModel::Union => self.union_roi_area,
            RoiConversionModel::Sum => self.sum_roi_area,
        };
        CostBreakdown {
            label: "hirise stage-2",
            transfer_bits_s2p: 3 * self.p_adc * self.sum_roi_area,
            transfer_bits_p2s: 0,
            memory_bytes: 3 * self.p_adc * self.sum_roi_area / 8,
            conversions: 3 * converted_px,
            pooling_outputs: 0,
        }
    }

    /// Full HiRISE pipeline: stage 1 + stage 2 with the peak-memory rule
    /// `Mem_new = max(M1, M2)` (the pooled image is dropped before the
    /// ROIs arrive).
    pub fn hirise_total(&self) -> CostBreakdown {
        let s1 = self.hirise_stage1();
        let s2 = self.hirise_stage2();
        CostBreakdown {
            label: "hirise total",
            transfer_bits_s2p: s1.transfer_bits_s2p + s2.transfer_bits_s2p,
            transfer_bits_p2s: s1.transfer_bits_p2s + s2.transfer_bits_p2s,
            memory_bytes: s1.memory_bytes.max(s2.memory_bytes),
            conversions: s1.conversions + s2.conversions,
            pooling_outputs: s1.pooling_outputs,
        }
    }
}

/// Output of the Table-1 analytical model for one system/stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostBreakdown {
    /// Which system/stage this describes.
    pub label: &'static str,
    /// Sensor→processor transfer, bits.
    pub transfer_bits_s2p: u64,
    /// Processor→sensor transfer (box coordinates), bits.
    pub transfer_bits_p2s: u64,
    /// Image memory required on the processor, bytes.
    pub memory_bytes: u64,
    /// ADC conversions.
    pub conversions: u64,
    /// Analog pooling outputs (for the pooling-energy term).
    pub pooling_outputs: u64,
}

impl CostBreakdown {
    /// Total transfer (both directions), bits.
    pub fn total_transfer_bits(&self) -> u64 {
        self.transfer_bits_s2p + self.transfer_bits_p2s
    }

    /// Total transfer, kilobytes (the paper's tables use kB).
    pub fn total_transfer_kb(&self) -> f64 {
        self.total_transfer_bits() as f64 / 8.0 / 1000.0
    }

    /// Sensor-side energy: ADC conversions + pooling circuit.
    pub fn sensor_energy_joules(&self, adc: &AdcEnergy, pooling: &PoolingEnergy) -> f64 {
        adc.energy_joules(self.conversions) + pooling.energy_joules(self.pooling_outputs)
    }

    /// Sensor-side energy in millijoules.
    pub fn sensor_energy_mj(&self, adc: &AdcEnergy, pooling: &PoolingEnergy) -> f64 {
        self.sensor_energy_joules(adc, pooling) * 1e3
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: transfer {:.1} kB (s->p {:.1} kB, p->s {} B), memory {:.1} kB, {} conversions",
            self.label,
            self.total_transfer_kb(),
            self.transfer_bits_s2p as f64 / 8000.0,
            self.transfer_bits_p2s / 8,
            self.memory_bytes as f64 / 1000.0,
            self.conversions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 2560;
    const M: u64 = 1920;

    fn crowdhuman_like_params(k: u64) -> SystemParams {
        // Fig. 7/8 calibration: Σbox ≈ 27.1 % of frame, union ≈ 9.2 %.
        let frame = N * M;
        SystemParams::paper_default(N, M, k).with_rois(
            16,
            (frame as f64 * 0.271) as u64,
            (frame as f64 * 0.092) as u64,
        )
    }

    #[test]
    fn baseline_matches_paper_energy() {
        let params = SystemParams::paper_default(N, M, 2);
        let base = params.conventional();
        assert_eq!(base.conversions, N * M * 3);
        let mj = base.sensor_energy_mj(&AdcEnergy::PAPER_45NM_8BIT, &PoolingEnergy::PAPER_45NM);
        assert!((mj - 1.843).abs() < 0.01, "baseline {mj} mJ");
    }

    #[test]
    fn baseline_memory_matches_table3() {
        // 2560x1920 RGB at 8 bit = 14,746 kB in the paper's units.
        let base = SystemParams::paper_default(N, M, 2).conventional();
        assert_eq!(base.memory_bytes, 14_745_600);
    }

    #[test]
    fn fig7_transfer_reductions() {
        // Paper: 1.9x / 3.0x / 3.5x for k = 2 / 4 / 8 (RGB stage-1).
        let expectations = [(2u64, 1.9f64), (4, 3.0), (8, 3.5)];
        for (k, expected) in expectations {
            let p = crowdhuman_like_params(k);
            let base = p.conventional().total_transfer_bits() as f64;
            let hirise = p.hirise_total().total_transfer_bits() as f64;
            let reduction = base / hirise;
            assert!(
                (reduction - expected).abs() < 0.25,
                "k={k}: reduction {reduction:.2} vs paper {expected}"
            );
        }
    }

    #[test]
    fn fig7_stage1_share() {
        // Paper: D1 share of total transfer ≈ 48 % / 19 % / 5 %.
        let expectations = [(2u64, 0.48f64), (4, 0.19), (8, 0.05)];
        for (k, expected) in expectations {
            let p = crowdhuman_like_params(k);
            let s1 = p.hirise_stage1().transfer_bits_s2p as f64;
            let total = p.hirise_total().total_transfer_bits() as f64;
            let share = s1 / total;
            assert!((share - expected).abs() < 0.04, "k={k}: share {share:.3} vs paper {expected}");
        }
    }

    #[test]
    fn fig8_energy_levels() {
        // Paper (Crowdhuman, RGB): 0.63 / 0.28 / 0.20 mJ for k = 2 / 4 / 8.
        let adc = AdcEnergy::PAPER_45NM_8BIT;
        let pooling = PoolingEnergy::PAPER_45NM;
        let expectations = [(2u64, 0.63f64), (4, 0.28), (8, 0.20)];
        for (k, expected) in expectations {
            let p = crowdhuman_like_params(k);
            let mj = p.hirise_total().sensor_energy_mj(&adc, &pooling);
            assert!(
                (mj - expected).abs() / expected < 0.15,
                "k={k}: {mj:.3} mJ vs paper {expected}"
            );
        }
    }

    #[test]
    fn union_vs_sum_ablation() {
        let union = crowdhuman_like_params(4);
        let mut sum = crowdhuman_like_params(4);
        sum.roi_conversions = RoiConversionModel::Sum;
        let e_union = union.hirise_total().conversions;
        let e_sum = sum.hirise_total().conversions;
        // Crowd overlap factor ≈ 27.1/9.2 ≈ 2.9 on the stage-2 part.
        assert!(e_sum > 2 * e_union / 2 && e_sum > e_union);
        let s2_union = union.hirise_stage2().conversions as f64;
        let s2_sum = sum.hirise_stage2().conversions as f64;
        assert!((s2_sum / s2_union - 0.271 / 0.092).abs() < 0.05);
    }

    #[test]
    fn gray_mode_cuts_stage1_by_three() {
        let mut rgb = crowdhuman_like_params(4);
        rgb.stage1_color = ColorChannels::Rgb;
        let mut gray = crowdhuman_like_params(4);
        gray.stage1_color = ColorChannels::Gray;
        assert_eq!(rgb.hirise_stage1().conversions, 3 * gray.hirise_stage1().conversions);
    }

    #[test]
    fn pooling_energy_range_matches_paper() {
        // The stated 1.71–91.4 nJ range across 8x8 gray .. 2x2 RGB.
        let pooling = PoolingEnergy::PAPER_45NM;
        let lo = SystemParams {
            stage1_color: ColorChannels::Gray,
            ..SystemParams::paper_default(N, M, 8)
        };
        let hi = SystemParams::paper_default(N, M, 2);
        let e_lo = pooling.energy_joules(lo.hirise_stage1().pooling_outputs) * 1e9;
        let e_hi = pooling.energy_joules(hi.hirise_stage1().pooling_outputs) * 1e9;
        assert!((e_lo - 1.71).abs() < 0.3, "low end {e_lo} nJ");
        assert!((e_hi - 91.4).abs() < 8.0, "high end {e_hi} nJ");
        // Orders of magnitude below ADC energy, as the paper notes.
        let adc_stage1 =
            AdcEnergy::PAPER_45NM_8BIT.energy_joules(hi.hirise_stage1().conversions) * 1e9;
        assert!(adc_stage1 / e_hi > 1000.0);
    }

    #[test]
    fn memory_rule_is_max_of_stages() {
        let p = crowdhuman_like_params(8);
        let total = p.hirise_total();
        let s1 = p.hirise_stage1();
        let s2 = p.hirise_stage2();
        assert_eq!(total.memory_bytes, s1.memory_bytes.max(s2.memory_bytes));
        assert!(total.memory_bytes < p.conventional().memory_bytes);
    }

    #[test]
    fn p2s_transfer_is_negligible() {
        let p = crowdhuman_like_params(2);
        let total = p.hirise_total();
        assert!(total.transfer_bits_p2s * 1000 < total.transfer_bits_s2p);
        assert_eq!(total.transfer_bits_p2s, 16 * 4 * 16);
    }

    #[test]
    fn with_rois_clamps_union() {
        let p = SystemParams::paper_default(100, 100, 2).with_rois(2, 50, 80);
        assert_eq!(p.union_roi_area, 50);
    }

    #[test]
    fn display_formats() {
        let p = crowdhuman_like_params(2);
        let text = p.hirise_total().to_string();
        assert!(text.contains("hirise total"));
        assert!(text.contains("kB"));
    }
}
