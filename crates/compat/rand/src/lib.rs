//! Offline stand-in for the crates.io [`rand`] crate (0.8 API surface).
//!
//! The build environment has no network access, so this workspace ships
//! its own implementation of the slice of `rand 0.8` the HiRISE
//! reproduction uses: the [`Rng`] extension trait, [`SeedableRng`],
//! [`rngs::StdRng`] and [`rngs::mock::StepRng`], and the [`Standard`]
//! distribution. See `crates/compat/README.md` for the behavioural
//! differences from upstream (most notably: `StdRng` here is
//! xoshiro256++, not ChaCha12, so seeded streams are deterministic but
//! not bit-identical to crates.io builds).
//!
//! Beyond the `rand 0.8` surface, two pieces of the `rand` ecosystem
//! this workspace needs are folded in rather than stubbed separately:
//! the counter-based [`rngs::KeyedRng`] (order-independent,
//! position-keyable draws — the engine behind the sensor's `Keyed`
//! noise mode) and the Ziggurat [`StandardNormal`] sampler with the
//! batched [`distributions::fill_normals`] entry point (the
//! `rand_distr::StandardNormal` analogue).
//!
//! [`rand`]: https://docs.rs/rand/0.8
//! [`Standard`]: distributions::Standard
//! [`StandardNormal`]: distributions::StandardNormal

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random `u32`/`u64`
/// words plus byte-filling, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] exactly as in `rand 0.8`.
pub trait Rng: RngCore {
    /// Samples a value whose type supports the [`Standard`] distribution
    /// (uniform floats in `[0, 1)`, uniform integers, fair booleans).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a half-open `low..high` or inclusive
    /// `low..=high` range. Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills an integer/float slice with independently sampled values.
    fn fill<T>(&mut self, dest: &mut [T])
    where
        Standard: Distribution<T>,
    {
        for slot in dest {
            *slot = self.gen();
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed, mirroring
/// `rand_core::SeedableRng` for the `seed_from_u64` entry point this
/// repository uses.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn float_mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let i = rng.gen_range(5u32..17);
            assert!((5..17).contains(&i));
            let j = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&j));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let g = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn step_rng_counts_by_increment() {
        let mut rng = StepRng::new(10, 3);
        assert_eq!(rng.next_u64(), 10);
        assert_eq!(rng.next_u64(), 13);
        assert_eq!(rng.next_u64(), 16);
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
