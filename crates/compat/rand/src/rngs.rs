//! Concrete generators: the deterministic [`StdRng`] and the
//! test-oriented [`mock::StepRng`].

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: **xoshiro256++** state seeded
/// through SplitMix64.
///
/// The real `rand 0.8` `StdRng` is ChaCha12; this repository only relies
/// on seeded determinism and distribution quality, both of which
/// xoshiro256++ provides at a fraction of the code. Streams from equal
/// seeds are identical; streams from different seeds are decorrelated by
/// the SplitMix64 expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn splitmix_next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = Self::splitmix_next(&mut sm);
        }
        // An all-zero state would be a fixed point of xoshiro.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

pub mod mock {
    //! Mock generators with fully predictable output, for tests that
    //! need to steer stochastic code down a known path.

    use crate::RngCore;

    /// Yields `initial`, `initial + increment`, `initial + 2·increment`,
    /// … (wrapping), exactly like `rand::rngs::mock::StepRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StepRng {
        value: u64,
        increment: u64,
    }

    impl StepRng {
        /// Creates a generator starting at `initial` and advancing by
        /// `increment` per draw.
        pub fn new(initial: u64, increment: u64) -> Self {
            Self { value: initial, increment }
        }
    }

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.value;
            self.value = self.value.wrapping_add(self.increment);
            out
        }
    }
}
