//! Concrete generators: the deterministic [`StdRng`], the counter-based
//! [`KeyedRng`], and the test-oriented [`mock::StepRng`].

use crate::{RngCore, SeedableRng};

/// SplitMix64 finalizer: a full-avalanche 64-bit mixing function.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Weyl increment (the SplitMix64 golden-ratio constant).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The workspace's standard generator: **xoshiro256++** state seeded
/// through SplitMix64.
///
/// The real `rand 0.8` `StdRng` is ChaCha12; this repository only relies
/// on seeded determinism and distribution quality, both of which
/// xoshiro256++ provides at a fraction of the code. Streams from equal
/// seeds are identical; streams from different seeds are decorrelated by
/// the SplitMix64 expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn splitmix_next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = Self::splitmix_next(&mut sm);
        }
        // An all-zero state would be a fixed point of xoshiro.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A **counter-based** (Philox/SplitMix-style) generator: every output
/// word is a pure block function of `(key, counter)` with no carried
/// state beyond the counter itself.
///
/// Unlike a sequential generator, the `n`-th draw of a `KeyedRng` does
/// not depend on how many draws other generators made — two parties that
/// agree on a key and a stream id produce identical values in any order,
/// which is what makes noise synthesis order-independent and therefore
/// shardable. The block function is SplitMix64 evaluated at
/// `key + (counter + 1) · golden`, i.e. the SplitMix64 sequence seeded at
/// `key` and indexed randomly-accessibly by `counter`.
///
/// Stream separation ([`KeyedRng::for_stream`] /
/// [`KeyedRng::derive_key`]) folds the stream id through the same
/// full-avalanche finalizer, so adjacent ids (neighbouring pixels,
/// consecutive frames) land on decorrelated keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedRng {
    key: u64,
    counter: u64,
}

impl KeyedRng {
    /// Creates a generator over the raw `key` with the counter at zero.
    pub fn new(key: u64) -> Self {
        Self { key, counter: 0 }
    }

    /// Creates the generator for one logical stream (a pixel site, a
    /// pooling site, …) under a shared key. Equal `(key, stream)` pairs
    /// reproduce the same draws; distinct streams are decorrelated.
    #[inline]
    pub fn for_stream(key: u64, stream: u64) -> Self {
        Self { key: key ^ mix64(stream.wrapping_mul(0xA24B_AED4_963E_E407) ^ GOLDEN), counter: 0 }
    }

    /// Derives a top-level key from a seed and a coarse stream index
    /// (e.g. a frame or readout counter). Use the result as the `key` of
    /// [`KeyedRng::for_stream`].
    #[inline]
    pub fn derive_key(seed: u64, stream: u64) -> u64 {
        mix64(mix64(seed ^ 0x6A09_E667_F3BC_C909) ^ stream.wrapping_mul(GOLDEN))
    }

    /// The raw block function: the `counter`-th output word under `key`.
    #[inline]
    pub fn block(key: u64, counter: u64) -> u64 {
        mix64(key.wrapping_add(counter.wrapping_add(1).wrapping_mul(GOLDEN)))
    }
}

impl SeedableRng for KeyedRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(mix64(seed ^ GOLDEN))
    }
}

impl RngCore for KeyedRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let c = self.counter;
        self.counter = c.wrapping_add(1);
        Self::block(self.key, c)
    }
}

pub mod mock {
    //! Mock generators with fully predictable output, for tests that
    //! need to steer stochastic code down a known path.

    use crate::RngCore;

    /// Yields `initial`, `initial + increment`, `initial + 2·increment`,
    /// … (wrapping), exactly like `rand::rngs::mock::StepRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StepRng {
        value: u64,
        increment: u64,
    }

    impl StepRng {
        /// Creates a generator starting at `initial` and advancing by
        /// `increment` per draw.
        pub fn new(initial: u64, increment: u64) -> Self {
            Self { value: initial, increment }
        }
    }

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.value;
            self.value = self.value.wrapping_add(self.increment);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::KeyedRng;
    use crate::{Rng, RngCore, SeedableRng};

    #[test]
    fn keyed_rng_is_a_pure_function_of_key_and_counter() {
        let key = KeyedRng::derive_key(42, 7);
        let mut a = KeyedRng::for_stream(key, 1234);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        // Random access through the block function matches the stream,
        // regardless of how many draws anyone else made in between.
        let mut b = KeyedRng::for_stream(key, 1234);
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let direct = KeyedRng::block(key, 3);
        let mut c = KeyedRng::new(key);
        for _ in 0..3 {
            c.next_u64();
        }
        assert_eq!(c.next_u64(), direct);
    }

    #[test]
    fn keyed_streams_are_distinct() {
        let key = KeyedRng::derive_key(1, 0);
        let mut a = KeyedRng::for_stream(key, 10);
        let mut b = KeyedRng::for_stream(key, 11);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
        // Different seeds move every stream.
        let other = KeyedRng::derive_key(2, 0);
        assert_ne!(KeyedRng::for_stream(other, 10).next_u64(), xs[0]);
    }

    #[test]
    fn keyed_rng_unit_floats_stay_in_range_and_center() {
        let mut rng = KeyedRng::seed_from_u64(5);
        let n = 20_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
