//! The [`Standard`] distribution, the Ziggurat [`StandardNormal`]
//! sampler, and uniform range sampling backing [`crate::Rng::gen`] and
//! [`crate::Rng::gen_range`].

use crate::Rng;

pub use normal::{fill_normals, NormalSampler, StandardNormal};

/// A distribution over values of `T`, mirroring
/// `rand::distributions::Distribution`.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: uniform `[0, 1)` for floats,
/// uniform over the full domain for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits, as in upstream rand.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 uniform mantissa bits.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod normal {
    //! Ziggurat sampling of the standard normal distribution.
    //!
    //! The classic 256-layer Marsaglia–Tsang rejection scheme: the area
    //! under the Gaussian density is covered by 255 stacked rectangles
    //! plus a base strip that includes the tail. ~98.8 % of samples cost
    //! one `u64` draw, one table compare and one multiply — no
    //! transcendentals — which is what lets the sensor noise model
    //! replace its per-draw Box–Muller `ln`/`sqrt`/`cos` chain.
    //!
    //! Tables are built once at first use (a [`OnceLock`]; no heap) from
    //! the layer count and the tail cut `R`, with the per-layer area
    //! integrated numerically so the construction is self-consistent to
    //! double precision.

    use std::sync::OnceLock;

    use super::Distribution;
    use crate::RngCore;

    /// Number of ziggurat layers.
    const LAYERS: usize = 256;

    /// Tail cut for 256 layers (Marsaglia & Tsang).
    const R: f64 = 3.654_152_885_361_009;

    /// Unnormalised standard-normal density `exp(-x²/2)`.
    #[inline]
    fn pdf(x: f64) -> f64 {
        (-0.5 * x * x).exp()
    }

    /// `∫_R^∞ exp(-x²/2) dx` by Simpson's rule; the integrand decays to
    /// ~1e-40 within ten units, far below the truncation error.
    fn tail_area() -> f64 {
        let (a, b) = (R, R + 10.0);
        let n = 20_000usize;
        let h = (b - a) / n as f64;
        let mut acc = pdf(a) + pdf(b);
        for i in 1..n {
            let w = if i % 2 == 1 { 4.0 } else { 2.0 };
            acc += w * pdf(a + i as f64 * h);
        }
        acc * h / 3.0
    }

    /// Layer edges `x[i]` (descending, `x[LAYERS] = 0`) and densities
    /// `f[i] = pdf(x[i])`.
    struct Tables {
        x: [f64; LAYERS + 1],
        f: [f64; LAYERS + 1],
    }

    fn tables() -> &'static Tables {
        static TABLES: OnceLock<Tables> = OnceLock::new();
        TABLES.get_or_init(|| {
            // Common layer area: the base rectangle [0, R] × pdf(R) plus
            // the tail mass beyond R.
            let v = R * pdf(R) + tail_area();
            let mut x = [0.0; LAYERS + 1];
            x[0] = v / pdf(R); // virtual base edge, > R
            x[1] = R;
            for i in 2..LAYERS {
                // Each layer has area v: x[i] solves
                // pdf(x[i]) = v / x[i-1] + pdf(x[i-1]).
                x[i] = (-2.0 * (v / x[i - 1] + pdf(x[i - 1])).ln()).sqrt();
            }
            x[LAYERS] = 0.0;
            let mut f = [0.0; LAYERS + 1];
            for (fi, xi) in f.iter_mut().zip(&x) {
                *fi = pdf(*xi);
            }
            Tables { x, f }
        })
    }

    /// 53-bit uniform in `[0, 1)` from one word.
    #[inline]
    fn unit(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// 53-bit uniform in `(0, 1]` from one word (safe for `ln`).
    #[inline]
    fn unit_open(bits: u64) -> f64 {
        ((bits >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A standard-normal sampler holding the resolved table reference,
    /// so hot loops pay the [`OnceLock`] lookup once instead of per
    /// sample.
    #[derive(Debug, Clone, Copy)]
    pub struct NormalSampler {
        t: &'static Tables,
    }

    impl std::fmt::Debug for Tables {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Tables").finish_non_exhaustive()
        }
    }

    impl Default for NormalSampler {
        fn default() -> Self {
            Self::new()
        }
    }

    impl NormalSampler {
        /// Resolves (building on first use) the ziggurat tables.
        pub fn new() -> Self {
            Self { t: tables() }
        }

        /// Draws one standard-normal sample.
        #[inline]
        pub fn sample<G: RngCore + ?Sized>(&self, rng: &mut G) -> f64 {
            let t = self.t;
            loop {
                let bits = rng.next_u64();
                let i = (bits & 0xFF) as usize;
                let neg = bits & 0x100 != 0;
                let x = unit(bits) * t.x[i];
                // Inside the strictly-interior part of the layer: accept.
                if x < t.x[i + 1] {
                    return if neg { -x } else { x };
                }
                if i == 0 {
                    return Self::tail(rng, neg);
                }
                // Wedge: accept against the true density.
                let y = unit(rng.next_u64());
                if t.f[i + 1] + y * (t.f[i] - t.f[i + 1]) < pdf(x) {
                    return if neg { -x } else { x };
                }
            }
        }

        /// Marsaglia's tail algorithm for `|x| > R`.
        #[cold]
        fn tail<G: RngCore + ?Sized>(rng: &mut G, neg: bool) -> f64 {
            loop {
                let x = -unit_open(rng.next_u64()).ln() / R;
                let y = -unit_open(rng.next_u64()).ln();
                if y + y >= x * x {
                    let v = R + x;
                    return if neg { -v } else { v };
                }
            }
        }
    }

    /// The standard normal distribution `N(0, 1)`, mirroring
    /// `rand_distr::StandardNormal`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct StandardNormal;

    impl Distribution<f64> for StandardNormal {
        fn sample<G: crate::Rng + ?Sized>(&self, rng: &mut G) -> f64 {
            NormalSampler::new().sample(rng)
        }
    }

    /// Fills `out` with independent standard-normal samples — the
    /// batched entry point for noise synthesis (one table resolution for
    /// the whole slice).
    pub fn fill_normals<G: RngCore + ?Sized>(rng: &mut G, out: &mut [f64]) {
        let sampler = NormalSampler::new();
        for slot in out {
            *slot = sampler.sample(rng);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn tables_are_consistent() {
            let t = tables();
            // Edges descend strictly from the virtual base to zero.
            assert!(t.x[0] > t.x[1]);
            assert_eq!(t.x[1], R);
            for i in 1..LAYERS {
                assert!(t.x[i] > t.x[i + 1], "edge {i} not descending");
            }
            assert_eq!(t.x[LAYERS], 0.0);
            // The top layer closes: its area matches the common area.
            let v = R * pdf(R) + tail_area();
            let top = t.x[LAYERS - 1] * (1.0 - pdf(t.x[LAYERS - 1]));
            assert!((top - v).abs() < 1e-6 * v, "top layer area {top} vs {v}");
        }

        #[test]
        fn moments_match_standard_normal() {
            use crate::rngs::KeyedRng;
            let sampler = NormalSampler::new();
            let key = KeyedRng::derive_key(0xDEAD, 0);
            let n = 200_000usize;
            let (mut sum, mut sum2, mut sum3, mut tail3) = (0.0f64, 0.0, 0.0, 0u32);
            for site in 0..n {
                let mut rng = KeyedRng::for_stream(key, site as u64);
                let x = sampler.sample(&mut rng);
                sum += x;
                sum2 += x * x;
                sum3 += x * x * x;
                if x.abs() > 3.0 {
                    tail3 += 1;
                }
            }
            let mean = sum / n as f64;
            let var = sum2 / n as f64 - mean * mean;
            let skew = sum3 / n as f64;
            let tail = tail3 as f64 / n as f64;
            assert!(mean.abs() < 0.01, "mean {mean}");
            assert!((var - 1.0).abs() < 0.02, "variance {var}");
            assert!(skew.abs() < 0.03, "third moment {skew}");
            // P(|X| > 3) = 0.002700 for a standard normal.
            assert!((tail - 0.0027).abs() < 0.0012, "3-sigma tail {tail}");
        }

        #[test]
        fn fill_normals_is_deterministic_per_seed() {
            use crate::rngs::StdRng;
            use crate::SeedableRng;
            let mut a = StdRng::seed_from_u64(9);
            let mut b = StdRng::seed_from_u64(9);
            let (mut xs, mut ys) = ([0.0; 64], [0.0; 64]);
            fill_normals(&mut a, &mut xs);
            fill_normals(&mut b, &mut ys);
            assert_eq!(xs, ys);
            assert!(xs.iter().any(|&x| x < 0.0) && xs.iter().any(|&x| x > 0.0));
        }
    }
}

pub mod uniform {
    //! Range sampling: the [`SampleRange`] glue trait consumed by
    //! [`crate::Rng::gen_range`] plus the [`SampleUniform`] per-type
    //! implementations.

    use core::ops::{Range, RangeInclusive};

    use super::Distribution;
    use crate::Rng;

    /// Types that can be drawn uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Uniform draw from `[low, high)`; panics when `low >= high`.
        fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

        /// Uniform draw from `[low, high]`; panics when `low > high`.
        fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    /// Range-shaped arguments accepted by `gen_range`.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "cannot sample empty range");
            T::sample_inclusive(rng, low, high)
        }
    }

    macro_rules! uniform_int {
        ($($t:ty => $unsigned:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let span = (high as $unsigned).wrapping_sub(low as $unsigned);
                    low.wrapping_add(bounded(rng, span as u64) as $t)
                }

                fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let span = (high as $unsigned).wrapping_sub(low as $unsigned);
                    if span as u64 == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    low.wrapping_add(bounded(rng, span as u64 + 1) as $t)
                }
            }
        )*};
    }

    uniform_int!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
    );

    /// Uniform draw from `[0, bound)` via 128-bit widening multiply
    /// (Lemire's method without the rejection step; the bias is
    /// `O(bound / 2^64)` — immaterial for the small ranges used here).
    fn bounded<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let unit: $t = crate::distributions::Standard.sample(rng);
                    let v = low + unit * (high - low);
                    // Guard against rounding up to the open bound.
                    if v >= high { low } else { v }
                }

                fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let unit: $t = crate::distributions::Standard.sample(rng);
                    low + unit * (high - low)
                }
            }
        )*};
    }

    uniform_float!(f32, f64);
}
