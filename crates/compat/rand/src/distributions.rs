//! The [`Standard`] distribution and uniform range sampling backing
//! [`crate::Rng::gen`] and [`crate::Rng::gen_range`].

use crate::Rng;

/// A distribution over values of `T`, mirroring
/// `rand::distributions::Distribution`.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: uniform `[0, 1)` for floats,
/// uniform over the full domain for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits, as in upstream rand.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 uniform mantissa bits.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod uniform {
    //! Range sampling: the [`SampleRange`] glue trait consumed by
    //! [`crate::Rng::gen_range`] plus the [`SampleUniform`] per-type
    //! implementations.

    use core::ops::{Range, RangeInclusive};

    use super::Distribution;
    use crate::Rng;

    /// Types that can be drawn uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Uniform draw from `[low, high)`; panics when `low >= high`.
        fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

        /// Uniform draw from `[low, high]`; panics when `low > high`.
        fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    /// Range-shaped arguments accepted by `gen_range`.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "cannot sample empty range");
            T::sample_inclusive(rng, low, high)
        }
    }

    macro_rules! uniform_int {
        ($($t:ty => $unsigned:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let span = (high as $unsigned).wrapping_sub(low as $unsigned);
                    low.wrapping_add(bounded(rng, span as u64) as $t)
                }

                fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let span = (high as $unsigned).wrapping_sub(low as $unsigned);
                    if span as u64 == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    low.wrapping_add(bounded(rng, span as u64 + 1) as $t)
                }
            }
        )*};
    }

    uniform_int!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
    );

    /// Uniform draw from `[0, bound)` via 128-bit widening multiply
    /// (Lemire's method without the rejection step; the bias is
    /// `O(bound / 2^64)` — immaterial for the small ranges used here).
    fn bounded<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let unit: $t = crate::distributions::Standard.sample(rng);
                    let v = low + unit * (high - low);
                    // Guard against rounding up to the open bound.
                    if v >= high { low } else { v }
                }

                fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let unit: $t = crate::distributions::Standard.sample(rng);
                    low + unit * (high - low)
                }
            }
        )*};
    }

    uniform_float!(f32, f64);
}
