//! Offline stand-in for the crates.io [`proptest`] property-testing
//! crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro (including the `#![proptest_config(..)]`
//! header), [`prop_assert!`]/[`prop_assert_eq!`], the [`Strategy`]
//! trait with [`Strategy::prop_map`], numeric range strategies, tuple
//! strategies, [`collection::vec`], [`sample::select`], and
//! [`ProptestConfig`].
//!
//! Cases are drawn from a deterministic per-test RNG (seeded from the
//! test's module path and name), so failures reproduce across runs.
//! Unlike upstream there is **no shrinking**: a failing case panics
//! with the sampled inputs rather than a minimised counterexample. See
//! `crates/compat/README.md`.
//!
//! [`proptest`]: https://docs.rs/proptest/1
//! [`Strategy`]: strategy::Strategy
//! [`Strategy::prop_map`]: strategy::Strategy::prop_map
//! [`ProptestConfig`]: test_runner::ProptestConfig

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a [`proptest!`] body (panics on failure;
/// upstream's early-`Err` return is replaced by a plain panic since
/// this stand-in does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` that samples its arguments `cases` times and
/// runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::rng_for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let mut guard = $crate::test_runner::CaseGuard::new(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                    config.cases,
                );
                $(
                    let sampled =
                        $crate::strategy::Strategy::sample_value(&($strategy), &mut rng);
                    guard.record(stringify!($arg), &sampled);
                    let $arg = sampled;
                )*
                $body
                guard.disarm();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..100, 1u32..50).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn mapped_pairs_are_ordered((lo, hi) in arb_pair()) {
            prop_assert!(lo < hi);
        }

        #[test]
        fn ranges_honour_bounds(x in 5u32..10, y in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vecs_honour_size_range(v in prop::collection::vec(0u32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn select_only_picks_given_items(k in prop::sample::select(vec![1u32, 2, 4, 8])) {
            prop_assert!([1, 2, 4, 8].contains(&k));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }
}
