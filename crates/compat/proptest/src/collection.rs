//! Collection strategies ([`vec()`](vec())).

use core::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// The strategy returned by [`vec()`](vec()).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.sample_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_and_elements_respect_ranges() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = vec(0u32..7, 2..6);
        let mut seen_lens = [false; 6];
        for _ in 0..200 {
            let v = s.sample_value(&mut rng);
            assert!((2..6).contains(&v.len()));
            seen_lens[v.len()] = true;
            assert!(v.iter().all(|&x| x < 7));
        }
        assert!(seen_lens[2] && seen_lens[5], "length range not covered");
    }

    #[test]
    fn zero_length_vecs_are_possible() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = vec(0u32..7, 0..2);
        assert!((0..100).any(|_| s.sample_value(&mut rng).is_empty()));
    }
}
