//! The [`Strategy`] trait and the primitive strategies: numeric ranges,
//! tuples, [`Just`], and [`Map`].

use core::ops::{Range, RangeInclusive};

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value. (Named `sample_value` rather than upstream's
    /// `new_tree` machinery: this stand-in generates flat values with no
    /// shrink trees.)
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Derives a strategy producing `f(value)`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + PartialOrd + Copy,
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn sample_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + PartialOrd + Copy,
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn sample_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let x = (3u32..9).sample_value(&mut rng);
            assert!((3..9).contains(&x));
            let y = (1usize..=4).sample_value(&mut rng);
            assert!((1..=4).contains(&y));
            let z = (0.0f64..2.0).sample_value(&mut rng);
            assert!((0.0..2.0).contains(&z));
        }
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut rng = StdRng::seed_from_u64(2);
        let (a, b, c, d) = (0u32..10, 10u32..20, 20u32..30, 30u32..40).sample_value(&mut rng);
        assert!(a < 10 && (10..20).contains(&b) && (20..30).contains(&c) && (30..40).contains(&d));
    }

    #[test]
    fn prop_map_applies_function() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = (0u32..5).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = s.sample_value(&mut rng);
            assert_eq!(v % 10, 0);
            assert!(v < 50);
        }
    }

    #[test]
    fn just_returns_its_value() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(Just(7u8).sample_value(&mut rng), 7);
    }
}
