//! Test-execution support: configuration, the deterministic per-test
//! RNG, and the failure-reporting guard used by the [`proptest!`]
//! macro expansion.
//!
//! [`proptest!`]: crate::proptest!

use std::fmt::Debug;
use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Derives the deterministic RNG for one property test from its fully
/// qualified name, so every run samples the same cases. FNV-1a rather
/// than std's `DefaultHasher`: the latter's algorithm is unstable
/// across Rust releases, which would silently change every sampled
/// case on a toolchain update.
pub fn rng_for_test(qualified_name: &str) -> StdRng {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in qualified_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// Prints the sampled inputs of the in-flight case if the property body
/// panics (this stand-in's replacement for upstream's shrink-and-report
/// machinery).
pub struct CaseGuard {
    header: String,
    inputs: String,
    armed: bool,
}

impl CaseGuard {
    /// Starts a guard for `case` (0-based) of `total` in the named test.
    pub fn new(test_name: &'static str, case: u32, total: u32) -> Self {
        Self {
            header: format!("{test_name} (case {}/{total})", case + 1),
            inputs: String::new(),
            armed: true,
        }
    }

    /// Records one sampled argument for the failure report.
    pub fn record(&mut self, name: &'static str, value: &dyn Debug) {
        if !self.inputs.is_empty() {
            self.inputs.push_str(", ");
        }
        let _ = write!(self.inputs, "{name} = {value:?}");
    }

    /// Marks the case as passed; the guard stays quiet on drop.
    pub fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!("proptest case failed: {} with inputs [{}]", self.header, self.inputs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn per_test_rng_is_stable_and_name_sensitive() {
        let a: Vec<u64> = (0..4)
            .map({
                let mut r = rng_for_test("x::y");
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..4)
            .map({
                let mut r = rng_for_test("x::y");
                move |_| r.next_u64()
            })
            .collect();
        let c: Vec<u64> = (0..4)
            .map({
                let mut r = rng_for_test("x::z");
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn disarmed_guard_is_silent() {
        let mut g = CaseGuard::new("t", 0, 1);
        g.record("x", &42);
        g.disarm();
        drop(g);
    }
}
