//! Sampling strategies over explicit candidate sets
//! (`prop::sample::select`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A strategy choosing uniformly among the given candidates.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "cannot select from an empty set");
    Select { options }
}

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut StdRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn every_candidate_is_reachable_and_nothing_else() {
        let mut rng = StdRng::seed_from_u64(8);
        let s = select(vec![1u32, 2, 4, 8]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = s.sample_value(&mut rng);
            let idx = [1, 2, 4, 8].iter().position(|&x| x == v).expect("unexpected value");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
