//! Offline stand-in for the crates.io [`criterion`] benchmark harness.
//!
//! Implements the subset of the `criterion 0.5` API the workspace's
//! `[[bench]]` targets use — [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — over a plain
//! wall-clock measurement loop:
//!
//! * each benchmark is warmed up for ~3 iterations / 100 ms,
//! * then timed for up to `sample_size` samples within a ~2 s budget,
//! * and min / mean / max per-iteration times are printed to stdout.
//!
//! `cargo bench -- <filter>` substring filtering and the `--test` flag
//! (run every benchmark exactly once, used by `cargo test --benches`)
//! are honoured. There are no HTML reports, baselines, or statistical
//! significance tests; see `crates/compat/README.md`.
//!
//! [`criterion`]: https://docs.rs/criterion/0.5

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Upper wall-clock budget spent measuring one benchmark function.
const MEASUREMENT_BUDGET: Duration = Duration::from_secs(2);
/// Upper wall-clock budget spent warming one benchmark function up.
const WARM_UP_BUDGET: Duration = Duration::from_millis(100);

/// The benchmark driver: holds configuration and runs registered
/// benchmark functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 100, test_mode: false, filter: None }
    }
}

impl Criterion {
    /// Sets the target number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = n;
        self
    }

    /// Applies command-line arguments (`--test`, substring filter);
    /// called by the [`criterion_group!`] expansion.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" | "-t" => self.test_mode = true,
                // Flags cargo/libtest pass through that take a value.
                "--save-baseline" | "--baseline" | "--load-baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" => {
                    let _ = args.next();
                }
                other if other.starts_with('-') => {}
                other => self.filter = Some(other.to_string()),
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Benchmarks one function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().full_label(None);
        run_benchmark(&label, self.sample_size, self.test_mode, &self.filter, f);
        self
    }
}

/// A set of benchmarks reported under a common `group/` prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for every benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().full_label(Some(&self.name));
        run_benchmark(
            &label,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.test_mode,
            &self.criterion.filter,
            f,
        );
        self
    }

    /// Benchmarks one function against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { function_name: Some(function_name.into()), parameter: Some(parameter.to_string()) }
    }

    /// An id that is just a parameter value (the group name carries the
    /// function identity).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { function_name: None, parameter: Some(parameter.to_string()) }
    }

    fn full_label(&self, group: Option<&str>) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if let Some(g) = group {
            parts.push(g);
        }
        if let Some(f) = self.function_name.as_deref() {
            parts.push(f);
        }
        if let Some(p) = self.parameter.as_deref() {
            parts.push(p);
        }
        parts.join("/")
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { function_name: Some(name.to_string()), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { function_name: Some(name), parameter: None }
    }
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(
    label: &str,
    sample_size: usize,
    test_mode: bool,
    filter: &Option<String>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(needle) = filter {
        if !label.contains(needle.as_str()) {
            return;
        }
    }

    if test_mode {
        let mut b = Bencher { iterations: 1, elapsed: Duration::ZERO };
        f(&mut b);
        println!("{label}: ok (test mode)");
        return;
    }

    // Warm-up: run single iterations until the budget is spent.
    let warm_start = Instant::now();
    let mut warm_iters = 0u32;
    while warm_iters < 3 || (warm_start.elapsed() < WARM_UP_BUDGET && warm_iters < 1000) {
        let mut b = Bencher { iterations: 1, elapsed: Duration::ZERO };
        f(&mut b);
        warm_iters += 1;
    }

    // Measurement: `sample_size` samples, truncated to the time budget.
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    let run_start = Instant::now();
    for _ in 0..sample_size {
        let mut b = Bencher { iterations: 1, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed);
        if run_start.elapsed() > MEASUREMENT_BUDGET {
            break;
        }
    }

    let n = samples.len() as u32;
    let total: Duration = samples.iter().sum();
    let mean = total / n.max(1);
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{label:<48} time: [{} {} {}]  ({n} samples)",
        format_duration(min),
        format_duration(mean),
        format_duration(max),
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!` (both the plain and the
/// `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Expands to `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_labels_compose() {
        assert_eq!(BenchmarkId::from_parameter(4).full_label(Some("pool")), "pool/4");
        assert_eq!(BenchmarkId::new("f", 2).full_label(Some("g")), "g/f/2");
        assert_eq!(BenchmarkId::from("solo").full_label(None), "solo");
    }

    #[test]
    fn bencher_records_elapsed_time() {
        let mut b = Bencher { iterations: 10, elapsed: Duration::ZERO };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 10);
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(1500)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
