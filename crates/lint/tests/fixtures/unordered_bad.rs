// Fixture: HashMap/HashSet in shipped code of a deterministic crate
// must flag (iteration order varies run to run).

use std::collections::HashMap;

pub fn tally(keys: &[u32]) -> usize {
    let mut seen: HashMap<u32, u64> = HashMap::new();
    for &k in keys {
        *seen.entry(k).or_insert(0) += 1;
    }
    seen.len()
}
