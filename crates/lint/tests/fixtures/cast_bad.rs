// Fixture: narrowing casts on accumulators must flag.

pub fn frame_total(frame_count: u64) -> u32 {
    frame_count as u32
}

pub fn indexed(counts: &[u64], i: usize) -> u16 {
    counts[i] as u16
}

pub fn reduction(xs: &[u64]) -> u8 {
    xs.iter().filter(|&&x| x > 0).count() as u8
}

pub fn turbofish(xs: &[u32]) -> u32 {
    xs.iter().map(|&x| u64::from(x)).sum::<u64>() as u32
}
