// Fixture: every `unsafe` carries a SAFETY comment in one of the
// accepted placements; none may flag.

// SAFETY: caller guarantees `p` is valid for reads.
pub unsafe fn raw_read(p: *const u32) -> u32 {
    // SAFETY: the fn-level contract above makes the read valid.
    unsafe { *p }
}

pub struct Wrapper(*mut u8);

// SAFETY: the pointer is only dereferenced on the owning thread.
unsafe impl Send for Wrapper {}

pub fn continuation_case(p: *const u64) -> u64 {
    // SAFETY: `p` comes from a live Box; rustfmt broke the line after
    // the `=`, so the comment sits above the binding.
    let v =
        unsafe { *p };
    v
}

pub fn attribute_between(p: *const u64) -> u64 {
    // SAFETY: the comment may sit above an attribute line too.
    #[allow(clippy::let_and_return)]
    let v = unsafe { *p }; // trailing code, comment walked up past `#[...]`
    v
}

pub fn trailing_same_line(p: *const u64) -> u64 {
    unsafe { *p } // SAFETY: trailing comments on the unsafe line count.
}

pub fn not_code() {
    // The word unsafe inside strings or comments is not a token:
    let _s = "unsafe { nothing }";
    let _r = r#"unsafe fn f() {}"#;
    /* block comment: unsafe impl Send for X {} */
    let _c = 'u';
    let _lt: &'static str = "lifetime, not a char literal";
}
