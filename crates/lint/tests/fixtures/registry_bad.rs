// Fixture: a crate-local domain module with literal tags, plus a
// literal tag passed straight to `stream()` — both must flag.

pub mod domain {
    pub const SHADOW: u64 = 0x21;
    pub const OTHER: u64 = 0x22;

    pub fn stream(domain: u64, site: u64) -> u64 {
        (domain << 56) | site
    }
}

pub fn draws(site: u64) -> u64 {
    domain::stream(0x21, site)
}
