// Fixture: every `unsafe` here lacks a SAFETY comment and must flag.

pub unsafe fn raw_read(p: *const u32) -> u32 {
    unsafe { *p }
}

pub struct Wrapper(*mut u8);

unsafe impl Send for Wrapper {}

pub fn continuation_case(p: *const u64) -> u64 {
    // A comment that is not the magic word does not count.
    let v =
        unsafe { *p };
    v
}
