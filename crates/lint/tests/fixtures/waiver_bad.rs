// Fixture: malformed waivers — a missing reason and an unknown rule —
// must each produce an invalid-waiver finding, and neither suppresses
// the underlying violation.

pub fn missing_reason(scores: &mut [f64]) {
    // lint:allow(no-nan-unwrap)
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn unknown_rule(scores: &mut [f64]) {
    // lint:allow(no-such-rule): reason text present but rule unknown
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
