// Fixture: `partial_cmp(..).unwrap()` / `.expect()` in shipped code
// must flag — one NaN panics the comparator mid-sort.

pub fn sort_scores(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn best(scores: &[f64]) -> Option<f64> {
    scores.iter().copied().max_by(|a, b| a.partial_cmp(b).expect("comparable")).map(|v| v)
}
