// Fixture: total orderings and explicit NaN policies — no finding.

pub fn sort_scores(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.total_cmp(b));
}

pub fn best(scores: &[f64]) -> Option<f64> {
    scores.iter().copied().max_by(|a, b| a.total_cmp(b))
}

pub fn explicit_policy(a: f64, b: f64) -> std::cmp::Ordering {
    // Inspecting the Option is fine; only unwrap/expect flag.
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Less)
}
