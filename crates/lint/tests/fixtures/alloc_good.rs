// Fixture: a zero-alloc region that only reuses caller buffers; no
// finding. The allocating helper below the region is out of scope.

// lint: zero-alloc
pub fn hot(input: &[f32], order: &mut Vec<u32>, out: &mut Vec<f32>) {
    order.clear();
    order.extend(0..input.len() as u32);
    order.sort_unstable_by_key(|&i| i);
    out.clear();
    for &i in order.iter() {
        out.push(input[i as usize] * 2.0);
    }
}

pub fn cold(input: &[f32]) -> Vec<f32> {
    let mut v = input.to_vec();
    v.push(0.0);
    v
}
