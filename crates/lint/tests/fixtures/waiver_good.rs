// Fixture: well-formed waivers, standalone and trailing, suppress the
// finding on exactly the covered line.

pub fn waived_above(scores: &mut [f64]) {
    // lint:allow(no-nan-unwrap): fixture exercises standalone waivers
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn waived_trailing(frame_count: u64) -> u32 {
    frame_count as u32 // lint:allow(no-lossy-counter-cast): fixture exercises trailing waivers
}

pub fn not_waived(scores: &mut [f64]) {
    // The waivers above must not leak onto this line.
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
