// Fixture: a re-export module (no literals) and named-constant stream
// calls — the blessed pattern; nothing may flag.

pub mod domain {
    pub use hirise_scene::domains::{stream, DEAD_ROW, HOT};
}

pub fn draws(site: u64) -> u64 {
    domain::stream(domain::HOT, site)
}

pub fn fault_draws(site: u64) -> u64 {
    domain::stream(domain::DEAD_ROW, site)
}
