// Fixture: every construct that could *hide* rule-relevant text. A
// correct lexer reports zero findings here.

pub fn strings_hide_keywords() -> &'static str {
    let _a = "unsafe { *core::ptr::null::<u8>() }";
    let _b = r#"partial_cmp(x).unwrap() inside a raw string"#;
    let _c = r##"HashMap::new() with "quotes # inside" too"##;
    let _d = b"unsafe bytes";
    let _e = br#"stream(0x99, site)"#;
    "done"
}

/* Block comments nest in Rust: /* unsafe impl Send for T {} */ and the
outer comment keeps going — partial_cmp(x).unwrap() here is prose. */
pub fn comments_hide_keywords() -> u32 {
    0
}

pub fn chars_vs_lifetimes<'a>(s: &'a str) -> (char, &'a str) {
    let q = '\'';
    let u = 'u';
    let _lt: &'static str = "static is a lifetime here, not a char";
    let _escaped = '\u{1F600}';
    (if s.is_empty() { q } else { u }, s)
}

pub fn raw_identifiers() -> u32 {
    let r#unsafe = 1u32; // a raw identifier, not the keyword
    r#unsafe
}
