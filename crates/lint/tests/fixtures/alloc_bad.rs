// Fixture: allocating calls inside a zero-alloc region must flag.

// lint: zero-alloc
pub fn hot(input: &[f32], out: &mut Vec<f32>) -> String {
    let copy = input.to_vec();
    let boxed = Box::new(copy.clone());
    out.extend(boxed.iter().copied());
    let all: Vec<f32> = input.iter().copied().collect();
    let fresh = Vec::new();
    let _: Vec<f32> = fresh;
    format!("{} {}", all.len(), out.len())
}

// Outside the region the same calls are fine.
pub fn cold(input: &[f32]) -> Vec<f32> {
    input.to_vec()
}
