// Fixture: benign narrowing casts (bounded indices, widening, checked
// conversion) — no finding.

pub fn bounded_index(frame: usize) -> i32 {
    // `frame` is a per-clip index, not a running total.
    frame as i32
}

pub fn widening(frame_count: u32) -> u64 {
    // Widening an accumulator is always safe.
    frame_count as u64
}

pub fn checked(frame_count: u64) -> u32 {
    u32::try_from(frame_count).unwrap_or(u32::MAX)
}

pub fn pixel(v: f32) -> u8 {
    (v.clamp(0.0, 1.0) * 255.0).round() as u8
}
