// Fixture: ordered containers in shipped code, unordered ones only in
// tests — no finding.

use std::collections::BTreeMap;

pub fn tally(keys: &[u32]) -> usize {
    let mut seen: BTreeMap<u32, u64> = BTreeMap::new();
    for &k in keys {
        *seen.entry(k).or_insert(0) += 1;
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn hash_containers_are_fine_in_tests() {
        let distinct: HashSet<u32> = [1, 2, 2].into_iter().collect();
        assert_eq!(distinct.len(), 2);
    }
}
