//! Fixture-based rule pinning (verification layer 12).
//!
//! Every rule is pinned by a *bad* fixture (must flag) and a *good*
//! fixture (must stay silent), so a rule that stops firing — or starts
//! over-firing — fails this suite rather than silently degrading the
//! gate. The final test lints the real workspace: the gate must hold on
//! the code that ships it.

use std::path::{Path, PathBuf};

use hirise_lint::rules::{parse_registry, REGISTRY_REL_PATH};
use hirise_lint::{classify, lint_file, lint_workspace, Context, Finding};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// Lints a fixture as if it were shipped code of a deterministic crate.
fn lint_fixture(name: &str) -> Vec<Finding> {
    let scope = classify(&format!("crates/core/src/{name}"));
    lint_file(&scope, &fixture(name), &Context::new(None))
}

fn rules_hit(findings: &[Finding]) -> Vec<&str> {
    let mut rules: Vec<&str> = findings.iter().filter(|f| !f.waived).map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn unsafe_fixture_pair() {
    let bad = lint_fixture("unsafe_bad.rs");
    assert_eq!(rules_hit(&bad), ["unsafe-needs-safety"]);
    // unsafe fn + block, unsafe impl, and the continuation-line case.
    assert_eq!(bad.len(), 4, "{bad:#?}");
    assert!(bad.iter().any(|f| f.line == 14), "continuation-line unsafe missed: {bad:#?}");

    let good = lint_fixture("unsafe_good.rs");
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn registry_fixture_pair() {
    let bad = lint_fixture("registry_bad.rs");
    assert_eq!(rules_hit(&bad), ["rng-domain-registry"]);
    assert_eq!(bad.len(), 2, "{bad:#?}");
    assert!(bad.iter().any(|f| f.message.contains("module `domain`")), "{bad:#?}");
    assert!(bad.iter().any(|f| f.message.contains("literal domain tag `0x21`")), "{bad:#?}");

    let good = lint_fixture("registry_good.rs");
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn registry_duplicate_tags_flag_in_the_registry_itself() {
    let source = "pub const A: u64 = 0x07;\npub const B: u64 = 0x07;\npub const C: u64 = 0x100;\n";
    let tags = parse_registry(source);
    assert_eq!(tags.len(), 3);
    let ctx = Context::new(Some(source));
    let scope = classify(REGISTRY_REL_PATH);
    let findings = lint_file(&scope, source, &ctx);
    assert_eq!(rules_hit(&findings), ["rng-domain-registry"]);
    assert!(findings.iter().any(|f| f.message.contains("duplicate domain tag 0x07")));
    assert!(findings.iter().any(|f| f.message.contains("top-byte")));
}

#[test]
fn registry_parser_skips_non_u64_consts() {
    let source = "pub const SITE_BITS: u32 = 56;\npub const TAG: u64 = 0x11;\n";
    let tags = parse_registry(source);
    assert_eq!(tags.len(), 1);
    assert_eq!(tags[0].name, "TAG");
    assert_eq!(tags[0].value, 0x11);
}

#[test]
fn alloc_fixture_pair() {
    let bad = lint_fixture("alloc_bad.rs");
    assert_eq!(rules_hit(&bad), ["hot-path-no-alloc"]);
    // to_vec, Box::new, clone, collect, Vec::new, format!.
    assert_eq!(bad.len(), 6, "{bad:#?}");
    // The identical call *outside* the region stays silent — checked by
    // the count above (cold's to_vec would be a 7th finding).

    let good = lint_fixture("alloc_good.rs");
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn unordered_fixture_pair() {
    let bad = lint_fixture("unordered_bad.rs");
    assert_eq!(rules_hit(&bad), ["no-unordered-iteration"]);

    let good = lint_fixture("unordered_good.rs");
    assert!(good.is_empty(), "HashSet in #[cfg(test)] must not flag: {good:#?}");
}

#[test]
fn unordered_rule_scopes_to_deterministic_crates() {
    // The same HashMap source is fine in the bench harness crate and in
    // integration tests of a deterministic crate.
    let source = fixture("unordered_bad.rs");
    let ctx = Context::new(None);
    let bench = classify("crates/bench/src/tally.rs");
    assert!(lint_file(&bench, &source, &ctx).is_empty());
    let tests = classify("crates/core/tests/tally.rs");
    assert!(lint_file(&tests, &source, &ctx).is_empty());
}

#[test]
fn cast_fixture_pair() {
    let bad = lint_fixture("cast_bad.rs");
    assert_eq!(rules_hit(&bad), ["no-lossy-counter-cast"]);
    // Plain ident, indexed ident, .count(), turbofish .sum::<u64>().
    assert_eq!(bad.len(), 4, "{bad:#?}");

    let good = lint_fixture("cast_good.rs");
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn nan_fixture_pair() {
    let bad = lint_fixture("nan_bad.rs");
    assert_eq!(rules_hit(&bad), ["no-nan-unwrap"]);
    assert_eq!(bad.len(), 2, "{bad:#?}");

    let good = lint_fixture("nan_good.rs");
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn waiver_fixtures_enforce_reasons_and_coverage() {
    let bad = lint_fixture("waiver_bad.rs");
    // Both malformed waivers flag, and both underlying violations
    // remain unwaived.
    let invalid = bad.iter().filter(|f| f.rule == "invalid-waiver").count();
    let nan = bad.iter().filter(|f| f.rule == "no-nan-unwrap" && !f.waived).count();
    assert_eq!((invalid, nan), (2, 2), "{bad:#?}");

    let good = lint_fixture("waiver_good.rs");
    let unwaived: Vec<&Finding> = good.iter().filter(|f| !f.waived).collect();
    // Only `not_waived`'s violation survives; the two waived ones are
    // recorded as waived, not dropped.
    assert_eq!(unwaived.len(), 1, "{good:#?}");
    assert_eq!(unwaived[0].rule, "no-nan-unwrap");
    assert_eq!(good.iter().filter(|f| f.waived).count(), 2, "{good:#?}");
}

#[test]
fn lexer_tricky_fixture_is_clean() {
    let findings = lint_fixture("lexer_tricky.rs");
    assert!(findings.is_empty(), "hidden-text constructs leaked into rules: {findings:#?}");
}

/// The gate holds on the workspace that ships it: zero unwaived
/// findings, and the real registry parses with no duplicates.
#[test]
fn workspace_is_self_clean() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    assert!(root.join("Cargo.toml").is_file(), "bad root {}", root.display());
    let report = lint_workspace(&root).expect("workspace walk");
    assert!(report.files_scanned > 100, "walk found only {} files", report.files_scanned);
    let unwaived: Vec<&Finding> = report.unwaived().collect();
    assert!(unwaived.is_empty(), "workspace must lint clean: {unwaived:#?}");

    let registry = parse_registry(
        &std::fs::read_to_string(root.join(REGISTRY_REL_PATH)).expect("registry file"),
    );
    assert!(registry.len() >= 10, "registry lost tags: {registry:#?}");

    let json = report.to_json();
    assert!(json.contains("\"unwaived\": 0"), "{json}");
}
