//! The rule engine: six token-level rules plus the waiver validator.
//!
//! Rules operate on the [`crate::lexer`] token stream of one file at a
//! time, with a per-line map (significant code / comment / `SAFETY` /
//! continuation) layered on top so comment-placement conventions
//! survive rustfmt's line breaking.
//!
//! Waiver syntax (the reason is mandatory):
//! `lint:allow(rule-a, rule-b): reason` in a line comment, either
//! trailing the offending line or on its own line directly above it.
//! Zero-alloc regions open with a `lint: zero-alloc` line comment
//! placed above the item; the region is the next brace-matched block.

use crate::lexer::{lex, parse_int, Token, TokenKind};
use crate::report::Finding;
use crate::walk::{FileScope, Section};

/// Rule ids and one-line summaries, in severity-neutral id order.
pub const RULES: &[(&str, &str)] = &[
    ("unsafe-needs-safety", "every `unsafe` must carry a `// SAFETY:` comment"),
    ("rng-domain-registry", "keyed-RNG domain tags must come from the central registry"),
    ("hot-path-no-alloc", "no allocating calls inside `zero-alloc` marked regions"),
    ("no-unordered-iteration", "no HashMap/HashSet in deterministic non-test code"),
    ("no-lossy-counter-cast", "no narrowing `as` casts on accumulator values"),
    ("no-nan-unwrap", "no `partial_cmp(..).unwrap()`/`.expect()` on float orderings"),
    ("invalid-waiver", "lint directives must name known rules and give a reason"),
];

/// Where the central domain-tag registry lives, workspace-relative.
pub const REGISTRY_REL_PATH: &str = "crates/scene/src/domains.rs";

/// One `const NAME: u64 = <literal>;` parsed from the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryTag {
    pub name: String,
    pub value: u64,
    pub line: u32,
}

/// Workspace-level configuration shared across files.
#[derive(Debug, Clone)]
pub struct Context {
    pub registry_rel_path: String,
    pub registry: Vec<RegistryTag>,
    /// Crate directory names bound by the bit-identical-output
    /// contract; `bench` (timing harness) and the `compat-*` shims for
    /// external crates are exempt.
    pub deterministic_crates: Vec<String>,
}

impl Context {
    /// Builds the standard workspace context; pass the registry file's
    /// source when it exists so duplicate tags can be checked.
    pub fn new(registry_source: Option<&str>) -> Self {
        let deterministic = [
            "analog",
            "core",
            "detect",
            "energy",
            "fault",
            "hirise-repro",
            "imaging",
            "lint",
            "nn",
            "scene",
            "sensor",
            "serve",
        ];
        Self {
            registry_rel_path: REGISTRY_REL_PATH.to_string(),
            registry: registry_source.map(parse_registry).unwrap_or_default(),
            deterministic_crates: deterministic.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Extracts `const NAME: u64 = <int literal>;` items — the registry's
/// domain tags. Non-u64 consts (e.g. the `u32` shift width) are not
/// tags and are skipped.
pub fn parse_registry(source: &str) -> Vec<RegistryTag> {
    let tokens = lex(source);
    let scan = Scan::new(&tokens);
    let mut tags = Vec::new();
    for k in 0..scan.len() {
        if scan.is_ident(k, "const")
            && scan.kind(k + 1) == Some(TokenKind::Ident)
            && scan.is_punct(k + 2, ":")
            && scan.is_ident(k + 3, "u64")
            && scan.is_punct(k + 4, "=")
            && scan.kind(k + 5) == Some(TokenKind::Num)
            && scan.is_punct(k + 6, ";")
        {
            let name_tok = scan.tok(k + 1).expect("checked");
            let value = parse_int(&scan.tok(k + 5).expect("checked").text);
            if let Some(value) = value {
                tags.push(RegistryTag { name: name_tok.text.clone(), value, line: name_tok.line });
            }
        }
    }
    tags
}

/// Lints one file; returns findings with waivers already applied.
pub fn lint_file(scope: &FileScope, source: &str, ctx: &Context) -> Vec<Finding> {
    let tokens = lex(source);
    let scan = Scan::new(&tokens);
    let lines = LineInfo::build(source, &tokens, &scan);
    let mut findings = Vec::new();
    let directives = collect_directives(scope, &tokens, &scan, &lines, &mut findings);

    rule_unsafe(scope, &scan, &lines, &mut findings);
    rule_registry(scope, ctx, &scan, &mut findings);
    rule_alloc(scope, &scan, &directives.regions, &mut findings);
    rule_unordered(scope, ctx, &scan, &lines, &mut findings);
    rule_cast(scope, &scan, &lines, &mut findings);
    rule_nan(scope, &scan, &lines, &mut findings);

    for f in &mut findings {
        if f.rule != "invalid-waiver"
            && directives
                .waivers
                .iter()
                .any(|w| w.line == f.line && w.rules.iter().any(|r| r == f.rule))
        {
            f.waived = true;
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Token-stream scanning helpers
// ---------------------------------------------------------------------

/// Indexed view over the significant (non-comment) tokens.
struct Scan<'a> {
    tokens: &'a [Token],
    sig: Vec<usize>,
}

impl<'a> Scan<'a> {
    fn new(tokens: &'a [Token]) -> Self {
        let sig = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind != TokenKind::Comment)
            .map(|(i, _)| i)
            .collect();
        Self { tokens, sig }
    }

    fn len(&self) -> usize {
        self.sig.len()
    }

    /// The `k`-th significant token.
    fn tok(&self, k: usize) -> Option<&Token> {
        self.sig.get(k).map(|&i| &self.tokens[i])
    }

    fn kind(&self, k: usize) -> Option<TokenKind> {
        self.tok(k).map(|t| t.kind)
    }

    fn is_punct(&self, k: usize, p: &str) -> bool {
        self.tok(k).is_some_and(|t| t.kind == TokenKind::Punct && t.text == p)
    }

    fn is_ident(&self, k: usize, name: &str) -> bool {
        self.tok(k).is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
    }

    fn ident(&self, k: usize) -> Option<&str> {
        self.tok(k).and_then(|t| (t.kind == TokenKind::Ident).then_some(t.text.as_str()))
    }

    /// First significant token at or after raw token index `raw`.
    fn first_sig_after(&self, raw: usize) -> Option<usize> {
        self.sig.iter().position(|&i| i > raw)
    }

    /// Index of the close delimiter matching the open one at `k`.
    fn match_forward(&self, k: usize, open: &str, close: &str) -> Option<usize> {
        let mut depth = 0usize;
        for j in k..self.len() {
            if self.is_punct(j, open) {
                depth += 1;
            } else if self.is_punct(j, close) {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
        None
    }

    /// Index of the open delimiter matching the close one at `k`.
    fn match_backward(&self, k: usize, open: &str, close: &str) -> Option<usize> {
        let mut depth = 0usize;
        for j in (0..=k).rev() {
            if self.is_punct(j, close) {
                depth += 1;
            } else if self.is_punct(j, open) {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
        None
    }
}

fn finding(rule: &'static str, scope: &FileScope, tok: &Token, message: String) -> Finding {
    Finding {
        rule,
        path: scope.rel_path.clone(),
        line: tok.line,
        col: tok.col,
        message,
        waived: false,
    }
}

// ---------------------------------------------------------------------
// Per-line map
// ---------------------------------------------------------------------

/// Per-line facts, 1-indexed (index 0 unused).
struct LineInfo {
    /// Line holds at least one significant token.
    sig: Vec<bool>,
    /// Line is touched by a comment token.
    commented: Vec<bool>,
    /// A comment on the line contains `SAFETY`.
    safety: Vec<bool>,
    /// First character of the line's first significant token.
    first_char: Vec<char>,
    /// Line's last significant token implies the statement continues on
    /// the next line (rustfmt breaks after `=`, `(`, `.`, operators).
    cont: Vec<bool>,
    /// Line sits inside a `#[cfg(test)]` / `#[test]` region.
    test: Vec<bool>,
}

impl LineInfo {
    fn build(source: &str, tokens: &[Token], scan: &Scan) -> Self {
        let n = source.lines().count() + 3;
        let mut info = LineInfo {
            sig: vec![false; n],
            commented: vec![false; n],
            safety: vec![false; n],
            first_char: vec![' '; n],
            cont: vec![false; n],
            test: vec![false; n],
        };
        let mut last_sig: Vec<Option<(TokenKind, String)>> = vec![None; n];
        for t in tokens {
            let l = t.line as usize;
            if l >= n {
                continue;
            }
            if t.kind == TokenKind::Comment {
                let end = (l + t.line_span() as usize - 1).min(n - 1);
                for li in l..=end {
                    info.commented[li] = true;
                    if t.text.contains("SAFETY") {
                        info.safety[li] = true;
                    }
                }
            } else {
                info.sig[l] = true;
                if info.first_char[l] == ' ' {
                    info.first_char[l] = t.text.chars().next().unwrap_or(' ');
                }
                last_sig[l] = Some((t.kind, t.text.clone()));
            }
        }
        for (l, last) in last_sig.iter().enumerate() {
            if let Some((kind, text)) = last {
                info.cont[l] = continues_statement(*kind, text);
            }
        }
        mark_test_regions(scan, &mut info);
        info
    }

    fn get(v: &[bool], line: u32) -> bool {
        v.get(line as usize).copied().unwrap_or(false)
    }

    fn is_test(&self, line: u32) -> bool {
        Self::get(&self.test, line)
    }
}

/// Does a line ending in this token leave its statement open?
fn continues_statement(kind: TokenKind, text: &str) -> bool {
    match kind {
        TokenKind::Punct => {
            matches!(
                text,
                "=" | "("
                    | "["
                    | "{"
                    | ","
                    | "."
                    | "+"
                    | "-"
                    | "*"
                    | "/"
                    | "%"
                    | "<"
                    | ">"
                    | "&"
                    | "|"
                    | "^"
                    | "?"
                    | ":"
            )
        }
        TokenKind::Ident => matches!(text, "return" | "else" | "in" | "if" | "match" | "where"),
        _ => false,
    }
}

/// Marks lines inside `#[cfg(test)]` (incl. `cfg(all(test, ...))`) and
/// `#[test]` items by brace-matching the attached block.
fn mark_test_regions(scan: &Scan, info: &mut LineInfo) {
    let mut k = 0usize;
    while k < scan.len() {
        if !(scan.is_punct(k, "#") && scan.is_punct(k + 1, "[")) {
            k += 1;
            continue;
        }
        let Some(close) = scan.match_forward(k + 1, "[", "]") else {
            break;
        };
        let mut has_cfg = false;
        let mut has_test = false;
        let mut idents = 0usize;
        for j in k + 2..close {
            if let Some(name) = scan.ident(j) {
                idents += 1;
                has_cfg |= name == "cfg";
                has_test |= name == "test";
            }
        }
        if has_test && (has_cfg || idents == 1) {
            // Skip stacked attributes between the test attr and item.
            let mut m = close + 1;
            while scan.is_punct(m, "#") && scan.is_punct(m + 1, "[") {
                match scan.match_forward(m + 1, "[", "]") {
                    Some(c) => m = c + 1,
                    None => break,
                }
            }
            let mut j = m;
            while j < scan.len() {
                if scan.is_punct(j, ";") {
                    break; // `#[cfg(test)] mod tests;` — body elsewhere.
                }
                if scan.is_punct(j, "{") {
                    if let Some(end) = scan.match_forward(j, "{", "}") {
                        let (a, b) = (
                            scan.tok(j).expect("checked").line as usize,
                            scan.tok(end).expect("checked").line as usize,
                        );
                        for li in a..=b.min(info.test.len() - 1) {
                            info.test[li] = true;
                        }
                    }
                    break;
                }
                j += 1;
            }
        }
        k = close + 1;
    }
}

// ---------------------------------------------------------------------
// Directives: waivers and zero-alloc markers
// ---------------------------------------------------------------------

struct Waiver {
    rules: Vec<String>,
    /// The source line the waiver covers.
    line: u32,
}

/// A zero-alloc region: the brace-matched block after the marker.
struct Region {
    start: u32,
    end: u32,
}

struct Directives {
    waivers: Vec<Waiver>,
    regions: Vec<Region>,
}

/// A comment is a directive only when `lint:` starts it (after the
/// comment markers) — prose *mentioning* the syntax mid-sentence is not
/// parsed.
fn directive_text(comment: &str) -> Option<&str> {
    let body = comment.trim_start_matches(['/', '*', '!']).trim_start();
    body.strip_prefix("lint:").map(str::trim_start)
}

fn collect_directives(
    scope: &FileScope,
    tokens: &[Token],
    scan: &Scan,
    lines: &LineInfo,
    findings: &mut Vec<Finding>,
) -> Directives {
    let mut directives = Directives { waivers: Vec::new(), regions: Vec::new() };
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Comment {
            continue;
        }
        let Some(rest) = directive_text(&t.text) else {
            continue;
        };
        if let Some(spec) = rest.strip_prefix("allow(") {
            parse_waiver(scope, t, spec, lines, &mut directives.waivers, findings);
        } else if rest.starts_with("zero-alloc") {
            match region_after(scan, i) {
                Some(region) => directives.regions.push(region),
                None => findings.push(finding(
                    "invalid-waiver",
                    scope,
                    t,
                    "`lint: zero-alloc` marker is not followed by a braced block".to_string(),
                )),
            }
        } else {
            findings.push(finding(
                "invalid-waiver",
                scope,
                t,
                format!("unrecognized lint directive `lint: {}`", rest.trim_end()),
            ));
        }
    }
    directives
}

fn parse_waiver(
    scope: &FileScope,
    t: &Token,
    spec: &str,
    lines: &LineInfo,
    waivers: &mut Vec<Waiver>,
    findings: &mut Vec<Finding>,
) {
    let Some(close) = spec.find(')') else {
        findings.push(finding(
            "invalid-waiver",
            scope,
            t,
            "malformed waiver; expected `lint:allow(rule): reason`".to_string(),
        ));
        return;
    };
    let rules: Vec<String> =
        spec[..close].split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
    let after = spec[close + 1..].trim_start();
    let reason = after.strip_prefix(':').map(|r| r.trim_end_matches("*/").trim()).unwrap_or("");
    if reason.is_empty() {
        findings.push(finding(
            "invalid-waiver",
            scope,
            t,
            "waiver must give a reason: `lint:allow(rule): reason`".to_string(),
        ));
        return;
    }
    let mut ok = true;
    for r in &rules {
        if !RULES.iter().any(|(id, _)| id == r) {
            findings.push(finding(
                "invalid-waiver",
                scope,
                t,
                format!("unknown rule `{r}` in waiver"),
            ));
            ok = false;
        }
    }
    if rules.is_empty() {
        findings.push(finding("invalid-waiver", scope, t, "waiver names no rules".to_string()));
        ok = false;
    }
    if !ok {
        return;
    }
    // Trailing waivers cover their own line; standalone waivers cover
    // the next line holding code.
    let covered = if LineInfo::get(&lines.sig, t.line) {
        Some(t.line)
    } else {
        let end = t.line + t.line_span() - 1;
        (end + 1..lines.sig.len() as u32).find(|&l| LineInfo::get(&lines.sig, l))
    };
    match covered {
        Some(line) => waivers.push(Waiver { rules, line }),
        None => {
            findings.push(finding("invalid-waiver", scope, t, "waiver covers no code".to_string()))
        }
    }
}

/// The brace-matched block opened by the first `{` after raw token
/// index `marker_raw`.
fn region_after(scan: &Scan, marker_raw: usize) -> Option<Region> {
    let mut k = scan.first_sig_after(marker_raw)?;
    while k < scan.len() {
        if scan.is_punct(k, "{") {
            let end = scan.match_forward(k, "{", "}")?;
            return Some(Region { start: scan.tok(k)?.line, end: scan.tok(end)?.line });
        }
        k += 1;
    }
    None
}

// ---------------------------------------------------------------------
// Rule: unsafe-needs-safety
// ---------------------------------------------------------------------

fn rule_unsafe(scope: &FileScope, scan: &Scan, lines: &LineInfo, findings: &mut Vec<Finding>) {
    for k in 0..scan.len() {
        if !scan.is_ident(k, "unsafe") {
            continue;
        }
        let t = scan.tok(k).expect("checked");
        if !safety_covers(t.line, lines) {
            findings.push(finding(
                "unsafe-needs-safety",
                scope,
                t,
                "`unsafe` without a `// SAFETY:` comment explaining why the contract holds"
                    .to_string(),
            ));
        }
    }
}

/// Walks upward from the `unsafe` token's line looking for a `SAFETY`
/// comment, crossing comment-only lines, attribute lines, and
/// continuation lines (rustfmt may break `let x =` / `foo(` onto the
/// line above the `unsafe` token).
fn safety_covers(line: u32, lines: &LineInfo) -> bool {
    if LineInfo::get(&lines.safety, line) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let (sig, commented) = (LineInfo::get(&lines.sig, l), LineInfo::get(&lines.commented, l));
        if commented && !sig {
            if LineInfo::get(&lines.safety, l) {
                return true;
            }
        } else if sig && lines.first_char.get(l as usize) == Some(&'#') {
            // Attribute line; keep walking.
        } else if sig && LineInfo::get(&lines.cont, l) {
            if LineInfo::get(&lines.safety, l) {
                return true;
            }
        } else {
            return false;
        }
        l -= 1;
    }
    false
}

// ---------------------------------------------------------------------
// Rule: rng-domain-registry
// ---------------------------------------------------------------------

fn rule_registry(scope: &FileScope, ctx: &Context, scan: &Scan, findings: &mut Vec<Finding>) {
    if scope.rel_path == ctx.registry_rel_path {
        registry_self_check(scope, ctx, findings);
        return;
    }
    for k in 0..scan.len() {
        // A crate-local `mod domain { const X: u64 = <literal>; ... }`
        // re-creates the registry; re-export modules (no literals) are
        // fine.
        if scan.is_ident(k, "mod") {
            if let Some(name) = scan.ident(k + 1) {
                if (name == "domain" || name == "domains") && scan.is_punct(k + 2, "{") {
                    if let Some(end) = scan.match_forward(k + 2, "{", "}") {
                        if (k + 2..end).any(|j| is_u64_const_literal(scan, j)) {
                            let t = scan.tok(k).expect("checked");
                            findings.push(finding(
                                "rng-domain-registry",
                                scope,
                                t,
                                format!(
                                    "module `{name}` defines literal RNG domain tags outside \
                                     the central registry ({REGISTRY_REL_PATH}); add them \
                                     there or re-export"
                                ),
                            ));
                        }
                    }
                }
            }
        }
        // A numeric literal as the domain argument of `stream(...)`
        // bypasses the registry's collision checking.
        if scan.is_ident(k, "stream")
            && scan.is_punct(k + 1, "(")
            && scan.kind(k + 2) == Some(TokenKind::Num)
        {
            let t = scan.tok(k + 2).expect("checked");
            findings.push(finding(
                "rng-domain-registry",
                scope,
                t,
                format!(
                    "literal domain tag `{}` passed to `stream()`; name it in the central \
                     registry ({REGISTRY_REL_PATH})",
                    t.text
                ),
            ));
        }
    }
}

fn is_u64_const_literal(scan: &Scan, k: usize) -> bool {
    scan.is_ident(k, "const")
        && scan.kind(k + 1) == Some(TokenKind::Ident)
        && scan.is_punct(k + 2, ":")
        && scan.is_ident(k + 3, "u64")
        && scan.is_punct(k + 4, "=")
        && scan.kind(k + 5) == Some(TokenKind::Num)
}

fn registry_self_check(scope: &FileScope, ctx: &Context, findings: &mut Vec<Finding>) {
    let mut seen: Vec<(u64, &str)> = Vec::new();
    for tag in &ctx.registry {
        let at = Token { kind: TokenKind::Ident, text: tag.name.clone(), line: tag.line, col: 1 };
        if let Some((_, first)) = seen.iter().find(|(v, _)| *v == tag.value) {
            findings.push(finding(
                "rng-domain-registry",
                scope,
                &at,
                format!(
                    "duplicate domain tag 0x{:02x}: `{}` collides with `{}`",
                    tag.value, tag.name, first
                ),
            ));
        } else {
            seen.push((tag.value, &tag.name));
        }
        if tag.value == 0 || tag.value > 0xff {
            findings.push(finding(
                "rng-domain-registry",
                scope,
                &at,
                format!(
                    "domain tag `{}` = {:#x} must fit the non-zero top-byte layout (1..=0xff)",
                    tag.name, tag.value
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule: hot-path-no-alloc
// ---------------------------------------------------------------------

const ALLOC_METHODS: &[&str] = &["clone", "collect", "to_owned", "to_string", "to_vec"];
const ALLOC_TYPES: &[&str] =
    &["BTreeMap", "BTreeSet", "Box", "HashMap", "HashSet", "String", "Vec", "VecDeque"];
const ALLOC_CTORS: &[&str] = &["from", "new", "with_capacity"];
const ALLOC_MACROS: &[&str] = &["format", "vec"];

fn rule_alloc(scope: &FileScope, scan: &Scan, regions: &[Region], findings: &mut Vec<Finding>) {
    if regions.is_empty() {
        return;
    }
    let in_region = |line: u32| regions.iter().any(|r| r.start <= line && line <= r.end);
    for k in 0..scan.len() {
        let Some(t) = scan.tok(k) else { break };
        if !in_region(t.line) {
            continue;
        }
        let hit = if scan.is_punct(k, ".")
            && scan.ident(k + 1).is_some_and(|m| ALLOC_METHODS.contains(&m))
        {
            scan.tok(k + 1).map(|m| (m, format!(".{}()", m.text)))
        } else if scan.ident(k).is_some_and(|i| ALLOC_TYPES.contains(&i))
            && scan.is_punct(k + 1, ":")
            && scan.is_punct(k + 2, ":")
            && scan.ident(k + 3).is_some_and(|c| ALLOC_CTORS.contains(&c))
        {
            let ty = scan.tok(k).expect("checked");
            let ctor = scan.tok(k + 3).expect("checked");
            Some((ty, format!("{}::{}", ty.text, ctor.text)))
        } else if scan.ident(k).is_some_and(|m| ALLOC_MACROS.contains(&m))
            && scan.is_punct(k + 1, "!")
        {
            scan.tok(k).map(|m| (m, format!("{}!", m.text)))
        } else {
            None
        };
        if let Some((at, what)) = hit {
            findings.push(finding(
                "hot-path-no-alloc",
                scope,
                at,
                format!("allocating call `{what}` inside a `zero-alloc` region"),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule: no-unordered-iteration
// ---------------------------------------------------------------------

fn rule_unordered(
    scope: &FileScope,
    ctx: &Context,
    scan: &Scan,
    lines: &LineInfo,
    findings: &mut Vec<Finding>,
) {
    if scope.section != Section::Src
        || !ctx.deterministic_crates.iter().any(|c| c == &scope.crate_name)
    {
        return;
    }
    for k in 0..scan.len() {
        let Some(name) = scan.ident(k) else { continue };
        if (name == "HashMap" || name == "HashSet")
            && !lines.is_test(scan.tok(k).expect("checked").line)
        {
            let t = scan.tok(k).expect("checked");
            findings.push(finding(
                "no-unordered-iteration",
                scope,
                t,
                format!(
                    "`{name}` iteration order is unspecified; use BTreeMap/BTreeSet or an \
                     indexed Vec in deterministic crates"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule: no-lossy-counter-cast
// ---------------------------------------------------------------------

const NARROW_TYPES: &[&str] = &["i16", "i32", "i8", "u16", "u32", "u8"];
/// Identifier segments that mark a value as an accumulator (`frame`
/// singular is an index, `frames` is a running count).
const ACC_SEGMENTS: &[&str] = &[
    "accum", "count", "counts", "elapsed", "frames", "seq", "sum", "sums", "ticks", "total",
    "totals",
];
/// Iterator reductions whose result is an unbounded accumulator.
const ACC_METHODS: &[&str] = &["count", "sum"];

fn rule_cast(scope: &FileScope, scan: &Scan, lines: &LineInfo, findings: &mut Vec<Finding>) {
    if scope.section == Section::Tests {
        return;
    }
    for k in 1..scan.len() {
        if !scan.is_ident(k, "as") {
            continue;
        }
        let Some(ty) = scan.ident(k + 1) else { continue };
        if !NARROW_TYPES.contains(&ty) {
            continue;
        }
        let t = scan.tok(k).expect("checked");
        if lines.is_test(t.line) {
            continue;
        }
        if let Some(head) = accumulator_head(scan, k - 1) {
            findings.push(finding(
                "no-lossy-counter-cast",
                scope,
                t,
                format!(
                    "narrowing cast `{head} as {ty}` can silently truncate an accumulator; \
                     keep u64 or use try_from"
                ),
            ));
        }
    }
}

/// Inspects the expression just before an `as`: returns a display name
/// when it is an accumulator (by method or identifier-segment match).
fn accumulator_head(scan: &Scan, k: usize) -> Option<String> {
    if scan.is_punct(k, ")") {
        // `.count() as u8` / `.sum::<u64>() as u32`.
        let open = scan.match_backward(k, "(", ")")?;
        if open == 0 {
            return None;
        }
        let mut m = open - 1;
        if scan.is_punct(m, ">") {
            // Walk back over the `::<T>` turbofish.
            let lt = scan.match_backward(m, "<", ">")?;
            if !(lt >= 2 && scan.is_punct(lt - 1, ":") && scan.is_punct(lt - 2, ":")) {
                return None;
            }
            m = lt.checked_sub(3)?;
        }
        let name = scan.ident(m)?;
        return ACC_METHODS.contains(&name).then(|| format!(".{name}()"));
    }
    if scan.is_punct(k, "]") {
        // `counts[i] as u16` — judge the indexed identifier.
        let open = scan.match_backward(k, "[", "]")?;
        if open == 0 {
            return None;
        }
        let name = scan.ident(open - 1)?;
        return is_accumulator_ident(name).then(|| format!("{name}[..]"));
    }
    let name = scan.ident(k)?;
    is_accumulator_ident(name).then(|| name.to_string())
}

fn is_accumulator_ident(name: &str) -> bool {
    name.split('_').any(|seg| ACC_SEGMENTS.contains(&seg))
}

// ---------------------------------------------------------------------
// Rule: no-nan-unwrap
// ---------------------------------------------------------------------

fn rule_nan(scope: &FileScope, scan: &Scan, lines: &LineInfo, findings: &mut Vec<Finding>) {
    if scope.section == Section::Tests {
        return;
    }
    for k in 0..scan.len() {
        if !scan.is_ident(k, "partial_cmp") || !scan.is_punct(k + 1, "(") {
            continue;
        }
        let t = scan.tok(k).expect("checked");
        if lines.is_test(t.line) {
            continue;
        }
        let Some(close) = scan.match_forward(k + 1, "(", ")") else { continue };
        if scan.is_punct(close + 1, ".") {
            if let Some(m) = scan.ident(close + 2) {
                if m == "unwrap" || m == "expect" {
                    findings.push(finding(
                        "no-nan-unwrap",
                        scope,
                        t,
                        format!(
                            "`partial_cmp(..).{m}()` panics on NaN; use `total_cmp` or handle \
                             the NaN ordering explicitly"
                        ),
                    ));
                }
            }
        }
    }
}
