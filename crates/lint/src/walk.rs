//! Workspace file discovery and scope classification.
//!
//! The walk is deterministic (paths sorted at every level) so findings
//! come out in a stable order regardless of filesystem enumeration.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which compilation context a file belongs to; several rules only
/// apply to shipped (`Src`) code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// `src/` — shipped library/binary code.
    Src,
    /// `tests/` — integration tests.
    Tests,
    /// `benches/` — benchmark harnesses.
    Benches,
    /// `examples/` — runnable examples.
    Examples,
}

/// A workspace source file plus where it sits.
#[derive(Debug, Clone)]
pub struct FileScope {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Crate directory name (`core`, `sensor`, ...); the umbrella crate
    /// at the root is `hirise-repro`, compat shims are `compat-<name>`.
    pub crate_name: String,
    pub section: Section,
}

/// Directory names never descended into. `fixtures` holds the lint
/// crate's own intentionally-violating test inputs.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results"];

/// Collects every `.rs` file under the workspace root, sorted.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for dir in ["src", "tests", "benches", "examples", "crates"] {
        let path = root.join(dir);
        if path.is_dir() {
            collect(&path, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !SKIP_DIRS.contains(&name) {
                collect(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Classifies a workspace-relative path into crate + section.
pub fn classify(rel_path: &str) -> FileScope {
    let rel_path = rel_path.replace('\\', "/");
    let comps: Vec<&str> = rel_path.split('/').collect();
    let (crate_name, section_comp) = if comps.first() == Some(&"crates") {
        if comps.get(1) == Some(&"compat") {
            (format!("compat-{}", comps.get(2).unwrap_or(&"")), comps.get(3))
        } else {
            (comps.get(1).unwrap_or(&"").to_string(), comps.get(2))
        }
    } else {
        ("hirise-repro".to_string(), comps.first())
    };
    let section = match section_comp.copied() {
        Some("tests") => Section::Tests,
        Some("benches") => Section::Benches,
        Some("examples") => Section::Examples,
        _ => Section::Src,
    };
    FileScope { rel_path, crate_name, section }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_every_layout() {
        let s = classify("crates/sensor/src/shard.rs");
        assert_eq!(s.crate_name, "sensor");
        assert_eq!(s.section, Section::Src);

        let s = classify("crates/detect/tests/golden.rs");
        assert_eq!(s.section, Section::Tests);

        let s = classify("crates/compat/rand/src/lib.rs");
        assert_eq!(s.crate_name, "compat-rand");
        assert_eq!(s.section, Section::Src);

        let s = classify("examples/face_recognition.rs");
        assert_eq!(s.crate_name, "hirise-repro");
        assert_eq!(s.section, Section::Examples);

        let s = classify("benches/stream.rs");
        assert_eq!(s.section, Section::Benches);

        let s = classify("src/lib.rs");
        assert_eq!(s.section, Section::Src);
    }
}
