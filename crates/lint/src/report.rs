//! Findings, the aggregated report, and its JSON serialization.
//!
//! The JSON writer is hand-rolled (the build environment is offline —
//! no serde): a flat, stable schema so CI scripts can consume the
//! report without a Rust toolchain.

/// One rule violation at one source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `unsafe-needs-safety`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// True when an inline `// lint:allow(rule): reason` covers it.
    pub waived: bool,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}: [{}] {}", self.path, self.line, self.col, self.rule, self.message)
    }
}

/// The whole run's outcome.
#[derive(Debug, Default, Clone)]
pub struct Report {
    /// Every finding, waived ones included, ordered by
    /// (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// Files lexed and checked.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by a waiver — the gate fails on any.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    pub fn unwaived_count(&self) -> usize {
        self.unwaived().count()
    }

    pub fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waived).count()
    }

    /// Canonical ordering: path, then position, then rule id.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
    }

    /// The machine-readable report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"unwaived\": {},\n", self.unwaived_count()));
        out.push_str(&format!("  \"waived\": {},\n", self.waived_count()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": \"{}\", ", escape(f.rule)));
            out.push_str(&format!("\"path\": \"{}\", ", escape(&f.path)));
            out.push_str(&format!("\"line\": {}, \"col\": {}, ", f.line, f.col));
            out.push_str(&format!("\"waived\": {}, ", f.waived));
            out.push_str(&format!("\"message\": \"{}\"", escape(&f.message)));
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let mut report = Report {
            findings: vec![
                Finding {
                    rule: "no-nan-unwrap",
                    path: "b/quote\"d.rs".into(),
                    line: 3,
                    col: 7,
                    message: "say \"hi\"\n".into(),
                    waived: false,
                },
                Finding {
                    rule: "unsafe-needs-safety",
                    path: "a.rs".into(),
                    line: 1,
                    col: 1,
                    message: "m".into(),
                    waived: true,
                },
            ],
            files_scanned: 2,
        };
        report.sort();
        assert_eq!(report.findings[0].path, "a.rs");
        assert_eq!(report.unwaived_count(), 1);
        assert_eq!(report.waived_count(), 1);
        let json = report.to_json();
        assert!(json.contains("\"unwaived\": 1"));
        assert!(json.contains("quote\\\"d.rs"));
        assert!(json.contains("\\\"hi\\\"\\n"));
    }
}
