//! hirise-lint: workspace invariant checker.
//!
//! The workspace's correctness story rests on contracts the compiler
//! cannot see: bit-identical outputs across worker counts (so no
//! unordered-map iteration and no NaN-sensitive comparators in shipped
//! code), zero allocations on marked hot paths, an auditable `SAFETY`
//! story for every `unsafe`, and one central registry for keyed-RNG
//! domain tags so streams can never collide silently. This crate
//! enforces those contracts at the token level — its own lexer (the
//! build environment is offline, so no syn), a rule engine, and a CLI
//! run by CI as a hard gate.
//!
//! See [`rules::RULES`] for the rule set and `rules` module docs for
//! the waiver syntax.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

pub use report::{Finding, Report};
pub use rules::{lint_file, Context};
pub use walk::{classify, FileScope, Section};

/// Lints every `.rs` file under `root` (a workspace checkout) and
/// returns the aggregated, sorted report.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let registry_source = fs::read_to_string(root.join(rules::REGISTRY_REL_PATH)).ok();
    let ctx = Context::new(registry_source.as_deref());
    let mut report = Report::default();
    for path in walk::workspace_files(root)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let scope = classify(&rel);
        let source = fs::read_to_string(&path)?;
        report.findings.extend(lint_file(&scope, &source, &ctx));
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

/// Walks upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
