//! CLI for the workspace invariant checker.
//!
//! Exit codes: `0` clean (or waived-only), `1` unwaived findings,
//! `2` usage or I/O error — so CI can distinguish "contract violated"
//! from "the linter itself failed to run".

use std::path::PathBuf;
use std::process::ExitCode;

use hirise_lint::{find_workspace_root, lint_workspace, rules};

const USAGE: &str = "\
hirise-lint: workspace invariant checker

USAGE:
  hirise-lint [--root DIR] [--json FILE] [--quiet]
  hirise-lint --list-rules

OPTIONS:
  --root DIR    Workspace root (default: ascend from cwd to the
                directory whose Cargo.toml declares [workspace])
  --json FILE   Also write the findings report as JSON
  --quiet       Suppress per-finding lines; print only the summary
  --list-rules  Print rule ids and one-line descriptions, then exit
  -h, --help    Show this help
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage_error("--json needs a value"),
            },
            "--quiet" | "-q" => quiet = true,
            "--list-rules" => {
                for (id, desc) in rules::RULES {
                    println!("{id:24} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => return run_error(&format!("cannot read cwd: {e}")),
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => return run_error("no workspace root found; pass --root"),
            }
        }
    };

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => return run_error(&format!("lint walk failed: {e}")),
    };

    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            return run_error(&format!("cannot write {}: {e}", path.display()));
        }
    }

    if !quiet {
        for f in report.unwaived() {
            println!("{f}");
        }
    }
    let unwaived = report.unwaived_count();
    println!(
        "hirise-lint: {} unwaived finding(s), {} waived, {} files scanned",
        unwaived,
        report.waived_count(),
        report.files_scanned
    );
    if unwaived > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("hirise-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn run_error(msg: &str) -> ExitCode {
    eprintln!("hirise-lint: {msg}");
    ExitCode::from(2)
}
