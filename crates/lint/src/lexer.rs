//! A small, self-contained Rust lexer — just enough syntax awareness
//! for reliable token-level rules.
//!
//! The rules must never fire on the word `unsafe` inside a string, a
//! doc example, or a comment, so the lexer handles every Rust construct
//! that can *hide* text: line comments, nested block comments, plain
//! and raw strings (any `#` depth), byte strings, char literals, and
//! the `'a`-lifetime vs `'a'`-char-literal ambiguity. It does not
//! parse; rules pattern-match over the token stream.
//!
//! Positions are 1-based `(line, col)` pairs, columns counted in
//! characters.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `as`, `partial_cmp`, ...);
    /// raw identifiers keep their `r#` prefix in the text, so
    /// `r#unsafe` never matches the keyword `unsafe`.
    Ident,
    /// A lifetime such as `'a` or `'static` (text includes the quote).
    Lifetime,
    /// A character or byte literal, quotes included.
    Char,
    /// A string literal of any flavour (plain, raw, byte), delimiters
    /// included.
    Str,
    /// A numeric literal (integer of any base, or a float prefix).
    Num,
    /// A single punctuation character.
    Punct,
    /// A line or block comment, markers included. Block comments may
    /// span lines; [`Token::line`] is the starting line.
    Comment,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// 1-based starting line.
    pub line: u32,
    /// 1-based starting column, in characters.
    pub col: u32,
}

impl Token {
    /// Lines this token spans (1 for everything but block comments and
    /// multi-line strings).
    pub fn line_span(&self) -> u32 {
        let newlines = self.text.chars().filter(|&c| c == '\n').count();
        // A token is bounded by the source size; u32 holds any
        // realistic line count.
        newlines as u32 + 1
    }
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes while `pred` holds, appending to `out`.
    fn take_while(&mut self, out: &mut String, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek(0) {
            if !pred(c) {
                break;
            }
            out.push(c);
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `source` into a token stream (comments included, whitespace
/// dropped). Unterminated constructs consume to end of input instead of
/// failing: a linter must keep going on imperfect files.
pub fn lex(source: &str) -> Vec<Token> {
    let mut lx = Lexer { chars: source.chars().collect(), i: 0, line: 1, col: 1 };
    let mut tokens = Vec::new();
    while let Some(c) = lx.peek(0) {
        let (line, col) = (lx.line, lx.col);
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        let token = |kind: TokenKind, text: String| Token { kind, text, line, col };
        match c {
            '/' if lx.peek(1) == Some('/') => {
                let mut text = String::new();
                lx.take_while(&mut text, |c| c != '\n');
                tokens.push(token(TokenKind::Comment, text));
            }
            '/' if lx.peek(1) == Some('*') => {
                tokens.push(token(TokenKind::Comment, lex_block_comment(&mut lx)));
            }
            '\'' => match classify_quote(&lx) {
                QuoteKind::Lifetime => {
                    let mut text = String::new();
                    text.push(lx.bump().expect("peeked"));
                    lx.take_while(&mut text, is_ident_continue);
                    tokens.push(token(TokenKind::Lifetime, text));
                }
                QuoteKind::Char => {
                    tokens.push(token(TokenKind::Char, lex_char(&mut lx)));
                }
            },
            '"' => tokens.push(token(TokenKind::Str, lex_string(&mut lx))),
            'r' | 'b' => {
                if let Some(text) = try_lex_prefixed_literal(&mut lx) {
                    let kind = if text.ends_with('\'') { TokenKind::Char } else { TokenKind::Str };
                    tokens.push(token(kind, text));
                } else if lx.peek(0) == Some('r') && lx.peek(1) == Some('#') {
                    // Raw identifier: `r#unsafe` is *not* the keyword
                    // `unsafe`, so the prefix stays in the token text
                    // and keyword-matching rules never see it.
                    let mut text = String::new();
                    text.push(lx.bump().expect("peeked"));
                    text.push(lx.bump().expect("peeked"));
                    lx.take_while(&mut text, is_ident_continue);
                    tokens.push(token(TokenKind::Ident, text));
                } else {
                    let mut text = String::new();
                    lx.take_while(&mut text, is_ident_continue);
                    tokens.push(token(TokenKind::Ident, text));
                }
            }
            c if is_ident_start(c) => {
                let mut text = String::new();
                lx.take_while(&mut text, is_ident_continue);
                tokens.push(token(TokenKind::Ident, text));
            }
            c if c.is_ascii_digit() => tokens.push(token(TokenKind::Num, lex_number(&mut lx))),
            _ => {
                let mut text = String::new();
                text.push(lx.bump().expect("peeked"));
                tokens.push(token(TokenKind::Punct, text));
            }
        }
    }
    tokens
}

/// `'` is either a lifetime (`'a`, `'static`, `'_`) or a char literal
/// (`'a'`, `'\n'`, `'\u{1F600}'`): an ident run directly after the
/// quote is a lifetime exactly when it is *not* followed by a closing
/// quote.
enum QuoteKind {
    Lifetime,
    Char,
}

fn classify_quote(lx: &Lexer) -> QuoteKind {
    match lx.peek(1) {
        Some('\\') => QuoteKind::Char,
        Some(c) if is_ident_start(c) => {
            let mut j = 2;
            while let Some(c) = lx.peek(j) {
                if !is_ident_continue(c) {
                    break;
                }
                j += 1;
            }
            if lx.peek(j) == Some('\'') {
                QuoteKind::Char
            } else {
                QuoteKind::Lifetime
            }
        }
        _ => QuoteKind::Char,
    }
}

fn lex_char(lx: &mut Lexer) -> String {
    let mut text = String::new();
    text.push(lx.bump().expect("opening quote")); // '
    while let Some(c) = lx.peek(0) {
        if c == '\n' {
            break; // Unterminated; don't swallow the file.
        }
        text.push(lx.bump().expect("peeked"));
        if c == '\\' {
            // The escaped char (or the `u` of `\u{...}`) can never
            // close the literal.
            if let Some(e) = lx.peek(0) {
                if e != '\n' {
                    text.push(lx.bump().expect("peeked"));
                }
            }
            continue;
        }
        if c == '\'' && text.len() > 1 {
            break;
        }
    }
    text
}

fn lex_string(lx: &mut Lexer) -> String {
    let mut text = String::new();
    text.push(lx.bump().expect("opening quote")); // "
    while let Some(c) = lx.peek(0) {
        text.push(lx.bump().expect("peeked"));
        match c {
            '\\' => {
                if let Some(e) = lx.peek(0) {
                    text.push(e);
                    lx.bump();
                }
            }
            '"' => break,
            _ => {}
        }
    }
    text
}

/// Attempts `r"..."`, `r#"..."#` (any hash depth), `b"..."`, `b'x'`,
/// `br#"..."#` from the current position; returns `None` (consuming
/// nothing) if the prefix is an ordinary identifier instead.
fn try_lex_prefixed_literal(lx: &mut Lexer) -> Option<String> {
    let mut j = 0;
    let mut byte = false;
    let mut raw = false;
    if lx.peek(j) == Some('b') {
        byte = true;
        j += 1;
    }
    if lx.peek(j) == Some('r') {
        raw = true;
        j += 1;
    }
    if !byte && !raw {
        return None;
    }
    let mut hashes = 0usize;
    if raw {
        while lx.peek(j) == Some('#') {
            hashes += 1;
            j += 1;
        }
    }
    match lx.peek(j) {
        Some('"') => {}
        Some('\'') if byte && !raw => {
            // Byte char literal: `b'x'`.
            let mut text = String::new();
            text.push(lx.bump().expect("b"));
            text.push_str(&lex_char(lx));
            return Some(text);
        }
        _ => return None,
    }
    let mut text = String::new();
    for _ in 0..=j {
        text.push(lx.bump().expect("scanned prefix"));
    }
    if !raw {
        // b"...": plain string escapes.
        while let Some(c) = lx.peek(0) {
            text.push(lx.bump().expect("peeked"));
            match c {
                '\\' => {
                    if let Some(e) = lx.peek(0) {
                        text.push(e);
                        lx.bump();
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        return Some(text);
    }
    // Raw body: ends at `"` + `hashes` hash marks, no escapes.
    while let Some(c) = lx.peek(0) {
        text.push(lx.bump().expect("peeked"));
        if c == '"' {
            let mut k = 0;
            while k < hashes && lx.peek(k) == Some('#') {
                k += 1;
            }
            if k == hashes {
                for _ in 0..hashes {
                    text.push(lx.bump().expect("counted"));
                }
                break;
            }
        }
    }
    Some(text)
}

fn lex_block_comment(lx: &mut Lexer) -> String {
    let mut text = String::new();
    text.push(lx.bump().expect("slash"));
    text.push(lx.bump().expect("star"));
    let mut depth = 1usize;
    while depth > 0 {
        match (lx.peek(0), lx.peek(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                text.push(lx.bump().expect("peeked"));
                text.push(lx.bump().expect("peeked"));
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                text.push(lx.bump().expect("peeked"));
                text.push(lx.bump().expect("peeked"));
            }
            (Some(_), _) => {
                text.push(lx.bump().expect("peeked"));
            }
            (None, _) => break, // Unterminated.
        }
    }
    text
}

fn lex_number(lx: &mut Lexer) -> String {
    let mut text = String::new();
    let mut saw_dot = false;
    while let Some(c) = lx.peek(0) {
        if c.is_alphanumeric() || c == '_' {
            text.push(c);
            lx.bump();
        } else if c == '.' && !saw_dot && lx.peek(1).is_some_and(|d| d.is_ascii_digit()) {
            saw_dot = true;
            text.push(c);
            lx.bump();
        } else {
            break;
        }
    }
    text
}

/// Parses an integer literal's value: decimal, `0x`/`0o`/`0b`, `_`
/// separators, and an optional type suffix (`u64`, `u32`, ...).
pub fn parse_int(text: &str) -> Option<u64> {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let lower = cleaned.to_ascii_lowercase();
    let (digits, radix) = if let Some(rest) = lower.strip_prefix("0x") {
        (rest, 16)
    } else if let Some(rest) = lower.strip_prefix("0o") {
        (rest, 8)
    } else if let Some(rest) = lower.strip_prefix("0b") {
        (rest, 2)
    } else {
        (lower.as_str(), 10)
    };
    let digits = digits
        .strip_suffix("u64")
        .or_else(|| digits.strip_suffix("u32"))
        .or_else(|| digits.strip_suffix("u16"))
        .or_else(|| digits.strip_suffix("u8"))
        .or_else(|| digits.strip_suffix("usize"))
        .or_else(|| digits.strip_suffix("i64"))
        .or_else(|| digits.strip_suffix("i32"))
        .unwrap_or(digits);
    u64::from_str_radix(digits, radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokenKind::Char, "'a'".into())));
        let toks = kinds("let c = '\\''; let l: &'static str = s;");
        assert!(toks.contains(&(TokenKind::Char, "'\\''".into())));
        assert!(toks.contains(&(TokenKind::Lifetime, "'static".into())));
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::Comment);
        assert!(toks[1].1.contains("inner"));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let toks = kinds(r####"let s = r#"an "unsafe" string"#; x"####);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("unsafe"));
        // The word inside the string is not an ident token.
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
    }

    #[test]
    fn byte_and_raw_prefixes_do_not_eat_identifiers() {
        let toks = kinds("let bytes = b\"ab\"; let r = rows; let b = 1; br#\"x\"#;");
        assert!(toks.contains(&(TokenKind::Str, "b\"ab\"".into())));
        assert!(toks.contains(&(TokenKind::Ident, "rows".into())));
        assert!(toks.contains(&(TokenKind::Ident, "b".into())));
        assert!(toks.contains(&(TokenKind::Str, "br#\"x\"#".into())));
    }

    #[test]
    fn raw_identifiers_keep_their_prefix() {
        let toks = kinds("let r#unsafe = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#unsafe".into())));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn int_literals_parse_in_every_base() {
        assert_eq!(parse_int("0x11"), Some(0x11));
        assert_eq!(parse_int("0b1010"), Some(10));
        assert_eq!(parse_int("1_000u64"), Some(1000));
        assert_eq!(parse_int("56"), Some(56));
        assert_eq!(parse_int("3.5"), None);
    }
}
