//! ROI handling: mapping stage-1 detections (pooled coordinates) back to
//! full-resolution sensor rectangles.

use hirise_detect::Detection;
use hirise_imaging::Rect;

/// Converts stage-1 detections into the ROI list sent back to the sensor.
///
/// * boxes are scaled up by the pooling factor `k`,
/// * inflated by `margin` full-resolution pixels of context,
/// * clamped to the array,
/// * sorted by descending detector score and truncated to `max_rois`,
/// * degenerate boxes are dropped.
pub fn detections_to_rois(
    detections: &[Detection],
    k: u32,
    margin: u32,
    array_width: u32,
    array_height: u32,
    max_rois: usize,
) -> Vec<Rect> {
    let mut rois = Vec::new();
    detections_to_rois_into(
        detections,
        k,
        margin,
        array_width,
        array_height,
        max_rois,
        &mut Vec::new(),
        &mut rois,
    );
    rois
}

/// In-place variant of [`detections_to_rois`] for the zero-allocation
/// frame path: the ROI list replaces the contents of `out`, and `order`
/// is a reusable index buffer for the stable score sort (ties keep the
/// detector's output order, exactly like the allocating path).
// lint: zero-alloc
#[allow(clippy::too_many_arguments)]
pub fn detections_to_rois_into(
    detections: &[Detection],
    k: u32,
    margin: u32,
    array_width: u32,
    array_height: u32,
    max_rois: usize,
    order: &mut Vec<u32>,
    out: &mut Vec<Rect>,
) {
    order.clear();
    order.extend(0..detections.len() as u32);
    // sort_unstable never allocates; the index tiebreak restores the
    // stable-sort order. `total_cmp` keeps the sort total when a broken
    // detector emits a NaN score (the old `partial_cmp().expect()`
    // panicked, killing a whole stream worker for one bad window): NaN
    // scores — of either sign — sort behind every real score in
    // detector order, so they only ever fill leftover `max_rois` slots.
    order.sort_unstable_by(|&a, &b| {
        let (sa, sb) = (detections[a as usize].score, detections[b as usize].score);
        sa.is_nan()
            .cmp(&sb.is_nan())
            .then_with(|| {
                // Both NaN: fall through to the index tiebreak rather
                // than total_cmp's sign-of-NaN order.
                if sa.is_nan() {
                    std::cmp::Ordering::Equal
                } else {
                    sb.total_cmp(&sa)
                }
            })
            .then(a.cmp(&b))
    });
    out.clear();
    for &i in order.iter() {
        if out.len() == max_rois {
            break;
        }
        let rect = detections[i as usize]
            .bbox
            .scaled(k, 1)
            .inflated(margin)
            .clamped(array_width, array_height);
        if !rect.is_degenerate() {
            out.push(rect);
        }
    }
}

/// Bits needed to ship `j` box coordinates processor→sensor
/// (`j · 4 words · 16 bit`, the paper's `D1_P→S`).
pub fn roi_request_bits(count: usize) -> u64 {
    count as u64 * hirise_sensor::roi::WORDS_PER_BOX * hirise_sensor::roi::WORD_BITS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(x: u32, y: u32, w: u32, h: u32, score: f32) -> Detection {
        Detection { class: 0, bbox: Rect::new(x, y, w, h), score }
    }

    #[test]
    fn scales_by_pooling_factor() {
        let rois = detections_to_rois(&[det(10, 20, 14, 14, 0.9)], 8, 0, 2560, 1920, 10);
        assert_eq!(rois, vec![Rect::new(80, 160, 112, 112)]);
    }

    #[test]
    fn sorts_by_score_and_truncates() {
        let dets = [det(0, 0, 4, 4, 0.2), det(8, 0, 4, 4, 0.9), det(16, 0, 4, 4, 0.5)];
        let rois = detections_to_rois(&dets, 1, 0, 100, 100, 2);
        assert_eq!(rois.len(), 2);
        assert_eq!(rois[0].x, 8);
        assert_eq!(rois[1].x, 16);
    }

    #[test]
    fn margin_inflates_before_clamping() {
        let rois = detections_to_rois(&[det(0, 0, 4, 4, 1.0)], 2, 3, 20, 20, 10);
        // Scaled to (0,0,8,8), inflated by 3 -> (0,0,11,11) after the
        // top-left clamp at zero.
        assert_eq!(rois[0], Rect::new(0, 0, 11, 11));
    }

    #[test]
    fn clamps_to_array_bounds() {
        let rois = detections_to_rois(&[det(30, 30, 10, 10, 1.0)], 1, 0, 32, 32, 10);
        assert_eq!(rois[0], Rect::new(30, 30, 2, 2));
    }

    #[test]
    fn drops_fully_outside_boxes() {
        let rois = detections_to_rois(&[det(50, 50, 4, 4, 1.0)], 1, 0, 32, 32, 10);
        assert!(rois.is_empty());
    }

    #[test]
    fn drops_zero_area_detections() {
        // A degenerate detection must not resurface as a live ROI after
        // scaling/inflation (Rect::scaled used to force sides to ≥ 1).
        let dets = [det(10, 10, 0, 0, 0.9), det(4, 4, 0, 6, 0.8), det(2, 2, 3, 3, 0.5)];
        let rois = detections_to_rois(&dets, 8, 3, 256, 256, 10);
        assert_eq!(rois.len(), 1, "degenerate detections leaked: {rois:?}");
        assert_eq!(rois[0], Rect::new(13, 13, 30, 30));
    }

    #[test]
    fn nan_scores_sort_last_without_panicking() {
        // One bad window must not kill the frame: NaN-scored detections
        // sort behind every finite score (ties keep detector order) and
        // only fill leftover slots.
        // -NaN first: total_cmp alone would order +NaN ahead of it, so
        // this pins the both-NaN → index-tiebreak path specifically.
        let dets = [
            det(0, 0, 4, 4, -f32::NAN),
            det(8, 0, 4, 4, 0.1),
            det(16, 0, 4, 4, f32::NAN),
            det(24, 0, 4, 4, 0.7),
        ];
        let rois = detections_to_rois(&dets, 1, 0, 100, 100, 3);
        assert_eq!(rois.len(), 3);
        assert_eq!(rois[0].x, 24, "highest finite score first");
        assert_eq!(rois[1].x, 8);
        assert_eq!(rois[2].x, 0, "NaN entries keep detector order at the tail");
        // With room for everything, both NaN boxes trail the finite ones.
        let all = detections_to_rois(&dets, 1, 0, 100, 100, 10);
        assert_eq!(all.iter().map(|r| r.x).collect::<Vec<_>>(), vec![24, 8, 0, 16]);
    }

    #[test]
    fn request_bits_formula() {
        assert_eq!(roi_request_bits(0), 0);
        assert_eq!(roi_request_bits(1), 64);
        assert_eq!(roi_request_bits(16), 1024);
    }
}
