//! The systems the paper compares HiRISE against.
//!
//! * [`ConventionalPipeline`] — the single-stage baseline: the entire
//!   frame is converted by the ADC and shipped to the processor (Fig. 2a).
//! * [`InProcessorPipeline`] — the scaling baseline of Table 2: the full
//!   frame is read out conventionally and then scaled **digitally** on the
//!   processor. Detection quality on this path is the reference that
//!   in-sensor scaling must match.

use hirise_detect::{Detection, Detector};
use hirise_imaging::{color, ops, Image, RgbImage};
use hirise_sensor::{ColorMode, ReadoutStats, Sensor, SensorConfig};

use crate::report::RunReport;
use crate::Result;

/// Single-stage full-frame baseline.
#[derive(Debug, Clone)]
pub struct ConventionalPipeline {
    sensor_config: SensorConfig,
}

impl ConventionalPipeline {
    /// Creates the baseline with the given sensor physics.
    pub fn new(sensor_config: SensorConfig) -> Self {
        Self { sensor_config }
    }

    /// Captures and ships the full frame; returns the digital image and a
    /// report (no stage 2, no pooling).
    pub fn run(&self, scene: &RgbImage) -> (RgbImage, RunReport) {
        let mark = std::time::Instant::now();
        let mut sensor = Sensor::capture(scene, self.sensor_config);
        let capture = mark.elapsed();
        let mark = std::time::Instant::now();
        let (image, stats) = sensor.read_full();
        let pool = mark.elapsed();
        let bytes = image.storage_bytes(self.sensor_config.adc_bits);
        let report = RunReport {
            stage1: stats,
            stage2: ReadoutStats::default(),
            pooling_outputs: 0,
            stage1_image_bytes: bytes,
            stage2_image_bytes: 0,
            roi_count: 0,
            // The conventional path has no pooling or ROI stages; the
            // full-frame readout is charged to `pool` (it is the
            // conversion stage of this pipeline).
            timings: crate::timing::StageTimings { capture, pool, ..Default::default() },
        };
        (image, report)
    }
}

/// Full readout followed by digital ("in-processor") scaling.
#[derive(Debug, Clone)]
pub struct InProcessorPipeline {
    sensor_config: SensorConfig,
    pooling_k: u32,
    color_mode: ColorMode,
    detector: Detector,
}

impl InProcessorPipeline {
    /// Creates the in-processor scaling baseline.
    pub fn new(
        sensor_config: SensorConfig,
        pooling_k: u32,
        color_mode: ColorMode,
        detector: Detector,
    ) -> Self {
        Self { sensor_config, pooling_k, color_mode, detector }
    }

    /// Shared detector access.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Mutable detector access (threshold calibration).
    pub fn detector_mut(&mut self) -> &mut Detector {
        &mut self.detector
    }

    /// Produces the digitally scaled stage-1 image (without detection) and
    /// the full-frame readout stats it cost.
    ///
    /// # Errors
    ///
    /// Propagates imaging failures (non-tiling pooling factors).
    pub fn scaled_capture(&self, scene: &RgbImage) -> Result<(Image, ReadoutStats)> {
        let mut sensor = Sensor::capture(scene, self.sensor_config);
        let (full, stats) = sensor.read_full();
        let scaled: Image = match self.color_mode {
            ColorMode::Rgb => Image::Rgb(ops::avg_pool_rgb(&full, self.pooling_k)?),
            ColorMode::Gray => {
                let gray = color::rgb_to_gray_mean(&full);
                Image::Gray(ops::avg_pool_gray(&gray, self.pooling_k)?)
            }
        };
        Ok((scaled, stats))
    }

    /// Runs readout → digital scaling → detection.
    ///
    /// # Errors
    ///
    /// See [`InProcessorPipeline::scaled_capture`].
    pub fn run(&self, scene: &RgbImage) -> Result<(Image, Vec<Detection>, ReadoutStats)> {
        let (scaled, stats) = self.scaled_capture(scene)?;
        let detections = self.detector.detect(&scaled);
        Ok((scaled, detections, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_imaging::{draw, metrics, Rect};

    fn scene(w: u32, h: u32) -> RgbImage {
        let mut img = RgbImage::from_fn(w, h, |x, y| {
            (0.3 + 0.02 * ((x / 7) % 3) as f32, 0.35, 0.3 + 0.02 * ((y / 5) % 4) as f32)
        });
        draw::fill_rect_rgb(&mut img, Rect::new(w / 4, h / 4, w / 5, h / 2), (0.9, 0.3, 0.2));
        img
    }

    #[test]
    fn conventional_costs_match_formulas() {
        let baseline = ConventionalPipeline::new(SensorConfig::noiseless());
        let (img, report) = baseline.run(&scene(64, 48));
        assert_eq!(img.dimensions(), (64, 48));
        assert_eq!(report.conversions(), 64 * 48 * 3);
        assert_eq!(report.total_transfer_bits(), 64 * 48 * 3 * 8);
        assert_eq!(report.peak_image_bytes(), 64 * 48 * 3);
        assert_eq!(report.roi_count, 0);
    }

    #[test]
    fn in_processor_scales_digitally() {
        let p = InProcessorPipeline::new(
            SensorConfig::noiseless(),
            4,
            ColorMode::Rgb,
            Detector::default(),
        );
        let (scaled, stats) = p.scaled_capture(&scene(64, 48)).unwrap();
        assert_eq!((scaled.width(), scaled.height()), (16, 12));
        // The full frame was still converted and transferred.
        assert_eq!(stats.conversions, 64 * 48 * 3);
    }

    #[test]
    fn gray_mode_produces_single_channel() {
        let p = InProcessorPipeline::new(
            SensorConfig::noiseless(),
            2,
            ColorMode::Gray,
            Detector::default(),
        );
        let (scaled, _) = p.scaled_capture(&scene(64, 48)).unwrap();
        assert_eq!(scaled.channels(), 1);
    }

    #[test]
    fn in_processor_matches_in_sensor_scaling() {
        // The Table-2 premise at the image level, via the public pipelines.
        let s = scene(64, 48);
        let in_proc = InProcessorPipeline::new(
            SensorConfig::noiseless(),
            4,
            ColorMode::Rgb,
            Detector::default(),
        );
        let (proc_img, _) = in_proc.scaled_capture(&s).unwrap();

        let cfg = crate::HiriseConfig::builder(64, 48)
            .pooling(4)
            .sensor(SensorConfig::noiseless())
            .build()
            .unwrap();
        let pipeline = crate::HirisePipeline::new(cfg);
        let (sensor_img, _, _) = pipeline.run_stage1(&s).unwrap();

        let a = proc_img.as_rgb().unwrap();
        let b = sensor_img.as_rgb().unwrap();
        for ch in 0..3 {
            let err = metrics::max_abs_diff(a.planes()[ch], b.planes()[ch]).unwrap();
            assert!(err <= 1.5 / 255.0, "channel {ch} differs by {err}");
        }
    }
}
