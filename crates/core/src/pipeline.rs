//! The end-to-end HiRISE two-stage pipeline.

use hirise_detect::{Detection, Detector};
use hirise_imaging::{Image, Rect, RgbImage};
use hirise_sensor::{ReadoutStats, Sensor};

use crate::config::HiriseConfig;
use crate::report::RunReport;
use crate::roi::detections_to_rois;
use crate::{HiriseError, Result};

/// Everything one frame produced.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The stage-1 compressed image as the processor received it.
    pub pooled_image: Image,
    /// Stage-1 detections in pooled coordinates.
    pub detections: Vec<Detection>,
    /// The full-resolution ROI rectangles requested from the sensor.
    pub rois: Vec<Rect>,
    /// The full-resolution ROI crops the sensor returned.
    pub roi_images: Vec<RgbImage>,
    /// Cost accounting for the whole frame.
    pub report: RunReport,
}

/// The HiRISE two-stage pipeline.
///
/// Owns a [`HiriseConfig`] and a stage-1 [`Detector`]; each call to
/// [`HirisePipeline::run`] captures one scene on a fresh [`Sensor`] and
/// executes both stages.
#[derive(Debug, Clone)]
pub struct HirisePipeline {
    config: HiriseConfig,
    detector: Detector,
}

impl HirisePipeline {
    /// Creates a pipeline from a configuration (the detector settings are
    /// taken from [`HiriseConfig::detector`]).
    pub fn new(config: HiriseConfig) -> Self {
        let detector = Detector::new(config.detector.clone());
        Self { config, detector }
    }

    /// The active configuration.
    pub fn config(&self) -> &HiriseConfig {
        &self.config
    }

    /// Mutable detector access (threshold calibration et al.).
    pub fn detector_mut(&mut self) -> &mut Detector {
        &mut self.detector
    }

    /// Shared detector access.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    fn check_scene(&self, scene: &RgbImage) -> Result<()> {
        let expected = (self.config.array_width, self.config.array_height);
        if scene.dimensions() != expected {
            return Err(HiriseError::SceneMismatch { expected, actual: scene.dimensions() });
        }
        Ok(())
    }

    /// Runs stage 1 only: in-sensor compressed capture + detection.
    ///
    /// # Errors
    ///
    /// [`HiriseError::SceneMismatch`] for wrongly sized scenes, plus sensor
    /// failures.
    pub fn run_stage1(&self, scene: &RgbImage) -> Result<(Image, Vec<Detection>, ReadoutStats)> {
        self.check_scene(scene)?;
        let mut sensor = Sensor::new(scene.clone(), self.config.sensor);
        let (pooled, stats) =
            sensor.capture_pooled(self.config.pooling_k, self.config.stage1_color)?;
        let detections = self.detector.detect(&pooled);
        Ok((pooled, detections, stats))
    }

    /// Runs the full two-stage pipeline on one scene.
    ///
    /// # Errors
    ///
    /// [`HiriseError::SceneMismatch`] for wrongly sized scenes, plus sensor
    /// failures.
    pub fn run(&self, scene: &RgbImage) -> Result<PipelineRun> {
        self.check_scene(scene)?;
        let mut sensor = Sensor::new(scene.clone(), self.config.sensor);
        let (pooled, stage1_stats) =
            sensor.capture_pooled(self.config.pooling_k, self.config.stage1_color)?;
        let detections = self.detector.detect(&pooled);
        let rois = detections_to_rois(
            &detections,
            self.config.pooling_k,
            self.config.roi_margin,
            self.config.array_width,
            self.config.array_height,
            self.config.max_rois,
        );
        let (roi_images, stage2_stats) = sensor.read_rois(&rois)?;

        let stage1_image_bytes = pooled.storage_bytes(self.config.sensor.adc_bits);
        let stage2_image_bytes: u64 = roi_images
            .iter()
            .map(|img| Image::Rgb(img.clone()).storage_bytes(self.config.sensor.adc_bits))
            .sum();
        let report = RunReport {
            stage1: stage1_stats,
            stage2: stage2_stats,
            pooling_outputs: stage1_stats.conversions,
            stage1_image_bytes,
            stage2_image_bytes,
            roi_count: rois.len(),
        };
        Ok(PipelineRun { pooled_image: pooled, detections, rois, roi_images, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HiriseConfig;
    use hirise_imaging::draw;
    use hirise_sensor::{ColorMode, SensorConfig};

    /// A scene with one bright textured object on a dim background.
    fn scene_with_object(w: u32, h: u32) -> RgbImage {
        let mut img = RgbImage::from_fn(w, h, |_, _| (0.35, 0.35, 0.35));
        let obj = Rect::new(w / 3, h / 4, w / 6, h / 2);
        draw::fill_rect_rgb(&mut img, obj, (0.9, 0.4, 0.2));
        let [pr, _, _] = img.planes_mut();
        draw::fill_stripes(pr, obj, 2, 0.95, 0.55);
        img
    }

    fn small_config() -> HiriseConfig {
        let detector = hirise_detect::DetectorConfig { score_threshold: 0.2, ..Default::default() };
        HiriseConfig::builder(192, 144)
            .pooling(2)
            .sensor(SensorConfig::noiseless())
            .detector(detector)
            .max_rois(4)
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_mismatched_scene() {
        let pipeline = HirisePipeline::new(small_config());
        let wrong = RgbImage::new(64, 64);
        assert!(matches!(pipeline.run(&wrong), Err(HiriseError::SceneMismatch { .. })));
    }

    #[test]
    fn full_run_produces_rois_and_accounting() {
        let pipeline = HirisePipeline::new(small_config());
        let scene = scene_with_object(192, 144);
        let run = pipeline.run(&scene).unwrap();
        assert_eq!(run.pooled_image.width(), 96);
        assert!(!run.detections.is_empty(), "stage-1 found nothing");
        assert_eq!(run.rois.len(), run.roi_images.len());
        assert!(run.report.stage1.conversions > 0);
        // Stage-1 conversions: pooled RGB image.
        assert_eq!(run.report.stage1.conversions, 96 * 72 * 3);
        // HiRISE moved less data than a full readout would have.
        let full_bits = 192 * 144 * 3 * 8;
        assert!(run.report.total_transfer_bits() < full_bits);
    }

    #[test]
    fn roi_crop_contains_the_object() {
        let pipeline = HirisePipeline::new(small_config());
        let scene = scene_with_object(192, 144);
        let run = pipeline.run(&scene).unwrap();
        let object = Rect::new(192 / 3, 144 / 4, 192 / 6, 144 / 2);
        let best = run.rois.iter().map(|r| r.iou(&object)).fold(0.0, f64::max);
        assert!(best > 0.3, "no roi matches the object (best IoU {best})");
    }

    #[test]
    fn gray_mode_cuts_stage1_conversions() {
        let mut cfg = small_config();
        cfg.stage1_color = ColorMode::Gray;
        let pipeline = HirisePipeline::new(cfg);
        let scene = scene_with_object(192, 144);
        let (pooled, _, stats) = pipeline.run_stage1(&scene).unwrap();
        assert_eq!(pooled.channels(), 1);
        assert_eq!(stats.conversions, 96 * 72);
    }

    #[test]
    fn max_rois_is_respected() {
        let mut cfg = small_config();
        cfg.max_rois = 1;
        let pipeline = HirisePipeline::new(cfg);
        let run = pipeline.run(&scene_with_object(192, 144)).unwrap();
        assert!(run.rois.len() <= 1);
    }

    #[test]
    fn deterministic_given_config() {
        let pipeline = HirisePipeline::new(small_config());
        let scene = scene_with_object(192, 144);
        let a = pipeline.run(&scene).unwrap();
        let b = pipeline.run(&scene).unwrap();
        assert_eq!(a.rois, b.rois);
        assert_eq!(a.report, b.report);
    }
}
