//! The end-to-end HiRISE two-stage pipeline.

use hirise_detect::{Detection, Detector};
use hirise_imaging::{Image, Rect, RgbImage};
use hirise_sensor::{ReadoutStats, Sensor};

use std::time::Instant;

use crate::config::HiriseConfig;
use crate::report::RunReport;
use crate::roi::detections_to_rois_into;
use crate::scratch::PipelineScratch;
use crate::timing::StageTimings;
use crate::{HiriseError, Result};

/// Everything one frame produced.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The stage-1 compressed image as the processor received it.
    pub pooled_image: Image,
    /// Stage-1 detections in pooled coordinates.
    pub detections: Vec<Detection>,
    /// The full-resolution ROI rectangles requested from the sensor.
    pub rois: Vec<Rect>,
    /// The full-resolution ROI crops the sensor returned.
    pub roi_images: Vec<RgbImage>,
    /// Cost accounting for the whole frame.
    pub report: RunReport,
}

/// The HiRISE two-stage pipeline.
///
/// Owns a [`HiriseConfig`] and a stage-1 [`Detector`]; each call to
/// [`HirisePipeline::run`] captures one scene on a fresh [`Sensor`] and
/// executes both stages.
#[derive(Debug, Clone)]
pub struct HirisePipeline {
    config: HiriseConfig,
    detector: Detector,
}

impl HirisePipeline {
    /// Creates a pipeline from a configuration (the detector settings are
    /// taken from [`HiriseConfig::detector`]).
    pub fn new(config: HiriseConfig) -> Self {
        let detector = Detector::new(config.detector.clone());
        Self { config, detector }
    }

    /// The active configuration.
    pub fn config(&self) -> &HiriseConfig {
        &self.config
    }

    /// Mutable detector access (threshold calibration et al.).
    pub fn detector_mut(&mut self) -> &mut Detector {
        &mut self.detector
    }

    /// Shared detector access.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    pub(crate) fn check_scene(&self, scene: &RgbImage) -> Result<()> {
        let expected = (self.config.array_width, self.config.array_height);
        if scene.dimensions() != expected {
            return Err(HiriseError::SceneMismatch { expected, actual: scene.dimensions() });
        }
        Ok(())
    }

    /// Captures `scene` into the scratch's sensor slot: recapture in
    /// place when the sensor configuration matches; otherwise (first
    /// frame, or a different pipeline borrowing the scratch) rebuild the
    /// sensor once. Shared by the still-image and temporal frame paths.
    pub(crate) fn capture_into<'a>(
        &self,
        scene: &RgbImage,
        slot: &'a mut Option<Sensor>,
    ) -> &'a mut Sensor {
        if slot.as_ref().is_some_and(|s| *s.config() == self.config.sensor) {
            slot.as_mut().expect("sensor presence just checked").recapture(scene);
        } else {
            *slot = Some(Sensor::capture(scene, self.config.sensor));
        }
        slot.as_mut().expect("sensor just ensured")
    }

    /// Runs stage 1 only: in-sensor compressed capture + detection.
    ///
    /// # Errors
    ///
    /// [`HiriseError::SceneMismatch`] for wrongly sized scenes, plus sensor
    /// failures.
    pub fn run_stage1(&self, scene: &RgbImage) -> Result<(Image, Vec<Detection>, ReadoutStats)> {
        self.check_scene(scene)?;
        let mut sensor = Sensor::capture(scene, self.config.sensor);
        let (pooled, stats) =
            sensor.capture_pooled(self.config.pooling_k, self.config.stage1_color)?;
        let detections = self.detector.detect(&pooled);
        Ok((pooled, detections, stats))
    }

    /// Runs the full two-stage pipeline on one scene.
    ///
    /// This is the allocating convenience wrapper: it builds a fresh
    /// [`PipelineScratch`], delegates to
    /// [`HirisePipeline::run_with_scratch`], and moves the frame results
    /// out. Reports are bit-identical between the two entry points.
    ///
    /// # Errors
    ///
    /// [`HiriseError::SceneMismatch`] for wrongly sized scenes, plus sensor
    /// failures.
    pub fn run(&self, scene: &RgbImage) -> Result<PipelineRun> {
        let mut scratch = PipelineScratch::new();
        let report = self.run_with_scratch(scene, &mut scratch)?;
        Ok(scratch.into_pipeline_run(report))
    }

    /// Runs the full two-stage pipeline on one scene, reusing `scratch`
    /// for every intermediate buffer — the steady-state frame path.
    ///
    /// After a warm-up frame (or two, while ROI crop buffers reach their
    /// high-water sizes) this performs **zero heap allocations per frame**;
    /// `tests/alloc.rs` enforces that with a counting allocator. The frame
    /// results (pooled image, detections, ROIs, crops) stay readable on
    /// the scratch until the next call; the returned [`RunReport`] is
    /// bit-identical to what [`HirisePipeline::run`] produces for the same
    /// `(config, scene)`.
    ///
    /// # Errors
    ///
    /// [`HiriseError::SceneMismatch`] for wrongly sized scenes, plus sensor
    /// failures.
    pub fn run_with_scratch(
        &self,
        scene: &RgbImage,
        scratch: &mut PipelineScratch,
    ) -> Result<RunReport> {
        self.check_scene(scene)?;
        let PipelineScratch {
            sensor,
            analog,
            pooled,
            detector,
            rois,
            roi_order,
            roi_images,
            pool,
            union,
        } = scratch;
        let mut timings = StageTimings::default();
        let mark = Instant::now();
        let sensor = self.capture_into(scene, sensor);
        timings.capture = mark.elapsed();

        let mark = Instant::now();
        let stage1_stats = sensor.capture_pooled_into(
            self.config.pooling_k,
            self.config.stage1_color,
            analog,
            pooled,
        )?;
        timings.pool = mark.elapsed();

        let mark = Instant::now();
        let detections = self.detector.detect_with_scratch(pooled, detector);
        detections_to_rois_into(
            detections,
            self.config.pooling_k,
            self.config.roi_margin,
            self.config.array_width,
            self.config.array_height,
            self.config.max_rois,
            roi_order,
            rois,
        );
        timings.detect = mark.elapsed();

        let mark = Instant::now();
        let stage2_stats = sensor.read_rois_into(rois, roi_images, pool, union)?;
        timings.roi_read = mark.elapsed();

        let stage1_image_bytes = pooled.storage_bytes(self.config.sensor.adc_bits);
        let stage2_image_bytes: u64 =
            roi_images.iter().map(|img| img.storage_bytes(self.config.sensor.adc_bits)).sum();
        Ok(RunReport {
            stage1: stage1_stats,
            stage2: stage2_stats,
            pooling_outputs: stage1_stats.conversions,
            stage1_image_bytes,
            stage2_image_bytes,
            roi_count: rois.len(),
            timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HiriseConfig;
    use hirise_imaging::draw;
    use hirise_sensor::{ColorMode, SensorConfig};

    /// A scene with one bright textured object on a dim background.
    fn scene_with_object(w: u32, h: u32) -> RgbImage {
        let mut img = RgbImage::from_fn(w, h, |_, _| (0.35, 0.35, 0.35));
        let obj = Rect::new(w / 3, h / 4, w / 6, h / 2);
        draw::fill_rect_rgb(&mut img, obj, (0.9, 0.4, 0.2));
        let [pr, _, _] = img.planes_mut();
        draw::fill_stripes(pr, obj, 2, 0.95, 0.55);
        img
    }

    fn small_config() -> HiriseConfig {
        let detector = hirise_detect::DetectorConfig { score_threshold: 0.2, ..Default::default() };
        HiriseConfig::builder(192, 144)
            .pooling(2)
            .sensor(SensorConfig::noiseless())
            .detector(detector)
            .max_rois(4)
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_mismatched_scene() {
        let pipeline = HirisePipeline::new(small_config());
        let wrong = RgbImage::new(64, 64);
        assert!(matches!(pipeline.run(&wrong), Err(HiriseError::SceneMismatch { .. })));
    }

    #[test]
    fn full_run_produces_rois_and_accounting() {
        let pipeline = HirisePipeline::new(small_config());
        let scene = scene_with_object(192, 144);
        let run = pipeline.run(&scene).unwrap();
        assert_eq!(run.pooled_image.width(), 96);
        assert!(!run.detections.is_empty(), "stage-1 found nothing");
        assert_eq!(run.rois.len(), run.roi_images.len());
        assert!(run.report.stage1.conversions > 0);
        // Stage-1 conversions: pooled RGB image.
        assert_eq!(run.report.stage1.conversions, 96 * 72 * 3);
        // HiRISE moved less data than a full readout would have.
        let full_bits = 192 * 144 * 3 * 8;
        assert!(run.report.total_transfer_bits() < full_bits);
    }

    #[test]
    fn roi_crop_contains_the_object() {
        let pipeline = HirisePipeline::new(small_config());
        let scene = scene_with_object(192, 144);
        let run = pipeline.run(&scene).unwrap();
        let object = Rect::new(192 / 3, 144 / 4, 192 / 6, 144 / 2);
        let best = run.rois.iter().map(|r| r.iou(&object)).fold(0.0, f64::max);
        assert!(best > 0.3, "no roi matches the object (best IoU {best})");
    }

    #[test]
    fn gray_mode_cuts_stage1_conversions() {
        let mut cfg = small_config();
        cfg.stage1_color = ColorMode::Gray;
        let pipeline = HirisePipeline::new(cfg);
        let scene = scene_with_object(192, 144);
        let (pooled, _, stats) = pipeline.run_stage1(&scene).unwrap();
        assert_eq!(pooled.channels(), 1);
        assert_eq!(stats.conversions, 96 * 72);
    }

    #[test]
    fn max_rois_is_respected() {
        let mut cfg = small_config();
        cfg.max_rois = 1;
        let pipeline = HirisePipeline::new(cfg);
        let run = pipeline.run(&scene_with_object(192, 144)).unwrap();
        assert!(run.rois.len() <= 1);
    }

    #[test]
    fn deterministic_given_config() {
        let pipeline = HirisePipeline::new(small_config());
        let scene = scene_with_object(192, 144);
        let a = pipeline.run(&scene).unwrap();
        let b = pipeline.run(&scene).unwrap();
        assert_eq!(a.rois, b.rois);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn scratch_path_is_bit_identical_to_run() {
        let pipeline = HirisePipeline::new(small_config());
        let mut scratch = PipelineScratch::new();
        // Several frames through one scratch, compared field by field
        // against fresh allocating runs.
        for i in 0..4u32 {
            let mut scene = scene_with_object(192, 144);
            let extra = Rect::new(10 + 20 * i, 100, 30, 30);
            draw::fill_rect_rgb(&mut scene, extra, (0.2, 0.8, 0.6));
            let report = pipeline.run_with_scratch(&scene, &mut scratch).unwrap();
            let fresh = pipeline.run(&scene).unwrap();
            assert_eq!(report, fresh.report, "frame {i}");
            assert_eq!(*scratch.pooled_image(), fresh.pooled_image);
            assert_eq!(scratch.detections(), fresh.detections.as_slice());
            assert_eq!(scratch.rois(), fresh.rois.as_slice());
            assert_eq!(scratch.roi_images(), fresh.roi_images.as_slice());
        }
    }

    #[test]
    fn scratch_path_records_stage_timings() {
        let pipeline = HirisePipeline::new(small_config());
        let mut scratch = PipelineScratch::new();
        let scene = scene_with_object(192, 144);
        let report = pipeline.run_with_scratch(&scene, &mut scratch).unwrap();
        let t = report.timings;
        // Capture and pooling walk the whole array; they always register
        // on the monotonic clock. The total is consistent with the parts.
        assert!(t.capture > std::time::Duration::ZERO, "capture stage not timed");
        assert!(t.pool > std::time::Duration::ZERO, "pool stage not timed");
        assert!(t.detect > std::time::Duration::ZERO, "detect stage not timed");
        assert_eq!(t.total(), t.capture + t.pool + t.detect + t.roi_read);
        // The allocating wrapper reports timings too.
        assert!(pipeline.run(&scene).unwrap().report.timings.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn one_scratch_serves_differently_configured_pipelines() {
        let rgb = HirisePipeline::new(small_config());
        let mut gray_cfg = HiriseConfig::builder(64, 64)
            .pooling(4)
            .sensor(SensorConfig::default())
            .max_rois(2)
            .build()
            .unwrap();
        gray_cfg.stage1_color = ColorMode::Gray;
        gray_cfg.detector.score_threshold = 0.2;
        let gray = HirisePipeline::new(gray_cfg);
        let big = scene_with_object(192, 144);
        let small = scene_with_object(64, 64);
        let mut scratch = PipelineScratch::new();
        // Alternating pipelines (different dims, colour mode, sensor
        // config) through one scratch must still match fresh runs.
        for _ in 0..2 {
            let a = rgb.run_with_scratch(&big, &mut scratch).unwrap();
            assert_eq!(a, rgb.run(&big).unwrap().report);
            let b = gray.run_with_scratch(&small, &mut scratch).unwrap();
            assert_eq!(b, gray.run(&small).unwrap().report);
        }
    }

    #[test]
    fn scratch_path_rejects_mismatched_scene() {
        let pipeline = HirisePipeline::new(small_config());
        let mut scratch = PipelineScratch::new();
        let wrong = RgbImage::new(64, 64);
        assert!(matches!(
            pipeline.run_with_scratch(&wrong, &mut scratch),
            Err(HiriseError::SceneMismatch { .. })
        ));
    }
}
