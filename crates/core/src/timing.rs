//! Per-stage wall-clock accounting for the frame path.
//!
//! [`StageTimings`] records how long each stage of one
//! [`HirisePipeline::run_with_scratch`](crate::HirisePipeline::run_with_scratch)
//! call took, measured with the monotonic [`std::time::Instant`] clock and
//! carried on the [`RunReport`](crate::RunReport) without any heap
//! allocation (the struct is four inline [`Duration`]s). Timings are
//! *measurement metadata*, not frame results: two runs of the same frame
//! produce bit-identical images, detections and counters but different
//! timings, so [`RunReport`](crate::RunReport)'s `PartialEq` deliberately
//! ignores them.

use std::fmt;
use std::ops::{Add, AddAssign};
use std::time::Duration;

/// Wall-clock time spent in each stage of one frame (or, summed, of a
/// whole stream — see [`StreamSummary`](crate::stream::StreamSummary)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Scene → analog pixel array (sensor capture / in-place recapture,
    /// including fixed-pattern application).
    pub capture: Duration,
    /// Analog pooling plus stage-1 ADC conversion of the pooled outputs.
    pub pool: Duration,
    /// Stage-1 detection on the pooled image plus mapping detections to
    /// full-resolution ROI rectangles.
    pub detect: Duration,
    /// Stage-2 selective ROI readout (union conversion + per-box crops).
    pub roi_read: Duration,
}

impl StageTimings {
    /// Sum of all stage durations.
    pub fn total(&self) -> Duration {
        self.capture + self.pool + self.detect + self.roi_read
    }

    /// Fraction of the total spent in `stage` (0 when the total is zero).
    pub fn share(&self, stage: Duration) -> f64 {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            stage.as_secs_f64() / total
        }
    }
}

impl Add for StageTimings {
    type Output = StageTimings;

    fn add(self, other: StageTimings) -> StageTimings {
        StageTimings {
            capture: self.capture + other.capture,
            pool: self.pool + other.pool,
            detect: self.detect + other.detect,
            roi_read: self.roi_read + other.roi_read,
        }
    }
}

impl AddAssign for StageTimings {
    fn add_assign(&mut self, other: StageTimings) {
        *self = *self + other;
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "capture {:.2} ms | pool {:.2} ms | detect {:.2} ms | roi-read {:.2} ms \
             (total {:.2} ms)",
            self.capture.as_secs_f64() * 1e3,
            self.pool.as_secs_f64() * 1e3,
            self.detect.as_secs_f64() * 1e3,
            self.roi_read.as_secs_f64() * 1e3,
            self.total().as_secs_f64() * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timings(ms: [u64; 4]) -> StageTimings {
        StageTimings {
            capture: Duration::from_millis(ms[0]),
            pool: Duration::from_millis(ms[1]),
            detect: Duration::from_millis(ms[2]),
            roi_read: Duration::from_millis(ms[3]),
        }
    }

    #[test]
    fn total_sums_stages() {
        let t = timings([1, 2, 3, 4]);
        assert_eq!(t.total(), Duration::from_millis(10));
    }

    #[test]
    fn add_accumulates_fieldwise() {
        let mut acc = timings([1, 2, 3, 4]);
        acc += timings([10, 20, 30, 40]);
        assert_eq!(acc, timings([11, 22, 33, 44]));
        assert_eq!(timings([0, 0, 0, 0]) + acc, acc);
    }

    #[test]
    fn share_handles_zero_total() {
        let zero = StageTimings::default();
        assert_eq!(zero.share(zero.capture), 0.0);
        let t = timings([1, 1, 1, 1]);
        assert!((t.share(t.capture) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_reports_milliseconds() {
        let text = timings([1, 2, 3, 4]).to_string();
        assert!(text.contains("capture 1.00 ms"));
        assert!(text.contains("total 10.00 ms"));
    }
}
