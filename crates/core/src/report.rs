//! Per-run cost reporting aligned with the paper's metrics.

use std::fmt;

use hirise_energy::{AdcEnergy, PoolingEnergy};
use hirise_sensor::ReadoutStats;

use crate::timing::StageTimings;

/// Aggregated costs of one pipeline run, in the units the paper reports.
///
/// Equality compares the *results* of the run (counters, sizes, ROI
/// count) and deliberately ignores [`RunReport::timings`]: two runs of
/// the same frame are bit-identical in every result field but never in
/// wall-clock time.
#[derive(Debug, Clone, Copy)]
pub struct RunReport {
    /// Stage-1 readout counters (pooled capture).
    pub stage1: ReadoutStats,
    /// Stage-2 readout counters (ROI batch).
    pub stage2: ReadoutStats,
    /// Analog pooling outputs produced in stage 1.
    pub pooling_outputs: u64,
    /// Bytes the processor must hold for the stage-1 image.
    pub stage1_image_bytes: u64,
    /// Bytes the processor must hold for the ROI batch.
    pub stage2_image_bytes: u64,
    /// Number of ROIs read.
    pub roi_count: usize,
    /// Wall-clock per-stage breakdown of this run (zero for closed-form
    /// reports that never executed, e.g. analytical-model outputs).
    pub timings: StageTimings,
}

impl PartialEq for RunReport {
    fn eq(&self, other: &Self) -> bool {
        self.stage1 == other.stage1
            && self.stage2 == other.stage2
            && self.pooling_outputs == other.pooling_outputs
            && self.stage1_image_bytes == other.stage1_image_bytes
            && self.stage2_image_bytes == other.stage2_image_bytes
            && self.roi_count == other.roi_count
    }
}

impl RunReport {
    /// Total ADC conversions.
    pub fn conversions(&self) -> u64 {
        self.stage1.conversions + self.stage2.conversions
    }

    /// Total transfer in both directions, bits (the paper's `D_new`).
    pub fn total_transfer_bits(&self) -> u64 {
        self.stage1.total_transfer_bits() + self.stage2.total_transfer_bits()
    }

    /// Total transfer in kilobytes.
    pub fn total_transfer_kb(&self) -> f64 {
        self.total_transfer_bits() as f64 / 8000.0
    }

    /// Peak image memory (`max(M1, M2)` — the pooled image is released
    /// before the ROIs arrive).
    pub fn peak_image_bytes(&self) -> u64 {
        self.stage1_image_bytes.max(self.stage2_image_bytes)
    }

    /// Sensor-side energy (ADC + pooling circuit), joules.
    pub fn sensor_energy_joules(&self, adc: &AdcEnergy, pooling: &PoolingEnergy) -> f64 {
        adc.energy_joules(self.conversions()) + pooling.energy_joules(self.pooling_outputs)
    }

    /// Sensor-side energy in millijoules with the paper's calibrated
    /// models.
    pub fn sensor_energy_mj_default(&self) -> f64 {
        self.sensor_energy_joules(&AdcEnergy::PAPER_45NM_8BIT, &PoolingEnergy::PAPER_45NM) * 1e3
    }
}

/// How the temporal pipeline produced one video frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Scheduled full stage-1 run (pool + detect + ROI readout), on the
    /// keyframe cadence or because no live track remained.
    Keyframe,
    /// Off-schedule full stage-1 run forced by the drift trigger; the
    /// sensor paid both the speculative tracked readout *and* the
    /// refreshed one (both appear in the frame's stage-2 counters).
    DriftRefresh,
    /// Tracked frame: capture + predicted-ROI readout only — the pooled
    /// capture and the detector never ran.
    Tracked,
}

impl FrameKind {
    /// Whether the full stage-1 pool + detect path executed.
    pub fn ran_detection(&self) -> bool {
        matches!(self, FrameKind::Keyframe | FrameKind::DriftRefresh)
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameKind::Keyframe => write!(f, "keyframe"),
            FrameKind::DriftRefresh => write!(f, "drift-refresh"),
            FrameKind::Tracked => write!(f, "tracked"),
        }
    }
}

/// One video frame's costs plus how the temporal policy handled it.
///
/// The embedded [`RunReport`] uses the same units as the still-image
/// pipeline, so stream aggregation folds both kinds interchangeably; on
/// a [`FrameKind::Tracked`] frame the stage-1 counters are zero (nothing
/// was pooled, converted, or shipped for stage 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalFrameReport {
    /// Cost accounting of the frame.
    pub report: RunReport,
    /// Which path produced it.
    pub kind: FrameKind,
    /// Live tracks after the frame.
    pub active_tracks: u32,
}

impl fmt::Display for TemporalFrameReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} | {} tracks] {}", self.kind, self.active_tracks, self.report)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hirise run: {} rois, {} conversions, transfer {:.1} kB, peak image {:.1} kB, sensor energy {:.3} mJ",
            self.roi_count,
            self.conversions(),
            self.total_transfer_kb(),
            self.peak_image_bytes() as f64 / 1000.0,
            self.sensor_energy_mj_default()
        )?;
        write!(
            f,
            "  stage-1: {} conv / {:.1} kB out; stage-2: {} conv / {:.1} kB out / {} B box coords",
            self.stage1.conversions,
            self.stage1.transferred_bits as f64 / 8000.0,
            self.stage2.conversions,
            self.stage2.transferred_bits as f64 / 8000.0,
            self.stage2.box_words_bits / 8
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            stage1: ReadoutStats { conversions: 1000, transferred_bits: 8000, box_words_bits: 0 },
            stage2: ReadoutStats { conversions: 300, transferred_bits: 3200, box_words_bits: 128 },
            pooling_outputs: 1000,
            stage1_image_bytes: 1000,
            stage2_image_bytes: 400,
            roi_count: 2,
            timings: StageTimings::default(),
        }
    }

    #[test]
    fn equality_ignores_timings() {
        let a = report();
        let mut b = report();
        b.timings.detect = std::time::Duration::from_millis(7);
        assert_eq!(a, b, "timings are measurement metadata, not results");
        let mut c = report();
        c.roi_count = 3;
        assert_ne!(a, c);
    }

    #[test]
    fn totals_add_up() {
        let r = report();
        assert_eq!(r.conversions(), 1300);
        assert_eq!(r.total_transfer_bits(), 8000 + 3200 + 128);
        assert_eq!(r.peak_image_bytes(), 1000);
    }

    #[test]
    fn energy_combines_adc_and_pooling() {
        let r = report();
        let adc = AdcEnergy { joules_per_conversion: 1.0 };
        let pool = PoolingEnergy { joules_per_output: 0.5 };
        assert!((r.sensor_energy_joules(&adc, &pool) - (1300.0 + 500.0)).abs() < 1e-9);
    }

    #[test]
    fn display_contains_key_numbers() {
        let text = report().to_string();
        assert!(text.contains("2 rois"));
        assert!(text.contains("1300 conversions"));
        assert!(text.contains("stage-2"));
    }

    #[test]
    fn frame_kinds_classify_detection_frames() {
        assert!(FrameKind::Keyframe.ran_detection());
        assert!(FrameKind::DriftRefresh.ran_detection());
        assert!(!FrameKind::Tracked.ran_detection());
        assert_eq!(FrameKind::Tracked.to_string(), "tracked");
        assert_eq!(FrameKind::DriftRefresh.to_string(), "drift-refresh");
    }

    #[test]
    fn temporal_report_displays_kind_and_tracks() {
        let t =
            TemporalFrameReport { report: report(), kind: FrameKind::Keyframe, active_tracks: 3 };
        let text = t.to_string();
        assert!(text.contains("keyframe"));
        assert!(text.contains("3 tracks"));
        assert!(text.contains("2 rois"));
    }
}
