//! Per-run cost reporting aligned with the paper's metrics.

use std::fmt;

use hirise_energy::{AdcEnergy, PoolingEnergy};
use hirise_sensor::ReadoutStats;

use crate::timing::StageTimings;

/// Aggregated costs of one pipeline run, in the units the paper reports.
///
/// Equality compares the *results* of the run (counters, sizes, ROI
/// count) and deliberately ignores [`RunReport::timings`]: two runs of
/// the same frame are bit-identical in every result field but never in
/// wall-clock time.
#[derive(Debug, Clone, Copy)]
pub struct RunReport {
    /// Stage-1 readout counters (pooled capture).
    pub stage1: ReadoutStats,
    /// Stage-2 readout counters (ROI batch).
    pub stage2: ReadoutStats,
    /// Analog pooling outputs produced in stage 1.
    pub pooling_outputs: u64,
    /// Bytes the processor must hold for the stage-1 image.
    pub stage1_image_bytes: u64,
    /// Bytes the processor must hold for the ROI batch.
    pub stage2_image_bytes: u64,
    /// Number of ROIs read.
    pub roi_count: usize,
    /// Wall-clock per-stage breakdown of this run (zero for closed-form
    /// reports that never executed, e.g. analytical-model outputs).
    pub timings: StageTimings,
}

impl PartialEq for RunReport {
    fn eq(&self, other: &Self) -> bool {
        self.stage1 == other.stage1
            && self.stage2 == other.stage2
            && self.pooling_outputs == other.pooling_outputs
            && self.stage1_image_bytes == other.stage1_image_bytes
            && self.stage2_image_bytes == other.stage2_image_bytes
            && self.roi_count == other.roi_count
    }
}

impl RunReport {
    /// Total ADC conversions.
    pub fn conversions(&self) -> u64 {
        self.stage1.conversions + self.stage2.conversions
    }

    /// Total transfer in both directions, bits (the paper's `D_new`).
    pub fn total_transfer_bits(&self) -> u64 {
        self.stage1.total_transfer_bits() + self.stage2.total_transfer_bits()
    }

    /// Total transfer in kilobytes.
    pub fn total_transfer_kb(&self) -> f64 {
        self.total_transfer_bits() as f64 / 8000.0
    }

    /// Peak image memory (`max(M1, M2)` — the pooled image is released
    /// before the ROIs arrive).
    pub fn peak_image_bytes(&self) -> u64 {
        self.stage1_image_bytes.max(self.stage2_image_bytes)
    }

    /// Sensor-side energy (ADC + pooling circuit), joules.
    pub fn sensor_energy_joules(&self, adc: &AdcEnergy, pooling: &PoolingEnergy) -> f64 {
        adc.energy_joules(self.conversions()) + pooling.energy_joules(self.pooling_outputs)
    }

    /// Sensor-side energy in millijoules with the paper's calibrated
    /// models.
    pub fn sensor_energy_mj_default(&self) -> f64 {
        self.sensor_energy_joules(&AdcEnergy::PAPER_45NM_8BIT, &PoolingEnergy::PAPER_45NM) * 1e3
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hirise run: {} rois, {} conversions, transfer {:.1} kB, peak image {:.1} kB, sensor energy {:.3} mJ",
            self.roi_count,
            self.conversions(),
            self.total_transfer_kb(),
            self.peak_image_bytes() as f64 / 1000.0,
            self.sensor_energy_mj_default()
        )?;
        write!(
            f,
            "  stage-1: {} conv / {:.1} kB out; stage-2: {} conv / {:.1} kB out / {} B box coords",
            self.stage1.conversions,
            self.stage1.transferred_bits as f64 / 8000.0,
            self.stage2.conversions,
            self.stage2.transferred_bits as f64 / 8000.0,
            self.stage2.box_words_bits / 8
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            stage1: ReadoutStats { conversions: 1000, transferred_bits: 8000, box_words_bits: 0 },
            stage2: ReadoutStats { conversions: 300, transferred_bits: 3200, box_words_bits: 128 },
            pooling_outputs: 1000,
            stage1_image_bytes: 1000,
            stage2_image_bytes: 400,
            roi_count: 2,
            timings: StageTimings::default(),
        }
    }

    #[test]
    fn equality_ignores_timings() {
        let a = report();
        let mut b = report();
        b.timings.detect = std::time::Duration::from_millis(7);
        assert_eq!(a, b, "timings are measurement metadata, not results");
        let mut c = report();
        c.roi_count = 3;
        assert_ne!(a, c);
    }

    #[test]
    fn totals_add_up() {
        let r = report();
        assert_eq!(r.conversions(), 1300);
        assert_eq!(r.total_transfer_bits(), 8000 + 3200 + 128);
        assert_eq!(r.peak_image_bytes(), 1000);
    }

    #[test]
    fn energy_combines_adc_and_pooling() {
        let r = report();
        let adc = AdcEnergy { joules_per_conversion: 1.0 };
        let pool = PoolingEnergy { joules_per_output: 0.5 };
        assert!((r.sensor_energy_joules(&adc, &pool) - (1300.0 + 500.0)).abs() < 1e-9);
    }

    #[test]
    fn display_contains_key_numbers() {
        let text = report().to_string();
        assert!(text.contains("2 rois"));
        assert!(text.contains("1300 conversions"));
        assert!(text.contains("stage-2"));
    }
}
