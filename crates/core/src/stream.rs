//! Multi-threaded frame streaming on top of [`HirisePipeline`].
//!
//! One [`HirisePipeline::run`] call processes one frame. A deployed
//! HiRISE camera, however, faces a *stream* of frames, and the stage-1
//! compression work of different frames is embarrassingly parallel:
//! every capture starts from a fresh [`hirise_sensor::Sensor`], so
//! frames share no mutable state. [`StreamExecutor`] exploits that with
//! a plain `std::thread` worker pool fed over channels — no additional
//! dependencies — and folds the per-frame [`RunReport`]s into a
//! [`StreamSummary`] of throughput, energy, and ROI statistics.
//!
//! Two orderings are offered ([`StreamOrdering`]):
//!
//! * [`Arrival`](StreamOrdering::Arrival) folds reports as workers
//!   finish them: O(1) memory, the mode for long-running streams.
//! * [`Deterministic`](StreamOrdering::Deterministic) buffers and sorts
//!   reports by frame index before folding, so the summary — including
//!   its floating-point energy totals — is bit-identical for any worker
//!   count. Tests and cross-run comparisons use this mode, and it is
//!   the only mode that retains the per-frame reports.
//!
//! Per-frame results are themselves deterministic in *both* modes
//! (each frame's sensor is seeded from the configuration alone); the
//! ordering only governs how the floating-point aggregation folds.
//!
//! For **video**, frames are not independent — the temporal pipeline
//! ([`crate::temporal`]) carries track state from frame to frame — so
//! [`StreamExecutor::run_sequences`] dispatches whole ordered
//! *sequences* instead of frame batches: each sequence runs start to
//! finish on one worker (track state intact), many sequences run in
//! parallel, and the per-sequence summaries come back in input order,
//! bit-identical at any worker or shard count.
//!
//! With the sensor's position-keyed noise mode
//! ([`hirise_sensor::NoiseRngMode::Keyed`], the default) the guarantee
//! is stronger still: per-frame noise is a pure function of the
//! configuration and each draw's coordinates, so the summary is
//! bit-identical not only across worker counts but also across the
//! sensor's intra-frame row-shard counts (`SensorConfig::shards`). The
//! two axes compose — frame-parallel workers for throughput, row shards
//! for single-stream latency — but they share the machine: with `w`
//! stream workers each sharding `s`-way, `w·s` threads compete for the
//! cores, so prefer workers for saturated streams and shards for
//! latency-bound single streams.
//!
//! # Example
//!
//! ```
//! use hirise::stream::{StreamConfig, StreamExecutor, StreamOrdering};
//! use hirise::{HiriseConfig, HirisePipeline};
//! use hirise_imaging::RgbImage;
//!
//! # fn main() -> Result<(), hirise::HiriseError> {
//! let config = HiriseConfig::builder(64, 64).pooling(4).build()?;
//! let executor = StreamExecutor::new(
//!     HirisePipeline::new(config),
//!     StreamConfig::default().workers(2).ordering(StreamOrdering::Deterministic),
//! )?;
//! let frames: Vec<RgbImage> = (0..8)
//!     .map(|i| RgbImage::from_fn(64, 64, |x, y| {
//!         let v = ((x + y + i) % 16) as f32 / 16.0;
//!         (v, v, 0.3)
//!     }))
//!     .collect();
//! let summary = executor.run(&frames)?;
//! assert_eq!(summary.frames, 8);
//! assert_eq!(summary.reports.len(), 8);
//! println!("{}", summary);
//! # Ok(())
//! # }
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use hirise_imaging::RgbImage;

use crate::config::TemporalConfig;
use crate::pipeline::HirisePipeline;
use crate::report::{RunReport, TemporalFrameReport};
use crate::scratch::PipelineScratch;
use crate::temporal::{TrackerState, TrackingPipeline};
use crate::timing::StageTimings;
use crate::{HiriseError, Result};

/// How the executor folds per-frame reports into the summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamOrdering {
    /// Fold reports as they arrive from the workers. Constant memory,
    /// but the floating-point totals depend on completion order.
    #[default]
    Arrival,
    /// Buffer reports, sort by frame index, fold in frame order. The
    /// summary is identical for every worker count, and
    /// [`StreamSummary::reports`] is populated.
    Deterministic,
}

/// Default bound on retained per-frame reports in sequence mode — far
/// above every batch workload (the longest committed clip is 48
/// frames), so short sequences keep exact frame-by-frame retention,
/// while a long-lived service cannot grow without bound.
pub const DEFAULT_REPORT_CAPACITY: usize = 4096;

/// Configuration of a [`StreamExecutor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Number of worker threads (≥ 1).
    pub workers: usize,
    /// Frames dispatched to a worker per work unit (≥ 1). Larger
    /// batches amortise channel traffic; smaller batches balance load.
    pub batch_size: usize,
    /// Report-folding mode.
    pub ordering: StreamOrdering,
    /// Bound on per-frame reports retained by each [`SequenceSummary`]
    /// under [`StreamOrdering::Deterministic`]: once a sequence exceeds
    /// it, the oldest reports are overwritten ring-style ([`SequenceSummary::fold`]).
    /// `0` retains nothing.
    pub report_capacity: usize,
}

impl Default for StreamConfig {
    /// One worker per available core, batches of 4, arrival ordering.
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
            batch_size: 4,
            ordering: StreamOrdering::Arrival,
            report_capacity: DEFAULT_REPORT_CAPACITY,
        }
    }
}

impl StreamConfig {
    /// Sets the worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the frames-per-dispatch batch size.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the report-folding mode.
    pub fn ordering(mut self, ordering: StreamOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Sets the per-sequence report retention bound.
    pub fn report_capacity(mut self, capacity: usize) -> Self {
        self.report_capacity = capacity;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(HiriseError::InvalidConfig {
                reason: "stream workers must be ≥ 1".into()
            });
        }
        if self.batch_size == 0 {
            return Err(HiriseError::InvalidConfig {
                reason: "stream batch size must be ≥ 1".into(),
            });
        }
        Ok(())
    }
}

/// Order-independent totals over a set of [`RunReport`]s.
///
/// Every field is an integer counter, so equal frame sets produce equal
/// aggregates regardless of fold order; the floating-point energy
/// figures live on [`StreamSummary`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamAggregate {
    /// Total ADC conversions across both stages of every frame.
    pub conversions: u64,
    /// Total analog pooling outputs produced.
    pub pooling_outputs: u64,
    /// Total sensor→processor (and coordinate back-channel) traffic, bits.
    pub transfer_bits: u64,
    /// Total ROIs read out.
    pub rois: u64,
    /// Largest per-frame peak image memory observed, bytes.
    pub peak_image_bytes: u64,
}

impl StreamAggregate {
    fn fold(&mut self, report: &RunReport) {
        self.conversions += report.conversions();
        self.pooling_outputs += report.pooling_outputs;
        self.transfer_bits += report.total_transfer_bits();
        self.rois += report.roi_count as u64;
        self.peak_image_bytes = self.peak_image_bytes.max(report.peak_image_bytes());
    }

    /// Merges another aggregate into this one (counters add, peaks
    /// max) — the one place that knows how every field combines, so
    /// cross-sequence totals cannot silently drop a future field.
    pub fn merge(&mut self, other: &StreamAggregate) {
        self.conversions += other.conversions;
        self.pooling_outputs += other.pooling_outputs;
        self.transfer_bits += other.transfer_bits;
        self.rois += other.rois;
        self.peak_image_bytes = self.peak_image_bytes.max(other.peak_image_bytes);
    }
}

/// What a whole stream run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// Frames processed.
    pub frames: u64,
    /// Wall-clock time of the run (workers spawned → last report folded).
    pub wall: Duration,
    /// Order-independent counter totals.
    pub aggregate: StreamAggregate,
    /// Total sensor-side energy with the paper's calibrated models,
    /// millijoules. Folded in frame order under
    /// [`StreamOrdering::Deterministic`], in completion order otherwise.
    pub energy_mj: f64,
    /// Summed per-stage wall-clock time across all frames (CPU time of
    /// the pipeline stages, not wall time of the run — with several
    /// workers the stage total exceeds [`StreamSummary::wall`]).
    pub stage_totals: StageTimings,
    /// Per-frame reports in frame order; populated only under
    /// [`StreamOrdering::Deterministic`] (empty in arrival mode, which
    /// runs in constant memory).
    pub reports: Vec<RunReport>,
}

impl StreamSummary {
    /// Frames per wall-clock second (0 for an empty stream — no division
    /// by the degenerate wall time of a run that processed nothing).
    pub fn frames_per_sec(&self) -> f64 {
        if self.frames == 0 {
            return 0.0;
        }
        self.frames as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// Mean sensor-side energy per frame, millijoules.
    pub fn mean_energy_mj(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.energy_mj / self.frames as f64
        }
    }

    /// Mean ROIs per frame.
    pub fn mean_rois(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.aggregate.rois as f64 / self.frames as f64
        }
    }

    /// Mean per-stage breakdown per frame (zero timings for an empty
    /// stream).
    pub fn mean_stage_timings(&self) -> StageTimings {
        if self.frames == 0 {
            return StageTimings::default();
        }
        // The divisor stays `f64`: a long-lived stream's frame count
        // exceeds `u32`, which would silently truncate — and divide by
        // zero at any nonzero multiple of 2^32.
        let n = self.frames as f64;
        StageTimings {
            capture: self.stage_totals.capture.div_f64(n),
            pool: self.stage_totals.pool.div_f64(n),
            detect: self.stage_totals.detect.div_f64(n),
            roi_read: self.stage_totals.roi_read.div_f64(n),
        }
    }
}

impl std::fmt::Display for StreamSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stream: {} frames in {:.3} s ({:.1} fps), {:.2} rois/frame, \
             {:.3} mJ/frame, {:.1} kB moved",
            self.frames,
            self.wall.as_secs_f64(),
            self.frames_per_sec(),
            self.mean_rois(),
            self.mean_energy_mj(),
            self.aggregate.transfer_bits as f64 / 8000.0,
        )
    }
}

/// Totals over one ordered video sequence processed by the temporal
/// pipeline in sequence mode ([`StreamExecutor::run_sequences`]).
///
/// Equality ignores [`SequenceSummary::stage_totals`] (wall-clock
/// measurements are never bit-stable); everything else — counters,
/// frame-ordered energy fold, per-frame reports — is a pure function of
/// the configuration and the frames, so two equal runs compare equal at
/// any worker or shard count.
#[derive(Debug, Clone)]
pub struct SequenceSummary {
    /// Frames processed.
    pub frames: u64,
    /// Frames that ran the full stage-1 path on the keyframe cadence (or
    /// because no track survived).
    pub keyframes: u64,
    /// Off-schedule re-detections forced by the drift trigger.
    pub drift_refreshes: u64,
    /// Frames served purely from track predictions (capture + ROI read).
    pub tracked_frames: u64,
    /// Order-independent counter totals.
    pub aggregate: StreamAggregate,
    /// Sensor-side energy folded in frame order, millijoules.
    pub energy_mj: f64,
    /// The share of [`SequenceSummary::energy_mj`] spent on scheduled
    /// keyframes (full stage-1 capture + pooled readout + detection).
    pub energy_mj_keyframes: f64,
    /// The share spent on drift-triggered re-detections.
    pub energy_mj_drift: f64,
    /// The share spent on pure tracked frames (capture + ROI read
    /// only) — the per-kind split the scenario energy gate compares.
    pub energy_mj_tracked: f64,
    /// Summed per-stage wall-clock time across the sequence's frames.
    pub stage_totals: StageTimings,
    /// The retained per-frame reports; populated only under
    /// [`StreamOrdering::Deterministic`], and bounded: once the
    /// sequence exceeds the report capacity (the
    /// [`StreamConfig::report_capacity`] of the executor, or
    /// [`DEFAULT_REPORT_CAPACITY`]), the oldest report is overwritten in
    /// place, so this holds the most recent `capacity` reports in ring
    /// order. Use [`SequenceSummary::reports_in_order`] for
    /// oldest-to-newest iteration that is correct after wrap-around.
    pub reports: Vec<RunReport>,
    /// Ring cursor: index of the oldest retained report once the ring
    /// is full (always 0 before wrap-around).
    report_head: usize,
    /// Retention bound for `reports`.
    report_capacity: usize,
}

impl PartialEq for SequenceSummary {
    fn eq(&self, other: &Self) -> bool {
        self.frames == other.frames
            && self.keyframes == other.keyframes
            && self.drift_refreshes == other.drift_refreshes
            && self.tracked_frames == other.tracked_frames
            && self.aggregate == other.aggregate
            && self.energy_mj == other.energy_mj
            && self.energy_mj_keyframes == other.energy_mj_keyframes
            && self.energy_mj_drift == other.energy_mj_drift
            && self.energy_mj_tracked == other.energy_mj_tracked
            && self.reports == other.reports
    }
}

impl Default for SequenceSummary {
    /// An empty summary with the [`DEFAULT_REPORT_CAPACITY`] retention
    /// bound.
    fn default() -> Self {
        Self::with_report_capacity(DEFAULT_REPORT_CAPACITY)
    }
}

impl SequenceSummary {
    /// An empty summary retaining at most `capacity` per-frame reports
    /// (`0` retains nothing). The counters and energy folds are
    /// unaffected by the bound — only [`SequenceSummary::reports`]
    /// is.
    pub fn with_report_capacity(capacity: usize) -> Self {
        Self {
            frames: 0,
            keyframes: 0,
            drift_refreshes: 0,
            tracked_frames: 0,
            aggregate: StreamAggregate::default(),
            energy_mj: 0.0,
            energy_mj_keyframes: 0.0,
            energy_mj_drift: 0.0,
            energy_mj_tracked: 0.0,
            stage_totals: StageTimings::default(),
            reports: Vec::new(),
            report_head: 0,
            report_capacity: capacity,
        }
    }

    /// The report retention bound.
    pub fn report_capacity(&self) -> usize {
        self.report_capacity
    }

    /// The retained reports, oldest first — frame order even after the
    /// ring has wrapped (when [`SequenceSummary::reports`] is rotated).
    pub fn reports_in_order(&self) -> impl Iterator<Item = &RunReport> {
        let (tail, head) = self.reports.split_at(self.report_head.min(self.reports.len()));
        head.iter().chain(tail.iter())
    }

    /// Folds one frame of the sequence, in frame order. Public so
    /// external measurement harnesses (the scenario benchmark) fold
    /// their per-frame reports with exactly the executor's accounting.
    pub fn fold(&mut self, frame: &TemporalFrameReport, keep_reports: bool) {
        self.frames += 1;
        let energy = frame.report.sensor_energy_mj_default();
        match frame.kind {
            crate::report::FrameKind::Keyframe => {
                self.keyframes += 1;
                self.energy_mj_keyframes += energy;
            }
            crate::report::FrameKind::DriftRefresh => {
                self.drift_refreshes += 1;
                self.energy_mj_drift += energy;
            }
            crate::report::FrameKind::Tracked => {
                self.tracked_frames += 1;
                self.energy_mj_tracked += energy;
            }
        }
        self.aggregate.fold(&frame.report);
        self.energy_mj += energy;
        self.stage_totals += frame.report.timings;
        if keep_reports && self.report_capacity > 0 {
            // Bounded ring: a long-lived session folds millions of
            // frames, so retention must not grow with sequence length.
            if self.reports.len() < self.report_capacity {
                self.reports.push(frame.report);
            } else {
                self.reports[self.report_head] = frame.report;
                self.report_head = (self.report_head + 1) % self.report_capacity;
            }
        }
    }

    /// Fraction of frames that ran the full stage-1 detection path.
    pub fn detection_fraction(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            (self.keyframes + self.drift_refreshes) as f64 / self.frames as f64
        }
    }
}

/// What a whole sequence-mode run produced: one [`SequenceSummary`] per
/// input sequence, in input order, plus the run's wall-clock time.
///
/// Equality ignores [`SequenceStreamSummary::wall`]; comparing two runs
/// therefore checks bit-identity of everything the workers computed —
/// the form the worker-count/shard-count invariance tests use.
#[derive(Debug, Clone, Default)]
pub struct SequenceStreamSummary {
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// Per-sequence totals, in input order.
    pub sequences: Vec<SequenceSummary>,
}

impl PartialEq for SequenceStreamSummary {
    fn eq(&self, other: &Self) -> bool {
        self.sequences == other.sequences
    }
}

impl SequenceStreamSummary {
    /// Total frames across all sequences.
    pub fn frames(&self) -> u64 {
        self.sequences.iter().map(|s| s.frames).sum()
    }

    /// Frames per wall-clock second across the whole run (0 when
    /// nothing was processed).
    pub fn frames_per_sec(&self) -> f64 {
        let frames = self.frames();
        if frames == 0 {
            return 0.0;
        }
        frames as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// Counter totals folded over every sequence.
    pub fn aggregate(&self) -> StreamAggregate {
        let mut total = StreamAggregate::default();
        for s in &self.sequences {
            total.merge(&s.aggregate);
        }
        total
    }

    /// Total sensor-side energy, millijoules (sequence-ordered fold, so
    /// bit-stable across worker counts).
    pub fn energy_mj(&self) -> f64 {
        self.sequences.iter().map(|s| s.energy_mj).sum()
    }

    /// Fraction of all frames that ran full stage-1 detection.
    pub fn detection_fraction(&self) -> f64 {
        let frames = self.frames();
        if frames == 0 {
            return 0.0;
        }
        let detections: u64 = self.sequences.iter().map(|s| s.keyframes + s.drift_refreshes).sum();
        detections as f64 / frames as f64
    }
}

impl std::fmt::Display for SequenceStreamSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sequences: {} ({} frames) in {:.3} s ({:.1} fps), {:.0} % detection frames, \
             {:.3} mJ/frame",
            self.sequences.len(),
            self.frames(),
            self.wall.as_secs_f64(),
            self.frames_per_sec(),
            100.0 * self.detection_fraction(),
            if self.frames() == 0 { 0.0 } else { self.energy_mj() / self.frames() as f64 },
        )
    }
}

/// A work unit: the index of its first frame plus the frames themselves.
struct Batch {
    first_index: u64,
    frames: Vec<RgbImage>,
}

/// One worker's output for a batch.
struct BatchResult {
    first_index: u64,
    reports: Vec<Result<RunReport>>,
}

/// Runs a [`HirisePipeline`] over streams of frames on a worker pool.
#[derive(Debug, Clone)]
pub struct StreamExecutor {
    pipeline: HirisePipeline,
    config: StreamConfig,
}

impl StreamExecutor {
    /// Creates an executor; fails on a zero worker count or batch size.
    ///
    /// # Errors
    ///
    /// [`HiriseError::InvalidConfig`] for degenerate stream settings.
    pub fn new(pipeline: HirisePipeline, config: StreamConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { pipeline, config })
    }

    /// The stream configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The per-frame pipeline.
    pub fn pipeline(&self) -> &HirisePipeline {
        &self.pipeline
    }

    /// Processes one batch through the worker's reusable
    /// [`PipelineScratch`], stopping early once the run is cancelled;
    /// sets the cancellation flag itself on the first failed frame so
    /// in-flight work elsewhere winds down promptly.
    fn process_batch<'a>(
        &self,
        frames: impl Iterator<Item = &'a RgbImage>,
        cancelled: &AtomicBool,
        scratch: &mut PipelineScratch,
    ) -> Vec<Result<RunReport>> {
        let mut reports = Vec::new();
        for frame in frames {
            if cancelled.load(Ordering::Relaxed) {
                break;
            }
            let report = self.pipeline.run_with_scratch(frame, scratch);
            if report.is_err() {
                cancelled.store(true, Ordering::Relaxed);
            }
            reports.push(report);
        }
        reports
    }

    /// Runs the pipeline over a finite, already-materialised frame set.
    ///
    /// Frames are dispatched to the pool as index ranges, so nothing is
    /// copied on the way in.
    ///
    /// # Errors
    ///
    /// A frame failure (e.g. [`HiriseError::SceneMismatch`]) cancels the
    /// remaining work and the run returns the failure — the
    /// earliest-indexed one observed in deterministic mode, the first
    /// one completed otherwise.
    pub fn run(&self, frames: &[RgbImage]) -> Result<StreamSummary> {
        let start = Instant::now();
        let (result_tx, result_rx) = mpsc::channel::<BatchResult>();
        // Work stealing by atomic cursor: each worker claims the next
        // `batch_size` frames lock-free.
        let next_frame = AtomicU64::new(0);
        let cancelled = AtomicBool::new(false);
        let batch = self.config.batch_size as u64;
        let total = frames.len() as u64;

        std::thread::scope(|scope| {
            for _ in 0..self.config.workers.min(frames.len().max(1)) {
                let result_tx = result_tx.clone();
                let next_frame = &next_frame;
                let cancelled = &cancelled;
                scope.spawn(move || {
                    // One scratch per worker: the per-frame hot path
                    // reuses its buffers for the worker's whole lifetime.
                    let mut scratch = PipelineScratch::new();
                    loop {
                        let first = next_frame.fetch_add(batch, Ordering::Relaxed);
                        if first >= total || cancelled.load(Ordering::Relaxed) {
                            break;
                        }
                        let end = (first + batch).min(total);
                        let reports = self.process_batch(
                            frames[first as usize..end as usize].iter(),
                            cancelled,
                            &mut scratch,
                        );
                        if result_tx.send(BatchResult { first_index: first, reports }).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(result_tx);
            self.collect(result_rx, &cancelled, start)
        })
    }

    /// Runs the pipeline over an arbitrary (possibly unbounded-length)
    /// frame iterator.
    ///
    /// A producer thread drains the iterator into bounded batches, so
    /// *frame* memory stays proportional to `workers × batch_size`
    /// regardless of stream length. Note that
    /// [`StreamOrdering::Deterministic`] still buffers one
    /// [`RunReport`] per frame for the ordered fold — pair unbounded
    /// streams with [`StreamOrdering::Arrival`], which folds in
    /// constant memory.
    ///
    /// # Errors
    ///
    /// As for [`StreamExecutor::run`]; a failure also stops the
    /// producer, so the iterator is not drained further.
    pub fn run_stream<I>(&self, frames: I) -> Result<StreamSummary>
    where
        I: IntoIterator<Item = RgbImage>,
        I::IntoIter: Send,
    {
        let start = Instant::now();
        let mut iter = frames.into_iter();
        // Bounded: keeps at most ~2 batches per worker in flight.
        let (batch_tx, batch_rx) =
            mpsc::sync_channel::<Batch>(self.config.workers.saturating_mul(2).max(1));
        let batch_rx = Mutex::new(batch_rx);
        let (result_tx, result_rx) = mpsc::channel::<BatchResult>();
        let cancelled = AtomicBool::new(false);
        let batch = self.config.batch_size;

        std::thread::scope(|scope| {
            {
                let cancelled = &cancelled;
                scope.spawn(move || {
                    let mut first_index = 0u64;
                    while !cancelled.load(Ordering::Relaxed) {
                        let frames: Vec<RgbImage> = iter.by_ref().take(batch).collect();
                        if frames.is_empty() {
                            break;
                        }
                        let sent = frames.len() as u64;
                        if batch_tx.send(Batch { first_index, frames }).is_err() {
                            break;
                        }
                        first_index += sent;
                    }
                });
            }
            for _ in 0..self.config.workers {
                let result_tx = result_tx.clone();
                let batch_rx = &batch_rx;
                let cancelled = &cancelled;
                scope.spawn(move || {
                    let mut scratch = PipelineScratch::new();
                    loop {
                        let Ok(batch) = batch_rx.lock().expect("batch queue poisoned").recv()
                        else {
                            break;
                        };
                        // After cancellation, keep draining the queue (so
                        // the producer never blocks on a full channel) but
                        // skip the per-frame work.
                        if cancelled.load(Ordering::Relaxed) {
                            continue;
                        }
                        let reports =
                            self.process_batch(batch.frames.iter(), cancelled, &mut scratch);
                        let result = BatchResult { first_index: batch.first_index, reports };
                        if result_tx.send(result).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(result_tx);
            self.collect(result_rx, &cancelled, start)
        })
    }

    /// Sequence mode: runs the **temporal** pipeline over many ordered
    /// video sequences in parallel.
    ///
    /// Frame order matters on video — track state carries from frame to
    /// frame — so the unit of dispatch here is a whole *sequence*, not a
    /// frame batch: workers claim sequences off an atomic cursor and
    /// each processes its sequence's frames strictly in order through a
    /// per-worker [`TrackerState`] (reset between sequences) and
    /// [`PipelineScratch`]. Sequences are independent, so many run in
    /// parallel across the pool.
    ///
    /// The result is **bit-deterministic at any worker count**: each
    /// [`SequenceSummary`] is a pure function of `(configuration,
    /// temporal policy, frames)`, folded in frame order, and the
    /// summaries are returned in input order. With the sensor's keyed
    /// noise mode (the default), it is also invariant to the intra-frame
    /// row-shard count (`SensorConfig::shards`). Per-frame reports are
    /// retained only under [`StreamOrdering::Deterministic`].
    ///
    /// # Errors
    ///
    /// [`HiriseError::InvalidConfig`] for a degenerate temporal policy;
    /// a frame failure cancels the run and returns the failure from the
    /// lowest-indexed failing sequence.
    pub fn run_sequences(
        &self,
        sequences: &[Vec<RgbImage>],
        temporal: &TemporalConfig,
    ) -> Result<SequenceStreamSummary> {
        let tracker = TrackingPipeline::from_pipeline(self.pipeline.clone(), *temporal)?;
        let keep_reports = self.config.ordering == StreamOrdering::Deterministic;
        let report_capacity = self.config.report_capacity;
        let start = Instant::now();
        let next_sequence = AtomicU64::new(0);
        let cancelled = AtomicBool::new(false);
        let total = sequences.len() as u64;
        let (result_tx, result_rx) = mpsc::channel::<(u64, Result<SequenceSummary>)>();

        std::thread::scope(|scope| {
            for _ in 0..self.config.workers.min(sequences.len().max(1)) {
                let result_tx = result_tx.clone();
                let next_sequence = &next_sequence;
                let cancelled = &cancelled;
                let tracker = &tracker;
                scope.spawn(move || {
                    // One scratch and one tracker state per worker,
                    // recycled across its sequences.
                    let mut scratch = PipelineScratch::new();
                    let mut state = TrackerState::new();
                    loop {
                        let index = next_sequence.fetch_add(1, Ordering::Relaxed);
                        if index >= total || cancelled.load(Ordering::Relaxed) {
                            break;
                        }
                        state.reset();
                        let mut summary = SequenceSummary::with_report_capacity(report_capacity);
                        let mut failure: Option<HiriseError> = None;
                        for frame in &sequences[index as usize] {
                            if cancelled.load(Ordering::Relaxed) {
                                break;
                            }
                            match tracker.run_frame(frame, &mut state, &mut scratch) {
                                Ok(report) => summary.fold(&report, keep_reports),
                                Err(e) => {
                                    cancelled.store(true, Ordering::Relaxed);
                                    failure = Some(e);
                                    break;
                                }
                            }
                        }
                        let result = (index, failure.map_or(Ok(summary), Err));
                        if result_tx.send(result).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(result_tx);

            let mut indexed: Vec<(u64, SequenceSummary)> = Vec::new();
            let mut first_error: Option<(u64, HiriseError)> = None;
            for (index, result) in result_rx {
                match result {
                    Ok(summary) => indexed.push((index, summary)),
                    Err(e) => {
                        cancelled.store(true, Ordering::Relaxed);
                        if first_error.as_ref().is_none_or(|(min, _)| index < *min) {
                            first_error = Some((index, e));
                        }
                    }
                }
            }
            if let Some((_, e)) = first_error {
                return Err(e);
            }
            indexed.sort_by_key(|(index, _)| *index);
            Ok(SequenceStreamSummary {
                wall: start.elapsed(),
                sequences: indexed.into_iter().map(|(_, s)| s).collect(),
            })
        })
    }

    /// Folds worker output into the summary according to the ordering.
    /// Always drains the channel to completion (the cancellation flag,
    /// set on the first failure, makes the remaining work trivial), so
    /// the scoped workers and producer are guaranteed to wind down.
    fn collect(
        &self,
        result_rx: mpsc::Receiver<BatchResult>,
        cancelled: &AtomicBool,
        start: Instant,
    ) -> Result<StreamSummary> {
        let mut summary = StreamSummary {
            frames: 0,
            wall: Duration::ZERO,
            aggregate: StreamAggregate::default(),
            energy_mj: 0.0,
            stage_totals: StageTimings::default(),
            reports: Vec::new(),
        };
        match self.config.ordering {
            StreamOrdering::Arrival => {
                let mut first_error: Option<HiriseError> = None;
                for result in result_rx {
                    for report in result.reports {
                        match report {
                            Ok(report) if first_error.is_none() => {
                                summary.frames += 1;
                                summary.aggregate.fold(&report);
                                summary.energy_mj += report.sensor_energy_mj_default();
                                summary.stage_totals += report.timings;
                            }
                            Err(e) if first_error.is_none() => {
                                cancelled.store(true, Ordering::Relaxed);
                                first_error = Some(e);
                            }
                            _ => {}
                        }
                    }
                }
                if let Some(e) = first_error {
                    return Err(e);
                }
            }
            StreamOrdering::Deterministic => {
                let mut indexed: Vec<(u64, RunReport)> = Vec::new();
                let mut first_error: Option<(u64, HiriseError)> = None;
                for result in result_rx {
                    let first = result.first_index;
                    for (i, report) in result.reports.into_iter().enumerate() {
                        let index = first + i as u64;
                        match report {
                            Ok(report) => indexed.push((index, report)),
                            Err(e) => {
                                cancelled.store(true, Ordering::Relaxed);
                                if first_error.as_ref().is_none_or(|(min, _)| index < *min) {
                                    first_error = Some((index, e));
                                }
                            }
                        }
                    }
                }
                if let Some((_, e)) = first_error {
                    return Err(e);
                }
                indexed.sort_by_key(|(index, _)| *index);
                summary.reports.reserve(indexed.len());
                for (_, report) in indexed {
                    summary.frames += 1;
                    summary.aggregate.fold(&report);
                    summary.energy_mj += report.sensor_energy_mj_default();
                    summary.stage_totals += report.timings;
                    summary.reports.push(report);
                }
            }
        }
        summary.wall = start.elapsed();
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HiriseConfig;
    use hirise_imaging::{draw, Rect};
    use hirise_sensor::SensorConfig;

    fn test_pipeline(w: u32, h: u32) -> HirisePipeline {
        let detector = hirise_detect::DetectorConfig { score_threshold: 0.2, ..Default::default() };
        let config = HiriseConfig::builder(w, h)
            .pooling(2)
            .sensor(SensorConfig::noiseless())
            .detector(detector)
            .max_rois(4)
            .build()
            .unwrap();
        HirisePipeline::new(config)
    }

    fn frames(n: usize, w: u32, h: u32) -> Vec<RgbImage> {
        (0..n)
            .map(|i| {
                let mut img = RgbImage::from_fn(w, h, |_, _| (0.35, 0.35, 0.35));
                let obj = Rect::new(
                    w / 4 + (i as u32 * 5) % (w / 4),
                    h / 4 + (i as u32 * 3) % (h / 4),
                    w / 6,
                    h / 3,
                );
                draw::fill_rect_rgb(&mut img, obj, (0.9, 0.4, 0.2));
                img
            })
            .collect()
    }

    fn deterministic(workers: usize) -> StreamConfig {
        StreamConfig::default()
            .workers(workers)
            .batch_size(2)
            .ordering(StreamOrdering::Deterministic)
    }

    #[test]
    fn rejects_degenerate_configs() {
        let p = test_pipeline(64, 48);
        assert!(StreamExecutor::new(p.clone(), StreamConfig::default().workers(0)).is_err());
        assert!(StreamExecutor::new(p, StreamConfig::default().batch_size(0)).is_err());
    }

    #[test]
    fn empty_stream_yields_empty_summary() {
        let executor = StreamExecutor::new(test_pipeline(64, 48), deterministic(2)).unwrap();
        let summary = executor.run(&[]).unwrap();
        assert_eq!(summary.frames, 0);
        assert_eq!(summary.aggregate, StreamAggregate::default());
        assert_eq!(summary.mean_energy_mj(), 0.0);
        assert_eq!(summary.mean_rois(), 0.0);
    }

    #[test]
    fn zero_frame_summary_guards_every_mean() {
        // A stream that processed nothing must report zeros, not divide
        // by its zero frame count (or by a degenerate wall time).
        let executor = StreamExecutor::new(test_pipeline(64, 48), deterministic(1)).unwrap();
        let summary = executor.run(&[]).unwrap();
        assert_eq!(summary.frames_per_sec(), 0.0);
        assert_eq!(summary.mean_stage_timings(), StageTimings::default());
        assert_eq!(summary.mean_stage_timings().total(), Duration::ZERO);
        assert_eq!(summary.mean_energy_mj(), 0.0);
        assert_eq!(summary.mean_rois(), 0.0);
        assert!(summary.reports.is_empty());
        assert!(summary.frames_per_sec().is_finite());
        // The empty summary still formats cleanly.
        assert!(summary.to_string().contains("0 frames"));
    }

    #[test]
    fn matches_sequential_pipeline_runs() {
        let pipeline = test_pipeline(64, 48);
        let frames = frames(6, 64, 48);
        let executor = StreamExecutor::new(pipeline.clone(), deterministic(3)).unwrap();
        let summary = executor.run(&frames).unwrap();
        assert_eq!(summary.frames, 6);
        let sequential: Vec<RunReport> =
            frames.iter().map(|f| pipeline.run(f).unwrap().report).collect();
        assert_eq!(summary.reports, sequential);
    }

    #[test]
    fn worker_count_does_not_change_deterministic_summary() {
        let frames = frames(9, 64, 48);
        let base = StreamExecutor::new(test_pipeline(64, 48), deterministic(1))
            .unwrap()
            .run(&frames)
            .unwrap();
        for workers in [2, 4] {
            let other = StreamExecutor::new(test_pipeline(64, 48), deterministic(workers))
                .unwrap()
                .run(&frames)
                .unwrap();
            assert_eq!(other.frames, base.frames);
            assert_eq!(other.aggregate, base.aggregate);
            assert_eq!(other.energy_mj, base.energy_mj);
            assert_eq!(other.reports, base.reports);
        }
    }

    #[test]
    fn arrival_mode_matches_integer_aggregates() {
        let frames = frames(8, 64, 48);
        let det = StreamExecutor::new(test_pipeline(64, 48), deterministic(4))
            .unwrap()
            .run(&frames)
            .unwrap();
        let arr = StreamExecutor::new(
            test_pipeline(64, 48),
            StreamConfig::default().workers(4).batch_size(2),
        )
        .unwrap()
        .run(&frames)
        .unwrap();
        assert_eq!(arr.frames, det.frames);
        assert_eq!(arr.aggregate, det.aggregate);
        assert!(arr.reports.is_empty(), "arrival mode must stay constant-memory");
    }

    #[test]
    fn run_stream_matches_run() {
        let frames = frames(7, 64, 48);
        let executor = StreamExecutor::new(test_pipeline(64, 48), deterministic(3)).unwrap();
        let from_slice = executor.run(&frames).unwrap();
        let from_iter = executor.run_stream(frames.clone()).unwrap();
        assert_eq!(from_iter.frames, from_slice.frames);
        assert_eq!(from_iter.aggregate, from_slice.aggregate);
        assert_eq!(from_iter.energy_mj, from_slice.energy_mj);
        assert_eq!(from_iter.reports, from_slice.reports);
    }

    #[test]
    fn mismatched_frame_aborts_the_run() {
        let mut bad = frames(5, 64, 48);
        bad[3] = RgbImage::new(16, 16);
        let executor = StreamExecutor::new(test_pipeline(64, 48), deterministic(2)).unwrap();
        assert!(matches!(executor.run(&bad), Err(HiriseError::SceneMismatch { .. })));
    }

    #[test]
    fn failure_cancels_a_long_stream_early() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;

        const TOTAL: usize = 100_000;
        let pulled = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&pulled);
        // Every frame is mismatched, so the very first batch fails; a
        // run without cancellation would still grind through all 100k.
        let stream = (0..TOTAL).map(move |_| {
            counter.fetch_add(1, Ordering::Relaxed);
            RgbImage::new(16, 16)
        });
        let executor = StreamExecutor::new(test_pipeline(64, 48), deterministic(2)).unwrap();
        assert!(matches!(executor.run_stream(stream), Err(HiriseError::SceneMismatch { .. })));
        let consumed = pulled.load(Ordering::Relaxed);
        assert!(consumed < TOTAL / 10, "producer was not cancelled: pulled {consumed} frames");
    }

    #[test]
    fn stage_totals_accumulate_across_frames() {
        let frames = frames(5, 64, 48);
        let executor = StreamExecutor::new(test_pipeline(64, 48), deterministic(2)).unwrap();
        let summary = executor.run(&frames).unwrap();
        let folded = summary.reports.iter().fold(StageTimings::default(), |acc, r| acc + r.timings);
        assert_eq!(summary.stage_totals, folded);
        assert!(summary.stage_totals.total() > Duration::ZERO, "no stage time recorded");
        assert!(summary.mean_stage_timings().total() <= summary.stage_totals.total());
    }

    /// Short synthetic sequences: one object drifting rightward at a
    /// sequence-specific speed.
    fn sequences(count: usize, frames_each: usize) -> Vec<Vec<RgbImage>> {
        (0..count)
            .map(|s| {
                (0..frames_each)
                    .map(|i| {
                        let mut img = RgbImage::from_fn(64, 48, |_, _| (0.35, 0.35, 0.35));
                        let x = 8 + (s as u32 * 7 + i as u32 * (1 + s as u32 % 2)) % 32;
                        let obj = Rect::new(x, 12, 12, 20);
                        draw::fill_rect_rgb(&mut img, obj, (0.9, 0.4, 0.2));
                        img
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn sequence_mode_matches_sequential_tracking_runs() {
        use crate::temporal::{TrackerState, TrackingPipeline};
        use crate::TemporalConfig;

        let temporal = TemporalConfig::default().keyframe_interval(3);
        let seqs = sequences(3, 7);
        let executor = StreamExecutor::new(test_pipeline(64, 48), deterministic(2)).unwrap();
        let summary = executor.run_sequences(&seqs, &temporal).unwrap();
        assert_eq!(summary.sequences.len(), 3);
        assert_eq!(summary.frames(), 21);

        // Reference: one tracker run per sequence on this thread.
        let tracker = TrackingPipeline::from_pipeline(test_pipeline(64, 48), temporal).unwrap();
        for (si, seq) in seqs.iter().enumerate() {
            let mut state = TrackerState::new();
            let mut scratch = crate::PipelineScratch::new();
            let reports: Vec<RunReport> = seq
                .iter()
                .map(|f| tracker.run_frame(f, &mut state, &mut scratch).unwrap().report)
                .collect();
            assert_eq!(summary.sequences[si].reports, reports, "sequence {si}");
            assert_eq!(summary.sequences[si].frames, seq.len() as u64);
        }
    }

    #[test]
    fn sequence_mode_is_worker_count_invariant() {
        use crate::TemporalConfig;

        let temporal = TemporalConfig::default().keyframe_interval(4);
        let seqs = sequences(5, 6);
        let base = StreamExecutor::new(test_pipeline(64, 48), deterministic(1))
            .unwrap()
            .run_sequences(&seqs, &temporal)
            .unwrap();
        assert!(base.frames_per_sec() > 0.0);
        for workers in [2, 4] {
            let other = StreamExecutor::new(test_pipeline(64, 48), deterministic(workers))
                .unwrap()
                .run_sequences(&seqs, &temporal)
                .unwrap();
            // SequenceStreamSummary equality ignores wall time only:
            // counters, reports and energy folds must be bit-identical.
            assert_eq!(other, base, "sequence mode diverged at {workers} workers");
        }
    }

    #[test]
    fn sequence_mode_arrival_ordering_drops_reports() {
        use crate::TemporalConfig;

        let temporal = TemporalConfig::default();
        let seqs = sequences(2, 5);
        let det = StreamExecutor::new(test_pipeline(64, 48), deterministic(2))
            .unwrap()
            .run_sequences(&seqs, &temporal)
            .unwrap();
        let arr = StreamExecutor::new(
            test_pipeline(64, 48),
            StreamConfig::default().workers(2).batch_size(2),
        )
        .unwrap()
        .run_sequences(&seqs, &temporal)
        .unwrap();
        for (a, d) in arr.sequences.iter().zip(&det.sequences) {
            assert!(a.reports.is_empty(), "arrival mode must stay constant-memory");
            assert_eq!(a.aggregate, d.aggregate);
            assert_eq!(a.energy_mj, d.energy_mj);
            assert_eq!(a.keyframes, d.keyframes);
            assert_eq!(a.tracked_frames, d.tracked_frames);
        }
        assert_eq!(arr.aggregate(), det.aggregate());
        assert_eq!(arr.energy_mj(), det.energy_mj());
    }

    #[test]
    fn sequence_mode_counts_frame_kinds() {
        use crate::TemporalConfig;

        let temporal = TemporalConfig::default().keyframe_interval(3);
        let seqs = sequences(2, 7);
        let summary = StreamExecutor::new(test_pipeline(64, 48), deterministic(2))
            .unwrap()
            .run_sequences(&seqs, &temporal)
            .unwrap();
        for s in &summary.sequences {
            assert_eq!(s.frames, s.keyframes + s.drift_refreshes + s.tracked_frames);
            assert!(s.keyframes >= 3, "7 frames at interval 3 schedule ≥ 3 keyframes");
            assert!((0.0..=1.0).contains(&s.detection_fraction()));
            // The per-kind split partitions the total: same addends, but
            // grouped by kind rather than interleaved in frame order, so
            // the comparison is up to float reassociation only.
            let split = s.energy_mj_keyframes + s.energy_mj_drift + s.energy_mj_tracked;
            assert!(
                (split - s.energy_mj).abs() <= 1e-12 * s.energy_mj.abs(),
                "per-kind energy split {split} diverged from total {}",
                s.energy_mj
            );
            assert!(s.energy_mj_keyframes > 0.0, "keyframes spent no sensor energy");
            if s.drift_refreshes == 0 {
                assert_eq!(s.energy_mj_drift, 0.0);
            }
            if s.tracked_frames > 0 {
                // A tracked frame skips the stage-1 pooled readout, so
                // its mean energy must undercut the keyframe mean.
                let tracked_mean = s.energy_mj_tracked / s.tracked_frames as f64;
                let keyframe_mean = s.energy_mj_keyframes / s.keyframes as f64;
                assert!(
                    tracked_mean < keyframe_mean,
                    "tracked frames are not cheaper than keyframes"
                );
            }
        }
        let text = summary.to_string();
        assert!(text.contains("sequences"));
        assert!(text.contains("fps"));
    }

    #[test]
    fn sequence_mode_empty_inputs() {
        use crate::TemporalConfig;

        let executor = StreamExecutor::new(test_pipeline(64, 48), deterministic(2)).unwrap();
        let empty = executor.run_sequences(&[], &TemporalConfig::default()).unwrap();
        assert!(empty.sequences.is_empty());
        assert_eq!(empty.frames(), 0);
        assert_eq!(empty.frames_per_sec(), 0.0);
        assert_eq!(empty.detection_fraction(), 0.0);
        // A zero-frame sequence still yields its (empty) summary slot.
        let one_empty = executor.run_sequences(&[Vec::new()], &TemporalConfig::default()).unwrap();
        assert_eq!(one_empty.sequences.len(), 1);
        assert_eq!(one_empty.sequences[0].frames, 0);
    }

    #[test]
    fn sequence_mode_propagates_the_lowest_indexed_failure() {
        use crate::TemporalConfig;

        let mut seqs = sequences(4, 4);
        seqs[1][2] = RgbImage::new(8, 8); // mismatched scene mid-sequence
        let executor = StreamExecutor::new(test_pipeline(64, 48), deterministic(2)).unwrap();
        let result = executor.run_sequences(&seqs, &TemporalConfig::default());
        assert!(matches!(result, Err(HiriseError::SceneMismatch { .. })));
        // A degenerate temporal policy is rejected up front.
        let bad = TemporalConfig::default().keyframe_interval(0);
        assert!(matches!(
            executor.run_sequences(&seqs, &bad),
            Err(HiriseError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn mean_stage_timings_survives_past_u32_frame_counts() {
        // A long-lived stream: more frames than fit in u32. The old
        // `self.frames as u32` divisor truncated to 4 here (and to 0 —
        // a division panic — at an exact multiple of 2^32).
        let frames = (1u64 << 32) + 4;
        let per_frame_ms = [1u64, 2, 3, 4];
        let summary = StreamSummary {
            frames,
            wall: Duration::from_secs(1),
            aggregate: StreamAggregate::default(),
            energy_mj: 0.0,
            stage_totals: StageTimings {
                capture: Duration::from_millis(per_frame_ms[0] * frames),
                pool: Duration::from_millis(per_frame_ms[1] * frames),
                detect: Duration::from_millis(per_frame_ms[2] * frames),
                roi_read: Duration::from_millis(per_frame_ms[3] * frames),
            },
            reports: Vec::new(),
        };
        let mean = summary.mean_stage_timings();
        let close =
            |got: Duration, want_ms: u64| (got.as_secs_f64() - want_ms as f64 * 1e-3).abs() < 1e-9;
        assert!(close(mean.capture, 1), "capture mean {:?}", mean.capture);
        assert!(close(mean.pool, 2), "pool mean {:?}", mean.pool);
        assert!(close(mean.detect, 3), "detect mean {:?}", mean.detect);
        assert!(close(mean.roi_read, 4), "roi_read mean {:?}", mean.roi_read);

        // The exact-multiple-of-2^32 count must not panic.
        let frames = 1u64 << 32;
        let summary = StreamSummary {
            frames,
            stage_totals: StageTimings {
                capture: Duration::from_millis(frames),
                ..StageTimings::default()
            },
            ..summary
        };
        assert!(close(summary.mean_stage_timings().capture, 1));
    }

    fn synthetic_frame(roi_count: usize) -> TemporalFrameReport {
        use crate::report::FrameKind;
        use hirise_sensor::ReadoutStats;
        TemporalFrameReport {
            report: RunReport {
                stage1: ReadoutStats::default(),
                stage2: ReadoutStats::default(),
                pooling_outputs: 0,
                stage1_image_bytes: 0,
                stage2_image_bytes: 0,
                roi_count,
                timings: StageTimings::default(),
            },
            kind: FrameKind::Tracked,
            active_tracks: 1,
        }
    }

    #[test]
    fn sequence_report_retention_is_a_bounded_ring() {
        let mut summary = SequenceSummary::with_report_capacity(16);
        assert_eq!(summary.report_capacity(), 16);
        for i in 0..100 {
            summary.fold(&synthetic_frame(i), true);
            assert!(summary.reports.len() <= 16, "retention exceeded its bound");
        }
        // Counters are unaffected by the bound; retention holds exactly
        // the most recent 16 frames, oldest first.
        assert_eq!(summary.frames, 100);
        assert_eq!(summary.reports.len(), 16);
        let kept: Vec<usize> = summary.reports_in_order().map(|r| r.roi_count).collect();
        assert_eq!(kept, (84..100).collect::<Vec<_>>());
        // Zero capacity retains nothing even when retention is requested.
        let mut none = SequenceSummary::with_report_capacity(0);
        for i in 0..10 {
            none.fold(&synthetic_frame(i), true);
        }
        assert_eq!(none.frames, 10);
        assert!(none.reports.is_empty());
        // Below the bound, retention stays exact frame order (the mode
        // every pre-existing batch test relies on).
        let mut small = SequenceSummary::default();
        for i in 0..10 {
            small.fold(&synthetic_frame(i), true);
        }
        let kept: Vec<usize> = small.reports_in_order().map(|r| r.roi_count).collect();
        assert_eq!(kept, (0..10).collect::<Vec<_>>());
        assert_eq!(small.reports.len(), 10);
    }

    #[test]
    fn sequence_mode_honours_the_configured_report_bound() {
        use crate::TemporalConfig;

        let seqs = sequences(2, 9);
        let bounded =
            StreamExecutor::new(test_pipeline(64, 48), deterministic(2).report_capacity(4))
                .unwrap()
                .run_sequences(&seqs, &TemporalConfig::default())
                .unwrap();
        let full = StreamExecutor::new(test_pipeline(64, 48), deterministic(2))
            .unwrap()
            .run_sequences(&seqs, &TemporalConfig::default())
            .unwrap();
        for (b, f) in bounded.sequences.iter().zip(&full.sequences) {
            assert_eq!(b.frames, 9);
            assert_eq!(b.reports.len(), 4, "bound not applied");
            assert_eq!(f.reports.len(), 9);
            // The ring holds the newest four reports of the full run.
            let kept: Vec<&RunReport> = b.reports_in_order().collect();
            let want: Vec<&RunReport> = f.reports[5..].iter().collect();
            assert_eq!(kept, want);
            // Aggregates are identical: the bound only affects retention.
            assert_eq!(b.aggregate, f.aggregate);
            assert_eq!(b.energy_mj, f.energy_mj);
        }
    }

    #[test]
    fn summary_statistics_are_consistent() {
        let frames = frames(6, 64, 48);
        let executor = StreamExecutor::new(test_pipeline(64, 48), deterministic(2)).unwrap();
        let summary = executor.run(&frames).unwrap();
        assert!(summary.frames_per_sec() > 0.0);
        let roi_total: usize = summary.reports.iter().map(|r| r.roi_count).sum();
        assert_eq!(summary.aggregate.rois, roi_total as u64);
        let energy: f64 = summary.reports.iter().map(|r| r.sensor_energy_mj_default()).sum();
        assert_eq!(summary.energy_mj, energy);
        let text = summary.to_string();
        assert!(text.contains("6 frames"));
        assert!(text.contains("fps"));
    }
}
