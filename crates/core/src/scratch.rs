//! Reusable per-frame working memory for the steady-state pipeline path.
//!
//! One [`HirisePipeline::run`](crate::HirisePipeline::run) call allocates
//! every intermediate of the frame — the captured pixel array, the pooled
//! image, the detector's feature stack, the ROI list and the ROI crops.
//! For a deployed camera those costs repeat every frame, which is exactly
//! the steady-state churn the paper's in-sensor design philosophy tries to
//! avoid on the hardware side. [`PipelineScratch`] owns all of those
//! buffers instead: after a warm-up frame (or two, while ROI crop buffers
//! grow to their high-water sizes),
//! [`HirisePipeline::run_with_scratch`](crate::HirisePipeline::run_with_scratch)
//! performs **zero heap allocations per frame** — a property enforced by a
//! counting-allocator test (`tests/alloc.rs`).
//!
//! A scratch is not tied to one pipeline: scene sizes may change freely
//! between calls (buffers reshape within their grown capacity), and
//! different configurations are *correct* but not free — only one sensor
//! state and one pooled-image variant are retained, so alternating
//! pipelines with different sensor configs or colour modes through a
//! single scratch rebuilds those (large) buffers on every alternation.
//! For the zero-allocation steady state, give each pipeline its own
//! scratch (as `StreamExecutor` does per worker). The per-frame results
//! stay readable on the scratch until the next call.

use hirise_detect::{Detection, DetectorScratch};
use hirise_imaging::rect::UnionScratch;
use hirise_imaging::{FramePool, GrayImage, Image, Plane, Rect, RgbImage};
use hirise_sensor::Sensor;

use crate::pipeline::PipelineRun;
use crate::report::RunReport;

/// Owns every buffer the frame path touches; see the module docs.
#[derive(Debug, Clone)]
pub struct PipelineScratch {
    /// The sensor is recaptured in place each frame (`None` until the
    /// first frame, and replaced when the sensor configuration changes).
    pub(crate) sensor: Option<Sensor>,
    /// Analog pooling output, one channel at a time.
    pub(crate) analog: Plane,
    /// The stage-1 pooled image.
    pub(crate) pooled: Image,
    /// Detector feature stack, candidate and sorting buffers; also holds
    /// the frame's final detections after a run.
    pub(crate) detector: DetectorScratch,
    /// Full-resolution ROI rectangles requested from the sensor.
    pub(crate) rois: Vec<Rect>,
    /// Index buffer for the stable score sort in ROI selection.
    pub(crate) roi_order: Vec<u32>,
    /// The ROI crops the sensor returned.
    pub(crate) roi_images: Vec<RgbImage>,
    /// Free list recycling ROI crop planes across frames.
    pub(crate) pool: FramePool,
    /// Coordinate-compression buffers for the stage-2 union sweep.
    pub(crate) union: UnionScratch,
}

impl Default for PipelineScratch {
    fn default() -> Self {
        Self {
            sensor: None,
            analog: Plane::new(1, 1),
            pooled: Image::Gray(GrayImage::new(1, 1)),
            detector: DetectorScratch::new(),
            rois: Vec::new(),
            roi_order: Vec::new(),
            roi_images: Vec::new(),
            pool: FramePool::new(),
            union: UnionScratch::new(),
        }
    }
}

impl PipelineScratch {
    /// Creates an empty scratch; buffers grow to their steady-state sizes
    /// during the first frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stage-1 pooled image of the most recent frame.
    pub fn pooled_image(&self) -> &Image {
        &self.pooled
    }

    /// The stage-1 detections of the most recent frame (pooled
    /// coordinates).
    pub fn detections(&self) -> &[Detection] {
        self.detector.detections()
    }

    /// The full-resolution ROI rectangles of the most recent frame.
    pub fn rois(&self) -> &[Rect] {
        &self.rois
    }

    /// The full-resolution ROI crops of the most recent frame.
    pub fn roi_images(&self) -> &[RgbImage] {
        &self.roi_images
    }

    /// Consumes the scratch, moving the frame results into an owned
    /// [`PipelineRun`] (used by the allocating `run` wrapper).
    pub(crate) fn into_pipeline_run(self, report: RunReport) -> PipelineRun {
        PipelineRun {
            pooled_image: self.pooled,
            // The allocating wrapper owns its results, so one copy out of
            // the detector scratch is paid here, not on the hot path.
            detections: self.detector.detections().to_vec(),
            rois: self.rois,
            roi_images: self.roi_images,
            report,
        }
    }
}
