//! Hand-rolled binary persistence primitives for crash recovery.
//!
//! Every durable artifact in the recovery path — the serve layer's
//! engine snapshot and its arrival journal — shares one envelope
//! produced by [`Encoder`] and consumed by [`Decoder`]:
//!
//! ```text
//! [magic: 4 bytes][version: u16 LE][payload ...][fnv1a64 checksum: u64 LE]
//! ```
//!
//! The checksum covers everything before it (magic and version
//! included) and is verified **before** any payload field is read, so a
//! torn or bit-flipped artifact is rejected whole — a decode can never
//! observe, let alone restore, half of a corrupted state. All integers
//! are little-endian; floats are their IEEE-754 bit patterns, so an
//! encode→decode round trip is bit-exact (NaN payloads included).
//! Variable-length fields (strings, sequences) carry a `u32` length
//! prefix that the decoder bounds-checks against the bytes actually
//! remaining, keeping a malformed length from turning into an
//! allocation bomb even if it somehow survived the checksum.
//!
//! No general-purpose serialization framework is involved, by design:
//! the repo's no-new-dependencies rule aside, the formats here are
//! small, versioned, and audited field-by-field — the same posture as
//! the hand-rolled flat JSON in `hirise-bench`.

use std::fmt;

/// FNV-1a 64-bit hash — the envelope checksum and the config
/// fingerprint hash. Not cryptographic; it guards against torn writes
/// and accidental corruption, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a decode was refused. Every variant leaves the caller's state
/// untouched — the decoder validates the whole envelope up front.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// The byte stream ended before a field (or the envelope itself)
    /// was complete.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// The leading magic did not match the expected artifact kind.
    BadMagic {
        /// The magic this decoder expects.
        expected: [u8; 4],
        /// The magic found in the stream.
        found: [u8; 4],
    },
    /// The artifact was written by an incompatible format version.
    UnsupportedVersion {
        /// The version this decoder reads.
        expected: u16,
        /// The version found in the stream.
        found: u16,
    },
    /// The trailing checksum did not match the stream contents.
    ChecksumMismatch {
        /// The checksum recomputed over the stream.
        expected: u64,
        /// The checksum stored in the trailer.
        found: u64,
    },
    /// A field decoded to a structurally impossible value (an
    /// out-of-range discriminant, an oversized length, leftover bytes).
    Malformed {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { needed, available } => {
                write!(f, "truncated artifact: needed {needed} bytes, {available} available")
            }
            Self::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            Self::UnsupportedVersion { expected, found } => {
                write!(f, "unsupported format version {found} (this build reads {expected})")
            }
            Self::ChecksumMismatch { expected, found } => write!(
                f,
                "checksum mismatch: stream hashes to {expected:#018x}, trailer says {found:#018x}"
            ),
            Self::Malformed { reason } => write!(f, "malformed artifact: {reason}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl RecoverError {
    /// Shorthand for a [`RecoverError::Malformed`] with a formatted
    /// reason.
    pub fn malformed(reason: impl Into<String>) -> Self {
        Self::Malformed { reason: reason.into() }
    }
}

/// Append-only writer for one checksummed envelope.
#[derive(Debug)]
pub struct Encoder {
    bytes: Vec<u8>,
}

impl Encoder {
    /// Starts an envelope with the given artifact magic and format
    /// version.
    pub fn new(magic: [u8; 4], version: u16) -> Self {
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(&magic);
        bytes.extend_from_slice(&version.to_le_bytes());
        Self { bytes }
    }

    /// Bytes written so far (header included, checksum not yet).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been written (never true: the header is
    /// written at construction).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, value: u8) {
        self.bytes.push(value);
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, value: u16) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, value: u32) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, value: u64) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes an `f32` as its IEEE-754 bit pattern (bit-exact round
    /// trip, NaN included).
    pub fn f32(&mut self, value: f32) {
        self.u32(value.to_bits());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, value: f64) {
        self.u64(value.to_bits());
    }

    /// Writes a `bool` as one byte (`0` / `1`).
    pub fn bool(&mut self, value: bool) {
        self.u8(u8::from(value));
    }

    /// Writes a length-prefixed UTF-8 string.
    ///
    /// # Panics
    ///
    /// If the string exceeds `u32::MAX` bytes — unreachable for the
    /// session names and scenario tags this format carries.
    pub fn str(&mut self, value: &str) {
        self.u32(u32::try_from(value.len()).expect("string exceeds u32 length prefix"));
        self.bytes.extend_from_slice(value.as_bytes());
    }

    /// Writes a sequence length prefix; the caller then writes that
    /// many elements.
    ///
    /// # Panics
    ///
    /// If the length exceeds `u32::MAX` elements.
    pub fn seq(&mut self, len: usize) {
        self.u32(u32::try_from(len).expect("sequence exceeds u32 length prefix"));
    }

    /// Seals the envelope: appends the FNV-1a checksum of everything
    /// written and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let checksum = fnv1a64(&self.bytes);
        self.bytes.extend_from_slice(&checksum.to_le_bytes());
        self.bytes
    }
}

/// Checksum-verified reader for one envelope. Construction validates
/// the magic, version, and trailing checksum before any field read.
#[derive(Debug)]
pub struct Decoder<'a> {
    /// Payload bytes only (header and checksum trailer stripped).
    payload: &'a [u8],
    pos: usize,
}

/// Envelope overhead: magic + version up front, checksum behind.
const HEADER_LEN: usize = 4 + 2;
const TRAILER_LEN: usize = 8;

impl<'a> Decoder<'a> {
    /// Opens an envelope, verifying length, magic, version, and
    /// checksum — in that order, before a single payload byte is
    /// exposed.
    ///
    /// # Errors
    ///
    /// [`RecoverError::Truncated`], [`RecoverError::BadMagic`],
    /// [`RecoverError::UnsupportedVersion`], or
    /// [`RecoverError::ChecksumMismatch`].
    pub fn new(bytes: &'a [u8], magic: [u8; 4], version: u16) -> Result<Self, RecoverError> {
        if bytes.len() < HEADER_LEN + TRAILER_LEN {
            return Err(RecoverError::Truncated {
                needed: HEADER_LEN + TRAILER_LEN,
                available: bytes.len(),
            });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - TRAILER_LEN);
        let found_magic: [u8; 4] = body[..4].try_into().expect("split guarantees 4 bytes");
        if found_magic != magic {
            return Err(RecoverError::BadMagic { expected: magic, found: found_magic });
        }
        let found_version = u16::from_le_bytes(body[4..6].try_into().expect("2 bytes"));
        if found_version != version {
            return Err(RecoverError::UnsupportedVersion {
                expected: version,
                found: found_version,
            });
        }
        let expected = fnv1a64(body);
        let found = u64::from_le_bytes(trailer.try_into().expect("split guarantees 8 bytes"));
        if expected != found {
            return Err(RecoverError::ChecksumMismatch { expected, found });
        }
        Ok(Self { payload: &body[HEADER_LEN..], pos: 0 })
    }

    /// Payload bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], RecoverError> {
        if self.remaining() < len {
            return Err(RecoverError::Truncated { needed: len, available: self.remaining() });
        }
        let slice = &self.payload[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// [`RecoverError::Truncated`]. (All field reads share this
    /// contract; the per-method docs below omit the repetition.)
    pub fn u8(&mut self) -> Result<u8, RecoverError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`, little-endian.
    ///
    /// # Errors
    ///
    /// As for [`Decoder::u8`].
    pub fn u16(&mut self) -> Result<u16, RecoverError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    /// Reads a `u32`, little-endian.
    ///
    /// # Errors
    ///
    /// As for [`Decoder::u8`].
    pub fn u32(&mut self) -> Result<u32, RecoverError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a `u64`, little-endian.
    ///
    /// # Errors
    ///
    /// As for [`Decoder::u8`].
    pub fn u64(&mut self) -> Result<u64, RecoverError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f32` bit pattern.
    ///
    /// # Errors
    ///
    /// As for [`Decoder::u8`].
    pub fn f32(&mut self) -> Result<f32, RecoverError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// As for [`Decoder::u8`].
    pub fn f64(&mut self) -> Result<f64, RecoverError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`, rejecting any byte other than `0` / `1`.
    ///
    /// # Errors
    ///
    /// As for [`Decoder::u8`], plus [`RecoverError::Malformed`] on a
    /// non-boolean byte.
    pub fn bool(&mut self) -> Result<bool, RecoverError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(RecoverError::malformed(format!("bool byte {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// As for [`Decoder::u8`], plus [`RecoverError::Malformed`] on
    /// invalid UTF-8.
    pub fn str(&mut self) -> Result<String, RecoverError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| RecoverError::malformed(format!("non-UTF-8 string: {e}")))
    }

    /// Reads a sequence length prefix, bounds-checked against the bytes
    /// remaining (each element occupies at least `min_element_bytes`).
    ///
    /// # Errors
    ///
    /// As for [`Decoder::u8`], plus [`RecoverError::Malformed`] when
    /// the prefix promises more elements than the payload could hold.
    pub fn seq(&mut self, min_element_bytes: usize) -> Result<usize, RecoverError> {
        let len = self.u32()? as usize;
        let floor = len.saturating_mul(min_element_bytes.max(1));
        if floor > self.remaining() {
            return Err(RecoverError::malformed(format!(
                "sequence of {len} elements needs ≥ {floor} bytes, {} remain",
                self.remaining()
            )));
        }
        Ok(len)
    }

    /// Asserts the payload was consumed exactly — trailing garbage in
    /// an otherwise well-formed envelope is still a malformed artifact.
    ///
    /// # Errors
    ///
    /// [`RecoverError::Malformed`] when bytes remain.
    pub fn finish(self) -> Result<(), RecoverError> {
        if self.remaining() != 0 {
            return Err(RecoverError::malformed(format!(
                "{} unread bytes after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 4] = *b"HRTS";

    fn sample() -> Vec<u8> {
        let mut enc = Encoder::new(MAGIC, 3);
        enc.u8(7);
        enc.u16(0xBEEF);
        enc.u32(0xDEAD_BEEF);
        enc.u64(u64::MAX - 1);
        enc.f32(f32::NAN);
        enc.f64(-0.0);
        enc.bool(true);
        enc.str("keyframe");
        enc.seq(2);
        enc.u8(1);
        enc.u8(2);
        enc.finish()
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let bytes = sample();
        let mut dec = Decoder::new(&bytes, MAGIC, 3).unwrap();
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u16().unwrap(), 0xBEEF);
        assert_eq!(dec.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64().unwrap(), u64::MAX - 1);
        // NaN round-trips by bit pattern, not by (un)equality.
        assert_eq!(dec.f32().unwrap().to_bits(), f32::NAN.to_bits());
        assert_eq!(dec.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(dec.bool().unwrap());
        assert_eq!(dec.str().unwrap(), "keyframe");
        assert_eq!(dec.seq(1).unwrap(), 2);
        assert_eq!(dec.u8().unwrap(), 1);
        assert_eq!(dec.u8().unwrap(), 2);
        dec.finish().unwrap();
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let bytes = sample();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                let err = Decoder::new(&corrupt, MAGIC, 3)
                    .err()
                    .unwrap_or_else(|| panic!("flip at byte {byte} bit {bit} accepted"));
                // Flips in the header surface as magic/version errors;
                // everywhere else (payload or trailer) the checksum
                // catches them.
                match (byte, err) {
                    (0..=3, RecoverError::BadMagic { .. }) => {}
                    (4..=5, RecoverError::UnsupportedVersion { .. }) => {}
                    (_, RecoverError::ChecksumMismatch { .. }) => {}
                    (_, other) => panic!("flip at byte {byte} bit {bit}: unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn truncation_is_caught_at_every_length() {
        let bytes = sample();
        for len in 0..bytes.len() {
            assert!(
                Decoder::new(&bytes[..len], MAGIC, 3).is_err(),
                "prefix of {len} bytes accepted"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_refused() {
        let bytes = sample();
        assert!(matches!(Decoder::new(&bytes, *b"NOPE", 3), Err(RecoverError::BadMagic { .. })));
        assert!(matches!(
            Decoder::new(&bytes, MAGIC, 4),
            Err(RecoverError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn oversized_sequence_prefixes_are_malformed_not_allocated() {
        let mut enc = Encoder::new(MAGIC, 1);
        enc.u32(u32::MAX); // promises 4 billion elements, delivers none
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes, MAGIC, 1).unwrap();
        assert!(matches!(dec.seq(8), Err(RecoverError::Malformed { .. })));
    }

    #[test]
    fn trailing_garbage_fails_finish() {
        let mut enc = Encoder::new(MAGIC, 1);
        enc.u32(5);
        let bytes = enc.finish();
        let dec = Decoder::new(&bytes, MAGIC, 1).unwrap();
        assert!(matches!(dec.finish(), Err(RecoverError::Malformed { .. })));
    }

    #[test]
    fn non_boolean_bytes_are_rejected() {
        let mut enc = Encoder::new(MAGIC, 1);
        enc.u8(2);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes, MAGIC, 1).unwrap();
        assert!(matches!(dec.bool(), Err(RecoverError::Malformed { .. })));
    }

    #[test]
    fn fnv_matches_the_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
