//! System configuration.

use hirise_detect::DetectorConfig;
use hirise_sensor::{ColorMode, SensorConfig};

use crate::{HiriseError, Result};

pub use hirise_sensor::NoiseRngMode;

/// Complete configuration of a HiRISE system instance.
#[derive(Debug, Clone, PartialEq)]
pub struct HiriseConfig {
    /// Pixel-array width `n`.
    pub array_width: u32,
    /// Pixel-array height `m`.
    pub array_height: u32,
    /// In-sensor pooling factor `k` (must tile the array).
    pub pooling_k: u32,
    /// Colour mode of the stage-1 compressed capture.
    pub stage1_color: ColorMode,
    /// Sensor physics (pixel, pooling circuit, ADC).
    pub sensor: SensorConfig,
    /// Stage-1 detector configuration.
    pub detector: DetectorConfig,
    /// Maximum number of ROIs requested from the sensor per frame.
    pub max_rois: usize,
    /// Margin added around each detected box before ROI readout, in
    /// full-resolution pixels (context for the stage-2 model).
    pub roi_margin: u32,
}

impl HiriseConfig {
    /// Starts building a configuration for an `n × m` pixel array.
    pub fn builder(array_width: u32, array_height: u32) -> HiriseConfigBuilder {
        HiriseConfigBuilder {
            config: HiriseConfig {
                array_width,
                array_height,
                pooling_k: 8,
                stage1_color: ColorMode::Rgb,
                sensor: SensorConfig::default(),
                detector: DetectorConfig::default(),
                max_rois: 32,
                roi_margin: 0,
            },
        }
    }

    /// The paper's reference configuration: 2560×1920 array, 8×8 pooling
    /// to a 320×240 stage-1 image, RGB.
    pub fn paper_reference() -> Self {
        Self::builder(2560, 1920).pooling(8).build().expect("static configuration is valid")
    }

    /// Stage-1 image dimensions after pooling.
    pub fn pooled_dimensions(&self) -> (u32, u32) {
        (self.array_width / self.pooling_k, self.array_height / self.pooling_k)
    }

    fn validate(&self) -> Result<()> {
        if self.array_width == 0 || self.array_height == 0 {
            return Err(HiriseError::InvalidConfig { reason: "zero array dimension".into() });
        }
        if self.pooling_k == 0
            || !self.array_width.is_multiple_of(self.pooling_k)
            || !self.array_height.is_multiple_of(self.pooling_k)
        {
            return Err(HiriseError::InvalidConfig {
                reason: format!(
                    "pooling {} does not tile {}x{}",
                    self.pooling_k, self.array_width, self.array_height
                ),
            });
        }
        if self.max_rois == 0 {
            return Err(HiriseError::InvalidConfig { reason: "max_rois must be positive".into() });
        }
        Ok(())
    }
}

/// Policy of the temporal (video) pipeline: when to pay for a full
/// stage-1 pooled capture + detection versus riding the ROI tracks.
///
/// Used by [`crate::temporal::TrackingPipeline`]; plain still-image runs
/// ([`crate::HirisePipeline`]) ignore it. The defaults re-detect every
/// 8th frame and whenever a tracked ROI's mean intensity moves by more
/// than 6 % of full scale — a cheap proxy for "the prediction no longer
/// covers the object".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalConfig {
    /// Full stage-1 detection runs every `keyframe_interval`-th frame
    /// (≥ 1; `1` degenerates to per-frame detection).
    pub keyframe_interval: u32,
    /// Mean-intensity shift (normalised units, full scale = 1.0) of any
    /// tracked ROI that triggers an off-schedule re-detection. Non-finite
    /// or huge values effectively disable the trigger.
    pub drift_threshold: f32,
    /// Minimum IoU for a fresh detection to be associated with an
    /// existing track (below it, the detection spawns a new track).
    pub min_track_iou: f64,
}

impl Default for TemporalConfig {
    fn default() -> Self {
        Self { keyframe_interval: 8, drift_threshold: 0.06, min_track_iou: 0.25 }
    }
}

impl TemporalConfig {
    /// Sets the keyframe cadence.
    pub fn keyframe_interval(mut self, interval: u32) -> Self {
        self.keyframe_interval = interval;
        self
    }

    /// Sets the mean-intensity drift trigger.
    pub fn drift_threshold(mut self, threshold: f32) -> Self {
        self.drift_threshold = threshold;
        self
    }

    /// Sets the track-association IoU gate.
    pub fn min_track_iou(mut self, iou: f64) -> Self {
        self.min_track_iou = iou;
        self
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// [`HiriseError::InvalidConfig`] for a zero keyframe interval, a NaN
    /// or negative drift threshold, or an association gate outside
    /// `0.0..=1.0`.
    pub fn validate(&self) -> Result<()> {
        if self.keyframe_interval == 0 {
            return Err(HiriseError::InvalidConfig {
                reason: "keyframe interval must be ≥ 1".into(),
            });
        }
        if !(self.drift_threshold >= 0.0) {
            return Err(HiriseError::InvalidConfig {
                reason: format!("drift threshold {} must be ≥ 0", self.drift_threshold),
            });
        }
        if !(0.0..=1.0).contains(&self.min_track_iou) {
            return Err(HiriseError::InvalidConfig {
                reason: format!("association IoU gate {} outside 0..=1", self.min_track_iou),
            });
        }
        Ok(())
    }
}

/// Builder for [`HiriseConfig`] (non-consuming terminal `build`).
#[derive(Debug, Clone)]
pub struct HiriseConfigBuilder {
    config: HiriseConfig,
}

impl HiriseConfigBuilder {
    /// Sets the pooling factor `k`.
    pub fn pooling(mut self, k: u32) -> Self {
        self.config.pooling_k = k;
        self
    }

    /// Sets the stage-1 colour mode.
    pub fn stage1_color(mut self, mode: ColorMode) -> Self {
        self.config.stage1_color = mode;
        self
    }

    /// Replaces the sensor physics configuration.
    pub fn sensor(mut self, sensor: SensorConfig) -> Self {
        self.config.sensor = sensor;
        self
    }

    /// Sets how the sensor realises its noise draws: position-keyed
    /// ([`NoiseRngMode::Keyed`], the fast order-independent default) or
    /// the legacy sequential stream ([`NoiseRngMode::Sequential`],
    /// bit-identical to the historical implementation and its goldens).
    pub fn noise_rng(mut self, mode: NoiseRngMode) -> Self {
        self.config.sensor.noise_rng = mode;
        self
    }

    /// Sets the row-shard count for the keyed capture/pool paths (`1` =
    /// single threaded, `0` = one shard per core, `n` = exactly `n`).
    /// Output is bit-identical at every setting.
    pub fn sensor_shards(mut self, shards: u32) -> Self {
        self.config.sensor.shards = shards;
        self
    }

    /// Replaces the detector configuration.
    pub fn detector(mut self, detector: DetectorConfig) -> Self {
        self.config.detector = detector;
        self
    }

    /// Sets the per-frame ROI cap.
    pub fn max_rois(mut self, max: usize) -> Self {
        self.config.max_rois = max;
        self
    }

    /// Sets the ROI context margin (full-resolution pixels).
    pub fn roi_margin(mut self, margin: u32) -> Self {
        self.config.roi_margin = margin;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// [`HiriseError::InvalidConfig`] when the pooling factor does not
    /// tile the array, a dimension is zero, or `max_rois == 0`.
    pub fn build(self) -> Result<HiriseConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_to_paper_flavour() {
        let c = HiriseConfig::builder(2560, 1920).build().unwrap();
        assert_eq!(c.pooling_k, 8);
        assert_eq!(c.stage1_color, ColorMode::Rgb);
        assert_eq!(c.pooled_dimensions(), (320, 240));
    }

    #[test]
    fn paper_reference_is_valid() {
        let c = HiriseConfig::paper_reference();
        assert_eq!((c.array_width, c.array_height), (2560, 1920));
        assert_eq!(c.pooled_dimensions(), (320, 240));
    }

    #[test]
    fn rejects_non_tiling_pooling() {
        assert!(HiriseConfig::builder(100, 100).pooling(3).build().is_err());
        assert!(HiriseConfig::builder(100, 100).pooling(0).build().is_err());
        assert!(HiriseConfig::builder(100, 100).pooling(4).build().is_ok());
    }

    #[test]
    fn rejects_degenerate_values() {
        assert!(HiriseConfig::builder(0, 100).build().is_err());
        assert!(HiriseConfig::builder(100, 100).max_rois(0).build().is_err());
    }

    #[test]
    fn builder_setters_apply() {
        let c = HiriseConfig::builder(640, 480)
            .pooling(2)
            .stage1_color(ColorMode::Gray)
            .max_rois(5)
            .roi_margin(4)
            .noise_rng(NoiseRngMode::Sequential)
            .sensor_shards(4)
            .build()
            .unwrap();
        assert_eq!(c.pooling_k, 2);
        assert_eq!(c.stage1_color, ColorMode::Gray);
        assert_eq!(c.max_rois, 5);
        assert_eq!(c.roi_margin, 4);
        assert_eq!(c.pooled_dimensions(), (320, 240));
        assert_eq!(c.sensor.noise_rng, NoiseRngMode::Sequential);
        assert_eq!(c.sensor.shards, 4);
    }

    #[test]
    fn temporal_config_validates() {
        let t = TemporalConfig::default();
        assert!(t.validate().is_ok());
        assert!(TemporalConfig::default().keyframe_interval(0).validate().is_err());
        assert!(TemporalConfig::default().drift_threshold(-0.1).validate().is_err());
        assert!(TemporalConfig::default().drift_threshold(f32::NAN).validate().is_err());
        assert!(TemporalConfig::default().min_track_iou(1.5).validate().is_err());
        let custom =
            TemporalConfig::default().keyframe_interval(4).drift_threshold(0.1).min_track_iou(0.5);
        assert_eq!(custom.keyframe_interval, 4);
        assert_eq!(custom.drift_threshold, 0.1);
        assert_eq!(custom.min_track_iou, 0.5);
        assert!(custom.validate().is_ok());
    }

    #[test]
    fn default_noise_mode_is_keyed() {
        let c = HiriseConfig::builder(64, 64).build().unwrap();
        assert_eq!(c.sensor.noise_rng, NoiseRngMode::Keyed);
        assert_eq!(c.sensor.shards, 1);
    }
}
