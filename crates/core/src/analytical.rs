//! The paper's Table-1 analytical model, bridged to concrete geometry.
//!
//! `hirise-energy` owns the closed-form arithmetic over scalar inputs;
//! this module derives those inputs (`j`, `Σ W_i·H_i`, union area) from
//! actual ROI rectangles and the system configuration, and can
//! cross-check the closed forms against a measured
//! [`RunReport`](crate::report::RunReport).

use hirise_energy::{ColorChannels, CostBreakdown, RoiConversionModel, SystemParams};
use hirise_imaging::rect::{sum_area, union_area};
use hirise_imaging::Rect;
use hirise_sensor::ColorMode;

use crate::config::HiriseConfig;

/// Closed-form cost model for one configuration + ROI set.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticalModel {
    params: SystemParams,
}

impl AnalyticalModel {
    /// Builds the model from a configuration and the frame's ROI boxes.
    pub fn new(config: &HiriseConfig, rois: &[Rect]) -> Self {
        let stage1_color = match config.stage1_color {
            ColorMode::Rgb => ColorChannels::Rgb,
            ColorMode::Gray => ColorChannels::Gray,
        };
        let params = SystemParams {
            n: config.array_width as u64,
            m: config.array_height as u64,
            p_adc: config.sensor.adc_bits as u64,
            k: config.pooling_k as u64,
            stage1_color,
            boxes: rois.len() as u64,
            sum_roi_area: sum_area(rois),
            union_roi_area: union_area(rois),
            roi_conversions: RoiConversionModel::Union,
        };
        Self { params }
    }

    /// The underlying scalar parameters.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// Conventional system costs (Table 1, row 1).
    pub fn conventional(&self) -> CostBreakdown {
        self.params.conventional()
    }

    /// HiRISE stage-1 costs.
    pub fn stage1(&self) -> CostBreakdown {
        self.params.hirise_stage1()
    }

    /// HiRISE stage-2 costs.
    pub fn stage2(&self) -> CostBreakdown {
        self.params.hirise_stage2()
    }

    /// Combined HiRISE costs (`D_new`, `Mem_new`, `C_new`).
    pub fn hirise(&self) -> CostBreakdown {
        self.params.hirise_total()
    }

    /// Data-transfer reduction factor `D_old / D_new`.
    pub fn transfer_reduction(&self) -> f64 {
        self.conventional().total_transfer_bits() as f64
            / self.hirise().total_transfer_bits() as f64
    }

    /// Memory reduction factor `Mem_old / Mem_new`.
    pub fn memory_reduction(&self) -> f64 {
        self.conventional().memory_bytes as f64 / self.hirise().memory_bytes as f64
    }

    /// Conversion reduction factor `C_old / C_new`.
    pub fn conversion_reduction(&self) -> f64 {
        self.conventional().conversions as f64 / self.hirise().conversions as f64
    }

    /// Verifies the paper's three conditions (Eq. 1–3): the HiRISE costs
    /// must all be strictly below the conventional ones.
    pub fn satisfies_paper_conditions(&self) -> bool {
        self.transfer_reduction() > 1.0
            && self.memory_reduction() > 1.0
            && self.conversion_reduction() > 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HiriseConfig;

    fn model_with_rois() -> AnalyticalModel {
        let config = HiriseConfig::paper_reference();
        // 16 head-sized ROIs, Table-3 style (112×112 at 2560×1920).
        let rois: Vec<Rect> = (0..16)
            .map(|i| Rect::new(140 * i as u32, 100 + 90 * (i as u32 % 4), 112, 112))
            .collect();
        AnalyticalModel::new(&config, &rois)
    }

    #[test]
    fn matches_table1_formulas() {
        let m = model_with_rois();
        let conv = m.conventional();
        assert_eq!(conv.conversions, 2560 * 1920 * 3);
        assert_eq!(conv.transfer_bits_s2p, 2560 * 1920 * 3 * 8);
        let s1 = m.stage1();
        assert_eq!(s1.conversions, (2560 * 1920 / 64) * 3);
        let s2 = m.stage2();
        assert_eq!(s2.transfer_bits_s2p, 3 * 8 * 16 * 112 * 112);
    }

    #[test]
    fn paper_conditions_hold_for_reference_config() {
        let m = model_with_rois();
        assert!(m.satisfies_paper_conditions());
        assert!(m.transfer_reduction() > 2.0);
        assert!(m.memory_reduction() > 10.0);
        assert!(m.conversion_reduction() > 10.0);
    }

    #[test]
    fn disjoint_rois_make_union_equal_sum() {
        let m = model_with_rois();
        assert_eq!(m.params().sum_roi_area, m.params().union_roi_area);
    }

    #[test]
    fn overlapping_rois_convert_less_than_they_transfer() {
        let config = HiriseConfig::paper_reference();
        let rois = [Rect::new(0, 0, 200, 200), Rect::new(100, 0, 200, 200)];
        let m = AnalyticalModel::new(&config, &rois);
        let s2 = m.stage2();
        // Transfer counts both boxes; conversions count the union.
        assert_eq!(s2.transfer_bits_s2p, 3 * 8 * 2 * 200 * 200);
        assert_eq!(s2.conversions, 3 * 200 * 300);
    }

    #[test]
    fn gray_mode_propagates_to_params() {
        let config = HiriseConfig::builder(640, 480)
            .pooling(2)
            .stage1_color(ColorMode::Gray)
            .build()
            .unwrap();
        let m = AnalyticalModel::new(&config, &[]);
        assert_eq!(m.stage1().conversions, 640 * 480 / 4);
    }
}
