//! Temporal video pipeline: ROI tracking with selective re-detection.
//!
//! The still-image pipeline ([`crate::HirisePipeline`]) pays the full
//! stage-1 cost on every frame: pooled capture (analog pooling + ADC of
//! the whole array) and sliding-window detection. On video that is
//! wasteful — objects move a few pixels per frame, so the ROI set of
//! frame `t` is an excellent predictor of frame `t+1`'s. This module
//! extends HiRISE's *selective ROI* idea along the time axis:
//!
//! * a [`TrackerState`] persists one [`Track`] per live ROI — position,
//!   size, and a constant-velocity estimate fitted between detections;
//! * full stage-1 (pool + detect) runs only on **keyframes** (a
//!   configurable cadence, [`TemporalConfig::keyframe_interval`]), when
//!   no track survived, or when the **drift trigger** fires;
//! * every other frame does capture + *predicted*-ROI readout only: each
//!   track's box is advanced by its velocity, re-inflated by the
//!   configured margin, clamped to the array, and read straight through
//!   [`hirise_sensor::Sensor::read_rois_into`] — the pool and detect
//!   stages are skipped entirely, which on the reference 640×480 / k = 2
//!   configuration removes the two dominant stage costs;
//! * the drift trigger is deliberately cheap: the mean intensity of each
//!   tracked crop (already read this frame — no extra sensor traffic) is
//!   compared against the mean recorded at the track's last detection;
//!   a shift beyond [`TemporalConfig::drift_threshold`] means the
//!   prediction is probably reading background, so the frame is
//!   re-detected on the spot ([`FrameKind::DriftRefresh`]).
//!
//! On keyframes, fresh detections are associated with predicted tracks
//! by greedy IoU ([`hirise_detect::associate`]); matched tracks update
//! their velocity from the displacement since their last detection,
//! unmatched detections spawn new tracks, and unmatched tracks die.
//!
//! # Determinism
//!
//! A frame's output is a pure function of `(configuration, tracker
//! state, scene)`, and the tracker state is itself a pure fold over the
//! preceding frames of the sequence: association is deterministic
//! greedy IoU, velocities are exact f64 arithmetic on box centres, and
//! the policy decisions (cadence, drift) branch on deterministic
//! quantities. With the sensor's keyed noise mode (the default) frame
//! noise is position-pure as well, so an entire tracked *sequence* is
//! bit-identical regardless of worker placement or intra-frame shard
//! count — the property the sequence mode of
//! [`crate::stream::StreamExecutor`] builds on.
//!
//! Like the still path, the steady state allocates nothing: tracks,
//! candidate boxes, association tables and ROI buffers all live in
//! [`TrackerState`] / [`PipelineScratch`] and are reused every frame
//! (`tests/alloc.rs` pins tracked frames at 0 heap allocations).
//!
//! # Example
//!
//! ```
//! use hirise::temporal::{TrackerState, TrackingPipeline};
//! use hirise::{HiriseConfig, PipelineScratch, TemporalConfig};
//! use hirise_imaging::RgbImage;
//!
//! # fn main() -> Result<(), hirise::HiriseError> {
//! let config = HiriseConfig::builder(64, 64).pooling(4).build()?;
//! let tracker = TrackingPipeline::new(config, TemporalConfig::default())?;
//! let mut state = TrackerState::new();
//! let mut scratch = PipelineScratch::new();
//! let frame = RgbImage::from_fn(64, 64, |x, y| {
//!     let v = ((x / 8 + y / 8) % 2) as f32 * 0.4 + 0.3;
//!     (v, v, 0.5)
//! });
//! let report = tracker.run_frame(&frame, &mut state, &mut scratch)?;
//! assert!(report.kind.ran_detection(), "frame 0 is always a keyframe");
//! # Ok(())
//! # }
//! ```

use std::time::Instant;

use hirise_detect::{greedy_iou_associate, AssociateScratch};
use hirise_imaging::{Rect, RgbImage};
use hirise_sensor::ReadoutStats;

use crate::config::{HiriseConfig, TemporalConfig};
use crate::pipeline::HirisePipeline;
use crate::report::{FrameKind, RunReport, TemporalFrameReport};
use crate::roi::detections_to_rois_into;
use crate::scratch::PipelineScratch;
use crate::timing::StageTimings;
use crate::Result;

/// One persisted ROI: where the object is believed to be and how it
/// moves. Geometry is kept in f64 centre coordinates so sub-pixel
/// velocities accumulate without quantisation drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Track {
    id: u32,
    /// Current (predicted or detected) box centre, full-resolution px.
    cx: f64,
    cy: f64,
    /// Box size from the last detection, full-resolution px.
    w: u32,
    h: u32,
    /// Velocity estimate, px/frame.
    vx: f64,
    vy: f64,
    /// Box centre at the last detection — the velocity anchor.
    det_cx: f64,
    det_cy: f64,
    /// Mean crop intensity recorded at the last detection readout — the
    /// drift-trigger reference.
    mean: f32,
}

impl Track {
    /// Stable track id (unique within one [`TrackerState`] lifetime).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Current box centre, full-resolution pixels.
    pub fn center(&self) -> (f64, f64) {
        (self.cx, self.cy)
    }

    /// Box size from the last detection.
    pub fn size(&self) -> (u32, u32) {
        (self.w, self.h)
    }

    /// Velocity estimate, pixels per frame.
    pub fn velocity(&self) -> (f64, f64) {
        (self.vx, self.vy)
    }

    /// The track's current box clipped to a `width × height` array
    /// (degenerate once the prediction has left the array entirely).
    pub fn base_rect(&self, width: u32, height: u32) -> Rect {
        let x0 = (self.cx - self.w as f64 / 2.0).round();
        let y0 = (self.cy - self.h as f64 / 2.0).round();
        let cx0 = x0.clamp(0.0, width as f64);
        let cy0 = y0.clamp(0.0, height as f64);
        let cx1 = (x0 + self.w as f64).clamp(0.0, width as f64);
        let cy1 = (y0 + self.h as f64).clamp(0.0, height as f64);
        Rect::from_corners(cx0 as u32, cy0 as u32, cx1 as u32, cy1 as u32)
    }
}

/// Mean intensity of a crop across its three channels (the drift cue);
/// `None` for an empty crop, whose zero-sample mean would be `0/0 =
/// NaN`.
fn crop_mean(img: &RgbImage) -> Option<f32> {
    if img.width() == 0 || img.height() == 0 {
        return None;
    }
    let [r, g, b] = img.planes();
    Some((r.mean() + g.mean() + b.mean()) / 3.0)
}

/// Whether a tracked crop's intensity has drifted from its reference.
///
/// A crop without a readable mean counts as drifted — in every form the
/// hazard takes. An empty crop yields no mean at all; a NaN anywhere
/// (a NaN sample in the crop, or a reference poisoned by one earlier)
/// makes the shift NaN, and `NaN > threshold` is false, which the old
/// `(mean - reference).abs() > threshold` turned into a drift trigger
/// silently disabled for that track forever. The comparison is
/// therefore written `!(shift <= threshold)`: identical for finite
/// shifts, but NaN falls through to "drifted" and the track re-detects
/// instead of going stale.
fn crop_drifted(img: &RgbImage, reference: f32, threshold: f32) -> bool {
    crop_mean(img).is_none_or(|mean| !((mean - reference).abs() <= threshold))
}

/// Per-sequence tracker state: the live tracks plus every reusable
/// buffer the temporal path needs, so steady-state frames allocate
/// nothing. One `TrackerState` serves one ordered frame sequence;
/// [`TrackerState::reset`] recycles it (buffers keep their capacity) for
/// the next sequence.
#[derive(Debug, Clone, Default)]
pub struct TrackerState {
    tracks: Vec<Track>,
    /// Rebuild buffer for the keyframe track update (swapped with
    /// `tracks`, never reallocated in steady state).
    new_tracks: Vec<Track>,
    next_id: u32,
    frame_index: u64,
    /// Frames since the last full detection (the velocity divisor).
    frames_since_detect: u32,
    /// Predicted track boxes, aligned with `tracks` (association refs).
    track_rects: Vec<Rect>,
    /// Candidate boxes from the current keyframe's detections.
    candidates: Vec<Rect>,
    /// Index buffer for the candidate score sort.
    cand_order: Vec<u32>,
    /// `assoc[i] = Some(j)`: candidate `i` continues track `j`.
    assoc: Vec<Option<u32>>,
    assoc_scratch: AssociateScratch,
    keyframes: u64,
    drift_refreshes: u64,
    tracked_frames: u64,
}

impl TrackerState {
    /// Creates an empty tracker; buffers grow to their steady-state
    /// sizes during the first keyframe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all cross-frame state (tracks, ids, counters, frame index)
    /// while keeping buffer capacity — the start of a new sequence.
    pub fn reset(&mut self) {
        self.tracks.clear();
        self.new_tracks.clear();
        self.next_id = 0;
        self.frame_index = 0;
        self.frames_since_detect = 0;
        self.keyframes = 0;
        self.drift_refreshes = 0;
        self.tracked_frames = 0;
    }

    /// The live tracks after the most recent frame.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Frames processed since construction / [`TrackerState::reset`].
    pub fn frame_index(&self) -> u64 {
        self.frame_index
    }

    /// Frames that ran the full stage-1 path on schedule (or because no
    /// track survived).
    pub fn keyframes(&self) -> u64 {
        self.keyframes
    }

    /// Off-schedule re-detections forced by the drift trigger.
    pub fn drift_refreshes(&self) -> u64 {
        self.drift_refreshes
    }

    /// Frames served purely from the track predictions.
    pub fn tracked_frames(&self) -> u64 {
        self.tracked_frames
    }
}

/// A restartable snapshot of a [`TrackerState`]'s cross-frame fields —
/// the recovery anchor a service layer captures at each detection frame
/// so a session whose in-flight frame fails can resume from its last
/// good keyframe instead of cold-starting.
///
/// Only the *persistent* tracker state is captured (tracks, ids, frame
/// index, cadence phase, counters); the per-frame association buffers
/// are rebuilt from scratch on the next frame anyway. [`Track`] is
/// `Copy`, so a snapshot into a warm checkpoint is a `memcpy` — no heap
/// allocation in the steady state, which keeps checkpointing compatible
/// with the zero-allocation frame-path contract.
#[derive(Debug, Clone, Default)]
pub struct TrackerCheckpoint {
    tracks: Vec<Track>,
    next_id: u32,
    frame_index: u64,
    frames_since_detect: u32,
    keyframes: u64,
    drift_refreshes: u64,
    tracked_frames: u64,
    valid: bool,
}

impl TrackerCheckpoint {
    /// An empty (invalid) checkpoint; restoring from it is refused until
    /// a snapshot has been taken.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a snapshot has been captured since construction /
    /// [`TrackerCheckpoint::clear`].
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// The frame index the snapshot was taken at (`0` when invalid).
    pub fn frame_index(&self) -> u64 {
        self.frame_index
    }

    /// Invalidates the checkpoint (buffer capacity is kept).
    pub fn clear(&mut self) {
        self.tracks.clear();
        self.valid = false;
        self.next_id = 0;
        self.frame_index = 0;
        self.frames_since_detect = 0;
        self.keyframes = 0;
        self.drift_refreshes = 0;
        self.tracked_frames = 0;
    }

    /// Serializes the checkpoint into an open [`crate::recover::Encoder`]
    /// envelope — the temporal half of an engine snapshot. Geometry is
    /// written as raw IEEE-754 bit patterns, so the decode is bit-exact
    /// and a restored tracker replays the sequence identically.
    pub fn encode_into(&self, enc: &mut crate::recover::Encoder) {
        enc.bool(self.valid);
        enc.u32(self.next_id);
        enc.u64(self.frame_index);
        enc.u32(self.frames_since_detect);
        enc.u64(self.keyframes);
        enc.u64(self.drift_refreshes);
        enc.u64(self.tracked_frames);
        enc.seq(self.tracks.len());
        for track in &self.tracks {
            enc.u32(track.id);
            enc.f64(track.cx);
            enc.f64(track.cy);
            enc.u32(track.w);
            enc.u32(track.h);
            enc.f64(track.vx);
            enc.f64(track.vy);
            enc.f64(track.det_cx);
            enc.f64(track.det_cy);
            enc.f32(track.mean);
        }
    }

    /// Bytes one encoded [`Track`] occupies (the sequence element floor
    /// for [`crate::recover::Decoder::seq`]).
    const TRACK_BYTES: usize = 4 + 8 + 8 + 4 + 4 + 8 + 8 + 8 + 8 + 4;

    /// Reads a checkpoint written by [`TrackerCheckpoint::encode_into`].
    ///
    /// # Errors
    ///
    /// [`crate::RecoverError`] when the stream is truncated or
    /// structurally malformed at this field group.
    pub fn decode_from(
        dec: &mut crate::recover::Decoder<'_>,
    ) -> std::result::Result<Self, crate::RecoverError> {
        let valid = dec.bool()?;
        let next_id = dec.u32()?;
        let frame_index = dec.u64()?;
        let frames_since_detect = dec.u32()?;
        let keyframes = dec.u64()?;
        let drift_refreshes = dec.u64()?;
        let tracked_frames = dec.u64()?;
        let count = dec.seq(Self::TRACK_BYTES)?;
        let mut tracks = Vec::with_capacity(count);
        for _ in 0..count {
            tracks.push(Track {
                id: dec.u32()?,
                cx: dec.f64()?,
                cy: dec.f64()?,
                w: dec.u32()?,
                h: dec.u32()?,
                vx: dec.f64()?,
                vy: dec.f64()?,
                det_cx: dec.f64()?,
                det_cy: dec.f64()?,
                mean: dec.f32()?,
            });
        }
        Ok(Self {
            tracks,
            next_id,
            frame_index,
            frames_since_detect,
            keyframes,
            drift_refreshes,
            tracked_frames,
            valid,
        })
    }
}

impl TrackerState {
    /// Snapshots the persistent tracker state into `checkpoint`
    /// (allocation-free once the checkpoint's track buffer is warm).
    pub fn checkpoint_into(&self, checkpoint: &mut TrackerCheckpoint) {
        checkpoint.tracks.clear();
        checkpoint.tracks.extend_from_slice(&self.tracks);
        checkpoint.next_id = self.next_id;
        checkpoint.frame_index = self.frame_index;
        checkpoint.frames_since_detect = self.frames_since_detect;
        checkpoint.keyframes = self.keyframes;
        checkpoint.drift_refreshes = self.drift_refreshes;
        checkpoint.tracked_frames = self.tracked_frames;
        checkpoint.valid = true;
    }

    /// Rewinds the tracker to `checkpoint`. Returns `false` (leaving the
    /// state untouched) when the checkpoint has never been captured —
    /// the caller should [`TrackerState::reset`] and cold-start instead.
    pub fn restore_from(&mut self, checkpoint: &TrackerCheckpoint) -> bool {
        if !checkpoint.valid {
            return false;
        }
        self.tracks.clear();
        self.tracks.extend_from_slice(&checkpoint.tracks);
        self.new_tracks.clear();
        self.next_id = checkpoint.next_id;
        self.frame_index = checkpoint.frame_index;
        self.frames_since_detect = checkpoint.frames_since_detect;
        self.keyframes = checkpoint.keyframes;
        self.drift_refreshes = checkpoint.drift_refreshes;
        self.tracked_frames = checkpoint.tracked_frames;
        true
    }
}

/// The temporal HiRISE pipeline: a [`HirisePipeline`] plus the
/// keyframe/drift policy of a [`TemporalConfig`]. See the module docs.
#[derive(Debug, Clone)]
pub struct TrackingPipeline {
    pipeline: HirisePipeline,
    temporal: TemporalConfig,
}

impl TrackingPipeline {
    /// Creates a tracking pipeline from a system configuration and a
    /// temporal policy.
    ///
    /// # Errors
    ///
    /// [`crate::HiriseError::InvalidConfig`] when the temporal policy is
    /// degenerate (see [`TemporalConfig::validate`]).
    pub fn new(config: HiriseConfig, temporal: TemporalConfig) -> Result<Self> {
        Self::from_pipeline(HirisePipeline::new(config), temporal)
    }

    /// Wraps an existing still-image pipeline.
    ///
    /// # Errors
    ///
    /// As for [`TrackingPipeline::new`].
    pub fn from_pipeline(pipeline: HirisePipeline, temporal: TemporalConfig) -> Result<Self> {
        temporal.validate()?;
        Ok(Self { pipeline, temporal })
    }

    /// The wrapped still-image pipeline.
    pub fn pipeline(&self) -> &HirisePipeline {
        &self.pipeline
    }

    /// The temporal policy.
    pub fn temporal(&self) -> &TemporalConfig {
        &self.temporal
    }

    /// Replaces the temporal policy in place — the hook a service layer
    /// uses to widen the keyframe cadence of a live session under
    /// overload (graceful degradation) without rebuilding the pipeline
    /// or touching the session's tracker state.
    ///
    /// # Errors
    ///
    /// [`crate::HiriseError::InvalidConfig`] as for
    /// [`TrackingPipeline::new`]; the current policy is kept on error.
    pub fn set_temporal(&mut self, temporal: TemporalConfig) -> Result<()> {
        temporal.validate()?;
        self.temporal = temporal;
        Ok(())
    }

    /// Rebuilds the wrapped pipeline with a new ROI context margin —
    /// the companion shed hook: a smaller margin shrinks every stage-2
    /// readout. Track state is untouched (tracks carry the tight box;
    /// the margin is applied at readout time only, so the change takes
    /// effect on the very next frame and reverses just as cleanly).
    pub fn set_roi_margin(&mut self, margin: u32) {
        let mut config = self.pipeline.config().clone();
        config.roi_margin = margin;
        self.pipeline = HirisePipeline::new(config);
    }

    /// Processes the next frame of the sequence `state` belongs to.
    ///
    /// The frame results stay readable on the scratch until the next
    /// call ([`PipelineScratch::rois`] holds the frame's ROI set,
    /// [`PipelineScratch::roi_images`] the crops); tracked frames leave
    /// the scratch's pooled image untouched (it still holds the last
    /// keyframe's).
    ///
    /// # Errors
    ///
    /// [`crate::HiriseError::SceneMismatch`] for wrongly sized scenes,
    /// plus sensor failures.
    pub fn run_frame(
        &self,
        scene: &RgbImage,
        state: &mut TrackerState,
        scratch: &mut PipelineScratch,
    ) -> Result<TemporalFrameReport> {
        self.pipeline.check_scene(scene)?;
        let cfg = self.pipeline.config();
        let (aw, ah) = (cfg.array_width, cfg.array_height);
        let mut timings = StageTimings::default();

        let mark = Instant::now();
        self.pipeline.capture_into(scene, &mut scratch.sensor);
        timings.capture = mark.elapsed();

        // Predict: advance every track one frame along its velocity and
        // drop those whose box has left the array entirely.
        state.frames_since_detect = state.frames_since_detect.saturating_add(1);
        for t in &mut state.tracks {
            t.cx += t.vx;
            t.cy += t.vy;
        }
        state.tracks.retain(|t| !t.base_rect(aw, ah).is_degenerate());
        state.track_rects.clear();
        state.track_rects.extend(state.tracks.iter().map(|t| t.base_rect(aw, ah)));

        let scheduled = state.frame_index.is_multiple_of(self.temporal.keyframe_interval as u64)
            || state.tracks.is_empty();
        let (kind, stage1, stage2) = if scheduled {
            state.keyframes += 1;
            let (s1, s2) = self.refresh(state, scratch, &mut timings)?;
            (FrameKind::Keyframe, s1, s2)
        } else {
            // Tracked attempt: read the predicted ROIs directly.
            let PipelineScratch { sensor, rois, roi_images, pool, union, .. } = &mut *scratch;
            let sensor = sensor.as_mut().expect("captured above");
            rois.clear();
            rois.extend(
                state.track_rects.iter().map(|r| r.inflated(cfg.roi_margin).clamped(aw, ah)),
            );
            let mark = Instant::now();
            let stage2 = sensor.read_rois_into(rois, roi_images, pool, union)?;
            timings.roi_read += mark.elapsed();
            let drifted = state
                .tracks
                .iter()
                .zip(roi_images.iter())
                .any(|(t, img)| crop_drifted(img, t.mean, self.temporal.drift_threshold));
            if drifted {
                // The prediction is reading something else — re-detect
                // now rather than serving a stale ROI. The speculative
                // readout above already happened on the sensor, so its
                // cost stays in the frame's accounting.
                state.drift_refreshes += 1;
                let (s1, s2) = self.refresh(state, scratch, &mut timings)?;
                (FrameKind::DriftRefresh, s1, stage2.merged(s2))
            } else {
                state.tracked_frames += 1;
                (FrameKind::Tracked, ReadoutStats::default(), stage2)
            }
        };
        state.frame_index += 1;

        let stage1_image_bytes = if kind.ran_detection() {
            scratch.pooled.storage_bytes(cfg.sensor.adc_bits)
        } else {
            0
        };
        let stage2_image_bytes: u64 =
            scratch.roi_images.iter().map(|img| img.storage_bytes(cfg.sensor.adc_bits)).sum();
        Ok(TemporalFrameReport {
            report: RunReport {
                stage1,
                stage2,
                pooling_outputs: stage1.conversions,
                stage1_image_bytes,
                stage2_image_bytes,
                roi_count: scratch.rois.len(),
                timings,
            },
            kind,
            active_tracks: state.tracks.len() as u32,
        })
    }

    /// The full stage-1 path on the already-captured sensor: pooled
    /// capture, detection, candidate→track association, track-set
    /// rebuild, ROI readout, drift-reference refresh. Returns the
    /// stage-1 and stage-2 readout stats of this refresh.
    fn refresh(
        &self,
        state: &mut TrackerState,
        scratch: &mut PipelineScratch,
        timings: &mut StageTimings,
    ) -> Result<(ReadoutStats, ReadoutStats)> {
        let cfg = self.pipeline.config();
        let (aw, ah) = (cfg.array_width, cfg.array_height);
        let PipelineScratch {
            sensor, analog, pooled, detector, rois, roi_images, pool, union, ..
        } = &mut *scratch;
        let sensor = sensor.as_mut().expect("captured earlier this frame");

        let mark = Instant::now();
        let stage1 = sensor.capture_pooled_into(cfg.pooling_k, cfg.stage1_color, analog, pooled)?;
        timings.pool += mark.elapsed();

        let mark = Instant::now();
        let detections = self.pipeline.detector().detect_with_scratch(pooled, detector);
        // Candidate boxes: top-scored detections mapped to full
        // resolution *without* the margin — tracks carry the tight box;
        // the margin is re-applied at every readout so repeated
        // inflation cannot compound.
        detections_to_rois_into(
            detections,
            cfg.pooling_k,
            0,
            aw,
            ah,
            cfg.max_rois,
            &mut state.cand_order,
            &mut state.candidates,
        );
        greedy_iou_associate(
            &state.candidates,
            &state.track_rects,
            self.temporal.min_track_iou,
            &mut state.assoc_scratch,
            &mut state.assoc,
        );
        // Rebuild the track set in candidate (score) order: matched
        // candidates continue their track with a refitted velocity,
        // unmatched candidates spawn, unmatched tracks die.
        state.new_tracks.clear();
        let span = state.frames_since_detect.max(1) as f64;
        for (i, &cand) in state.candidates.iter().enumerate() {
            let cx = cand.x as f64 + cand.w as f64 / 2.0;
            let cy = cand.y as f64 + cand.h as f64 / 2.0;
            let track = match state.assoc[i] {
                Some(j) => {
                    let old = &state.tracks[j as usize];
                    Track {
                        id: old.id,
                        cx,
                        cy,
                        w: cand.w,
                        h: cand.h,
                        vx: (cx - old.det_cx) / span,
                        vy: (cy - old.det_cy) / span,
                        det_cx: cx,
                        det_cy: cy,
                        mean: old.mean,
                    }
                }
                None => {
                    let id = state.next_id;
                    state.next_id += 1;
                    Track {
                        id,
                        cx,
                        cy,
                        w: cand.w,
                        h: cand.h,
                        vx: 0.0,
                        vy: 0.0,
                        det_cx: cx,
                        det_cy: cy,
                        mean: 0.0,
                    }
                }
            };
            state.new_tracks.push(track);
        }
        std::mem::swap(&mut state.tracks, &mut state.new_tracks);
        state.frames_since_detect = 0;
        rois.clear();
        rois.extend(
            state
                .tracks
                .iter()
                .map(|t| t.base_rect(aw, ah).inflated(cfg.roi_margin).clamped(aw, ah)),
        );
        timings.detect += mark.elapsed();

        let mark = Instant::now();
        let stage2 = sensor.read_rois_into(rois, roi_images, pool, union)?;
        // Refresh the drift references from the crops just read. An
        // empty crop gets an infinite reference, so any future readable
        // crop compares as drifted and forces a re-detection — never a
        // NaN, which would disable the trigger instead.
        for (t, img) in state.tracks.iter_mut().zip(roi_images.iter()) {
            t.mean = crop_mean(img).unwrap_or(f32::INFINITY);
        }
        timings.roi_read += mark.elapsed();
        Ok((stage1, stage2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HiriseConfig;
    use hirise_imaging::draw;
    use hirise_sensor::SensorConfig;

    const W: u32 = 192;
    const H: u32 = 144;

    /// A frame with one bright textured object at `(x, y)`.
    fn frame_with_object(x: u32, y: u32) -> RgbImage {
        let mut img = RgbImage::from_fn(W, H, |_, _| (0.35, 0.35, 0.35));
        let obj = Rect::new(x, y, 32, 72);
        draw::fill_rect_rgb(&mut img, obj, (0.9, 0.4, 0.2));
        let [pr, _, _] = img.planes_mut();
        draw::fill_stripes(pr, obj, 2, 0.95, 0.55);
        img
    }

    fn config() -> HiriseConfig {
        let detector = hirise_detect::DetectorConfig { score_threshold: 0.2, ..Default::default() };
        HiriseConfig::builder(W, H)
            .pooling(2)
            .sensor(SensorConfig::noiseless())
            .detector(detector)
            .max_rois(4)
            .build()
            .unwrap()
    }

    fn tracker(interval: u32) -> TrackingPipeline {
        TrackingPipeline::new(config(), TemporalConfig::default().keyframe_interval(interval))
            .unwrap()
    }

    #[test]
    fn rejects_invalid_temporal_policy() {
        let bad = TemporalConfig::default().keyframe_interval(0);
        assert!(TrackingPipeline::new(config(), bad).is_err());
    }

    #[test]
    fn rejects_mismatched_scene() {
        let t = tracker(4);
        let mut state = TrackerState::new();
        let mut scratch = PipelineScratch::new();
        let wrong = RgbImage::new(16, 16);
        assert!(t.run_frame(&wrong, &mut state, &mut scratch).is_err());
    }

    #[test]
    fn keyframe_cadence_on_a_static_scene() {
        let t = tracker(4);
        let mut state = TrackerState::new();
        let mut scratch = PipelineScratch::new();
        let frame = frame_with_object(60, 30);
        let mut kinds = Vec::new();
        for _ in 0..9 {
            kinds.push(t.run_frame(&frame, &mut state, &mut scratch).unwrap().kind);
        }
        // Static scene, perfect prediction: keyframes exactly on the
        // cadence, everything else tracked, no drift.
        use FrameKind::*;
        assert_eq!(
            kinds,
            vec![
                Keyframe, Tracked, Tracked, Tracked, Keyframe, Tracked, Tracked, Tracked, Keyframe
            ]
        );
        assert_eq!(state.keyframes(), 3);
        assert_eq!(state.tracked_frames(), 6);
        assert_eq!(state.drift_refreshes(), 0);
    }

    #[test]
    fn tracked_frames_skip_pool_and_detect() {
        let t = tracker(4);
        let mut state = TrackerState::new();
        let mut scratch = PipelineScratch::new();
        let frame = frame_with_object(60, 30);
        let key = t.run_frame(&frame, &mut state, &mut scratch).unwrap();
        let tracked = t.run_frame(&frame, &mut state, &mut scratch).unwrap();
        assert_eq!(tracked.kind, FrameKind::Tracked);
        // No stage-1 work at all on a tracked frame.
        assert_eq!(tracked.report.stage1, ReadoutStats::default());
        assert_eq!(tracked.report.pooling_outputs, 0);
        assert_eq!(tracked.report.stage1_image_bytes, 0);
        assert_eq!(tracked.report.timings.pool, std::time::Duration::ZERO);
        assert_eq!(tracked.report.timings.detect, std::time::Duration::ZERO);
        // But the same ROIs were read as the keyframe produced.
        assert_eq!(tracked.report.roi_count, key.report.roi_count);
        assert_eq!(tracked.report.stage2, key.report.stage2);
        // A tracked frame saves exactly the stage-1 traffic of a keyframe.
        assert_eq!(
            tracked.report.total_transfer_bits(),
            key.report.total_transfer_bits() - key.report.stage1.total_transfer_bits(),
            "tracked frame should cost a keyframe minus its stage-1 transfer"
        );
    }

    #[test]
    fn prediction_follows_constant_velocity_motion() {
        let t = tracker(4);
        let mut state = TrackerState::new();
        let mut scratch = PipelineScratch::new();
        // 3 px/frame rightward motion across two keyframe cycles.
        let mut id_at_first_key = None;
        for i in 0..9u32 {
            let report =
                t.run_frame(&frame_with_object(40 + 3 * i, 30), &mut state, &mut scratch).unwrap();
            assert!(report.active_tracks >= 1, "frame {i}: track lost");
            if i == 0 {
                id_at_first_key = Some(state.tracks()[0].id());
            }
        }
        // The association kept the identity across keyframes…
        assert_eq!(state.tracks()[0].id(), id_at_first_key.unwrap());
        // …the velocity estimate is sane (detector boxes snap to the
        // scan stride, so only bound it rather than pin it)…
        let (vx, vy) = state.tracks()[0].velocity();
        assert!(vx.abs() < 7.0 && vy.abs() < 7.0, "wild velocity estimate ({vx}, {vy})");
        // …the track still covers the object after 8 frames of motion…
        let object = Rect::new(40 + 3 * 8, 30, 32, 72);
        let iou = state.tracks()[0].base_rect(W, H).iou(&object);
        assert!(iou > 0.3, "track drifted off the object (IoU {iou})");
        // …and no drift refreshes were needed: prediction held.
        assert_eq!(state.drift_refreshes(), 0);
    }

    #[test]
    fn teleporting_object_fires_the_drift_trigger() {
        let t = tracker(8);
        let mut state = TrackerState::new();
        let mut scratch = PipelineScratch::new();
        t.run_frame(&frame_with_object(30, 30), &mut state, &mut scratch).unwrap();
        let r = t.run_frame(&frame_with_object(30, 30), &mut state, &mut scratch).unwrap();
        assert_eq!(r.kind, FrameKind::Tracked);
        // Mid-interval the object jumps far away: the predicted ROI now
        // reads flat background, whose mean is far from the reference.
        let r = t.run_frame(&frame_with_object(140, 40), &mut state, &mut scratch).unwrap();
        assert_eq!(r.kind, FrameKind::DriftRefresh, "drift trigger did not fire");
        assert_eq!(state.drift_refreshes(), 1);
        // The refreshed track follows the object at its new position.
        let (cx, _) = state.tracks()[0].center();
        assert!((cx - 156.0).abs() < 12.0, "track centre {cx} not at the new position");
        // A drift-refresh frame pays both readouts in its accounting.
        assert!(r.report.stage2.box_words_bits >= 2 * 64);
    }

    #[test]
    fn empty_scenes_re_detect_every_frame() {
        let t = tracker(4);
        let mut state = TrackerState::new();
        let mut scratch = PipelineScratch::new();
        let flat = RgbImage::from_fn(W, H, |_, _| (0.35, 0.35, 0.35));
        for _ in 0..3 {
            let r = t.run_frame(&flat, &mut state, &mut scratch).unwrap();
            // Nothing to track, so every frame falls back to detection.
            assert_eq!(r.kind, FrameKind::Keyframe);
            assert_eq!(r.active_tracks, 0);
            assert_eq!(r.report.roi_count, 0);
        }
    }

    #[test]
    fn reset_state_reproduces_the_sequence_bit_identically() {
        let t = tracker(3);
        let frames: Vec<RgbImage> = (0..7).map(|i| frame_with_object(40 + 4 * i, 32)).collect();
        let mut state = TrackerState::new();
        let mut scratch = PipelineScratch::new();
        let first: Vec<TemporalFrameReport> =
            frames.iter().map(|f| t.run_frame(f, &mut state, &mut scratch).unwrap()).collect();
        state.reset();
        let second: Vec<TemporalFrameReport> =
            frames.iter().map(|f| t.run_frame(f, &mut state, &mut scratch).unwrap()).collect();
        assert_eq!(first, second);
        // A completely fresh state/scratch pair agrees too.
        let mut fresh_state = TrackerState::new();
        let mut fresh_scratch = PipelineScratch::new();
        let third: Vec<TemporalFrameReport> = frames
            .iter()
            .map(|f| t.run_frame(f, &mut fresh_state, &mut fresh_scratch).unwrap())
            .collect();
        assert_eq!(first, third);
    }

    #[test]
    fn interval_one_degenerates_to_per_frame_detection() {
        let t = tracker(1);
        let mut state = TrackerState::new();
        let mut scratch = PipelineScratch::new();
        for i in 0..4u32 {
            let r =
                t.run_frame(&frame_with_object(40 + 2 * i, 30), &mut state, &mut scratch).unwrap();
            assert_eq!(r.kind, FrameKind::Keyframe);
        }
        assert_eq!(state.tracked_frames(), 0);
    }

    #[test]
    fn unreadable_crops_count_as_drifted_not_nan() {
        // Readable crops keep the original semantics.
        let flat = RgbImage::from_fn(4, 4, |_, _| (0.5, 0.5, 0.5));
        assert_eq!(crop_mean(&flat), Some(0.5));
        assert!(!crop_drifted(&flat, 0.5, 0.06));
        assert!(crop_drifted(&flat, 0.8, 0.06));
        // A NaN sample poisons `Plane::mean` — the degenerate-crop
        // hazard in its constructible form. The old comparison
        // `(NaN - reference).abs() > threshold` is always false, which
        // silently disabled the drift trigger for that track forever;
        // the NaN-rejecting form fires instead, at any threshold —
        // including the infinite one that legitimately disables the
        // trigger for *finite* shifts.
        let mut poisoned = flat.clone();
        poisoned.set_pixel(1, 1, (f32::NAN, 0.5, 0.5));
        assert!(crop_mean(&poisoned).unwrap().is_nan());
        assert!(crop_drifted(&poisoned, 0.5, 0.06));
        assert!(crop_drifted(&poisoned, 0.5, f32::INFINITY));
        assert!(!crop_drifted(&flat, 0.5, f32::INFINITY));
        // A poisoned *reference* (recorded at an earlier refresh) must
        // not disable the trigger either.
        assert!(crop_drifted(&flat, f32::NAN, 0.06));
        assert!(crop_drifted(&flat, f32::INFINITY, 0.06));
    }

    #[test]
    fn set_temporal_rewrites_the_cadence_of_a_live_pipeline() {
        let mut t = tracker(8);
        let mut state = TrackerState::new();
        let mut scratch = PipelineScratch::new();
        let frame = frame_with_object(60, 30);
        for _ in 0..3 {
            t.run_frame(&frame, &mut state, &mut scratch).unwrap();
        }
        assert_eq!(state.keyframes(), 1, "interval 8 schedules one keyframe in 3 frames");
        // Degenerate policies are rejected and leave the current one.
        assert!(t.set_temporal(TemporalConfig::default().keyframe_interval(0)).is_err());
        assert_eq!(t.temporal().keyframe_interval, 8);
        // Tighten to per-frame detection mid-sequence: takes effect on
        // the very next frame, tracker state intact.
        t.set_temporal(TemporalConfig::default().keyframe_interval(1)).unwrap();
        let r = t.run_frame(&frame, &mut state, &mut scratch).unwrap();
        assert_eq!(r.kind, FrameKind::Keyframe);
        assert_eq!(state.frame_index(), 4, "state survived the policy swap");
    }

    #[test]
    fn set_roi_margin_changes_the_readout_footprint() {
        let mut t = tracker(4);
        let mut state = TrackerState::new();
        let mut scratch = PipelineScratch::new();
        let frame = frame_with_object(60, 30);
        t.run_frame(&frame, &mut state, &mut scratch).unwrap();
        let tight = t.run_frame(&frame, &mut state, &mut scratch).unwrap();
        assert_eq!(tight.kind, FrameKind::Tracked);
        let tight_bits = tight.report.stage2.total_transfer_bits();
        t.set_roi_margin(8);
        assert_eq!(t.pipeline().config().roi_margin, 8);
        let wide = t.run_frame(&frame, &mut state, &mut scratch).unwrap();
        assert_eq!(wide.kind, FrameKind::Tracked);
        assert!(
            wide.report.stage2.total_transfer_bits() > tight_bits,
            "a wider margin must read more ROI pixels"
        );
    }

    #[test]
    fn checkpoint_restore_replays_the_tail_bit_identically() {
        let t = tracker(3);
        let frames: Vec<RgbImage> = (0..8).map(|i| frame_with_object(40 + 4 * i, 32)).collect();
        let mut state = TrackerState::new();
        let mut scratch = PipelineScratch::new();
        let mut checkpoint = TrackerCheckpoint::new();
        // Restoring before any snapshot is refused and changes nothing.
        assert!(!state.restore_from(&checkpoint));
        assert!(!checkpoint.is_valid());
        // Run 4 frames, snapshotting after the keyframe at index 3.
        let mut reference = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            reference.push(t.run_frame(f, &mut state, &mut scratch).unwrap());
            if i == 3 {
                state.checkpoint_into(&mut checkpoint);
            }
        }
        assert!(checkpoint.is_valid());
        assert_eq!(checkpoint.frame_index(), 4);
        // Rewind to the snapshot and replay frames 4..: every report and
        // the final tracker state must be bit-identical to the first run.
        assert!(state.restore_from(&checkpoint));
        assert_eq!(state.frame_index(), 4);
        for (i, f) in frames.iter().enumerate().skip(4) {
            let replay = t.run_frame(f, &mut state, &mut scratch).unwrap();
            assert_eq!(replay, reference[i], "frame {i} diverged after restore");
        }
        assert_eq!(
            state.tracks(),
            {
                let mut fresh = TrackerState::new();
                for f in &frames {
                    t.run_frame(f, &mut fresh, &mut scratch).unwrap();
                }
                fresh
            }
            .tracks()
        );
    }

    #[test]
    fn cleared_checkpoint_refuses_to_restore() {
        let t = tracker(4);
        let mut state = TrackerState::new();
        let mut scratch = PipelineScratch::new();
        t.run_frame(&frame_with_object(60, 30), &mut state, &mut scratch).unwrap();
        let mut checkpoint = TrackerCheckpoint::new();
        state.checkpoint_into(&mut checkpoint);
        assert!(checkpoint.is_valid());
        checkpoint.clear();
        assert!(!checkpoint.is_valid());
        let before = state.frame_index();
        assert!(!state.restore_from(&checkpoint));
        assert_eq!(state.frame_index(), before, "failed restore must not touch the state");
    }

    #[test]
    fn checkpoint_into_a_warm_buffer_reuses_capacity() {
        let t = tracker(4);
        let mut state = TrackerState::new();
        let mut scratch = PipelineScratch::new();
        let mut checkpoint = TrackerCheckpoint::new();
        t.run_frame(&frame_with_object(60, 30), &mut state, &mut scratch).unwrap();
        state.checkpoint_into(&mut checkpoint);
        let capacity = checkpoint.tracks.capacity();
        assert!(capacity >= state.tracks().len());
        // Re-snapshotting the same shape must not grow the buffer.
        t.run_frame(&frame_with_object(62, 30), &mut state, &mut scratch).unwrap();
        state.checkpoint_into(&mut checkpoint);
        assert_eq!(checkpoint.tracks.capacity(), capacity);
    }

    #[test]
    fn checkpoint_codec_round_trips_bit_exactly() {
        const MAGIC: [u8; 4] = *b"TEST";
        // Hand-built checkpoint with awkward geometry: negative
        // velocities, sub-pixel centres, a NaN drift reference (the
        // poisoned-track hazard case), and a non-zero cadence phase.
        let checkpoint = TrackerCheckpoint {
            tracks: vec![
                Track {
                    id: 7,
                    cx: 12.34375,
                    cy: -0.5,
                    w: 24,
                    h: 18,
                    vx: -1.25,
                    vy: 0.0625,
                    det_cx: 10.0,
                    det_cy: 0.75,
                    mean: f32::NAN,
                },
                Track {
                    id: 8,
                    cx: 99.0,
                    cy: 41.0,
                    w: 0,
                    h: 0,
                    vx: 0.0,
                    vy: 0.0,
                    det_cx: 99.0,
                    det_cy: 41.0,
                    mean: 0.25,
                },
            ],
            next_id: 9,
            frame_index: 1234,
            frames_since_detect: 3,
            keyframes: 300,
            drift_refreshes: 17,
            tracked_frames: 917,
            valid: true,
        };
        let mut enc = crate::recover::Encoder::new(MAGIC, 1);
        checkpoint.encode_into(&mut enc);
        let bytes = enc.finish();
        let mut dec = crate::recover::Decoder::new(&bytes, MAGIC, 1).unwrap();
        let decoded = TrackerCheckpoint::decode_from(&mut dec).unwrap();
        dec.finish().unwrap();
        // NaN breaks PartialEq, so compare through a re-encode: equal
        // bytes ⇔ bit-identical fields.
        let mut re = crate::recover::Encoder::new(MAGIC, 1);
        decoded.encode_into(&mut re);
        assert_eq!(re.finish(), bytes);
        assert_eq!(decoded.next_id, 9);
        assert_eq!(decoded.tracks.len(), 2);
        assert!(decoded.tracks[0].mean.is_nan());
        // An invalid (never-captured) checkpoint round-trips too.
        let mut enc = crate::recover::Encoder::new(MAGIC, 1);
        TrackerCheckpoint::new().encode_into(&mut enc);
        let bytes = enc.finish();
        let mut dec = crate::recover::Decoder::new(&bytes, MAGIC, 1).unwrap();
        assert!(!TrackerCheckpoint::decode_from(&mut dec).unwrap().is_valid());
    }

    #[test]
    fn track_rect_clips_to_the_array() {
        let track = Track {
            id: 0,
            cx: 5.0,
            cy: 5.0,
            w: 20,
            h: 20,
            vx: 0.0,
            vy: 0.0,
            det_cx: 5.0,
            det_cy: 5.0,
            mean: 0.0,
        };
        let r = track.base_rect(100, 100);
        assert_eq!(r, Rect::new(0, 0, 15, 15));
        let gone = Track { cx: -50.0, cy: -50.0, ..track };
        assert!(gone.base_rect(100, 100).is_degenerate());
    }
}
