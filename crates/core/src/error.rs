use std::error::Error;
use std::fmt;

use hirise_imaging::ImagingError;
use hirise_sensor::SensorError;

/// Error type for the HiRISE core library.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HiriseError {
    /// The configuration is inconsistent (pooling does not tile the array,
    /// zero dimensions, ...).
    InvalidConfig {
        /// Description of the violated constraint.
        reason: String,
    },
    /// The provided scene does not match the configured pixel array.
    SceneMismatch {
        /// Expected array dimensions.
        expected: (u32, u32),
        /// Provided scene dimensions.
        actual: (u32, u32),
    },
    /// Propagated sensor failure.
    Sensor(SensorError),
    /// Propagated imaging failure.
    Imaging(ImagingError),
}

impl fmt::Display for HiriseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HiriseError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            HiriseError::SceneMismatch { expected, actual } => write!(
                f,
                "scene is {}x{} but the pixel array is {}x{}",
                actual.0, actual.1, expected.0, expected.1
            ),
            HiriseError::Sensor(e) => write!(f, "sensor error: {e}"),
            HiriseError::Imaging(e) => write!(f, "imaging error: {e}"),
        }
    }
}

impl Error for HiriseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HiriseError::Sensor(e) => Some(e),
            HiriseError::Imaging(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SensorError> for HiriseError {
    fn from(e: SensorError) -> Self {
        HiriseError::Sensor(e)
    }
}

impl From<ImagingError> for HiriseError {
    fn from(e: ImagingError) -> Self {
        HiriseError::Imaging(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = HiriseError::InvalidConfig { reason: "k does not tile".into() };
        assert!(e.to_string().contains("invalid configuration"));
        assert!(e.source().is_none());
        let s: HiriseError = SensorError::InvalidConfig { parameter: "bits", value: 0.0 }.into();
        assert!(s.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<HiriseError>();
    }
}
