//! # hirise
//!
//! The HiRISE system: **hi**gh-**r**esolution **i**mage **s**caling for
//! **e**dge ML via in-sensor compression and selective ROI — the core
//! library of this reproduction of Reidy et al., DAC 2024.
//!
//! A HiRISE camera never converts or ships its full-resolution frame.
//! Instead it:
//!
//! 1. **compresses in the analog domain** — a resistive source-follower
//!    network averages `k×k` (optionally `×3` RGB) pixels before the ADC,
//! 2. runs a **stage-1 detector** on the small pooled image,
//! 3. sends only the detected **box coordinates** back to the sensor,
//! 4. reads out the **full-resolution ROIs** selectively for the stage-2
//!    task (e.g. face/expression recognition).
//!
//! This crate orchestrates the substrate crates into that end-to-end
//! pipeline with complete cost accounting:
//!
//! * [`HiriseConfig`] — builder-style system configuration,
//! * [`HirisePipeline`] — the two-stage pipeline over a
//!   [`hirise_sensor::Sensor`]; its
//!   [`run_with_scratch`](HirisePipeline::run_with_scratch) entry point
//!   reuses a [`PipelineScratch`] for a zero-allocation steady state,
//! * [`temporal`] — the video extension: a [`TrackingPipeline`] that
//!   persists ROIs across frames and re-runs the full stage-1 pool +
//!   detect only on keyframes or drift, so steady-state video frames do
//!   capture + selective ROI readout alone,
//! * [`baseline`] — the conventional full-frame system and the
//!   in-processor-scaling variant the paper compares against,
//! * [`analytical`] — the closed-form Table-1 model,
//! * [`report::RunReport`] — per-run transfer/memory/conversion/energy
//!   accounting aligned with the paper's metrics.
//!
//! # Quickstart
//!
//! ```
//! use hirise::{ColorMode, HiriseConfig, HirisePipeline};
//! use hirise_imaging::RgbImage;
//!
//! # fn main() -> Result<(), hirise::HiriseError> {
//! let scene = RgbImage::from_fn(256, 192, |x, y| {
//!     ((x % 16) as f32 / 16.0, (y % 16) as f32 / 16.0, 0.4)
//! });
//! let config = HiriseConfig::builder(256, 192)
//!     .pooling(8)
//!     .stage1_color(ColorMode::Gray)
//!     .build()?;
//! let pipeline = HirisePipeline::new(config);
//! let run = pipeline.run(&scene)?;
//! assert_eq!(run.pooled_image.width(), 32);
//! println!("{}", run.report);
//! # Ok(())
//! # }
//! ```

pub mod analytical;
pub mod baseline;
pub mod config;
pub mod pipeline;
pub mod recover;
pub mod report;
pub mod roi;
pub mod scratch;
pub mod stream;
pub mod temporal;
pub mod timing;

mod error;

pub use config::{HiriseConfig, HiriseConfigBuilder, TemporalConfig};
pub use error::HiriseError;
pub use pipeline::{HirisePipeline, PipelineRun};
pub use recover::RecoverError;
pub use report::{FrameKind, RunReport, TemporalFrameReport};
pub use scratch::PipelineScratch;
pub use stream::{
    SequenceStreamSummary, SequenceSummary, StreamConfig, StreamExecutor, StreamOrdering,
    StreamSummary,
};
pub use temporal::{TrackerCheckpoint, TrackerState, TrackingPipeline};
pub use timing::StageTimings;

// Re-export the substrate vocabulary users need at the top level.
pub use hirise_detect::{Detection, Detector, DetectorConfig};
pub use hirise_energy::{AdcEnergy, PoolingEnergy, RoiConversionModel};
pub use hirise_imaging::{Image, Rect, RgbImage};
pub use hirise_sensor::{ColorMode, NoiseRngMode, ReadoutStats, Sensor, SensorConfig};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, HiriseError>;
