//! Time-series storage for simulation traces, with interpolation, summary
//! statistics and CSV export (used by the Fig. 5 regeneration binary).

use std::io::Write;

use crate::{AnalogError, Result};

/// A sampled `(time, value)` trace with strictly increasing time stamps.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Waveform {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Waveform {
    /// Creates an empty waveform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a waveform from parallel vectors.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InputLengthMismatch`] if the vectors disagree
    /// in length.
    pub fn from_samples(times: Vec<f64>, values: Vec<f64>) -> Result<Self> {
        if times.len() != values.len() {
            return Err(AnalogError::InputLengthMismatch {
                expected: times.len(),
                actual: values.len(),
            });
        }
        Ok(Self { times, values })
    }

    /// Appends one sample; `t` must exceed the previous time stamp.
    ///
    /// # Panics
    ///
    /// Panics if time stamps are not strictly increasing.
    pub fn push(&mut self, t: f64, v: f64) {
        if let Some(&last) = self.times.last() {
            assert!(t > last, "waveform time stamps must increase ({t} after {last})");
        }
        self.times.push(t);
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when the waveform holds no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Time stamps.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Linear interpolation at time `t`; clamps outside the span.
    ///
    /// # Panics
    ///
    /// Panics on an empty waveform.
    pub fn sample_at(&self, t: f64) -> f64 {
        assert!(!self.is_empty(), "cannot sample an empty waveform");
        // A NaN time samples to NaN; letting it reach the search would
        // walk past the end (the old `partial_cmp().unwrap()` panicked
        // mid-search instead).
        if t.is_nan() {
            return f64::NAN;
        }
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= *self.times.last().unwrap() {
            return *self.values.last().unwrap();
        }
        let idx = match self.times.binary_search_by(|probe| probe.total_cmp(&t)) {
            Ok(i) => return self.values[i],
            Err(i) => i,
        };
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (v0, v1) = (self.values[idx - 1], self.values[idx]);
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Minimum value.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum value.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.len() as f64
    }

    /// Largest absolute difference from another waveform, comparing at this
    /// waveform's time stamps (the other is interpolated).
    pub fn max_abs_error(&self, other: &Waveform) -> f64 {
        self.times
            .iter()
            .zip(&self.values)
            .map(|(&t, &v)| (v - other.sample_at(t)).abs())
            .fold(0.0, f64::max)
    }

    /// Writes `time,value` CSV rows (with header) for a set of named
    /// waveforms sharing time stamps.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InputLengthMismatch`] when waveforms disagree
    /// in length; I/O errors are returned as `std::io::Error` converted to
    /// a mismatch-free panic-free result via the caller.
    pub fn write_csv<W: Write>(mut w: W, columns: &[(&str, &Waveform)]) -> std::io::Result<()> {
        if columns.is_empty() {
            return Ok(());
        }
        write!(w, "time")?;
        for (name, _) in columns {
            write!(w, ",{name}")?;
        }
        writeln!(w)?;
        let base = columns[0].1;
        for (i, &t) in base.times.iter().enumerate() {
            write!(w, "{t:.9e}")?;
            for (_, wf) in columns {
                let v = if i < wf.len() { wf.values[i] } else { f64::NAN };
                write!(w, ",{v:.6e}")?;
            }
            writeln!(w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 20.0]).unwrap()
    }

    #[test]
    fn from_samples_checks_length() {
        assert!(Waveform::from_samples(vec![0.0], vec![]).is_err());
    }

    #[test]
    fn sample_at_nan_time_is_nan_not_a_panic() {
        // The old `partial_cmp().unwrap()` panicked inside the binary
        // search; a NaN sample time now propagates NaN, and ordinary
        // interpolation is untouched.
        let w = ramp();
        assert!(w.sample_at(f64::NAN).is_nan());
        assert_eq!(w.sample_at(0.5), 5.0);
        assert_eq!(w.sample_at(-1.0), 0.0);
        assert_eq!(w.sample_at(9.0), 20.0);
    }

    #[test]
    fn push_enforces_monotonic_time() {
        let mut w = Waveform::new();
        w.push(0.0, 1.0);
        w.push(1.0, 2.0);
        assert_eq!(w.len(), 2);
        let result = std::panic::catch_unwind(move || {
            let mut w2 = Waveform::new();
            w2.push(1.0, 0.0);
            w2.push(0.5, 0.0);
        });
        assert!(result.is_err());
    }

    #[test]
    fn sample_interpolates_and_clamps() {
        let w = ramp();
        assert_eq!(w.sample_at(-1.0), 0.0);
        assert_eq!(w.sample_at(0.5), 5.0);
        assert_eq!(w.sample_at(1.0), 10.0);
        assert_eq!(w.sample_at(99.0), 20.0);
    }

    #[test]
    fn stats() {
        let w = ramp();
        assert_eq!(w.min(), 0.0);
        assert_eq!(w.max(), 20.0);
        assert_eq!(w.mean(), 10.0);
    }

    #[test]
    fn max_abs_error_between_traces() {
        let a = ramp();
        let b = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![1.0, 10.0, 18.0]).unwrap();
        assert!((a.max_abs_error(&b) - 2.0).abs() < 1e-12);
        assert_eq!(a.max_abs_error(&a), 0.0);
    }

    #[test]
    fn csv_output_shape() {
        let a = ramp();
        let mut buf = Vec::new();
        Waveform::write_csv(&mut buf, &[("a", &a), ("b", &a)]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "time,a,b");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("0.0"));
    }

    #[test]
    fn csv_empty_columns_ok() {
        let mut buf = Vec::new();
        Waveform::write_csv(&mut buf, &[]).unwrap();
        assert!(buf.is_empty());
    }
}
