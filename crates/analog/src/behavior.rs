//! Behavioural-model extraction for the pooling circuit.
//!
//! The transistor-level circuit maps the *mean* of its pixel inputs to the
//! `avg` node through a nearly linear transfer `v_avg ≈ gain · mean + offset`
//! (the gain is set by the resistive divider, the offset by the follower's
//! `V_GS` drop and the `−VDD` pull). System-level simulation of megapixel
//! arrays cannot afford a transistor-level solve per pooled output, so
//! [`PoolingBehavior::fit`] runs a DC sweep once, fits the line, and records
//! the worst-case residual (the circuit's systematic nonlinearity). The
//! sensor crate (`hirise-sensor`) then applies the fitted map plus noise —
//! a behavioural model that is *traceable* to the transistor netlist.

use crate::pooling::PoolingCircuit;
use crate::{AnalogError, Result};

/// A fitted linear behavioural model of the Fig.-4 averaging circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolingBehavior {
    /// Small-signal gain from mean input to output.
    pub gain: f64,
    /// Output offset, volts.
    pub offset: f64,
    /// Worst absolute deviation from the fitted line over the sweep, volts.
    pub max_residual: f64,
    /// Input range (lo, hi) over which the fit was performed, volts.
    pub range: (f64, f64),
    /// Number of inputs of the fitted circuit.
    pub inputs: usize,
}

impl PoolingBehavior {
    /// Fits the model by sweeping the common-mode input over
    /// `range.0 ..= range.1` with `samples` points (common-mode inputs make
    /// the mean exact by construction).
    ///
    /// # Errors
    ///
    /// Propagates solver failures; requires `samples >= 3`.
    pub fn fit(circuit: &PoolingCircuit, range: (f64, f64), samples: usize) -> Result<Self> {
        if samples < 3 || !(range.1 > range.0) {
            return Err(AnalogError::InvalidParameter {
                device: "behavior fit",
                parameter: "samples/range",
                value: samples as f64,
            });
        }
        let n = circuit.input_count();
        let mut xs = Vec::with_capacity(samples);
        let mut ys = Vec::with_capacity(samples);
        for i in 0..samples {
            let v = range.0 + (range.1 - range.0) * i as f64 / (samples - 1) as f64;
            xs.push(v);
            ys.push(circuit.dc_average(&vec![v; n])?);
        }
        let m = samples as f64;
        let mx = xs.iter().sum::<f64>() / m;
        let my = ys.iter().sum::<f64>() / m;
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let gain = sxy / sxx;
        let offset = my - gain * mx;
        let max_residual =
            xs.iter().zip(&ys).map(|(x, y)| (y - (gain * x + offset)).abs()).fold(0.0, f64::max);
        Ok(Self { gain, offset, max_residual, range, inputs: n })
    }

    /// Forward map: circuit output voltage for a given mean input.
    pub fn apply(&self, mean: f64) -> f64 {
        self.gain * mean + self.offset
    }

    /// Inverse map: the digital calibration the readout applies after the
    /// ADC to recover the mean pixel value from the converted output.
    pub fn invert(&self, v_avg: f64) -> f64 {
        (v_avg - self.offset) / self.gain
    }

    /// End-to-end averaging error of the circuit for a specific (generally
    /// non-uniform) input vector: `|invert(circuit(inputs)) − mean(inputs)|`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn averaging_error(&self, circuit: &PoolingCircuit, inputs: &[f64]) -> Result<f64> {
        let out = circuit.dc_average(inputs)?;
        let mean = inputs.iter().sum::<f64>() / inputs.len() as f64;
        Ok((self.invert(out) - mean).abs())
    }
}

/// The behavioural constants the sensor crate uses by default, extracted
/// from a 12-input (2×2 pooling × RGB) circuit at `VDD = 1 V`,
/// `R = 100 kΩ` with default 45 nm-ish MOS parameters.
///
/// An integration test in `hirise-sensor` re-runs the fit and asserts these
/// stay in sync with the transistor-level truth.
pub mod calibrated {
    /// Fitted gain of the 12-input pooling circuit (resistive divider ≈ 0.5
    /// degraded slightly by the follower output resistance).
    pub const GAIN_12: f64 = 0.483493;
    /// Fitted offset, volts.
    pub const OFFSET_12: f64 = -0.715756;
    /// Worst systematic nonlinearity over the 0.3–0.9 V input range, volts.
    pub const MAX_RESIDUAL_12: f64 = 1.1e-3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_linear_map() {
        let pc = PoolingCircuit::builder(4).build().unwrap();
        let b = PoolingBehavior::fit(&pc, (0.3, 0.9), 13).unwrap();
        assert!(b.gain > 0.3 && b.gain < 0.6, "gain {}", b.gain);
        assert!(b.offset < 0.0, "offset {}", b.offset);
        assert!(b.max_residual < 5e-3, "residual {}", b.max_residual);
        assert_eq!(b.inputs, 4);
    }

    #[test]
    fn invert_is_inverse_of_apply() {
        let b = PoolingBehavior {
            gain: 0.45,
            offset: -0.8,
            max_residual: 0.0,
            range: (0.0, 1.0),
            inputs: 4,
        };
        for v in [0.0, 0.25, 0.7, 1.0] {
            assert!((b.invert(b.apply(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn calibrated_recovery_of_nonuniform_means() {
        let pc = PoolingCircuit::builder(4).build().unwrap();
        let b = PoolingBehavior::fit(&pc, (0.3, 0.9), 13).unwrap();
        // Non-uniform inputs in the fitted range: the recovered mean must be
        // within a percent of the true mean.
        for inputs in [[0.4, 0.6, 0.5, 0.7], [0.32, 0.88, 0.6, 0.6], [0.9, 0.3, 0.9, 0.3]] {
            let err = b.averaging_error(&pc, &inputs).unwrap();
            assert!(err < 0.015, "averaging error {err} for {inputs:?}");
        }
    }

    #[test]
    fn fit_rejects_bad_config() {
        let pc = PoolingCircuit::builder(2).build().unwrap();
        assert!(PoolingBehavior::fit(&pc, (0.3, 0.9), 2).is_err());
        assert!(PoolingBehavior::fit(&pc, (0.9, 0.3), 10).is_err());
    }

    #[test]
    fn gain_close_to_half_without_row_select() {
        // Without the series row-select device the divider dominates:
        // gain should approach the ideal 0.5 more closely.
        let pc = PoolingCircuit::builder(4).row_select(false).build().unwrap();
        let b = PoolingBehavior::fit(&pc, (0.3, 0.9), 13).unwrap();
        assert!(b.gain > 0.40 && b.gain < 0.55, "gain {}", b.gain);
    }
}
