//! # hirise-analog
//!
//! A small SPICE-like analog circuit simulator, built to reproduce the
//! HiRISE in-sensor compression circuit (paper Fig. 4) and its SPICE
//! validation (paper Fig. 5) without a proprietary simulator or PDK.
//!
//! The simulator implements:
//!
//! * a level-1 (square-law) MOSFET model with cutoff / triode / saturation
//!   regions, channel-length modulation and drain–source swap handling,
//! * resistors, capacitors, and independent voltage/current sources with
//!   DC, pulse, piecewise-linear and sine stimuli,
//! * modified nodal analysis (MNA) with Newton–Raphson for nonlinear DC
//!   operating points and backward-Euler transient analysis,
//! * dense LU solving with partial pivoting (circuit sizes here stay in the
//!   hundreds of unknowns),
//! * the HiRISE *pooling circuit builder* ([`pooling::PoolingCircuit`]):
//!   `N` pixel source followers driving a common node through `N·R`
//!   resistors, pulled to `−VDD` through `R` — the topology of Fig. 4,
//! * the Fig. 5 test benches ([`testbench`]) and a behavioural-model
//!   extractor ([`behavior`]) that fits the circuit's gain/offset/
//!   nonlinearity so the system-level sensor model (`hirise-sensor`) stays
//!   faithful to the transistor-level truth.
//!
//! # Example: average of two analog inputs (Fig. 5a)
//!
//! ```
//! use hirise_analog::pooling::PoolingCircuit;
//!
//! # fn main() -> Result<(), hirise_analog::AnalogError> {
//! let circuit = PoolingCircuit::builder(2).build()?;
//! let out = circuit.dc_average(&[0.9, 0.5])?;
//! // The node tracks the mean through a linear gain/offset; the fitted
//! // behavioural model recovers the mean to sub-percent accuracy.
//! assert!(out.is_finite());
//! # Ok(())
//! # }
//! ```

pub mod behavior;
pub mod device;
pub mod netlist;
pub mod pooling;
pub mod solver;
pub mod testbench;
pub mod waveform;

mod error;

pub use error::AnalogError;
pub use netlist::{Circuit, NodeId};
pub use solver::{DcSolution, Simulator, TransientResult};
pub use waveform::Waveform;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AnalogError>;
