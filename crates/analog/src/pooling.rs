//! The HiRISE in-sensor averaging circuit (paper Fig. 4).
//!
//! Topology, per input pixel `i` of `N`:
//!
//! ```text
//!   VDD ──┬───────────────┐
//!         │ D             │ D
//!   pix_i ┤G  T3 (SF)     ├ T4 (RS, gate at VDD)
//!         │ S             │
//!         └── sf_i ───────┘
//!                │
//!               [N·R]
//!                │
//!   avg ─────────┴───[R]─── -VDD
//! ```
//!
//! Every pixel's source follower drives the shared `avg` node through an
//! `N·R` resistor; the parallel combination of the `N` legs equals `R`, so
//! together with the `R` pull-down to `−VDD` the node sits at
//! `(mean(v_sf) − VDD) / 2` — a *linear* function of the mean of the pixel
//! voltages. The negative rail keeps the follower `V_DS` headroom condition
//! (paper Eq. 4) satisfied across the full input range.

use crate::device::{MosParams, Stimulus};
use crate::netlist::{Circuit, NodeId, SourceId};
use crate::solver::{Simulator, TransientResult};
use crate::{AnalogError, Result};

/// Configuration for a [`PoolingCircuit`]; see [`PoolingCircuit::builder`].
#[derive(Debug, Clone)]
pub struct PoolingCircuitBuilder {
    n: usize,
    vdd: f64,
    r_ohms: f64,
    mos: MosParams,
    row_select: bool,
    load_cap: f64,
}

impl PoolingCircuitBuilder {
    /// Supply voltage (also used for `−VDD`), default `1.0 V`.
    pub fn vdd(mut self, vdd: f64) -> Self {
        self.vdd = vdd;
        self
    }

    /// Base resistance `R`, default `100 kΩ`; each leg uses `N·R`.
    pub fn r_ohms(mut self, r_ohms: f64) -> Self {
        self.r_ohms = r_ohms;
        self
    }

    /// MOSFET parameters for both the source follower and row select.
    pub fn mos(mut self, mos: MosParams) -> Self {
        self.mos = mos;
        self
    }

    /// Whether to include the T4 row-select transistor in each leg
    /// (default `true`, as drawn in the paper).
    pub fn row_select(mut self, enabled: bool) -> Self {
        self.row_select = enabled;
        self
    }

    /// Capacitive load at the `avg` node, default `1 pF` (sets the
    /// transient settling slope seen in Fig. 5).
    pub fn load_cap(mut self, farads: f64) -> Self {
        self.load_cap = farads;
        self
    }

    /// Builds the circuit.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction failures (non-physical parameters).
    pub fn build(self) -> Result<PoolingCircuit> {
        if self.n == 0 {
            return Err(AnalogError::InvalidParameter {
                device: "pooling circuit",
                parameter: "inputs",
                value: 0.0,
            });
        }
        let mut circuit = Circuit::new();
        let vdd = circuit.add_node("vdd");
        let vneg = circuit.add_node("vneg");
        let avg = circuit.add_node("avg");
        circuit.add_voltage_source(vdd, Circuit::gnd(), Stimulus::Dc(self.vdd))?;
        circuit.add_voltage_source(vneg, Circuit::gnd(), Stimulus::Dc(-self.vdd))?;
        circuit.add_resistor(avg, vneg, self.r_ohms)?;
        circuit.add_capacitor(avg, Circuit::gnd(), self.load_cap)?;

        let leg_r = self.n as f64 * self.r_ohms;
        let mut inputs = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let pix = circuit.add_node(format!("pix{i}"));
            let sf = circuit.add_node(format!("sf{i}"));
            let src = circuit.add_voltage_source(pix, Circuit::gnd(), Stimulus::Dc(0.0))?;
            circuit.add_nmos(vdd, pix, sf, self.mos)?;
            let leg_top = if self.row_select {
                let rs = circuit.add_node(format!("rs{i}"));
                circuit.add_nmos(sf, vdd, rs, self.mos)?;
                rs
            } else {
                sf
            };
            circuit.add_resistor(leg_top, avg, leg_r)?;
            inputs.push(src);
        }
        Ok(PoolingCircuit { circuit, inputs, avg, vdd: self.vdd })
    }
}

/// A built Fig.-4 averaging circuit with `N` pixel inputs.
///
/// # Example
///
/// ```
/// use hirise_analog::pooling::PoolingCircuit;
///
/// # fn main() -> Result<(), hirise_analog::AnalogError> {
/// let pc = PoolingCircuit::builder(4).build()?;
/// // Equal inputs: the output equals the common-mode transfer value.
/// let v_equal = pc.dc_average(&[0.6; 4])?;
/// // Mixed inputs with the same mean land on (nearly) the same output.
/// let v_mixed = pc.dc_average(&[0.4, 0.8, 0.5, 0.7])?;
/// assert!((v_equal - v_mixed).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PoolingCircuit {
    circuit: Circuit,
    inputs: Vec<SourceId>,
    avg: NodeId,
    vdd: f64,
}

impl PoolingCircuit {
    /// Starts building a circuit with `n` pixel inputs.
    pub fn builder(n: usize) -> PoolingCircuitBuilder {
        PoolingCircuitBuilder {
            n,
            vdd: 1.0,
            r_ohms: 100_000.0,
            mos: MosParams::default(),
            row_select: true,
            load_cap: 1e-12,
        }
    }

    /// Number of pixel inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// The shared output node `avg`.
    pub fn avg_node(&self) -> NodeId {
        self.avg
    }

    /// Supply voltage the circuit was built with.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Borrow of the underlying netlist (e.g. for custom analyses).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    fn with_stimuli(&self, stimuli: &[Stimulus]) -> Result<Circuit> {
        if stimuli.len() != self.inputs.len() {
            return Err(AnalogError::InputLengthMismatch {
                expected: self.inputs.len(),
                actual: stimuli.len(),
            });
        }
        let mut c = self.circuit.clone();
        for (src, stim) in self.inputs.iter().zip(stimuli) {
            c.set_stimulus(*src, stim.clone())?;
        }
        Ok(c)
    }

    /// Solves the DC operating point for the given pixel voltages and
    /// returns the `avg` node voltage.
    ///
    /// # Errors
    ///
    /// [`AnalogError::InputLengthMismatch`] if `inputs.len() != N`, plus
    /// solver failures.
    pub fn dc_average(&self, inputs: &[f64]) -> Result<f64> {
        let stimuli: Vec<Stimulus> = inputs.iter().map(|&v| Stimulus::Dc(v)).collect();
        let c = self.with_stimuli(&stimuli)?;
        let dc = Simulator::new(&c).dc()?;
        Ok(dc.voltage(self.avg))
    }

    /// Runs a transient with per-input stimuli and returns the full result
    /// (probe the output with [`PoolingCircuit::avg_node`]).
    ///
    /// # Errors
    ///
    /// [`AnalogError::InputLengthMismatch`] if `stimuli.len() != N`, plus
    /// solver failures.
    pub fn transient(&self, stimuli: &[Stimulus], step: f64, stop: f64) -> Result<TransientResult> {
        let c = self.with_stimuli(stimuli)?;
        Simulator::new(&c).transient(step, stop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_inputs_rejected() {
        assert!(PoolingCircuit::builder(0).build().is_err());
    }

    #[test]
    fn output_is_linear_in_common_mode() {
        let pc = PoolingCircuit::builder(4).build().unwrap();
        // Sample the common-mode transfer curve in the follower's active
        // region and verify near-perfect linearity (r^2 via residuals).
        let xs: Vec<f64> = (4..=9).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|&v| pc.dc_average(&[v; 4]).unwrap()).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        for (x, y) in xs.iter().zip(&ys) {
            let residual = (y - (slope * x + intercept)).abs();
            assert!(residual < 0.003, "nonlinearity {residual} at input {x}");
        }
        // Ideal divider gain is 0.5; follower output resistance lowers it a bit.
        assert!(slope > 0.35 && slope < 0.55, "slope {slope}");
    }

    #[test]
    fn output_depends_on_mean_not_permutation() {
        let pc = PoolingCircuit::builder(4).build().unwrap();
        let a = pc.dc_average(&[0.5, 0.6, 0.7, 0.8]).unwrap();
        let b = pc.dc_average(&[0.8, 0.7, 0.6, 0.5]).unwrap();
        assert!((a - b).abs() < 1e-9, "permutation changed output: {a} vs {b}");
    }

    #[test]
    fn output_monotone_in_any_single_input() {
        let pc = PoolingCircuit::builder(3).build().unwrap();
        let mut last = f64::NEG_INFINITY;
        for v in [0.4, 0.55, 0.7, 0.85] {
            let out = pc.dc_average(&[v, 0.6, 0.6]).unwrap();
            assert!(out > last, "not monotone at {v}");
            last = out;
        }
    }

    #[test]
    fn input_length_checked() {
        let pc = PoolingCircuit::builder(3).build().unwrap();
        assert!(matches!(
            pc.dc_average(&[0.5; 2]),
            Err(AnalogError::InputLengthMismatch { expected: 3, actual: 2 })
        ));
    }

    #[test]
    fn row_select_adds_series_drop_but_keeps_averaging() {
        let with_rs = PoolingCircuit::builder(2).build().unwrap();
        let without_rs = PoolingCircuit::builder(2).row_select(false).build().unwrap();
        let v_rs = with_rs.dc_average(&[0.6, 0.8]).unwrap();
        let v_plain = without_rs.dc_average(&[0.6, 0.8]).unwrap();
        // Both average; the row-select changes the operating point slightly.
        assert!((v_rs - v_plain).abs() < 0.2);
        // Averaging property holds for both.
        let v_rs_eq = with_rs.dc_average(&[0.7, 0.7]).unwrap();
        assert!((v_rs - v_rs_eq).abs() < 0.01);
    }

    #[test]
    fn transient_follows_step_with_settling() {
        let pc = PoolingCircuit::builder(2).load_cap(1e-12).build().unwrap();
        let step_in = Stimulus::Pulse {
            v1: 0.4,
            v2: 0.8,
            delay: 1e-6,
            rise: 0.0,
            fall: 0.0,
            width: 1.0,
            period: 0.0,
        };
        let tr = pc.transient(&[step_in, Stimulus::Dc(0.6)], 20e-9, 3e-6).unwrap();
        let w = tr.waveform(pc.avg_node());
        let before = w.sample_at(0.9e-6);
        let after = w.sample_at(2.9e-6);
        assert!(after > before, "avg did not rise after input step");
        // RC settling: mid-transition value lies strictly between.
        let mid = w.sample_at(1.02e-6);
        assert!(mid > before - 1e-6 && mid < after + 1e-6);
    }

    #[test]
    fn scales_to_many_inputs_dc() {
        // The paper extends the bench to 192 inputs; a 48-input DC solve
        // keeps unit-test time low while exercising the same scaling.
        let n = 48;
        let pc = PoolingCircuit::builder(n).row_select(false).build().unwrap();
        let inputs: Vec<f64> = (0..n).map(|i| 0.4 + 0.4 * (i as f64 / (n - 1) as f64)).collect();
        let v_mixed = pc.dc_average(&inputs).unwrap();
        let mean = inputs.iter().sum::<f64>() / n as f64;
        let v_eq = pc.dc_average(&vec![mean; n]).unwrap();
        assert!((v_mixed - v_eq).abs() < 0.02, "mixed {v_mixed} vs common-mode {v_eq}");
    }
}
