use std::error::Error;
use std::fmt;

/// Error type for circuit construction and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalogError {
    /// A device referenced a node that was never created.
    UnknownNode {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the circuit.
        node_count: usize,
    },
    /// A device parameter is non-physical (negative resistance, zero width…).
    InvalidParameter {
        /// Device kind, e.g. `"resistor"`.
        device: &'static str,
        /// Parameter name.
        parameter: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Newton–Raphson failed to converge.
    NoConvergence {
        /// Iterations attempted.
        iterations: usize,
        /// Residual voltage delta at the last iteration.
        residual: f64,
    },
    /// The MNA matrix was singular (floating node or degenerate topology).
    SingularMatrix {
        /// Pivot column where elimination failed.
        pivot: usize,
    },
    /// Transient parameters were invalid (non-positive step or span).
    InvalidTransient {
        /// Requested step size in seconds.
        step: f64,
        /// Requested stop time in seconds.
        stop: f64,
    },
    /// An input slice had the wrong length for the circuit.
    InputLengthMismatch {
        /// Expected number of inputs.
        expected: usize,
        /// Provided number of inputs.
        actual: usize,
    },
}

impl fmt::Display for AnalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalogError::UnknownNode { node, node_count } => {
                write!(f, "node {node} does not exist (circuit has {node_count} nodes)")
            }
            AnalogError::InvalidParameter { device, parameter, value } => {
                write!(f, "invalid {device} parameter {parameter} = {value}")
            }
            AnalogError::NoConvergence { iterations, residual } => write!(
                f,
                "newton iteration did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            AnalogError::SingularMatrix { pivot } => {
                write!(f, "singular mna matrix at pivot {pivot} (floating node?)")
            }
            AnalogError::InvalidTransient { step, stop } => {
                write!(f, "invalid transient window: step {step}, stop {stop}")
            }
            AnalogError::InputLengthMismatch { expected, actual } => {
                write!(f, "expected {expected} inputs, got {actual}")
            }
        }
    }
}

impl Error for AnalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_nonempty() {
        let errs = [
            AnalogError::UnknownNode { node: 9, node_count: 3 },
            AnalogError::InvalidParameter { device: "resistor", parameter: "ohms", value: -1.0 },
            AnalogError::NoConvergence { iterations: 100, residual: 1.0 },
            AnalogError::SingularMatrix { pivot: 2 },
            AnalogError::InvalidTransient { step: 0.0, stop: 1.0 },
            AnalogError::InputLengthMismatch { expected: 2, actual: 3 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<AnalogError>();
    }
}
