//! Circuit netlist construction.

use crate::device::{MosParams, Stimulus};
use crate::{AnalogError, Result};

/// Handle to a circuit node. Node 0 is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index of this node (0 = ground).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Handle to an independent voltage source (used to retrieve branch current).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) struct ResistorInst {
    pub a: usize,
    pub b: usize,
    pub conductance: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct CapacitorInst {
    pub a: usize,
    pub b: usize,
    pub farads: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct VsourceInst {
    pub pos: usize,
    pub neg: usize,
    pub stimulus: Stimulus,
}

#[derive(Debug, Clone)]
pub(crate) struct IsourceInst {
    pub from: usize,
    pub to: usize,
    pub stimulus: Stimulus,
}

#[derive(Debug, Clone)]
pub(crate) struct MosfetInst {
    pub drain: usize,
    pub gate: usize,
    pub source: usize,
    pub params: MosParams,
}

/// A flat netlist of nodes and devices, built incrementally.
///
/// # Example
///
/// ```
/// use hirise_analog::{Circuit, Simulator};
/// use hirise_analog::device::Stimulus;
///
/// # fn main() -> Result<(), hirise_analog::AnalogError> {
/// let mut c = Circuit::new();
/// let vin = c.add_node("vin");
/// let out = c.add_node("out");
/// c.add_voltage_source(vin, Circuit::gnd(), Stimulus::Dc(1.0))?;
/// c.add_resistor(vin, out, 1_000.0)?;
/// c.add_resistor(out, Circuit::gnd(), 1_000.0)?;
/// let dc = Simulator::new(&c).dc()?;
/// assert!((dc.voltage(out) - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    pub(crate) resistors: Vec<ResistorInst>,
    pub(crate) capacitors: Vec<CapacitorInst>,
    pub(crate) vsources: Vec<VsourceInst>,
    pub(crate) isources: Vec<IsourceInst>,
    pub(crate) mosfets: Vec<MosfetInst>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Self { node_names: vec!["0".to_string()], ..Default::default() }
    }

    /// The ground node.
    pub fn gnd() -> NodeId {
        NodeId::GROUND
    }

    /// Creates a named node and returns its handle.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        self.node_names.push(name.into());
        NodeId(self.node_names.len() - 1)
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of independent voltage sources.
    pub fn vsource_count(&self) -> usize {
        self.vsources.len()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this circuit.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    fn check_node(&self, node: NodeId) -> Result<()> {
        if node.0 >= self.node_names.len() {
            return Err(AnalogError::UnknownNode {
                node: node.0,
                node_count: self.node_names.len(),
            });
        }
        Ok(())
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and non-positive resistance.
    pub fn add_resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> Result<()> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !(ohms > 0.0) || !ohms.is_finite() {
            return Err(AnalogError::InvalidParameter {
                device: "resistor",
                parameter: "ohms",
                value: ohms,
            });
        }
        self.resistors.push(ResistorInst { a: a.0, b: b.0, conductance: 1.0 / ohms });
        Ok(())
    }

    /// Adds a capacitor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and non-positive capacitance.
    pub fn add_capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> Result<()> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !(farads > 0.0) || !farads.is_finite() {
            return Err(AnalogError::InvalidParameter {
                device: "capacitor",
                parameter: "farads",
                value: farads,
            });
        }
        self.capacitors.push(CapacitorInst { a: a.0, b: b.0, farads });
        Ok(())
    }

    /// Adds an independent voltage source with `pos`/`neg` terminals.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes.
    pub fn add_voltage_source(
        &mut self,
        pos: NodeId,
        neg: NodeId,
        stimulus: Stimulus,
    ) -> Result<SourceId> {
        self.check_node(pos)?;
        self.check_node(neg)?;
        self.vsources.push(VsourceInst { pos: pos.0, neg: neg.0, stimulus });
        Ok(SourceId(self.vsources.len() - 1))
    }

    /// Adds an independent current source pushing conventional current from
    /// `from` into `to`.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes.
    pub fn add_current_source(
        &mut self,
        from: NodeId,
        to: NodeId,
        stimulus: Stimulus,
    ) -> Result<()> {
        self.check_node(from)?;
        self.check_node(to)?;
        self.isources.push(IsourceInst { from: from.0, to: to.0, stimulus });
        Ok(())
    }

    /// Adds an NMOS transistor (drain, gate, source).
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and non-physical parameters.
    pub fn add_nmos(
        &mut self,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        params: MosParams,
    ) -> Result<()> {
        self.check_node(drain)?;
        self.check_node(gate)?;
        self.check_node(source)?;
        if !(params.k > 0.0) || !(params.lambda >= 0.0) || !params.vth.is_finite() {
            return Err(AnalogError::InvalidParameter {
                device: "nmos",
                parameter: "k/lambda/vth",
                value: params.k,
            });
        }
        self.mosfets.push(MosfetInst { drain: drain.0, gate: gate.0, source: source.0, params });
        Ok(())
    }

    /// Replaces the stimulus of an existing voltage source (used to re-run
    /// a built circuit under new inputs without rebuilding the netlist).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::UnknownNode`] if the source id is stale.
    pub fn set_stimulus(&mut self, src: SourceId, stimulus: Stimulus) -> Result<()> {
        match self.vsources.get_mut(src.0) {
            Some(v) => {
                v.stimulus = stimulus;
                Ok(())
            }
            None => Err(AnalogError::UnknownNode { node: src.0, node_count: self.vsources.len() }),
        }
    }

    /// Total device count (all kinds).
    pub fn device_count(&self) -> usize {
        self.resistors.len()
            + self.capacitors.len()
            + self.vsources.len()
            + self.isources.len()
            + self.mosfets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_sequential() {
        let mut c = Circuit::new();
        let a = c.add_node("a");
        let b = c.add_node("b");
        assert_eq!(a.index(), 1);
        assert_eq!(b.index(), 2);
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.node_name(Circuit::gnd()), "0");
    }

    #[test]
    fn rejects_unknown_node() {
        let mut c = Circuit::new();
        let a = c.add_node("a");
        let ghost = NodeId(99);
        assert!(c.add_resistor(a, ghost, 1.0).is_err());
        assert!(c.add_capacitor(ghost, a, 1e-12).is_err());
        assert!(c.add_voltage_source(ghost, a, Stimulus::Dc(1.0)).is_err());
        assert!(c.add_current_source(a, ghost, Stimulus::Dc(1.0)).is_err());
        assert!(c.add_nmos(a, ghost, a, MosParams::default()).is_err());
    }

    #[test]
    fn rejects_nonphysical_values() {
        let mut c = Circuit::new();
        let a = c.add_node("a");
        assert!(c.add_resistor(a, Circuit::gnd(), 0.0).is_err());
        assert!(c.add_resistor(a, Circuit::gnd(), -5.0).is_err());
        assert!(c.add_resistor(a, Circuit::gnd(), f64::NAN).is_err());
        assert!(c.add_capacitor(a, Circuit::gnd(), 0.0).is_err());
        let bad = MosParams { k: 0.0, ..Default::default() };
        assert!(c.add_nmos(a, a, a, bad).is_err());
    }

    #[test]
    fn device_count_tracks_all_kinds() {
        let mut c = Circuit::new();
        let a = c.add_node("a");
        c.add_resistor(a, Circuit::gnd(), 1.0).unwrap();
        c.add_capacitor(a, Circuit::gnd(), 1e-12).unwrap();
        c.add_voltage_source(a, Circuit::gnd(), Stimulus::Dc(1.0)).unwrap();
        c.add_current_source(a, Circuit::gnd(), Stimulus::Dc(1e-6)).unwrap();
        c.add_nmos(a, a, a, MosParams::default()).unwrap();
        assert_eq!(c.device_count(), 5);
        assert_eq!(c.vsource_count(), 1);
    }
}
