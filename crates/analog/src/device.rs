//! Device models: resistor, capacitor, independent sources and the level-1
//! MOSFET used for the pixel source follower and row-select switch.

/// Stimulus of an independent source as a function of time.
#[derive(Debug, Clone, PartialEq)]
pub enum Stimulus {
    /// Constant value.
    Dc(f64),
    /// SPICE-style pulse: `v1 → v2` with delay, rise, fall, width, period.
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge, seconds.
        delay: f64,
        /// Rise time, seconds.
        rise: f64,
        /// Fall time, seconds.
        fall: f64,
        /// Time spent at `v2`, seconds.
        width: f64,
        /// Repetition period, seconds (0 disables repetition).
        period: f64,
    },
    /// Piecewise-linear `(time, value)` corner list; must be sorted by time.
    Pwl(Vec<(f64, f64)>),
    /// `offset + amplitude * sin(2π freq (t - delay))`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Peak amplitude.
        amplitude: f64,
        /// Frequency in Hz.
        freq: f64,
        /// Start delay, seconds.
        delay: f64,
    },
}

impl Stimulus {
    /// Evaluates the stimulus at time `t` (seconds).
    pub fn at(&self, t: f64) -> f64 {
        match self {
            Stimulus::Dc(v) => *v,
            Stimulus::Pulse { v1, v2, delay, rise, fall, width, period } => {
                if t < *delay {
                    return *v1;
                }
                let mut tl = t - delay;
                if *period > 0.0 {
                    tl %= period;
                }
                let rise_end = *rise;
                let width_end = rise_end + *width;
                let fall_end = width_end + *fall;
                if tl < rise_end {
                    if *rise == 0.0 {
                        *v2
                    } else {
                        v1 + (v2 - v1) * tl / rise
                    }
                } else if tl < width_end {
                    *v2
                } else if tl < fall_end {
                    if *fall == 0.0 {
                        *v1
                    } else {
                        v2 + (v1 - v2) * (tl - width_end) / fall
                    }
                } else {
                    *v1
                }
            }
            Stimulus::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for pair in points.windows(2) {
                    let (t0, v0) = pair[0];
                    let (t1, v1) = pair[1];
                    if t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
            Stimulus::Sine { offset, amplitude, freq, delay } => {
                if t < *delay {
                    *offset
                } else {
                    offset + amplitude * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
        }
    }
}

/// Level-1 MOSFET parameters.
///
/// Defaults approximate a generic 45 nm NMOS operated at low frequency:
/// `V_TH = 0.4 V`, transconductance factor `K' · W/L = 400 µA/V²`,
/// channel-length modulation `λ = 0.05 /V`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosParams {
    /// Threshold voltage, volts.
    pub vth: f64,
    /// Transconductance factor `k = µCox·W/L`, A/V².
    pub k: f64,
    /// Channel-length modulation, 1/V.
    pub lambda: f64,
}

impl Default for MosParams {
    fn default() -> Self {
        Self { vth: 0.4, k: 400e-6, lambda: 0.05 }
    }
}

/// Operating regions of the square-law model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosRegion {
    /// `V_GS < V_TH`: no channel.
    Cutoff,
    /// `V_DS < V_GS - V_TH`: resistive channel.
    Triode,
    /// `V_DS ≥ V_GS - V_TH`: pinched-off channel.
    Saturation,
}

/// Large-signal evaluation of the NMOS square-law model.
///
/// Returns `(i_d, g_m, g_ds, region)` where the small-signal conductances
/// are the partial derivatives of `i_d` with respect to `v_gs` and `v_ds`.
/// Negative `v_ds` is handled by source/drain symmetry: the physical device
/// conducts with the roles of the terminals swapped.
pub fn nmos_eval(params: &MosParams, v_gs: f64, v_ds: f64) -> (f64, f64, f64, MosRegion) {
    if v_ds < 0.0 {
        // Swap drain and source: V_GS' = V_GD = V_GS - V_DS, V_DS' = -V_DS.
        let (id, gm, gds, region) = nmos_eval_forward(params, v_gs - v_ds, -v_ds);
        // i_d' flows source'->drain' which is drain->source of the original,
        // so the original current is -id. Chain rule for the derivatives:
        //   d(-id)/d v_gs = -gm
        //   d(-id)/d v_ds = -(gm * -1 + gds * -1) = gm + gds
        return (-id, -gm, gm + gds, region);
    }
    nmos_eval_forward(params, v_gs, v_ds)
}

fn nmos_eval_forward(params: &MosParams, v_gs: f64, v_ds: f64) -> (f64, f64, f64, MosRegion) {
    let vov = v_gs - params.vth;
    if vov <= 0.0 {
        // Cutoff: tiny subthreshold-like conductance keeps Newton stable.
        let g_leak = 1e-12;
        return (g_leak * v_ds, 0.0, g_leak, MosRegion::Cutoff);
    }
    if v_ds < vov {
        // Triode.
        let id = params.k * (vov * v_ds - 0.5 * v_ds * v_ds);
        let gm = params.k * v_ds;
        let gds = params.k * (vov - v_ds);
        (id, gm, gds.max(1e-12), MosRegion::Triode)
    } else {
        // Saturation with channel-length modulation.
        let id0 = 0.5 * params.k * vov * vov;
        let id = id0 * (1.0 + params.lambda * v_ds);
        let gm = params.k * vov * (1.0 + params.lambda * v_ds);
        let gds = id0 * params.lambda;
        (id, gm, gds.max(1e-12), MosRegion::Saturation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: MosParams = MosParams { vth: 0.4, k: 400e-6, lambda: 0.05 };

    #[test]
    fn dc_stimulus_constant() {
        let s = Stimulus::Dc(1.5);
        assert_eq!(s.at(0.0), 1.5);
        assert_eq!(s.at(1e9), 1.5);
    }

    #[test]
    fn pulse_stimulus_shape() {
        let s = Stimulus::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1e-6,
            rise: 1e-6,
            fall: 1e-6,
            width: 2e-6,
            period: 10e-6,
        };
        assert_eq!(s.at(0.0), 0.0); // before delay
        assert!((s.at(1.5e-6) - 0.5).abs() < 1e-9); // mid-rise
        assert_eq!(s.at(3e-6), 1.0); // plateau
        assert!((s.at(4.5e-6) - 0.5).abs() < 1e-9); // mid-fall
        assert_eq!(s.at(6e-6), 0.0); // back to v1
        assert_eq!(s.at(13e-6), 1.0); // next period plateau
    }

    #[test]
    fn pulse_zero_rise_is_step() {
        let s = Stimulus::Pulse {
            v1: 0.2,
            v2: 0.8,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: 1.0,
            period: 0.0,
        };
        assert_eq!(s.at(0.0), 0.8);
        assert_eq!(s.at(0.5), 0.8);
        assert_eq!(s.at(1.5), 0.2);
    }

    #[test]
    fn pwl_interpolates() {
        let s = Stimulus::Pwl(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]);
        assert_eq!(s.at(-1.0), 0.0);
        assert!((s.at(0.5) - 0.5).abs() < 1e-12);
        assert!((s.at(1.5) - 0.75).abs() < 1e-12);
        assert_eq!(s.at(5.0), 0.5);
    }

    #[test]
    fn pwl_empty_and_single() {
        assert_eq!(Stimulus::Pwl(vec![]).at(1.0), 0.0);
        assert_eq!(Stimulus::Pwl(vec![(1.0, 2.0)]).at(0.0), 2.0);
        assert_eq!(Stimulus::Pwl(vec![(1.0, 2.0)]).at(9.0), 2.0);
    }

    #[test]
    fn sine_stimulus() {
        let s = Stimulus::Sine { offset: 0.5, amplitude: 0.5, freq: 1.0, delay: 0.0 };
        assert!((s.at(0.0) - 0.5).abs() < 1e-12);
        assert!((s.at(0.25) - 1.0).abs() < 1e-9);
        assert!((s.at(0.75) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn nmos_cutoff_below_threshold() {
        let (id, gm, _, region) = nmos_eval(&P, 0.2, 1.0);
        assert_eq!(region, MosRegion::Cutoff);
        assert!(id.abs() < 1e-9);
        assert_eq!(gm, 0.0);
    }

    #[test]
    fn nmos_saturation_current() {
        // vgs = 1.0, vov = 0.6, vds = 1.0 > vov -> saturation
        let (id, gm, gds, region) = nmos_eval(&P, 1.0, 1.0);
        assert_eq!(region, MosRegion::Saturation);
        let id0 = 0.5 * 400e-6 * 0.36;
        assert!((id - id0 * 1.05).abs() < 1e-9);
        assert!(gm > 0.0 && gds > 0.0);
    }

    #[test]
    fn nmos_triode_current() {
        // vgs = 1.4, vov = 1.0, vds = 0.2 < vov -> triode
        let (id, _, gds, region) = nmos_eval(&P, 1.4, 0.2);
        assert_eq!(region, MosRegion::Triode);
        let expect = 400e-6 * (1.0 * 0.2 - 0.5 * 0.04);
        assert!((id - expect).abs() < 1e-12);
        assert!(gds > 0.0);
    }

    #[test]
    fn nmos_region_boundary_continuous() {
        // Current must be continuous at vds = vov (ignoring lambda kink).
        let p = MosParams { lambda: 0.0, ..P };
        let vov = 0.6;
        let (id_tri, ..) = nmos_eval(&p, 1.0, vov - 1e-9);
        let (id_sat, ..) = nmos_eval(&p, 1.0, vov + 1e-9);
        assert!((id_tri - id_sat).abs() < 1e-9);
    }

    #[test]
    fn nmos_reverse_conduction_antisymmetric() {
        // With lambda = 0 and symmetric bias the swapped device mirrors the
        // forward one exactly in triode.
        let p = MosParams { lambda: 0.0, ..P };
        let (id_fwd, ..) = nmos_eval(&p, 1.4, 0.2);
        // Reverse bias: v_ds = -0.2 swaps the terminal roles, so the device
        // conducts like a forward one at (v_gs - v_ds, -v_ds) = (1.6, 0.2)
        // with opposite current sign.
        let (id_rev, ..) = nmos_eval(&p, 1.4, -0.2);
        let (id_check, ..) = nmos_eval(&p, 1.6, 0.2);
        assert!((id_rev + id_check).abs() < 1e-12, "{id_rev} vs {id_check}");
        assert!(id_fwd > 0.0 && id_rev < 0.0);
    }

    #[test]
    fn nmos_gm_matches_finite_difference() {
        let (_, gm, gds, _) = nmos_eval(&P, 1.0, 0.8);
        let h = 1e-7;
        let (id_hi, ..) = nmos_eval(&P, 1.0 + h, 0.8);
        let (id_lo, ..) = nmos_eval(&P, 1.0 - h, 0.8);
        assert!(((id_hi - id_lo) / (2.0 * h) - gm).abs() / gm < 1e-4);
        let (idd_hi, ..) = nmos_eval(&P, 1.0, 0.8 + h);
        let (idd_lo, ..) = nmos_eval(&P, 1.0, 0.8 - h);
        assert!(((idd_hi - idd_lo) / (2.0 * h) - gds).abs() / gds < 1e-3);
    }
}
