//! Modified nodal analysis: nonlinear DC operating point (Newton–Raphson)
//! and backward-Euler transient analysis.
//!
//! The unknown vector is `[v_1 .. v_{n-1}, i_src_1 .. i_src_m]` — all node
//! voltages except ground, followed by the branch currents of independent
//! voltage sources. The matrix is dense; HiRISE pooling circuits stay in
//! the hundreds of unknowns, where dense LU with partial pivoting is both
//! simple and fast enough.

use crate::device::nmos_eval;
use crate::netlist::{Circuit, NodeId, SourceId};
use crate::waveform::Waveform;
use crate::{AnalogError, Result};

/// Solver tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Shunt conductance from every node to ground, stabilising floating
    /// nodes (SPICE's GMIN).
    pub gmin: f64,
    /// Maximum Newton–Raphson iterations per solve point.
    pub max_iterations: usize,
    /// Convergence tolerance on the max node-voltage update, volts.
    pub tolerance: f64,
    /// Maximum per-iteration voltage step, volts (Newton damping).
    pub max_step: f64,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self { gmin: 1e-12, max_iterations: 200, tolerance: 1e-9, max_step: 0.5 }
    }
}

/// DC operating point.
#[derive(Debug, Clone)]
pub struct DcSolution {
    voltages: Vec<f64>,
    currents: Vec<f64>,
    /// Newton iterations used.
    pub iterations: usize,
}

impl DcSolution {
    /// Voltage at `node` in volts.
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.0 == 0 {
            0.0
        } else {
            self.voltages[node.0 - 1]
        }
    }

    /// Branch current through a voltage source, in amperes (flowing from the
    /// positive terminal through the source to the negative terminal).
    pub fn source_current(&self, src: SourceId) -> f64 {
        self.currents[src.0]
    }

    /// All node voltages indexed by raw node id (ground included as 0.0).
    pub fn all_voltages(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.voltages.len() + 1);
        out.push(0.0);
        out.extend_from_slice(&self.voltages);
        out
    }
}

/// Result of a transient run: node voltages at every accepted time point.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    /// `samples[step][node]`, ground included at index 0.
    samples: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Simulated time points, seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when the run produced no points.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Voltage of `node` at step index `i`.
    pub fn voltage_at(&self, i: usize, node: NodeId) -> f64 {
        self.samples[i][node.0]
    }

    /// Extracts a single node's trace as a [`Waveform`].
    pub fn waveform(&self, node: NodeId) -> Waveform {
        Waveform::from_samples(
            self.times.clone(),
            self.samples.iter().map(|row| row[node.0]).collect(),
        )
        .expect("times and samples have identical length by construction")
    }
}

/// Dense LU solve with partial pivoting; consumes `a` and `b`.
fn solve_dense(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot selection.
        let mut pivot = col;
        let mut best = a[col][col].abs();
        for (row, arow) in a.iter().enumerate().skip(col + 1) {
            let mag = arow[col].abs();
            if mag > best {
                best = mag;
                pivot = row;
            }
        }
        if best < 1e-300 {
            return Err(AnalogError::SingularMatrix { pivot: col });
        }
        if pivot != col {
            a.swap(col, pivot);
            b.swap(col, pivot);
        }
        let diag = a[col][col];
        for row in col + 1..n {
            let factor = a[row][col] / diag;
            if factor == 0.0 {
                continue;
            }
            a[row][col] = 0.0;
            // Manual split to appease the borrow checker.
            let (upper, lower) = a.split_at_mut(row);
            let src = &upper[col];
            let dst = &mut lower[0];
            for k in col + 1..n {
                dst[k] -= factor * src[k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in row + 1..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

/// MNA simulator borrowing a [`Circuit`].
#[derive(Debug, Clone)]
pub struct Simulator<'c> {
    circuit: &'c Circuit,
    options: SimOptions,
}

impl<'c> Simulator<'c> {
    /// Creates a simulator with default options.
    pub fn new(circuit: &'c Circuit) -> Self {
        Self { circuit, options: SimOptions::default() }
    }

    /// Creates a simulator with explicit options.
    pub fn with_options(circuit: &'c Circuit, options: SimOptions) -> Self {
        Self { circuit, options }
    }

    /// Current solver options.
    pub fn options(&self) -> SimOptions {
        self.options
    }

    fn unknown_count(&self) -> usize {
        (self.circuit.node_count() - 1) + self.circuit.vsource_count()
    }

    /// Solves one (possibly nonlinear) operating point.
    ///
    /// * `t` — time at which stimuli are evaluated.
    /// * `cap_state` — previous node voltages (raw node indexing, ground at
    ///   0) and timestep for the capacitor companion model; `None` performs
    ///   a pure DC solve with capacitors open.
    /// * `x0` — initial guess for the unknown vector.
    fn solve_point(
        &self,
        t: f64,
        cap_state: Option<(&[f64], f64)>,
        x0: &[f64],
    ) -> Result<Vec<f64>> {
        let nn = self.circuit.node_count() - 1;
        let n = self.unknown_count();
        let mut x = x0.to_vec();
        debug_assert_eq!(x.len(), n);

        let volt = |x: &[f64], raw: usize| -> f64 {
            if raw == 0 {
                0.0
            } else {
                x[raw - 1]
            }
        };

        for iter in 0..self.options.max_iterations {
            let mut a = vec![vec![0.0; n]; n];
            let mut b = vec![0.0; n];

            // GMIN from every node to ground.
            for (i, row) in a.iter_mut().enumerate().take(nn) {
                row[i] += self.options.gmin;
            }

            let stamp_g = |a: &mut Vec<Vec<f64>>, p: usize, q: usize, g: f64| {
                if p > 0 {
                    a[p - 1][p - 1] += g;
                }
                if q > 0 {
                    a[q - 1][q - 1] += g;
                }
                if p > 0 && q > 0 {
                    a[p - 1][q - 1] -= g;
                    a[q - 1][p - 1] -= g;
                }
            };

            for r in &self.circuit.resistors {
                stamp_g(&mut a, r.a, r.b, r.conductance);
            }

            if let Some((v_prev, h)) = cap_state {
                for c in &self.circuit.capacitors {
                    let g = c.farads / h;
                    stamp_g(&mut a, c.a, c.b, g);
                    let v_ab_prev = v_prev[c.a] - v_prev[c.b];
                    if c.a > 0 {
                        b[c.a - 1] += g * v_ab_prev;
                    }
                    if c.b > 0 {
                        b[c.b - 1] -= g * v_ab_prev;
                    }
                }
            }

            for i in &self.circuit.isources {
                let val = i.stimulus.at(t);
                if i.from > 0 {
                    b[i.from - 1] -= val;
                }
                if i.to > 0 {
                    b[i.to - 1] += val;
                }
            }

            for (j, v) in self.circuit.vsources.iter().enumerate() {
                let row = nn + j;
                if v.pos > 0 {
                    a[row][v.pos - 1] += 1.0;
                    a[v.pos - 1][row] += 1.0;
                }
                if v.neg > 0 {
                    a[row][v.neg - 1] -= 1.0;
                    a[v.neg - 1][row] -= 1.0;
                }
                b[row] = v.stimulus.at(t);
            }

            for m in &self.circuit.mosfets {
                let v_gs = volt(&x, m.gate) - volt(&x, m.source);
                let v_ds = volt(&x, m.drain) - volt(&x, m.source);
                let (id, gm, gds, _) = nmos_eval(&m.params, v_gs, v_ds);
                let ieq = id - gm * v_gs - gds * v_ds;
                // Drain KCL: I_D = gm*vgs + gds*vds + ieq leaves the node.
                if m.drain > 0 {
                    if m.gate > 0 {
                        a[m.drain - 1][m.gate - 1] += gm;
                    }
                    a[m.drain - 1][m.drain - 1] += gds;
                    if m.source > 0 {
                        a[m.drain - 1][m.source - 1] -= gm + gds;
                    }
                    b[m.drain - 1] -= ieq;
                }
                // Source KCL: I_D enters the node.
                if m.source > 0 {
                    if m.gate > 0 {
                        a[m.source - 1][m.gate - 1] -= gm;
                    }
                    if m.drain > 0 {
                        a[m.source - 1][m.drain - 1] -= gds;
                    }
                    a[m.source - 1][m.source - 1] += gm + gds;
                    b[m.source - 1] += ieq;
                }
            }

            let z = solve_dense(&mut a, &mut b)?;

            // Damped Newton update on the voltage unknowns.
            let mut max_dv = 0.0f64;
            for i in 0..nn {
                max_dv = max_dv.max((z[i] - x[i]).abs());
            }
            let alpha =
                if max_dv > self.options.max_step { self.options.max_step / max_dv } else { 1.0 };
            for i in 0..n {
                x[i] += alpha * (z[i] - x[i]);
            }

            if max_dv < self.options.tolerance {
                // One clean full-step solve already converged.
                return Ok(x);
            }
            if iter == self.options.max_iterations - 1 {
                return Err(AnalogError::NoConvergence {
                    iterations: self.options.max_iterations,
                    residual: max_dv,
                });
            }
        }
        unreachable!("loop either returns or errors on the final iteration")
    }

    /// Computes the DC operating point (stimuli evaluated at `t = 0`,
    /// capacitors open).
    ///
    /// # Errors
    ///
    /// [`AnalogError::NoConvergence`] if Newton fails,
    /// [`AnalogError::SingularMatrix`] for degenerate topologies.
    pub fn dc(&self) -> Result<DcSolution> {
        self.dc_at(0.0)
    }

    /// DC operating point with stimuli evaluated at an arbitrary time.
    ///
    /// # Errors
    ///
    /// See [`Simulator::dc`].
    pub fn dc_at(&self, t: f64) -> Result<DcSolution> {
        let n = self.unknown_count();
        let x = self.solve_point(t, None, &vec![0.0; n])?;
        let nn = self.circuit.node_count() - 1;
        Ok(DcSolution { voltages: x[..nn].to_vec(), currents: x[nn..].to_vec(), iterations: 0 })
    }

    /// Backward-Euler transient from `0` to `stop` with fixed step `step`.
    /// The initial condition is the DC operating point at `t = 0`.
    ///
    /// # Errors
    ///
    /// [`AnalogError::InvalidTransient`] for a non-positive step/stop,
    /// plus any DC-solve failure at a time point.
    pub fn transient(&self, step: f64, stop: f64) -> Result<TransientResult> {
        if !(step > 0.0) || !(stop > 0.0) || step > stop {
            return Err(AnalogError::InvalidTransient { step, stop });
        }
        let nn = self.circuit.node_count() - 1;
        let n = self.unknown_count();

        let dc = self.dc()?;
        let mut x: Vec<f64> =
            dc.voltages.iter().copied().chain(dc.currents.iter().copied()).collect();
        debug_assert_eq!(x.len(), n);

        let mut times = vec![0.0];
        let mut samples = vec![{
            let mut row = vec![0.0; nn + 1];
            row[1..].copy_from_slice(&dc.voltages);
            row
        }];

        let steps = (stop / step).round() as usize;
        for k in 1..=steps {
            let t = k as f64 * step;
            let prev_raw: Vec<f64> = {
                let mut row = vec![0.0; nn + 1];
                row[1..].copy_from_slice(&x[..nn]);
                row
            };
            x = self.solve_point(t, Some((&prev_raw, step)), &x)?;
            let mut row = vec![0.0; nn + 1];
            row[1..].copy_from_slice(&x[..nn]);
            times.push(t);
            samples.push(row);
        }
        Ok(TransientResult { times, samples })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{MosParams, Stimulus};

    fn divider() -> (Circuit, NodeId, NodeId) {
        let mut c = Circuit::new();
        let vin = c.add_node("vin");
        let out = c.add_node("out");
        c.add_voltage_source(vin, Circuit::gnd(), Stimulus::Dc(2.0)).unwrap();
        c.add_resistor(vin, out, 1_000.0).unwrap();
        c.add_resistor(out, Circuit::gnd(), 3_000.0).unwrap();
        (c, vin, out)
    }

    #[test]
    fn resistive_divider_dc() {
        let (c, vin, out) = divider();
        let dc = Simulator::new(&c).dc().unwrap();
        // GMIN (1e-12 S per node) perturbs the exact value at the 1e-9 level.
        assert!((dc.voltage(vin) - 2.0).abs() < 1e-6);
        assert!((dc.voltage(out) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn source_current_matches_ohms_law() {
        let mut c = Circuit::new();
        let a = c.add_node("a");
        let src = c.add_voltage_source(a, Circuit::gnd(), Stimulus::Dc(1.0)).unwrap();
        c.add_resistor(a, Circuit::gnd(), 500.0).unwrap();
        let dc = Simulator::new(&c).dc().unwrap();
        // 2 mA flows out of the + terminal through the resistor; the branch
        // current convention makes it -2 mA through the source.
        assert!((dc.source_current(src).abs() - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let a = c.add_node("a");
        c.add_current_source(Circuit::gnd(), a, Stimulus::Dc(1e-3)).unwrap();
        c.add_resistor(a, Circuit::gnd(), 2_000.0).unwrap();
        let dc = Simulator::new(&c).dc().unwrap();
        assert!((dc.voltage(a) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn floating_node_is_singular_without_gmin() {
        let mut c = Circuit::new();
        let a = c.add_node("a");
        let b = c.add_node("b");
        c.add_voltage_source(a, Circuit::gnd(), Stimulus::Dc(1.0)).unwrap();
        // b floats entirely; gmin keeps the matrix solvable.
        let _ = b;
        let dc = Simulator::new(&c).dc().unwrap();
        assert_eq!(dc.voltage(b), 0.0);
    }

    #[test]
    fn nmos_source_follower_dc() {
        // Classic SF: drain at VDD, gate driven, source through resistor to
        // ground. V_out ≈ V_in - V_TH - sqrt(2 I / k).
        let mut c = Circuit::new();
        let vdd = c.add_node("vdd");
        let vin = c.add_node("vin");
        let out = c.add_node("out");
        c.add_voltage_source(vdd, Circuit::gnd(), Stimulus::Dc(1.8)).unwrap();
        c.add_voltage_source(vin, Circuit::gnd(), Stimulus::Dc(1.2)).unwrap();
        let p = MosParams { vth: 0.4, k: 400e-6, lambda: 0.0 };
        c.add_nmos(vdd, vin, out, p).unwrap();
        c.add_resistor(out, Circuit::gnd(), 100_000.0).unwrap();
        let dc = Simulator::new(&c).dc().unwrap();
        let vout = dc.voltage(out);
        // Solve analytically: I = k/2 (vin - vout - vth)^2 = vout / R
        // => vout ≈ 0.655 V for these numbers.
        let vov = 1.2 - vout - 0.4;
        let i_dev = 0.5 * 400e-6 * vov * vov;
        let i_res = vout / 100_000.0;
        assert!((i_dev - i_res).abs() / i_res < 1e-3, "KCL mismatch: {i_dev} vs {i_res}");
        assert!(vout > 0.3 && vout < 1.2 - 0.4, "vout {vout} out of follower range");
    }

    #[test]
    fn nmos_follower_tracks_input_linearly() {
        // Sweep the gate and confirm monotone, near-unity incremental gain.
        let p = MosParams { vth: 0.4, k: 800e-6, lambda: 0.0 };
        let mut previous = None;
        for vin_mv in (800..=1600).step_by(200) {
            let vin = vin_mv as f64 / 1000.0;
            let mut c = Circuit::new();
            let vdd = c.add_node("vdd");
            let g = c.add_node("g");
            let s = c.add_node("s");
            c.add_voltage_source(vdd, Circuit::gnd(), Stimulus::Dc(1.8)).unwrap();
            c.add_voltage_source(g, Circuit::gnd(), Stimulus::Dc(vin)).unwrap();
            c.add_nmos(vdd, g, s, p).unwrap();
            c.add_resistor(s, Circuit::gnd(), 50_000.0).unwrap();
            let dc = Simulator::new(&c).dc().unwrap();
            let vout = dc.voltage(s);
            if let Some(prev) = previous {
                let gain = (vout - prev) / 0.2;
                assert!(gain > 0.8 && gain < 1.05, "incremental gain {gain}");
            }
            previous = Some(vout);
        }
    }

    #[test]
    fn rc_transient_charges_exponentially() {
        let mut c = Circuit::new();
        let vin = c.add_node("vin");
        let out = c.add_node("out");
        // The step fires one timestep in so the DC initial condition is the
        // discharged state.
        c.add_voltage_source(
            vin,
            Circuit::gnd(),
            Stimulus::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 10e-6,
                rise: 0.0,
                fall: 0.0,
                width: 1.0,
                period: 0.0,
            },
        )
        .unwrap();
        c.add_resistor(vin, out, 1_000.0).unwrap();
        c.add_capacitor(out, Circuit::gnd(), 1e-6).unwrap(); // tau = 1 ms
        let sim = Simulator::new(&c);
        let tr = sim.transient(10e-6, 5e-3).unwrap();
        let wave = tr.waveform(out);
        // After 1 tau the capacitor reaches ~63% (backward Euler slightly lags).
        let v_tau = wave.sample_at(1e-3 + 10e-6);
        assert!((v_tau - 0.632).abs() < 0.02, "v(tau) = {v_tau}");
        // After ~5 tau it is essentially full.
        assert!(wave.sample_at(5e-3) > 0.98);
    }

    #[test]
    fn transient_rejects_bad_window() {
        let (c, _, _) = divider();
        let sim = Simulator::new(&c);
        assert!(sim.transient(0.0, 1.0).is_err());
        assert!(sim.transient(1.0, -1.0).is_err());
        assert!(sim.transient(2.0, 1.0).is_err());
    }

    #[test]
    fn transient_first_sample_is_dc() {
        let (c, _, out) = divider();
        let sim = Simulator::new(&c);
        let tr = sim.transient(1e-6, 1e-5).unwrap();
        assert_eq!(tr.times()[0], 0.0);
        assert!((tr.voltage_at(0, out) - 1.5).abs() < 1e-6);
        assert_eq!(tr.len(), 11);
    }

    #[test]
    fn dense_solver_random_system() {
        // Verify LU against a hand-computed 3x3 system.
        let mut a = vec![vec![2.0, 1.0, -1.0], vec![-3.0, -1.0, 2.0], vec![-2.0, 1.0, 2.0]];
        let mut b = vec![8.0, -11.0, -3.0];
        let x = solve_dense(&mut a, &mut b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] - -1.0).abs() < 1e-9);
    }

    #[test]
    fn dense_solver_detects_singular() {
        let mut a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut b = vec![1.0, 2.0];
        assert!(matches!(solve_dense(&mut a, &mut b), Err(AnalogError::SingularMatrix { .. })));
    }

    #[test]
    fn vsource_pwl_followed_in_transient() {
        let mut c = Circuit::new();
        let a = c.add_node("a");
        c.add_voltage_source(a, Circuit::gnd(), Stimulus::Pwl(vec![(0.0, 0.0), (1e-3, 1.0)]))
            .unwrap();
        c.add_resistor(a, Circuit::gnd(), 1_000.0).unwrap();
        let tr = Simulator::new(&c).transient(1e-4, 1e-3).unwrap();
        let w = tr.waveform(a);
        assert!((w.sample_at(5e-4) - 0.5).abs() < 1e-6);
        assert!((w.sample_at(1e-3) - 1.0).abs() < 1e-6);
    }
}
