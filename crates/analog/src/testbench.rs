//! The paper's Fig. 5 test benches.
//!
//! * [`fig5a`] — two *analog* inputs (piecewise-linear ramps) driving a
//!   2-input averaging circuit: scenario ① one input constant while the
//!   other ramps (the output follows with half the slope), scenario ②
//!   opposing slopes (output slope ≈ 0), scenario ③ single-input influence.
//! * [`fig5b`] — four *digital* (pulse) inputs at binary-weighted periods:
//!   the output steps through the five distinct average levels.
//! * [`extended_dc`] — the paper's "extended to 192 inputs" check, done as
//!   a DC sweep (a 192-input transient adds nothing but runtime).

use crate::behavior::PoolingBehavior;
use crate::device::Stimulus;
use crate::pooling::PoolingCircuit;
use crate::waveform::Waveform;
use crate::Result;

/// Outcome of a transient averaging bench.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Input waveforms (ideal stimuli sampled on the solver time base).
    pub inputs: Vec<Waveform>,
    /// Simulated `avg` node waveform.
    pub avg: Waveform,
    /// The behavioural prediction `gain · mean(inputs) + offset` on the same
    /// time base — the "ideal" trace the circuit should track.
    pub ideal: Waveform,
    /// Worst absolute deviation between `avg` and `ideal`, volts.
    /// Settling transients after input steps are included, so this bounds
    /// the *dynamic* tracking error.
    pub max_tracking_error: f64,
    /// Worst deviation over quasi-static points only (where the ideal
    /// trace moved less than 1 mV since the previous sample) — the settled
    /// accuracy, excluding RC settling after input edges.
    pub settled_tracking_error: f64,
    /// The fitted behavioural model used to produce `ideal`.
    pub behavior: PoolingBehavior,
}

fn run_bench(
    circuit: &PoolingCircuit,
    stimuli: &[Stimulus],
    step: f64,
    stop: f64,
) -> Result<BenchResult> {
    let behavior = PoolingBehavior::fit(circuit, (0.3, 0.9), 13)?;
    let tr = circuit.transient(stimuli, step, stop)?;
    let avg = tr.waveform(circuit.avg_node());
    let times = tr.times().to_vec();

    let inputs: Vec<Waveform> = stimuli
        .iter()
        .map(|s| {
            Waveform::from_samples(times.clone(), times.iter().map(|&t| s.at(t)).collect())
                .expect("parallel vectors")
        })
        .collect();

    let ideal_values: Vec<f64> = times
        .iter()
        .map(|&t| {
            let mean = stimuli.iter().map(|s| s.at(t)).sum::<f64>() / stimuli.len() as f64;
            behavior.apply(mean)
        })
        .collect();
    let ideal = Waveform::from_samples(times, ideal_values).expect("parallel vectors");
    let max_tracking_error = avg.max_abs_error(&ideal);
    // Quasi-static points: skip samples right after an ideal-trace jump,
    // plus a few settling steps (the RC load needs ~5 time constants).
    let mut settled_tracking_error = 0.0f64;
    let mut cooldown = 0u32;
    for i in 1..ideal.len() {
        let moved = (ideal.values()[i] - ideal.values()[i - 1]).abs() > 1e-3;
        if moved {
            cooldown = 12;
        } else if cooldown > 0 {
            cooldown -= 1;
        } else {
            settled_tracking_error =
                settled_tracking_error.max((avg.values()[i] - ideal.values()[i]).abs());
        }
    }
    Ok(BenchResult { inputs, avg, ideal, max_tracking_error, settled_tracking_error, behavior })
}

/// Fig. 5(a): transient vector for two analog signals.
///
/// The stimulus timeline (microseconds, volts) mirrors the three annotated
/// scenarios of the paper's figure:
///
/// 1. `0–2 µs` — `Inp1` constant at 0.5 V, `Inp2` ramps 0.3 → 0.9 V; the
///    average follows `Inp2` "with a more gradual slope" (half).
/// 2. `2–4 µs` — opposing slopes; the average stays approximately flat.
/// 3. `4–6 µs` — `Inp2` constant, `Inp1` ramps; `Inp1`'s influence shows.
///
/// # Errors
///
/// Propagates circuit-construction and solver failures.
pub fn fig5a() -> Result<BenchResult> {
    let us = 1e-6;
    let circuit = PoolingCircuit::builder(2).build()?;
    let inp1 = Stimulus::Pwl(vec![(0.0, 0.5), (2.0 * us, 0.5), (4.0 * us, 0.9), (6.0 * us, 0.3)]);
    let inp2 = Stimulus::Pwl(vec![(0.0, 0.3), (2.0 * us, 0.9), (4.0 * us, 0.5), (6.0 * us, 0.5)]);
    run_bench(&circuit, &[inp1, inp2], 20e-9, 6.0 * us)
}

/// Fig. 5(b): transient vector averaging four digital inputs.
///
/// The four pulse inputs toggle between 0.3 V ("0") and 0.9 V ("1") with
/// binary-weighted periods, so the instantaneous average sweeps all five
/// levels `{0, ¼, ½, ¾, 1}` of the digital code — at ① all inputs are high
/// (peak) and at ② all are low (minimum), as annotated in the paper.
///
/// # Errors
///
/// Propagates circuit-construction and solver failures.
pub fn fig5b() -> Result<BenchResult> {
    let us = 1e-6;
    let circuit = PoolingCircuit::builder(4).build()?;
    let mk = |period_us: f64| Stimulus::Pulse {
        v1: 0.9,
        v2: 0.3,
        delay: period_us / 2.0 * us,
        rise: 10e-9,
        fall: 10e-9,
        width: period_us / 2.0 * us - 20e-9,
        period: period_us * us,
    };
    let stimuli = [mk(1.0), mk(2.0), mk(4.0), mk(8.0)];
    run_bench(&circuit, &stimuli, 20e-9, 8.0 * us)
}

/// Outcome of the many-input DC extension bench.
#[derive(Debug, Clone)]
pub struct ExtendedDcResult {
    /// Number of inputs.
    pub inputs: usize,
    /// Worst recovered-mean error across the random test vectors, volts.
    pub max_error: f64,
    /// Fitted behavioural model.
    pub behavior: PoolingBehavior,
}

/// DC sweep of an `n`-input circuit (the paper extends to `n = 192`:
/// 8×8 pooling × 3 RGB channels) with `vectors` random input vectors drawn
/// from a deterministic xorshift sequence.
///
/// # Errors
///
/// Propagates circuit-construction and solver failures.
pub fn extended_dc(n: usize, vectors: usize) -> Result<ExtendedDcResult> {
    let circuit = PoolingCircuit::builder(n).row_select(false).build()?;
    let behavior = PoolingBehavior::fit(&circuit, (0.3, 0.9), 9)?;
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f64 / (1u64 << 24) as f64
    };
    let mut max_error = 0.0f64;
    for _ in 0..vectors {
        let inputs: Vec<f64> = (0..n).map(|_| 0.3 + 0.6 * next()).collect();
        let err = behavior.averaging_error(&circuit, &inputs)?;
        max_error = max_error.max(err);
    }
    Ok(ExtendedDcResult { inputs: n, max_error, behavior })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5a_tracks_mean() {
        let r = fig5a().unwrap();
        assert_eq!(r.inputs.len(), 2);
        // Dynamic tracking error stays small relative to the 0.6 V swing;
        // RC settling and follower nonlinearity set the bound.
        assert!(r.max_tracking_error < 0.03, "tracking error {} too large", r.max_tracking_error);
        // Scenario 2 (opposing slopes): output is nearly flat between 2.5
        // and 3.5 µs.
        let flat_delta = (r.avg.sample_at(3.5e-6) - r.avg.sample_at(2.5e-6)).abs();
        assert!(flat_delta < 0.01, "output moved {flat_delta} during opposing ramps");
    }

    #[test]
    fn fig5a_scenario1_half_slope() {
        let r = fig5a().unwrap();
        // During 0–2 µs Inp1 is constant and Inp2 ramps 0.3 -> 0.9 V.
        // d(avg)/d(inp2) = gain / 2 for a 2-input circuit.
        let dv_out = r.avg.sample_at(1.9e-6) - r.avg.sample_at(0.4e-6);
        let dv_in = r.inputs[1].sample_at(1.9e-6) - r.inputs[1].sample_at(0.4e-6);
        let observed = dv_out / dv_in;
        let expected = r.behavior.gain / 2.0;
        assert!(
            (observed - expected).abs() < 0.05,
            "slope ratio {observed} vs expected {expected}"
        );
    }

    #[test]
    fn fig5b_settles_to_the_coded_average() {
        let r = fig5b().unwrap();
        // Edges produce large transient error, but the settled plateaus
        // track the coded average tightly.
        assert!(r.max_tracking_error > r.settled_tracking_error);
        assert!(
            r.settled_tracking_error < 0.02,
            "settled error {} too large",
            r.settled_tracking_error
        );
    }

    #[test]
    fn fig5b_hits_extreme_levels() {
        let r = fig5b().unwrap();
        // The output maximum corresponds to all inputs high (mean 0.9 V) and
        // the minimum to all low (mean 0.3 V) up to settling.
        let v_hi = r.behavior.apply(0.9);
        let v_lo = r.behavior.apply(0.3);
        assert!((r.avg.max() - v_hi).abs() < 0.02, "max {} vs {}", r.avg.max(), v_hi);
        assert!((r.avg.min() - v_lo).abs() < 0.02, "min {} vs {}", r.avg.min(), v_lo);
    }

    #[test]
    fn extended_dc_averages_many_inputs() {
        // 24 inputs keeps test time modest; the fig5 binary runs 192.
        let r = extended_dc(24, 4).unwrap();
        assert_eq!(r.inputs, 24);
        assert!(r.max_error < 0.02, "max error {}", r.max_error);
    }
}
