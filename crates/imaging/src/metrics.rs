//! Image quality metrics used to quantify how faithful the analog in-sensor
//! scaling is to the ideal digital reference (Table 2's premise is that the
//! two are close enough for detection parity).

use crate::{ImagingError, Plane, Result};

fn check_dims(a: &Plane, b: &Plane) -> Result<()> {
    if a.dimensions() != b.dimensions() {
        return Err(ImagingError::InvalidDimensions {
            width: b.width(),
            height: b.height(),
            context: "metric operands must share dimensions",
        });
    }
    Ok(())
}

/// Mean absolute error between two planes.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidDimensions`] if the planes differ in size.
pub fn mae(a: &Plane, b: &Plane) -> Result<f64> {
    check_dims(a, b)?;
    let sum: f64 =
        a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| (x as f64 - y as f64).abs()).sum();
    Ok(sum / a.len() as f64)
}

/// Mean squared error between two planes.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidDimensions`] if the planes differ in size.
pub fn mse(a: &Plane, b: &Plane) -> Result<f64> {
    check_dims(a, b)?;
    let sum: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum();
    Ok(sum / a.len() as f64)
}

/// Peak signal-to-noise ratio in dB, assuming unit dynamic range.
/// Returns `f64::INFINITY` for identical planes.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidDimensions`] if the planes differ in size.
pub fn psnr(a: &Plane, b: &Plane) -> Result<f64> {
    let m = mse(a, b)?;
    if m == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * (1.0 / m).log10())
}

/// Largest absolute per-pixel difference.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidDimensions`] if the planes differ in size.
pub fn max_abs_diff(a: &Plane, b: &Plane) -> Result<f32> {
    check_dims(a, b)?;
    Ok(a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| (x - y).abs()).fold(0.0, f32::max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_planes() {
        let p = Plane::from_fn(8, 8, |x, y| (x * y) as f32 / 64.0);
        assert_eq!(mae(&p, &p).unwrap(), 0.0);
        assert_eq!(mse(&p, &p).unwrap(), 0.0);
        assert_eq!(psnr(&p, &p).unwrap(), f64::INFINITY);
        assert_eq!(max_abs_diff(&p, &p).unwrap(), 0.0);
    }

    #[test]
    fn known_offset() {
        let a = Plane::filled(4, 4, 0.5);
        let b = Plane::filled(4, 4, 0.6);
        assert!((mae(&a, &b).unwrap() - 0.1).abs() < 1e-6);
        assert!((mse(&a, &b).unwrap() - 0.01).abs() < 1e-6);
        assert!((psnr(&a, &b).unwrap() - 20.0).abs() < 1e-3);
        assert!((max_abs_diff(&a, &b).unwrap() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn mismatched_dims_rejected() {
        let a = Plane::new(4, 4);
        let b = Plane::new(4, 5);
        assert!(mae(&a, &b).is_err());
        assert!(mse(&a, &b).is_err());
        assert!(psnr(&a, &b).is_err());
        assert!(max_abs_diff(&a, &b).is_err());
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let a = Plane::filled(8, 8, 0.5);
        let mut small = a.clone();
        small.set(0, 0, 0.51);
        let mut large = a.clone();
        large.set(0, 0, 0.9);
        assert!(psnr(&a, &small).unwrap() > psnr(&a, &large).unwrap());
    }
}
