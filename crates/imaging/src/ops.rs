//! Geometric image operations: average pooling (the paper's digital
//! "in-processor scaling"), bilinear resize, cropping and padding.
//!
//! The digital `k×k` average pool here is the *reference* against which the
//! analog in-sensor pooling of `hirise-sensor` is validated (Table 2 of the
//! paper compares mAP under both paths).

use crate::{GrayImage, Image, ImagingError, Plane, Rect, Result, RgbImage};

/// `k×k` average pooling of a single plane.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidFactor`] when `k == 0` or `k` does not
/// divide both dimensions exactly (the sensor's pooling wiring requires an
/// exact tiling, so we enforce the same constraint digitally).
///
/// # Example
///
/// ```
/// use hirise_imaging::{Plane, ops};
///
/// let p = Plane::from_fn(4, 4, |x, y| (x + y) as f32);
/// let pooled = ops::avg_pool(&p, 2)?;
/// assert_eq!(pooled.dimensions(), (2, 2));
/// assert_eq!(pooled.get(0, 0), 1.0); // mean of 0,1,1,2
/// # Ok::<(), hirise_imaging::ImagingError>(())
/// ```
pub fn avg_pool(plane: &Plane, k: u32) -> Result<Plane> {
    let (w, h) = plane.dimensions();
    if k == 0 || w % k != 0 || h % k != 0 {
        return Err(ImagingError::InvalidFactor { factor: k, width: w, height: h });
    }
    // Construct at the final size (one exact allocation) instead of
    // growing a 1×1 placeholder through `avg_pool_into`.
    let mut out = Plane::new(w / k, h / k);
    avg_pool_into(plane, k, &mut out)?;
    Ok(out)
}

/// In-place variant of [`avg_pool`]: pools into `out`, reshaped to
/// `(w/k, h/k)` reusing its buffer capacity.
///
/// The accumulation is row-major over source row slices: each source row
/// contributes its `k`-wide horizontal sums to the output row, and the
/// `1/k²` normalisation is applied once at the end. Relative to a fully
/// sequential per-window sum this reassociates the additions (partial sums
/// per source row), which can shift results by ≤ 1 ULP per accumulated
/// term; `tests/kernel_equiv.rs` pins the ≤ 1e-6 envelope against the
/// naive reference.
///
/// # Errors
///
/// See [`avg_pool`].
pub fn avg_pool_into(plane: &Plane, k: u32, out: &mut Plane) -> Result<()> {
    let (w, h) = plane.dimensions();
    if k == 0 || w % k != 0 || h % k != 0 {
        return Err(ImagingError::InvalidFactor { factor: k, width: w, height: h });
    }
    if k == 1 {
        out.copy_from(plane);
        return Ok(());
    }
    let (ow, oh) = (w / k, h / k);
    let norm = 1.0 / (k as f32 * k as f32);
    let ku = k as usize;
    // Accumulate, so start from exact zeros rather than stale samples.
    out.reshape(ow, oh);
    for (oy, out_row) in out.rows_mut().enumerate() {
        for dy in 0..k {
            let src_row = plane.row(oy as u32 * k + dy);
            for (acc, window) in out_row.iter_mut().zip(src_row.chunks_exact(ku)) {
                *acc += window.iter().sum::<f32>();
            }
        }
        for acc in out_row.iter_mut() {
            *acc *= norm;
        }
    }
    Ok(())
}

/// `k×k` average pooling of a gray image.
///
/// # Errors
///
/// See [`avg_pool`].
pub fn avg_pool_gray(img: &GrayImage, k: u32) -> Result<GrayImage> {
    Ok(GrayImage::from_plane(avg_pool(img.plane(), k)?))
}

/// `k×k` average pooling of an RGB image (each channel pooled independently).
///
/// # Errors
///
/// See [`avg_pool`].
pub fn avg_pool_rgb(img: &RgbImage, k: u32) -> Result<RgbImage> {
    RgbImage::from_planes(avg_pool(img.r(), k)?, avg_pool(img.g(), k)?, avg_pool(img.b(), k)?)
}

/// `k×k` average pooling of either image kind.
///
/// # Errors
///
/// See [`avg_pool`].
pub fn avg_pool_image(img: &Image, k: u32) -> Result<Image> {
    Ok(match img {
        Image::Gray(g) => Image::Gray(avg_pool_gray(g, k)?),
        Image::Rgb(c) => Image::Rgb(avg_pool_rgb(c, k)?),
    })
}

/// Bilinear resize of a plane to `new_w × new_h`.
///
/// Uses edge clamping; exact for identity resizes.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidDimensions`] when a target dimension is 0.
pub fn resize_bilinear(plane: &Plane, new_w: u32, new_h: u32) -> Result<Plane> {
    if new_w == 0 || new_h == 0 {
        return Err(ImagingError::InvalidDimensions {
            width: new_w,
            height: new_h,
            context: "resize target",
        });
    }
    let (w, h) = plane.dimensions();
    if (new_w, new_h) == (w, h) {
        return Ok(plane.clone());
    }
    let mut out = Plane::new(new_w, new_h);
    let sx = w as f32 / new_w as f32;
    let sy = h as f32 / new_h as f32;
    for oy in 0..new_h {
        // Map the output pixel center back to source coordinates.
        let fy = ((oy as f32 + 0.5) * sy - 0.5).clamp(0.0, (h - 1) as f32);
        let y0 = fy.floor() as u32;
        let y1 = (y0 + 1).min(h - 1);
        let wy = fy - y0 as f32;
        for ox in 0..new_w {
            let fx = ((ox as f32 + 0.5) * sx - 0.5).clamp(0.0, (w - 1) as f32);
            let x0 = fx.floor() as u32;
            let x1 = (x0 + 1).min(w - 1);
            let wx = fx - x0 as f32;
            let top = plane.get(x0, y0) * (1.0 - wx) + plane.get(x1, y0) * wx;
            let bot = plane.get(x0, y1) * (1.0 - wx) + plane.get(x1, y1) * wx;
            out.set(ox, oy, top * (1.0 - wy) + bot * wy);
        }
    }
    Ok(out)
}

/// Bilinear resize of a gray image.
///
/// # Errors
///
/// See [`resize_bilinear`].
pub fn resize_gray(img: &GrayImage, new_w: u32, new_h: u32) -> Result<GrayImage> {
    Ok(GrayImage::from_plane(resize_bilinear(img.plane(), new_w, new_h)?))
}

/// Bilinear resize of an RGB image.
///
/// # Errors
///
/// See [`resize_bilinear`].
pub fn resize_rgb(img: &RgbImage, new_w: u32, new_h: u32) -> Result<RgbImage> {
    RgbImage::from_planes(
        resize_bilinear(img.r(), new_w, new_h)?,
        resize_bilinear(img.g(), new_w, new_h)?,
        resize_bilinear(img.b(), new_w, new_h)?,
    )
}

/// Bilinear resize of either image kind.
///
/// # Errors
///
/// See [`resize_bilinear`].
pub fn resize_image(img: &Image, new_w: u32, new_h: u32) -> Result<Image> {
    Ok(match img {
        Image::Gray(g) => Image::Gray(resize_gray(g, new_w, new_h)?),
        Image::Rgb(c) => Image::Rgb(resize_rgb(c, new_w, new_h)?),
    })
}

/// Crops `rect` out of a plane, clamping the rectangle to the image first.
///
/// Unlike [`Plane::crop`], a partially-outside rectangle is silently clipped
/// instead of rejected — convenient for ROI handling where detector boxes
/// may protrude a pixel or two.
///
/// # Errors
///
/// Returns [`ImagingError::RectOutOfBounds`] only when the clamped rect is
/// empty.
pub fn crop_clamped(plane: &Plane, rect: Rect) -> Result<Plane> {
    let c = rect.clamped(plane.width(), plane.height());
    if c.is_degenerate() {
        return Err(ImagingError::RectOutOfBounds {
            rect: (rect.x, rect.y, rect.w, rect.h),
            width: plane.width(),
            height: plane.height(),
        });
    }
    plane.crop(c)
}

/// Pads a plane to `new_w × new_h` with `fill`, keeping the original at the
/// top-left.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidDimensions`] if the target is smaller than
/// the source in either dimension.
pub fn pad(plane: &Plane, new_w: u32, new_h: u32, fill: f32) -> Result<Plane> {
    let (w, h) = plane.dimensions();
    if new_w < w || new_h < h {
        return Err(ImagingError::InvalidDimensions {
            width: new_w,
            height: new_h,
            context: "pad target smaller than source",
        });
    }
    let mut out = Plane::filled(new_w, new_h, fill);
    out.blit(plane, 0, 0);
    Ok(out)
}

/// Nearest-neighbour upsample by an integer factor (used to visualise tiny
/// ROIs, e.g. the paper's Fig. 1 comparison).
///
/// # Errors
///
/// Returns [`ImagingError::InvalidFactor`] when `k == 0`.
pub fn upsample_nearest(plane: &Plane, k: u32) -> Result<Plane> {
    if k == 0 {
        return Err(ImagingError::InvalidFactor {
            factor: 0,
            width: plane.width(),
            height: plane.height(),
        });
    }
    let (w, h) = plane.dimensions();
    let mut out = Plane::new(w * k, h * k);
    for y in 0..h * k {
        for x in 0..w * k {
            out.set(x, y, plane.get(x / k, y / k));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_mean_preserved() {
        // Average pooling preserves the global mean exactly when k divides dims.
        let p = Plane::from_fn(8, 8, |x, y| ((x * 31 + y * 17) % 11) as f32 / 11.0);
        for k in [1, 2, 4, 8] {
            let pooled = avg_pool(&p, k).unwrap();
            assert!((pooled.mean() - p.mean()).abs() < 1e-5, "mean not preserved for k={k}");
            assert_eq!(pooled.dimensions(), (8 / k, 8 / k));
        }
    }

    #[test]
    fn avg_pool_constant_image() {
        let p = Plane::filled(6, 6, 0.7);
        let pooled = avg_pool(&p, 3).unwrap();
        for &v in pooled.as_slice() {
            assert!((v - 0.7).abs() < 1e-6);
        }
    }

    #[test]
    fn avg_pool_rejects_bad_factor() {
        let p = Plane::new(6, 6);
        assert!(avg_pool(&p, 0).is_err());
        assert!(avg_pool(&p, 4).is_err()); // 4 does not divide 6
        assert!(avg_pool(&p, 6).is_ok());
    }

    #[test]
    fn avg_pool_into_matches_allocating_path() {
        let p = Plane::from_fn(8, 8, |x, y| ((x * 7 + y * 3) % 5) as f32 / 5.0);
        let mut out = Plane::new(1, 1);
        for k in [1, 2, 4] {
            avg_pool_into(&p, k, &mut out).unwrap();
            assert_eq!(out, avg_pool(&p, k).unwrap(), "k={k}");
        }
        assert!(avg_pool_into(&p, 3, &mut out).is_err());
    }

    #[test]
    fn avg_pool_k1_is_identity() {
        let p = Plane::from_fn(3, 3, |x, y| (x * y) as f32);
        assert_eq!(avg_pool(&p, 1).unwrap(), p);
    }

    #[test]
    fn avg_pool_rgb_pools_channels_independently() {
        let img = RgbImage::from_fn(4, 4, |x, y| ((x + y) as f32, x as f32, y as f32));
        let pooled = avg_pool_rgb(&img, 2).unwrap();
        assert_eq!(pooled.pixel(0, 0), (1.0, 0.5, 0.5));
    }

    #[test]
    fn paper_resolutions_pool_exactly() {
        // 2560x1920 with 8x8, 4x4, 2x2 must yield 320x240, 640x480, 1280x960.
        let plane = Plane::new(256, 192); // scaled-down proxy with identical divisibility
        for (k, (ew, eh)) in [(8, (32, 24)), (4, (64, 48)), (2, (128, 96))] {
            let pooled = avg_pool(&plane, k).unwrap();
            assert_eq!(pooled.dimensions(), (ew, eh));
        }
    }

    #[test]
    fn resize_identity() {
        let p = Plane::from_fn(5, 7, |x, y| (x + y) as f32);
        assert_eq!(resize_bilinear(&p, 5, 7).unwrap(), p);
    }

    #[test]
    fn resize_constant_stays_constant() {
        let p = Plane::filled(8, 8, 0.42);
        let r = resize_bilinear(&p, 13, 3).unwrap();
        for &v in r.as_slice() {
            assert!((v - 0.42).abs() < 1e-6);
        }
    }

    #[test]
    fn resize_downscale_gradient() {
        // A horizontal ramp stays a ramp (monotone) under bilinear downscale.
        let p = Plane::from_fn(16, 4, |x, _| x as f32 / 15.0);
        let r = resize_bilinear(&p, 8, 4).unwrap();
        for x in 1..8 {
            assert!(r.get(x, 0) > r.get(x - 1, 0));
        }
    }

    #[test]
    fn resize_rejects_zero() {
        let p = Plane::new(4, 4);
        assert!(resize_bilinear(&p, 0, 4).is_err());
        assert!(resize_bilinear(&p, 4, 0).is_err());
    }

    #[test]
    fn crop_clamped_clips_protruding_rect() {
        let p = Plane::from_fn(8, 8, |x, y| (x + y) as f32);
        let c = crop_clamped(&p, Rect::new(6, 6, 5, 5)).unwrap();
        assert_eq!(c.dimensions(), (2, 2));
        assert!(crop_clamped(&p, Rect::new(9, 0, 2, 2)).is_err());
    }

    #[test]
    fn pad_keeps_source_and_fills() {
        let p = Plane::filled(2, 2, 1.0);
        let padded = pad(&p, 4, 3, 0.5).unwrap();
        assert_eq!(padded.get(1, 1), 1.0);
        assert_eq!(padded.get(3, 2), 0.5);
        assert!(pad(&p, 1, 4, 0.0).is_err());
    }

    #[test]
    fn upsample_nearest_repeats_pixels() {
        let p = Plane::from_fn(2, 1, |x, _| x as f32);
        let up = upsample_nearest(&p, 3).unwrap();
        assert_eq!(up.dimensions(), (6, 3));
        assert_eq!(up.get(2, 2), 0.0);
        assert_eq!(up.get(3, 0), 1.0);
        assert!(upsample_nearest(&p, 0).is_err());
    }

    #[test]
    fn image_level_helpers_dispatch() {
        let g: Image = GrayImage::new(8, 8).into();
        assert_eq!(avg_pool_image(&g, 2).unwrap().width(), 4);
        let c: Image = RgbImage::new(8, 8).into();
        assert_eq!(resize_image(&c, 2, 2).unwrap().height(), 2);
    }
}
