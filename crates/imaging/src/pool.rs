//! A small free-list pool for recycling [`Plane`] buffers across frames.
//!
//! The HiRISE steady state processes one frame after another with
//! similarly-sized intermediates (pooled images, ROI crops). [`FramePool`]
//! keeps retired planes and hands them back reshaped, so a hot loop pays
//! for each buffer's allocation once and then reuses the capacity forever.
//! Because [`Plane::reshape`] only grows a buffer when the new frame is
//! strictly larger than anything the plane has held before, the pool
//! converges to zero heap traffic after a warm-up frame or two.

use crate::image::{Plane, RgbImage};

/// A LIFO free list of [`Plane`]s (and, via the `_rgb` helpers, planar
/// RGB images).
///
/// # Example
///
/// ```
/// use hirise_imaging::FramePool;
///
/// let mut pool = FramePool::new();
/// let plane = pool.acquire(64, 48);
/// assert_eq!(plane.dimensions(), (64, 48));
/// pool.release(plane);
/// assert_eq!(pool.len(), 1);
/// // The recycled plane comes back zeroed at the requested size.
/// let again = pool.acquire(32, 32);
/// assert_eq!(again.dimensions(), (32, 32));
/// assert!(pool.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FramePool {
    free: Vec<Plane>,
}

impl FramePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of planes currently parked in the pool.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// `true` when no planes are parked.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Returns a zeroed `width × height` plane, recycling a parked one
    /// when available (its capacity is reused; a fresh allocation happens
    /// only when the pool is empty or the buffer must grow).
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions (the [`Plane`] invariant).
    pub fn acquire(&mut self, width: u32, height: u32) -> Plane {
        match self.free.pop() {
            Some(mut plane) => {
                plane.reshape(width, height);
                plane
            }
            None => Plane::new(width, height),
        }
    }

    /// Parks a plane for later reuse.
    pub fn release(&mut self, plane: Plane) {
        self.free.push(plane);
    }

    /// Like [`FramePool::acquire`] but with **unspecified** sample values
    /// (see [`Plane::reshape_for_overwrite`]) — for producers that
    /// overwrite every sample, this skips the zeroing memset.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn acquire_for_overwrite(&mut self, width: u32, height: u32) -> Plane {
        match self.free.pop() {
            Some(mut plane) => {
                plane.reshape_for_overwrite(width, height);
                plane
            }
            None => Plane::new(width, height),
        }
    }

    /// Returns a zeroed RGB image assembled from three pooled planes.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn acquire_rgb(&mut self, width: u32, height: u32) -> RgbImage {
        let r = self.acquire(width, height);
        let g = self.acquire(width, height);
        let b = self.acquire(width, height);
        RgbImage::from_planes(r, g, b).expect("pooled planes share dimensions")
    }

    /// Like [`FramePool::acquire_rgb`] but with unspecified sample values
    /// (see [`FramePool::acquire_for_overwrite`]).
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn acquire_rgb_for_overwrite(&mut self, width: u32, height: u32) -> RgbImage {
        let r = self.acquire_for_overwrite(width, height);
        let g = self.acquire_for_overwrite(width, height);
        let b = self.acquire_for_overwrite(width, height);
        RgbImage::from_planes(r, g, b).expect("pooled planes share dimensions")
    }

    /// Parks all three planes of an RGB image.
    pub fn release_rgb(&mut self, image: RgbImage) {
        let (r, g, b) = image.into_planes();
        self.free.push(r);
        self.free.push(g);
        self.free.push(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_from_empty_pool_allocates() {
        let mut pool = FramePool::new();
        assert!(pool.is_empty());
        let p = pool.acquire(4, 3);
        assert_eq!(p.dimensions(), (4, 3));
        assert_eq!(p.as_slice(), &[0.0; 12]);
    }

    #[test]
    fn recycled_planes_come_back_zeroed() {
        let mut pool = FramePool::new();
        let mut p = pool.acquire(4, 4);
        p.set(2, 2, 0.7);
        pool.release(p);
        let q = pool.acquire(2, 8);
        assert_eq!(q.dimensions(), (2, 8));
        assert!(q.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn acquire_for_overwrite_sets_shape_without_zeroing_requirement() {
        let mut pool = FramePool::new();
        let mut p = pool.acquire(4, 4);
        p.set(1, 1, 0.5);
        pool.release(p);
        let q = pool.acquire_for_overwrite(2, 2);
        // Contents unspecified; only the shape contract matters.
        assert_eq!(q.dimensions(), (2, 2));
        let rgb = pool.acquire_rgb_for_overwrite(3, 3);
        assert_eq!(rgb.dimensions(), (3, 3));
    }

    #[test]
    fn rgb_roundtrip_parks_three_planes() {
        let mut pool = FramePool::new();
        let img = pool.acquire_rgb(8, 8);
        assert_eq!(img.dimensions(), (8, 8));
        pool.release_rgb(img);
        assert_eq!(pool.len(), 3);
        let again = pool.acquire_rgb(4, 4);
        assert_eq!(again.dimensions(), (4, 4));
        assert!(pool.is_empty());
    }
}
