//! Integer rectangles and IoU arithmetic.
//!
//! [`Rect`] is shared by the detector (predicted boxes), the scene generator
//! (ground-truth boxes) and the core pipeline (ROI requests sent back to the
//! sensor), so it lives in this foundation crate.

/// An axis-aligned rectangle with `u32` top-left corner and size.
///
/// The rectangle covers pixel columns `x .. x + w` and rows `y .. y + h`
/// (half-open, like slice ranges). A zero-area rectangle (`w == 0 || h == 0`)
/// is representable and behaves as an empty set in intersection queries.
///
/// # Example
///
/// ```
/// use hirise_imaging::Rect;
///
/// let a = Rect::new(0, 0, 10, 10);
/// let b = Rect::new(5, 5, 10, 10);
/// assert_eq!(a.intersection_area(&b), 25);
/// assert!((a.iou(&b) - 25.0 / 175.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Leftmost column.
    pub x: u32,
    /// Topmost row.
    pub y: u32,
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
}

impl Rect {
    /// Creates a rectangle from its top-left corner and size.
    pub fn new(x: u32, y: u32, w: u32, h: u32) -> Self {
        Self { x, y, w, h }
    }

    /// Creates a rectangle from two corner points `(x0, y0)` (inclusive) and
    /// `(x1, y1)` (exclusive). Coordinates may be given in any order.
    pub fn from_corners(x0: u32, y0: u32, x1: u32, y1: u32) -> Self {
        let (xa, xb) = if x0 <= x1 { (x0, x1) } else { (x1, x0) };
        let (ya, yb) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
        Self { x: xa, y: ya, w: xb - xa, h: yb - ya }
    }

    /// Area in pixels.
    pub fn area(&self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// `true` if the rectangle has zero area.
    pub fn is_degenerate(&self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Exclusive right edge.
    pub fn right(&self) -> u32 {
        self.x + self.w
    }

    /// Exclusive bottom edge.
    pub fn bottom(&self) -> u32 {
        self.y + self.h
    }

    /// Center `(cx, cy)` in floating point.
    pub fn center(&self) -> (f32, f32) {
        (self.x as f32 + self.w as f32 / 2.0, self.y as f32 + self.h as f32 / 2.0)
    }

    /// `true` if point `(px, py)` lies inside the rectangle.
    pub fn contains_point(&self, px: u32, py: u32) -> bool {
        px >= self.x && px < self.right() && py >= self.y && py < self.bottom()
    }

    /// `true` if `other` is entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.x >= self.x
            && other.y >= self.y
            && other.right() <= self.right()
            && other.bottom() <= self.bottom()
    }

    /// `true` if the rectangle fits inside a `width x height` image.
    pub fn fits_within(&self, width: u32, height: u32) -> bool {
        self.right() <= width && self.bottom() <= height
    }

    /// Intersection rectangle, or `None` when disjoint (or either is empty).
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = self.right().min(other.right());
        let y1 = self.bottom().min(other.bottom());
        if x0 < x1 && y0 < y1 {
            Some(Rect::from_corners(x0, y0, x1, y1))
        } else {
            None
        }
    }

    /// Intersection area in pixels.
    pub fn intersection_area(&self, other: &Rect) -> u64 {
        self.intersection(other).map_or(0, |r| r.area())
    }

    /// Union area (inclusion–exclusion, not the bounding box).
    pub fn union_area(&self, other: &Rect) -> u64 {
        self.area() + other.area() - self.intersection_area(other)
    }

    /// Intersection-over-union in `0.0..=1.0`; `0.0` when both are empty.
    pub fn iou(&self, other: &Rect) -> f64 {
        let inter = self.intersection_area(other);
        let union = self.union_area(other);
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Smallest rectangle covering both.
    pub fn bounding_union(&self, other: &Rect) -> Rect {
        if self.is_degenerate() {
            return *other;
        }
        if other.is_degenerate() {
            return *self;
        }
        Rect::from_corners(
            self.x.min(other.x),
            self.y.min(other.y),
            self.right().max(other.right()),
            self.bottom().max(other.bottom()),
        )
    }

    /// Clamps the rectangle so it fits inside a `width x height` image.
    /// A rectangle entirely outside degenerates to zero size at the border.
    pub fn clamped(&self, width: u32, height: u32) -> Rect {
        let x = self.x.min(width);
        let y = self.y.min(height);
        let w = self.w.min(width - x);
        let h = self.h.min(height - y);
        Rect { x, y, w, h }
    }

    /// Scales the rectangle by a rational factor `num / den`, rounding
    /// half-up. Used to map boxes between resolutions (e.g. a 320×240
    /// detection back to a 2560×1920 array is `num = 8, den = 1`).
    ///
    /// A *non-degenerate* side that would round to zero is kept at one
    /// pixel (a real box never vanishes under downscaling), but a
    /// degenerate input stays degenerate: an empty box must not become a
    /// live 1×1 ROI just because it passed through a resolution change.
    pub fn scaled(&self, num: u32, den: u32) -> Rect {
        assert!(den != 0, "scale denominator must be nonzero");
        let s = |v: u32| ((v as u64 * num as u64 + den as u64 / 2) / den as u64) as u32;
        let side = |v: u32| if v == 0 { 0 } else { s(v).max(1) };
        Rect { x: s(self.x), y: s(self.y), w: side(self.w), h: side(self.h) }
    }

    /// Grows the rectangle by `margin` pixels on every side, clamping the
    /// top-left at zero. Saturates instead of wrapping for sizes near
    /// `u32::MAX`, and leaves degenerate rectangles unchanged (dilating
    /// the empty set yields the empty set).
    pub fn inflated(&self, margin: u32) -> Rect {
        if self.is_degenerate() {
            return *self;
        }
        let x = self.x.saturating_sub(margin);
        let y = self.y.saturating_sub(margin);
        Rect {
            x,
            y,
            w: self.w.saturating_add(self.x - x).saturating_add(margin),
            h: self.h.saturating_add(self.y - y).saturating_add(margin),
        }
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{},{} {}x{}]", self.x, self.y, self.w, self.h)
    }
}

/// Area of the union of a set of rectangles, in pixels.
///
/// Computed exactly by a coordinate-compression sweep; quadratic in the
/// number of rectangles but exact for overlapping boxes. The HiRISE stage-2
/// ADC model charges one conversion per *unique* pixel in the union of all
/// ROIs, while data transfer ships each box separately (see the paper's
/// discussion of `D2_S→P` vs `C2_S→P`).
///
/// # Example
///
/// ```
/// use hirise_imaging::Rect;
/// use hirise_imaging::rect::union_area;
///
/// let boxes = [Rect::new(0, 0, 10, 10), Rect::new(5, 0, 10, 10)];
/// assert_eq!(union_area(&boxes), 150);
/// ```
pub fn union_area(rects: &[Rect]) -> u64 {
    union_area_with_scratch(rects, &mut UnionScratch::default())
}

/// Reusable coordinate-compression buffers for
/// [`union_area_with_scratch`], so the per-frame accounting path computes
/// union areas without heap allocation once warmed up.
#[derive(Debug, Clone, Default)]
pub struct UnionScratch {
    xs: Vec<u32>,
    ys: Vec<u32>,
}

impl UnionScratch {
    /// Creates empty scratch buffers; they grow to their steady-state size
    /// on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`union_area`] with caller-owned scratch buffers (same result; no
/// allocation once `scratch` has reached its working capacity).
pub fn union_area_with_scratch(rects: &[Rect], scratch: &mut UnionScratch) -> u64 {
    let UnionScratch { xs, ys } = scratch;
    xs.clear();
    ys.clear();
    for r in rects.iter().filter(|r| !r.is_degenerate()) {
        xs.push(r.x);
        xs.push(r.right());
        ys.push(r.y);
        ys.push(r.bottom());
    }
    if xs.is_empty() {
        return 0;
    }
    xs.sort_unstable();
    xs.dedup();
    ys.sort_unstable();
    ys.dedup();
    let mut total = 0u64;
    for xi in 0..xs.len() - 1 {
        let (x0, x1) = (xs[xi], xs[xi + 1]);
        for yi in 0..ys.len() - 1 {
            let (y0, y1) = (ys[yi], ys[yi + 1]);
            // A degenerate rect can never satisfy the cover test (its
            // right edge equals its left), so no pre-filter is needed.
            let covered =
                rects.iter().any(|r| r.x <= x0 && r.right() >= x1 && r.y <= y0 && r.bottom() >= y1);
            if covered {
                total += (x1 - x0) as u64 * (y1 - y0) as u64;
            }
        }
    }
    total
}

/// Sum of the individual areas of a set of rectangles (overlaps counted
/// multiple times) — the paper's `Σ (W_i × H_i)` data-transfer term.
pub fn sum_area(rects: &[Rect]) -> u64 {
    rects.iter().map(Rect::area).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_any_order() {
        let r = Rect::from_corners(5, 7, 2, 3);
        assert_eq!(r, Rect::new(2, 3, 3, 4));
    }

    #[test]
    fn area_and_edges() {
        let r = Rect::new(2, 3, 4, 5);
        assert_eq!(r.area(), 20);
        assert_eq!(r.right(), 6);
        assert_eq!(r.bottom(), 8);
        assert_eq!(r.center(), (4.0, 5.5));
    }

    #[test]
    fn contains_point_half_open() {
        let r = Rect::new(1, 1, 2, 2);
        assert!(r.contains_point(1, 1));
        assert!(r.contains_point(2, 2));
        assert!(!r.contains_point(3, 2));
        assert!(!r.contains_point(0, 1));
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(2, 2, 4, 4);
        assert_eq!(a.intersection(&b), Some(Rect::new(2, 2, 2, 2)));
        let c = Rect::new(4, 0, 2, 2); // touching edge -> disjoint
        assert_eq!(a.intersection(&c), None);
        let d = Rect::new(10, 10, 1, 1);
        assert_eq!(a.intersection_area(&d), 0);
    }

    #[test]
    fn iou_identity_and_disjoint() {
        let a = Rect::new(3, 3, 7, 9);
        assert!((a.iou(&a) - 1.0).abs() < 1e-12);
        let b = Rect::new(100, 100, 5, 5);
        assert_eq!(a.iou(&b), 0.0);
        let empty = Rect::new(0, 0, 0, 0);
        assert_eq!(empty.iou(&empty), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(0, 5, 10, 10);
        // intersection 50, union 150
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn bounding_union_covers_both() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(5, 6, 2, 2);
        let u = a.bounding_union(&b);
        assert!(u.contains_rect(&a) && u.contains_rect(&b));
        assert_eq!(u, Rect::new(0, 0, 7, 8));
        let empty = Rect::default();
        assert_eq!(empty.bounding_union(&a), a);
        assert_eq!(a.bounding_union(&empty), a);
    }

    #[test]
    fn clamped_stays_inside() {
        let r = Rect::new(5, 5, 10, 10).clamped(8, 8);
        assert_eq!(r, Rect::new(5, 5, 3, 3));
        let outside = Rect::new(20, 20, 3, 3).clamped(8, 8);
        assert!(outside.is_degenerate());
    }

    #[test]
    fn scaled_roundtrips_factor() {
        let r = Rect::new(10, 20, 14, 14);
        let up = r.scaled(8, 1);
        assert_eq!(up, Rect::new(80, 160, 112, 112));
        let down = up.scaled(1, 8);
        assert_eq!(down, r);
    }

    #[test]
    fn scaled_never_degenerates() {
        let r = Rect::new(1, 1, 1, 1).scaled(1, 10);
        assert!(r.w >= 1 && r.h >= 1);
    }

    #[test]
    fn scaled_preserves_degeneracy() {
        // An empty box stays empty through any resolution change; only
        // non-degenerate sides are floored at one pixel.
        for (w, h) in [(0, 0), (0, 5), (5, 0)] {
            let r = Rect::new(10, 20, w, h);
            for (num, den) in [(8, 1), (1, 8), (3, 7)] {
                let s = r.scaled(num, den);
                assert_eq!(s.w == 0, w == 0, "{r} scaled {num}/{den} -> {s}");
                assert_eq!(s.h == 0, h == 0, "{r} scaled {num}/{den} -> {s}");
            }
        }
    }

    #[test]
    fn inflated_clamps_at_zero() {
        let r = Rect::new(1, 1, 2, 2).inflated(3);
        assert_eq!(r, Rect::new(0, 0, 6, 6));
    }

    #[test]
    fn inflated_saturates_instead_of_wrapping() {
        // Near-u32::MAX sizes and margins must saturate, not wrap (the
        // old `w + (x - x0) + margin` overflowed in release builds).
        let r = Rect::new(u32::MAX - 4, 2, u32::MAX - 8, 3).inflated(u32::MAX);
        assert_eq!((r.x, r.y), (0, 0));
        assert_eq!((r.w, r.h), (u32::MAX, u32::MAX));
        let tight = Rect::new(5, 5, u32::MAX - 3, 10).inflated(4);
        assert_eq!(tight.w, u32::MAX);
        assert_eq!(tight.h, 10 + 4 + 4);
    }

    #[test]
    fn inflated_leaves_degenerate_rects_empty() {
        let empty = Rect::new(7, 9, 0, 4);
        assert_eq!(empty.inflated(3), empty);
        assert!(empty.inflated(100).is_degenerate());
    }

    #[test]
    fn union_area_disjoint_and_overlapping() {
        let disjoint = [Rect::new(0, 0, 2, 2), Rect::new(10, 10, 3, 3)];
        assert_eq!(union_area(&disjoint), 4 + 9);
        let overlapping = [Rect::new(0, 0, 10, 10), Rect::new(5, 0, 10, 10)];
        assert_eq!(union_area(&overlapping), 150);
        assert_eq!(sum_area(&overlapping), 200);
    }

    #[test]
    fn union_area_nested_and_identical() {
        let nested = [Rect::new(0, 0, 10, 10), Rect::new(2, 2, 3, 3)];
        assert_eq!(union_area(&nested), 100);
        let same = [Rect::new(1, 1, 4, 4); 5];
        assert_eq!(union_area(&same), 16);
    }

    #[test]
    fn union_area_scratch_reuse_matches() {
        let mut scratch = UnionScratch::new();
        let sets: [&[Rect]; 3] = [
            &[Rect::new(0, 0, 10, 10), Rect::new(5, 0, 10, 10)],
            &[],
            &[Rect::new(2, 2, 3, 3), Rect::new(0, 0, 10, 10), Rect::default()],
        ];
        for rects in sets {
            assert_eq!(union_area_with_scratch(rects, &mut scratch), union_area(rects));
        }
    }

    #[test]
    fn union_area_empty_inputs() {
        assert_eq!(union_area(&[]), 0);
        assert_eq!(union_area(&[Rect::default()]), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(Rect::new(1, 2, 3, 4).to_string(), "[1,2 3x4]");
    }
}
