use std::error::Error;
use std::fmt;

/// Error type for all fallible operations in `hirise-imaging`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImagingError {
    /// An image dimension was zero or otherwise unusable.
    InvalidDimensions {
        /// Requested width.
        width: u32,
        /// Requested height.
        height: u32,
        /// What was being constructed or asked for.
        context: &'static str,
    },
    /// A pooling/scaling factor does not divide the image dimensions or is zero.
    InvalidFactor {
        /// The offending factor.
        factor: u32,
        /// Image width at the time of the call.
        width: u32,
        /// Image height at the time of the call.
        height: u32,
    },
    /// A rectangle falls (partially) outside an image.
    RectOutOfBounds {
        /// The offending rectangle `(x, y, w, h)`.
        rect: (u32, u32, u32, u32),
        /// Image width.
        width: u32,
        /// Image height.
        height: u32,
    },
    /// The length of a raw buffer does not match `width * height (* channels)`.
    BufferSizeMismatch {
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        actual: usize,
    },
    /// Failure while decoding a PPM/PGM stream.
    Decode(String),
    /// Failure while reading or writing bytes.
    Io(String),
}

impl fmt::Display for ImagingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImagingError::InvalidDimensions { width, height, context } => {
                write!(f, "invalid dimensions {width}x{height} for {context}")
            }
            ImagingError::InvalidFactor { factor, width, height } => write!(
                f,
                "factor {factor} is zero or does not divide image dimensions {width}x{height}"
            ),
            ImagingError::RectOutOfBounds { rect, width, height } => write!(
                f,
                "rect x={} y={} w={} h={} exceeds image bounds {width}x{height}",
                rect.0, rect.1, rect.2, rect.3
            ),
            ImagingError::BufferSizeMismatch { expected, actual } => {
                write!(f, "buffer holds {actual} elements, expected {expected}")
            }
            ImagingError::Decode(msg) => write!(f, "decode error: {msg}"),
            ImagingError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl Error for ImagingError {}

impl From<std::io::Error> for ImagingError {
    fn from(e: std::io::Error) -> Self {
        ImagingError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            ImagingError::InvalidDimensions { width: 0, height: 3, context: "plane" },
            ImagingError::InvalidFactor { factor: 3, width: 10, height: 10 },
            ImagingError::RectOutOfBounds { rect: (1, 2, 3, 4), width: 2, height: 2 },
            ImagingError::BufferSizeMismatch { expected: 4, actual: 5 },
            ImagingError::Decode("bad magic".into()),
            ImagingError::Io("eof".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImagingError>();
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: ImagingError = io.into();
        assert!(matches!(e, ImagingError::Io(_)));
    }
}
