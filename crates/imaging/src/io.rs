//! Binary PPM (P6) / PGM (P5) encoding and decoding.
//!
//! These are the only file formats the workspace needs (examples dump
//! qualitative results like the paper's Fig. 1 as PPM), so they are
//! implemented here instead of pulling in an image codec dependency.

use std::io::{BufRead, Write};
use std::path::Path;

use crate::{GrayImage, ImagingError, Plane, Result, RgbImage};

/// Writes a gray image as binary PGM (P5, maxval 255).
///
/// A `&mut` reference may be passed for `w` since `Write` is implemented for
/// `&mut W`.
///
/// # Errors
///
/// Propagates I/O failures as [`ImagingError::Io`].
pub fn write_pgm<W: Write>(img: &GrayImage, mut w: W) -> Result<()> {
    write!(w, "P5\n{} {}\n255\n", img.width(), img.height())?;
    w.write_all(&img.plane().to_u8())?;
    Ok(())
}

/// Writes an RGB image as binary PPM (P6, maxval 255).
///
/// # Errors
///
/// Propagates I/O failures as [`ImagingError::Io`].
pub fn write_ppm<W: Write>(img: &RgbImage, mut w: W) -> Result<()> {
    write!(w, "P6\n{} {}\n255\n", img.width(), img.height())?;
    let (r, g, b) = (img.r().to_u8(), img.g().to_u8(), img.b().to_u8());
    let mut interleaved = Vec::with_capacity(r.len() * 3);
    for i in 0..r.len() {
        interleaved.push(r[i]);
        interleaved.push(g[i]);
        interleaved.push(b[i]);
    }
    w.write_all(&interleaved)?;
    Ok(())
}

/// Saves a gray image to `path` as PGM.
///
/// # Errors
///
/// Propagates I/O failures as [`ImagingError::Io`].
pub fn save_pgm(img: &GrayImage, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_pgm(img, std::io::BufWriter::new(file))
}

/// Saves an RGB image to `path` as PPM.
///
/// # Errors
///
/// Propagates I/O failures as [`ImagingError::Io`].
pub fn save_ppm(img: &RgbImage, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_ppm(img, std::io::BufWriter::new(file))
}

fn read_token<R: BufRead>(r: &mut R) -> Result<String> {
    let mut tok = String::new();
    let mut in_comment = false;
    loop {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) => {
                if tok.is_empty() {
                    return Err(ImagingError::Decode(format!("unexpected end of header: {e}")));
                }
                return Ok(tok);
            }
        }
        let c = byte[0] as char;
        if in_comment {
            if c == '\n' {
                in_comment = false;
            }
            continue;
        }
        if c == '#' {
            in_comment = true;
            continue;
        }
        if c.is_ascii_whitespace() {
            if tok.is_empty() {
                continue;
            }
            return Ok(tok);
        }
        tok.push(c);
    }
}

fn parse_header<R: BufRead>(r: &mut R, magic: &str) -> Result<(u32, u32)> {
    let m = read_token(r)?;
    if m != magic {
        return Err(ImagingError::Decode(format!("expected magic {magic}, found {m}")));
    }
    let w: u32 =
        read_token(r)?.parse().map_err(|e| ImagingError::Decode(format!("bad width: {e}")))?;
    let h: u32 =
        read_token(r)?.parse().map_err(|e| ImagingError::Decode(format!("bad height: {e}")))?;
    let maxval: u32 =
        read_token(r)?.parse().map_err(|e| ImagingError::Decode(format!("bad maxval: {e}")))?;
    if maxval != 255 {
        return Err(ImagingError::Decode(format!("unsupported maxval {maxval}, expected 255")));
    }
    if w == 0 || h == 0 {
        return Err(ImagingError::Decode(format!("degenerate image {w}x{h}")));
    }
    Ok((w, h))
}

/// Reads a binary PGM (P5) stream.
///
/// # Errors
///
/// Returns [`ImagingError::Decode`] for malformed headers and
/// [`ImagingError::Io`] for truncated payloads.
pub fn read_pgm<R: BufRead>(mut r: R) -> Result<GrayImage> {
    let (w, h) = parse_header(&mut r, "P5")?;
    let mut data = vec![0u8; w as usize * h as usize];
    r.read_exact(&mut data)?;
    Ok(GrayImage::from_plane(Plane::from_u8(w, h, &data)?))
}

/// Reads a binary PPM (P6) stream.
///
/// # Errors
///
/// Returns [`ImagingError::Decode`] for malformed headers and
/// [`ImagingError::Io`] for truncated payloads.
pub fn read_ppm<R: BufRead>(mut r: R) -> Result<RgbImage> {
    let (w, h) = parse_header(&mut r, "P6")?;
    let n = w as usize * h as usize;
    let mut data = vec![0u8; n * 3];
    r.read_exact(&mut data)?;
    let mut rp = Vec::with_capacity(n);
    let mut gp = Vec::with_capacity(n);
    let mut bp = Vec::with_capacity(n);
    for px in data.chunks_exact(3) {
        rp.push(px[0] as f32 / 255.0);
        gp.push(px[1] as f32 / 255.0);
        bp.push(px[2] as f32 / 255.0);
    }
    RgbImage::from_planes(
        Plane::from_vec(w, h, rp)?,
        Plane::from_vec(w, h, gp)?,
        Plane::from_vec(w, h, bp)?,
    )
}

/// Loads a PGM file from disk.
///
/// # Errors
///
/// See [`read_pgm`].
pub fn load_pgm(path: impl AsRef<Path>) -> Result<GrayImage> {
    let file = std::fs::File::open(path)?;
    read_pgm(std::io::BufReader::new(file))
}

/// Loads a PPM file from disk.
///
/// # Errors
///
/// See [`read_ppm`].
pub fn load_ppm(path: impl AsRef<Path>) -> Result<RgbImage> {
    let file = std::fs::File::open(path)?;
    read_ppm(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn pgm_roundtrip() {
        let img = GrayImage::from_fn(7, 5, |x, y| ((x * 37 + y * 11) % 256) as f32 / 255.0);
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(Cursor::new(buf)).unwrap();
        assert_eq!(back.dimensions(), (7, 5));
        // u8 quantisation roundtrip is exact for values that came from u8
        assert_eq!(back.plane().to_u8(), img.plane().to_u8());
    }

    #[test]
    fn ppm_roundtrip() {
        let img =
            RgbImage::from_fn(4, 3, |x, y| (x as f32 / 3.0, y as f32 / 2.0, (x + y) as f32 / 5.0));
        let mut buf = Vec::new();
        write_ppm(&img, &mut buf).unwrap();
        let back = read_ppm(Cursor::new(buf)).unwrap();
        assert_eq!(back.dimensions(), (4, 3));
        assert_eq!(back.r().to_u8(), img.r().to_u8());
        assert_eq!(back.b().to_u8(), img.b().to_u8());
    }

    #[test]
    fn header_magic_checked() {
        let bad = b"P4\n2 2\n255\n....".to_vec();
        assert!(matches!(read_pgm(Cursor::new(bad)), Err(ImagingError::Decode(_))));
    }

    #[test]
    fn header_comments_skipped() {
        let mut buf = b"P5\n# a comment line\n2 1\n# another\n255\n".to_vec();
        buf.extend_from_slice(&[10u8, 200u8]);
        let img = read_pgm(Cursor::new(buf)).unwrap();
        assert_eq!(img.dimensions(), (2, 1));
        assert_eq!(img.plane().to_u8(), vec![10, 200]);
    }

    #[test]
    fn truncated_payload_is_io_error() {
        let buf = b"P5\n4 4\n255\nxx".to_vec(); // 2 bytes instead of 16
        assert!(matches!(read_pgm(Cursor::new(buf)), Err(ImagingError::Io(_))));
    }

    #[test]
    fn zero_dims_rejected() {
        let buf = b"P5\n0 4\n255\n".to_vec();
        assert!(read_pgm(Cursor::new(buf)).is_err());
    }

    #[test]
    fn unsupported_maxval_rejected() {
        let buf = b"P5\n2 2\n65535\n........".to_vec();
        assert!(read_pgm(Cursor::new(buf)).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hirise_imaging_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.ppm");
        let img = RgbImage::from_fn(8, 8, |x, y| ((x % 2) as f32, (y % 2) as f32, 0.5));
        save_ppm(&img, &path).unwrap();
        let back = load_ppm(&path).unwrap();
        assert_eq!(back.dimensions(), (8, 8));
        std::fs::remove_file(&path).unwrap();
    }
}
