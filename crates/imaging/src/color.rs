//! Colour conversions.
//!
//! The HiRISE analog compression circuit averages the R, G and B sub-pixels
//! with *equal* weights (they are wired through identical resistors), so the
//! in-sensor grayscale is the arithmetic mean — not BT.601 luma. Both are
//! provided; the pipeline uses [`rgb_to_gray_mean`] to match the hardware
//! and tests use BT.601 to quantify the difference.

use crate::{GrayImage, Image, Plane, RgbImage};

/// BT.601 luma weights `(r, g, b)`.
pub const BT601_WEIGHTS: (f32, f32, f32) = (0.299, 0.587, 0.114);

/// Analog-mean weights `(r, g, b)` — what the averaging circuit computes
/// when the three sub-pixels of a site are tied together.
pub const MEAN_WEIGHTS: (f32, f32, f32) = (1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0);

/// Converts RGB to gray by the arithmetic mean of the three channels —
/// exactly what the analog averaging circuit computes when the 3 sub-pixels
/// of a site are tied together.
///
/// # Example
///
/// ```
/// use hirise_imaging::{RgbImage, color};
///
/// let img = RgbImage::from_fn(2, 2, |_, _| (0.3, 0.6, 0.9));
/// let gray = color::rgb_to_gray_mean(&img);
/// assert!((gray.plane().get(0, 0) - 0.6).abs() < 1e-6);
/// ```
pub fn rgb_to_gray_mean(img: &RgbImage) -> GrayImage {
    weighted_gray(img, MEAN_WEIGHTS)
}

/// Converts RGB to gray with BT.601 luma weights (the common digital
/// convention; used only for comparison with the analog mean).
pub fn rgb_to_gray_bt601(img: &RgbImage) -> GrayImage {
    weighted_gray(img, BT601_WEIGHTS)
}

/// Converts RGB to gray with arbitrary channel weights.
pub fn weighted_gray(img: &RgbImage, weights: (f32, f32, f32)) -> GrayImage {
    let mut out = Plane::new(img.width(), img.height());
    weighted_gray_into(img, weights, &mut out);
    GrayImage::from_plane(out)
}

/// In-place variant of [`weighted_gray`]: writes the weighted luminance
/// into `out` (reshaped to the image's dimensions). Runs as one flat pass
/// over the three channel slices, bit-identical to the per-pixel form.
pub fn weighted_gray_into(img: &RgbImage, (wr, wg, wb): (f32, f32, f32), out: &mut Plane) {
    let (w, h) = img.dimensions();
    out.reshape_for_overwrite(w, h);
    let [r, g, b] = [img.r().as_slice(), img.g().as_slice(), img.b().as_slice()];
    for (((o, &r), &g), &b) in out.as_mut_slice().iter_mut().zip(r).zip(g).zip(b) {
        *o = r * wr + g * wg + b * wb;
    }
}

/// Replicates a gray image into three identical RGB channels.
pub fn gray_to_rgb(img: &GrayImage) -> RgbImage {
    RgbImage::from_planes(img.plane().clone(), img.plane().clone(), img.plane().clone())
        .expect("identical planes always share dimensions")
}

/// Converts any [`Image`] to gray using the analog mean convention.
/// Gray images pass through unchanged.
pub fn to_gray(img: &Image) -> GrayImage {
    match img {
        Image::Gray(g) => g.clone(),
        Image::Rgb(c) => rgb_to_gray_mean(c),
    }
}

/// In-place variant of [`to_gray`]: writes the luminance plane into `out`
/// (reshaped to the image's dimensions). Gray inputs are copied through.
pub fn to_gray_into(img: &Image, out: &mut Plane) {
    match img {
        Image::Gray(g) => out.copy_from(g.plane()),
        Image::Rgb(c) => weighted_gray_into(c, MEAN_WEIGHTS, out),
    }
}

/// Per-pixel colour saturation: `max(r,g,b) - min(r,g,b)`.
///
/// The stage-1 detector uses this as its colour cue; it is the feature that
/// is *lost* when the sensor operates in grayscale mode, producing the small
/// accuracy drop the paper reports for gray operation.
pub fn saturation(img: &RgbImage) -> Plane {
    let mut out = Plane::new(img.width(), img.height());
    saturation_into(img, &mut out);
    out
}

/// In-place variant of [`saturation`]: writes the saturation map into
/// `out` (reshaped to the image's dimensions). Runs as one flat pass over
/// the three channel slices, bit-identical to the per-pixel form.
pub fn saturation_into(img: &RgbImage, out: &mut Plane) {
    let (w, h) = img.dimensions();
    out.reshape_for_overwrite(w, h);
    let [r, g, b] = [img.r().as_slice(), img.g().as_slice(), img.b().as_slice()];
    for (((o, &r), &g), &b) in out.as_mut_slice().iter_mut().zip(r).zip(g).zip(b) {
        *o = r.max(g).max(b) - r.min(g).min(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_gray_of_primaries() {
        let img = RgbImage::from_fn(3, 1, |x, _| match x {
            0 => (1.0, 0.0, 0.0),
            1 => (0.0, 1.0, 0.0),
            _ => (0.0, 0.0, 1.0),
        });
        let g = rgb_to_gray_mean(&img);
        for x in 0..3 {
            assert!((g.plane().get(x, 0) - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn bt601_weights_sum_to_one() {
        let (r, g, b) = BT601_WEIGHTS;
        assert!((r + g + b - 1.0).abs() < 1e-6);
        let img = RgbImage::from_fn(1, 1, |_, _| (1.0, 1.0, 1.0));
        assert!((rgb_to_gray_bt601(&img).plane().get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bt601_differs_from_mean_on_chromatic_input() {
        let img = RgbImage::from_fn(1, 1, |_, _| (0.0, 1.0, 0.0));
        let mean = rgb_to_gray_mean(&img).plane().get(0, 0);
        let luma = rgb_to_gray_bt601(&img).plane().get(0, 0);
        assert!((mean - 1.0 / 3.0).abs() < 1e-6);
        assert!((luma - 0.587).abs() < 1e-6);
    }

    #[test]
    fn gray_to_rgb_replicates() {
        let g = GrayImage::from_fn(2, 2, |x, y| (x + y) as f32 / 4.0);
        let c = gray_to_rgb(&g);
        assert_eq!(c.pixel(1, 1), (0.5, 0.5, 0.5));
    }

    #[test]
    fn to_gray_passthrough_for_gray() {
        let g = GrayImage::from_fn(2, 2, |x, _| x as f32);
        let img: Image = g.clone().into();
        assert_eq!(to_gray(&img), g);
    }

    #[test]
    fn into_variants_match_allocating_paths() {
        let rgb = RgbImage::from_fn(4, 3, |x, y| (x as f32 / 4.0, y as f32 / 3.0, 0.5));
        let mut buf = Plane::new(1, 1);
        saturation_into(&rgb, &mut buf);
        assert_eq!(buf, saturation(&rgb));
        weighted_gray_into(&rgb, BT601_WEIGHTS, &mut buf);
        assert_eq!(buf, *rgb_to_gray_bt601(&rgb).plane());
        let img: Image = rgb.clone().into();
        to_gray_into(&img, &mut buf);
        assert_eq!(buf, *to_gray(&img).plane());
        let gray: Image = GrayImage::from_fn(2, 2, |x, _| x as f32).into();
        to_gray_into(&gray, &mut buf);
        assert_eq!(buf, *to_gray(&gray).plane());
    }

    #[test]
    fn saturation_zero_for_achromatic() {
        let img =
            RgbImage::from_fn(2, 1, |x, _| if x == 0 { (0.5, 0.5, 0.5) } else { (0.9, 0.1, 0.5) });
        let s = saturation(&img);
        assert!(s.get(0, 0).abs() < 1e-6);
        assert!((s.get(1, 0) - 0.8).abs() < 1e-6);
    }
}
