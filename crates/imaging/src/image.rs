//! Image containers: [`Plane`], [`GrayImage`], [`RgbImage`] and the
//! dynamically-typed [`Image`].
//!
//! All pixel data is stored as `f32` with a nominal range of `0.0..=1.0`.
//! Analog-domain models (noise, pooling gain error) may transiently push
//! values outside that range; values are clamped only at quantisation time
//! (see [`Plane::to_u8`]).

use crate::{ImagingError, Rect, Result};

/// A single-channel raster of `f32` samples in row-major order.
///
/// `Plane` is the workhorse buffer of the workspace: gray images wrap one
/// plane, RGB images wrap three, and the sensor crate uses planes to carry
/// analog pixel voltages.
///
/// # Example
///
/// ```
/// use hirise_imaging::Plane;
///
/// let mut p = Plane::new(4, 2);
/// p.set(3, 1, 0.5);
/// assert_eq!(p.get(3, 1), 0.5);
/// assert_eq!(p.as_slice().len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Plane {
    width: u32,
    height: u32,
    data: Vec<f32>,
}

impl Plane {
    /// Creates a zero-filled plane.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0 || height == 0`; use [`Plane::try_new`] for a
    /// fallible variant.
    pub fn new(width: u32, height: u32) -> Self {
        Self::try_new(width, height).expect("plane dimensions must be nonzero")
    }

    /// Creates a zero-filled plane, returning an error on zero dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidDimensions`] if either dimension is 0.
    pub fn try_new(width: u32, height: u32) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImagingError::InvalidDimensions { width, height, context: "plane" });
        }
        Ok(Self { width, height, data: vec![0.0; width as usize * height as usize] })
    }

    /// Creates a plane filled with `value`.
    pub fn filled(width: u32, height: u32, value: f32) -> Self {
        let mut p = Self::new(width, height);
        p.data.fill(value);
        p
    }

    /// Creates a plane by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> f32) -> Self {
        let mut p = Self::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let v = f(x, y);
                p.set(x, y, v);
            }
        }
        p
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::BufferSizeMismatch`] if `data.len() != width * height`
    /// and [`ImagingError::InvalidDimensions`] on zero dimensions.
    pub fn from_vec(width: u32, height: u32, data: Vec<f32>) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImagingError::InvalidDimensions { width, height, context: "plane" });
        }
        let expected = width as usize * height as usize;
        if data.len() != expected {
            return Err(ImagingError::BufferSizeMismatch { expected, actual: data.len() });
        }
        Ok(Self { width, height, data })
    }

    /// Builds a plane from `u8` samples, mapping `0..=255` to `0.0..=1.0`.
    ///
    /// # Errors
    ///
    /// Same as [`Plane::from_vec`].
    pub fn from_u8(width: u32, height: u32, data: &[u8]) -> Result<Self> {
        let floats = data.iter().map(|&b| b as f32 / 255.0).collect();
        Self::from_vec(width, height, floats)
    }

    /// Plane width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Plane height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// `(width, height)` pair.
    pub fn dimensions(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// Number of pixels (`width * height`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false`: planes have nonzero dimensions by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height, "({x},{y}) out of bounds");
        y as usize * self.width as usize + x as usize
    }

    /// Returns the sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the coordinate is out of bounds; in release
    /// builds out-of-bounds coordinates may panic on the underlying slice.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> f32 {
        self.data[self.idx(x, y)]
    }

    /// Returns the sample at `(x, y)` or `None` when out of bounds.
    pub fn get_checked(&self, x: u32, y: u32) -> Option<f32> {
        if x < self.width && y < self.height {
            Some(self.get(x, y))
        } else {
            None
        }
    }

    /// Writes the sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Same bounds behaviour as [`Plane::get`].
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, value: f32) {
        let i = self.idx(x, y);
        self.data[i] = value;
    }

    /// Row-major view of the samples.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major view of the samples.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the plane and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// One row of samples.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[inline]
    pub fn row(&self, y: u32) -> &[f32] {
        assert!(y < self.height, "row {y} out of bounds (height {})", self.height);
        let start = y as usize * self.width as usize;
        &self.data[start..start + self.width as usize]
    }

    /// One row of samples, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[inline]
    pub fn row_mut(&mut self, y: u32) -> &mut [f32] {
        assert!(y < self.height, "row {y} out of bounds (height {})", self.height);
        let start = y as usize * self.width as usize;
        &mut self.data[start..start + self.width as usize]
    }

    /// Iterator over the rows of the plane, top to bottom.
    ///
    /// This is the preferred way to walk every pixel on a hot path: each
    /// item is a plain `&[f32]` of length `width`, so inner loops carry no
    /// per-pixel 2-D index arithmetic and autovectorize.
    #[inline]
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f32]> {
        self.data.chunks_exact(self.width as usize)
    }

    /// Iterator over the rows of the plane, mutably, top to bottom —
    /// the paired writer for [`Plane::rows`].
    #[inline]
    pub fn rows_mut(&mut self) -> impl ExactSizeIterator<Item = &mut [f32]> {
        self.data.chunks_exact_mut(self.width as usize)
    }

    /// Iterator over `(x, y, value)` triples in row-major order.
    pub fn enumerate_pixels(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        let w = self.width;
        self.data.iter().enumerate().map(move |(i, &v)| {
            let x = (i % w as usize) as u32;
            let y = (i / w as usize) as u32;
            (x, y, v)
        })
    }

    /// Applies `f` to every sample in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Minimum sample value.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum sample value.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Quantises to `u8`, clamping to `0.0..=1.0` first.
    pub fn to_u8(&self) -> Vec<u8> {
        self.data.iter().map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8).collect()
    }

    /// Extracts a copy of the sub-rectangle `rect`.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::RectOutOfBounds`] if the rect exceeds the plane.
    pub fn crop(&self, rect: Rect) -> Result<Plane> {
        if !rect.fits_within(self.width, self.height) || rect.w == 0 || rect.h == 0 {
            return Err(ImagingError::RectOutOfBounds {
                rect: (rect.x, rect.y, rect.w, rect.h),
                width: self.width,
                height: self.height,
            });
        }
        // Construct at the final size (one exact allocation) instead of
        // growing a 1×1 placeholder through `crop_into`.
        let mut out = Plane::new(rect.w, rect.h);
        self.crop_into(rect, &mut out)?;
        Ok(out)
    }

    /// Resizes the plane to `width × height` in place, reusing the
    /// existing buffer capacity. All samples are reset to `0.0` (exactly
    /// like [`Plane::new`]); previous contents are discarded.
    ///
    /// This is the foundation of the workspace's zero-allocation frame
    /// path: once a scratch plane has grown to its steady-state size,
    /// `reshape` never touches the heap again.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0 || height == 0` (same invariant as
    /// [`Plane::new`]).
    pub fn reshape(&mut self, width: u32, height: u32) {
        assert!(width != 0 && height != 0, "plane dimensions must be nonzero");
        self.width = width;
        self.height = height;
        // clear + resize re-zeroes every sample without shrinking capacity.
        self.data.clear();
        self.data.resize(width as usize * height as usize, 0.0);
    }

    /// Like [`Plane::reshape`] but leaves the sample values **unspecified**
    /// (a mix of old contents and zeros) instead of re-zeroing — for
    /// producers that overwrite every sample anyway, this skips a
    /// full-buffer memset per call on the per-frame hot path.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn reshape_for_overwrite(&mut self, width: u32, height: u32) {
        assert!(width != 0 && height != 0, "plane dimensions must be nonzero");
        self.width = width;
        self.height = height;
        let len = width as usize * height as usize;
        if self.data.len() > len {
            self.data.truncate(len);
        } else {
            self.data.resize(len, 0.0);
        }
    }

    /// Makes `self` an exact copy of `src`, reusing the existing buffer.
    pub fn copy_from(&mut self, src: &Plane) {
        self.width = src.width;
        self.height = src.height;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Extracts the sub-rectangle `rect` into `out` (reshaped to fit) —
    /// the in-place counterpart of [`Plane::crop`].
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::RectOutOfBounds`] if the rect exceeds the plane.
    pub fn crop_into(&self, rect: Rect, out: &mut Plane) -> Result<()> {
        if !rect.fits_within(self.width, self.height) || rect.w == 0 || rect.h == 0 {
            return Err(ImagingError::RectOutOfBounds {
                rect: (rect.x, rect.y, rect.w, rect.h),
                width: self.width,
                height: self.height,
            });
        }
        out.reshape_for_overwrite(rect.w, rect.h);
        let x0 = rect.x as usize;
        let w = rect.w as usize;
        for (dy, dst) in out.rows_mut().enumerate() {
            let src = &self.row(rect.y + dy as u32)[x0..x0 + w];
            dst.copy_from_slice(src);
        }
        Ok(())
    }

    /// Copies `src` into `self` with its top-left corner at `(x, y)`.
    /// Pixels falling outside `self` are silently skipped.
    pub fn blit(&mut self, src: &Plane, x: i64, y: i64) {
        for sy in 0..src.height {
            let ty = y + sy as i64;
            if ty < 0 || ty >= self.height as i64 {
                continue;
            }
            for sx in 0..src.width {
                let tx = x + sx as i64;
                if tx < 0 || tx >= self.width as i64 {
                    continue;
                }
                self.set(tx as u32, ty as u32, src.get(sx, sy));
            }
        }
    }
}

/// A single-channel (luminance) image.
///
/// # Example
///
/// ```
/// use hirise_imaging::GrayImage;
///
/// let g = GrayImage::from_fn(8, 8, |x, _| x as f32 / 8.0);
/// assert!(g.plane().mean() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    plane: Plane,
}

impl GrayImage {
    /// Creates a black gray image.
    pub fn new(width: u32, height: u32) -> Self {
        Self { plane: Plane::new(width, height) }
    }

    /// Creates a gray image from a per-pixel function.
    pub fn from_fn(width: u32, height: u32, f: impl FnMut(u32, u32) -> f32) -> Self {
        Self { plane: Plane::from_fn(width, height, f) }
    }

    /// Wraps an existing plane.
    pub fn from_plane(plane: Plane) -> Self {
        Self { plane }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.plane.width()
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.plane.height()
    }

    /// `(width, height)` pair.
    pub fn dimensions(&self) -> (u32, u32) {
        self.plane.dimensions()
    }

    /// Shared access to the underlying plane.
    pub fn plane(&self) -> &Plane {
        &self.plane
    }

    /// Mutable access to the underlying plane.
    pub fn plane_mut(&mut self) -> &mut Plane {
        &mut self.plane
    }

    /// Consumes the image and returns the underlying plane.
    pub fn into_plane(self) -> Plane {
        self.plane
    }

    /// Resizes the image in place, reusing buffer capacity and resetting
    /// samples to zero (see [`Plane::reshape`]).
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn reshape(&mut self, width: u32, height: u32) {
        self.plane.reshape(width, height);
    }

    /// Crops the image.
    ///
    /// # Errors
    ///
    /// See [`Plane::crop`].
    pub fn crop(&self, rect: Rect) -> Result<GrayImage> {
        Ok(GrayImage::from_plane(self.plane.crop(rect)?))
    }

    /// Crops the image into an existing buffer.
    ///
    /// # Errors
    ///
    /// See [`Plane::crop_into`].
    pub fn crop_into(&self, rect: Rect, out: &mut GrayImage) -> Result<()> {
        self.plane.crop_into(rect, &mut out.plane)
    }

    /// Bytes needed to store this image at `bits` bits per sample.
    pub fn storage_bytes(&self, bits: u32) -> u64 {
        (self.plane.len() as u64 * bits as u64).div_ceil(8)
    }
}

impl From<Plane> for GrayImage {
    fn from(plane: Plane) -> Self {
        GrayImage::from_plane(plane)
    }
}

/// A planar RGB image (three [`Plane`]s of identical dimensions).
///
/// # Example
///
/// ```
/// use hirise_imaging::RgbImage;
///
/// let img = RgbImage::new(16, 16);
/// assert_eq!(img.dimensions(), (16, 16));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RgbImage {
    r: Plane,
    g: Plane,
    b: Plane,
}

impl RgbImage {
    /// Creates a black RGB image.
    pub fn new(width: u32, height: u32) -> Self {
        Self {
            r: Plane::new(width, height),
            g: Plane::new(width, height),
            b: Plane::new(width, height),
        }
    }

    /// Creates an RGB image from a per-pixel function returning `(r, g, b)`.
    pub fn from_fn(
        width: u32,
        height: u32,
        mut f: impl FnMut(u32, u32) -> (f32, f32, f32),
    ) -> Self {
        let mut img = Self::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let (r, g, b) = f(x, y);
                img.set_pixel(x, y, (r, g, b));
            }
        }
        img
    }

    /// Builds an RGB image from three planes.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidDimensions`] if the planes disagree in size.
    pub fn from_planes(r: Plane, g: Plane, b: Plane) -> Result<Self> {
        if r.dimensions() != g.dimensions() || g.dimensions() != b.dimensions() {
            return Err(ImagingError::InvalidDimensions {
                width: g.width(),
                height: g.height(),
                context: "rgb planes must share dimensions",
            });
        }
        Ok(Self { r, g, b })
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.r.width()
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.r.height()
    }

    /// `(width, height)` pair.
    pub fn dimensions(&self) -> (u32, u32) {
        self.r.dimensions()
    }

    /// Red plane.
    pub fn r(&self) -> &Plane {
        &self.r
    }

    /// Green plane.
    pub fn g(&self) -> &Plane {
        &self.g
    }

    /// Blue plane.
    pub fn b(&self) -> &Plane {
        &self.b
    }

    /// The three planes as an array, in R, G, B order.
    pub fn planes(&self) -> [&Plane; 3] {
        [&self.r, &self.g, &self.b]
    }

    /// Mutable access to the three planes, in R, G, B order.
    pub fn planes_mut(&mut self) -> [&mut Plane; 3] {
        [&mut self.r, &mut self.g, &mut self.b]
    }

    /// Consumes the image, yielding its planes in R, G, B order.
    pub fn into_planes(self) -> (Plane, Plane, Plane) {
        (self.r, self.g, self.b)
    }

    /// Reads the `(r, g, b)` triple at `(x, y)`.
    #[inline]
    pub fn pixel(&self, x: u32, y: u32) -> (f32, f32, f32) {
        (self.r.get(x, y), self.g.get(x, y), self.b.get(x, y))
    }

    /// Writes the `(r, g, b)` triple at `(x, y)`.
    #[inline]
    pub fn set_pixel(&mut self, x: u32, y: u32, (r, g, b): (f32, f32, f32)) {
        self.r.set(x, y, r);
        self.g.set(x, y, g);
        self.b.set(x, y, b);
    }

    /// Resizes all three channels in place, reusing buffer capacity and
    /// resetting samples to zero (see [`Plane::reshape`]).
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn reshape(&mut self, width: u32, height: u32) {
        self.r.reshape(width, height);
        self.g.reshape(width, height);
        self.b.reshape(width, height);
    }

    /// Like [`RgbImage::reshape`] but with unspecified sample values (see
    /// [`Plane::reshape_for_overwrite`]).
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn reshape_for_overwrite(&mut self, width: u32, height: u32) {
        self.r.reshape_for_overwrite(width, height);
        self.g.reshape_for_overwrite(width, height);
        self.b.reshape_for_overwrite(width, height);
    }

    /// Crops all three channels.
    ///
    /// # Errors
    ///
    /// See [`Plane::crop`].
    pub fn crop(&self, rect: Rect) -> Result<RgbImage> {
        Ok(RgbImage { r: self.r.crop(rect)?, g: self.g.crop(rect)?, b: self.b.crop(rect)? })
    }

    /// Crops all three channels into an existing buffer.
    ///
    /// # Errors
    ///
    /// See [`Plane::crop_into`].
    pub fn crop_into(&self, rect: Rect, out: &mut RgbImage) -> Result<()> {
        self.r.crop_into(rect, &mut out.r)?;
        self.g.crop_into(rect, &mut out.g)?;
        self.b.crop_into(rect, &mut out.b)
    }

    /// Bytes needed to store this image at `bits` bits per sample.
    pub fn storage_bytes(&self, bits: u32) -> u64 {
        3 * (self.r.len() as u64 * bits as u64).div_ceil(8)
    }
}

/// Either a gray or an RGB image; the pipeline switches on the paper's
/// "color mode".
#[derive(Debug, Clone, PartialEq)]
pub enum Image {
    /// Single-channel image.
    Gray(GrayImage),
    /// Three-channel image.
    Rgb(RgbImage),
}

impl Image {
    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        match self {
            Image::Gray(g) => g.width(),
            Image::Rgb(c) => c.width(),
        }
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        match self {
            Image::Gray(g) => g.height(),
            Image::Rgb(c) => c.height(),
        }
    }

    /// Number of channels (1 or 3).
    pub fn channels(&self) -> u32 {
        match self {
            Image::Gray(_) => 1,
            Image::Rgb(_) => 3,
        }
    }

    /// Bytes needed to store this image at `bits` bits per sample.
    pub fn storage_bytes(&self, bits: u32) -> u64 {
        match self {
            Image::Gray(g) => g.storage_bytes(bits),
            Image::Rgb(c) => c.storage_bytes(bits),
        }
    }

    /// Crops the image, preserving the colour mode.
    ///
    /// # Errors
    ///
    /// See [`Plane::crop`].
    pub fn crop(&self, rect: Rect) -> Result<Image> {
        Ok(match self {
            Image::Gray(g) => Image::Gray(g.crop(rect)?),
            Image::Rgb(c) => Image::Rgb(c.crop(rect)?),
        })
    }

    /// Borrows the gray variant, if that is what this image holds.
    pub fn as_gray(&self) -> Option<&GrayImage> {
        match self {
            Image::Gray(g) => Some(g),
            Image::Rgb(_) => None,
        }
    }

    /// Borrows the RGB variant, if that is what this image holds.
    pub fn as_rgb(&self) -> Option<&RgbImage> {
        match self {
            Image::Rgb(c) => Some(c),
            Image::Gray(_) => None,
        }
    }

    /// Mutably borrows the gray variant, if that is what this image holds.
    pub fn as_gray_mut(&mut self) -> Option<&mut GrayImage> {
        match self {
            Image::Gray(g) => Some(g),
            Image::Rgb(_) => None,
        }
    }

    /// Mutably borrows the RGB variant, if that is what this image holds.
    pub fn as_rgb_mut(&mut self) -> Option<&mut RgbImage> {
        match self {
            Image::Rgb(c) => Some(c),
            Image::Gray(_) => None,
        }
    }
}

impl From<GrayImage> for Image {
    fn from(g: GrayImage) -> Self {
        Image::Gray(g)
    }
}

impl From<RgbImage> for Image {
    fn from(c: RgbImage) -> Self {
        Image::Rgb(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_new_is_zeroed() {
        let p = Plane::new(3, 2);
        assert_eq!(p.as_slice(), &[0.0; 6]);
        assert_eq!(p.dimensions(), (3, 2));
    }

    #[test]
    fn plane_zero_dims_rejected() {
        assert!(Plane::try_new(0, 5).is_err());
        assert!(Plane::try_new(5, 0).is_err());
    }

    #[test]
    fn plane_from_vec_checks_len() {
        assert!(Plane::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Plane::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn plane_get_set_roundtrip() {
        let mut p = Plane::new(5, 4);
        p.set(4, 3, 0.25);
        assert_eq!(p.get(4, 3), 0.25);
        assert_eq!(p.get_checked(5, 3), None);
        assert_eq!(p.get_checked(4, 4), None);
        assert_eq!(p.get_checked(4, 3), Some(0.25));
    }

    #[test]
    fn plane_from_fn_row_major() {
        let p = Plane::from_fn(3, 2, |x, y| (y * 3 + x) as f32);
        assert_eq!(p.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(p.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn plane_stats() {
        let p = Plane::from_vec(2, 2, vec![0.0, 1.0, 0.5, 0.5]).unwrap();
        assert!((p.mean() - 0.5).abs() < 1e-6);
        assert_eq!(p.min(), 0.0);
        assert_eq!(p.max(), 1.0);
    }

    #[test]
    fn plane_to_u8_clamps() {
        let p = Plane::from_vec(3, 1, vec![-0.5, 0.5, 1.5]).unwrap();
        assert_eq!(p.to_u8(), vec![0, 128, 255]);
    }

    #[test]
    fn plane_from_u8_roundtrip() {
        let bytes = [0u8, 128, 255, 64];
        let p = Plane::from_u8(2, 2, &bytes).unwrap();
        assert_eq!(p.to_u8(), bytes.to_vec());
    }

    #[test]
    fn plane_crop_copies_window() {
        let p = Plane::from_fn(4, 4, |x, y| (y * 4 + x) as f32);
        let c = p.crop(Rect::new(1, 2, 2, 2)).unwrap();
        assert_eq!(c.as_slice(), &[9.0, 10.0, 13.0, 14.0]);
    }

    #[test]
    fn row_slice_accessors_agree_with_get_set() {
        let mut p = Plane::from_fn(3, 2, |x, y| (y * 3 + x) as f32);
        assert_eq!(p.row_mut(1), &mut [3.0, 4.0, 5.0]);
        p.row_mut(0)[2] = 9.0;
        assert_eq!(p.get(2, 0), 9.0);
        let rows: Vec<&[f32]> = p.rows().collect();
        assert_eq!(rows, vec![&[0.0, 1.0, 9.0][..], &[3.0, 4.0, 5.0][..]]);
        for (y, row) in p.rows_mut().enumerate() {
            for v in row.iter_mut() {
                *v += y as f32 * 10.0;
            }
        }
        assert_eq!(p.as_slice(), &[0.0, 1.0, 9.0, 13.0, 14.0, 15.0]);
        assert_eq!(p.rows().len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_mut_rejects_out_of_bounds() {
        Plane::new(2, 2).row_mut(2);
    }

    #[test]
    fn plane_crop_out_of_bounds() {
        let p = Plane::new(4, 4);
        assert!(p.crop(Rect::new(3, 3, 2, 2)).is_err());
        assert!(p.crop(Rect::new(0, 0, 5, 1)).is_err());
        assert!(p.crop(Rect::new(0, 0, 0, 1)).is_err());
    }

    #[test]
    fn plane_blit_clips() {
        let mut dst = Plane::new(3, 3);
        let src = Plane::filled(2, 2, 1.0);
        dst.blit(&src, 2, 2); // only (2,2) lands inside
        assert_eq!(dst.get(2, 2), 1.0);
        assert_eq!(dst.get(1, 1), 0.0);
        dst.blit(&src, -1, -1); // only (0,0) lands inside
        assert_eq!(dst.get(0, 0), 1.0);
    }

    #[test]
    fn enumerate_pixels_order() {
        let p = Plane::from_fn(2, 2, |x, y| (y * 2 + x) as f32);
        let coords: Vec<_> = p.enumerate_pixels().collect();
        assert_eq!(coords, vec![(0, 0, 0.0), (1, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)]);
    }

    #[test]
    fn rgb_planes_must_match() {
        let a = Plane::new(2, 2);
        let b = Plane::new(2, 3);
        assert!(RgbImage::from_planes(a.clone(), a.clone(), b).is_err());
        assert!(RgbImage::from_planes(a.clone(), a.clone(), a).is_ok());
    }

    #[test]
    fn rgb_pixel_roundtrip() {
        let mut img = RgbImage::new(4, 4);
        img.set_pixel(1, 2, (0.1, 0.2, 0.3));
        assert_eq!(img.pixel(1, 2), (0.1, 0.2, 0.3));
    }

    #[test]
    fn storage_bytes_match_paper_units() {
        // 2560x1920 RGB at 8-bit: 14.7456 MB, the paper's 14,746 kB figure.
        let img = Image::Rgb(RgbImage::new(2560, 1920));
        assert_eq!(img.storage_bytes(8), 2560 * 1920 * 3);
        let gray = Image::Gray(GrayImage::new(320, 240));
        assert_eq!(gray.storage_bytes(8), 320 * 240);
    }

    #[test]
    fn image_enum_dispatch() {
        let g: Image = GrayImage::new(8, 4).into();
        assert_eq!(g.channels(), 1);
        assert_eq!((g.width(), g.height()), (8, 4));
        assert!(g.as_gray().is_some());
        assert!(g.as_rgb().is_none());
        let c: Image = RgbImage::new(8, 4).into();
        assert_eq!(c.channels(), 3);
        assert!(c.as_rgb().is_some());
    }

    #[test]
    fn image_crop_preserves_mode() {
        let c: Image = RgbImage::new(8, 8).into();
        let cc = c.crop(Rect::new(0, 0, 4, 4)).unwrap();
        assert_eq!(cc.channels(), 3);
        assert_eq!(cc.width(), 4);
    }

    #[test]
    fn reshape_rezeroes_and_reuses_capacity() {
        let mut p = Plane::filled(8, 8, 0.9);
        let buf = p.as_slice().as_ptr();
        p.reshape(4, 4);
        assert_eq!(p.dimensions(), (4, 4));
        assert_eq!(p.as_slice(), &[0.0; 16]);
        // Shrinking reuses the same buffer.
        assert_eq!(p.as_slice().as_ptr(), buf);
        p.reshape(8, 8);
        assert_eq!(p.as_slice(), &[0.0; 64]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn reshape_rejects_zero_dims() {
        Plane::new(2, 2).reshape(0, 4);
    }

    #[test]
    fn reshape_for_overwrite_sets_dims_without_zeroing_requirement() {
        let mut p = Plane::filled(4, 4, 0.9);
        p.reshape_for_overwrite(2, 3);
        assert_eq!(p.dimensions(), (2, 3));
        assert_eq!(p.len(), 6);
        // Contents are unspecified; only the shape contract matters.
        p.reshape_for_overwrite(5, 5);
        assert_eq!(p.len(), 25);
        let mut rgb = RgbImage::new(2, 2);
        rgb.reshape_for_overwrite(3, 1);
        assert_eq!(rgb.dimensions(), (3, 1));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn reshape_for_overwrite_rejects_zero_dims() {
        Plane::new(2, 2).reshape_for_overwrite(4, 0);
    }

    #[test]
    fn copy_from_matches_source() {
        let src = Plane::from_fn(3, 2, |x, y| (x + y) as f32);
        let mut dst = Plane::new(9, 9);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn crop_into_matches_crop() {
        let p = Plane::from_fn(6, 6, |x, y| (y * 6 + x) as f32);
        let rect = Rect::new(1, 2, 3, 2);
        let mut out = Plane::new(1, 1);
        p.crop_into(rect, &mut out).unwrap();
        assert_eq!(out, p.crop(rect).unwrap());
        assert!(p.crop_into(Rect::new(5, 5, 3, 3), &mut out).is_err());
    }

    #[test]
    fn image_reshape_variants() {
        let mut g = GrayImage::from_fn(4, 4, |_, _| 1.0);
        g.reshape(2, 2);
        assert_eq!(g.dimensions(), (2, 2));
        assert_eq!(g.plane().as_slice(), &[0.0; 4]);
        let mut c = RgbImage::from_fn(4, 4, |_, _| (1.0, 1.0, 1.0));
        c.reshape(3, 5);
        assert_eq!(c.dimensions(), (3, 5));
        assert_eq!(c.pixel(2, 4), (0.0, 0.0, 0.0));
    }

    #[test]
    fn rgb_crop_into_matches_crop() {
        let img = RgbImage::from_fn(6, 6, |x, y| (x as f32, y as f32, (x * y) as f32));
        let rect = Rect::new(2, 1, 3, 4);
        let mut out = RgbImage::new(1, 1);
        img.crop_into(rect, &mut out).unwrap();
        assert_eq!(out, img.crop(rect).unwrap());
    }

    #[test]
    fn image_mutable_accessors_dispatch() {
        let mut g: Image = GrayImage::new(4, 4).into();
        assert!(g.as_gray_mut().is_some());
        assert!(g.as_rgb_mut().is_none());
        g.as_gray_mut().unwrap().plane_mut().set(0, 0, 0.5);
        assert_eq!(g.as_gray().unwrap().plane().get(0, 0), 0.5);
        let mut c: Image = RgbImage::new(4, 4).into();
        assert!(c.as_rgb_mut().is_some());
        assert!(c.as_gray_mut().is_none());
    }

    #[test]
    fn map_in_place_applies() {
        let mut p = Plane::filled(2, 2, 0.25);
        p.map_in_place(|v| v * 2.0);
        assert_eq!(p.as_slice(), &[0.5; 4]);
    }
}
