//! # hirise-imaging
//!
//! Digital image substrate for the HiRISE reproduction.
//!
//! This crate provides the image containers and pixel-level operations that
//! the rest of the workspace builds on:
//!
//! * [`Plane`] — a single-channel `f32` raster (values nominally in `0.0..=1.0`),
//! * [`GrayImage`] / [`RgbImage`] / [`Image`] — gray and RGB images,
//! * [`Rect`] — integer rectangles with IoU/intersection helpers (shared by
//!   the detector, the scene generator and the core pipeline),
//! * [`ops`] — average pooling ("in-processor scaling" in the paper),
//!   bilinear resize, crop, padding,
//! * [`pool`] — a [`FramePool`] free list recycling plane buffers across
//!   frames (the zero-allocation steady-state substrate),
//! * [`color`] — RGB→gray conversions (the analog circuit computes the
//!   *mean* of R, G and B; BT.601 luma is provided for comparison),
//! * [`draw`] — deterministic drawing primitives used by the synthetic
//!   scene generator,
//! * [`io`] — binary PPM/PGM encode/decode,
//! * [`metrics`] — MAE / MSE / PSNR image-quality metrics.
//!
//! # Example
//!
//! ```
//! use hirise_imaging::{GrayImage, ops};
//!
//! # fn main() -> Result<(), hirise_imaging::ImagingError> {
//! let img = GrayImage::from_fn(64, 64, |x, y| ((x + y) % 7) as f32 / 7.0);
//! let pooled = ops::avg_pool_gray(&img, 4)?;
//! assert_eq!((pooled.width(), pooled.height()), (16, 16));
//! # Ok(())
//! # }
//! ```

pub mod color;
pub mod draw;
pub mod image;
pub mod io;
pub mod metrics;
pub mod ops;
pub mod pool;
pub mod rect;

mod error;

pub use error::ImagingError;
pub use image::{GrayImage, Image, Plane, RgbImage};
pub use pool::FramePool;
pub use rect::Rect;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ImagingError>;
