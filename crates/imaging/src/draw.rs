//! Deterministic drawing primitives.
//!
//! The synthetic scene generator (`hirise-scene`) composes objects out of
//! these primitives. Everything is plain rasterisation on [`Plane`]s; the
//! only pseudo-randomness is the self-contained xorshift texture generator
//! ([`noise_texture`]), which takes an explicit seed so scenes are exactly
//! reproducible.

use crate::{Plane, Rect, RgbImage};

/// Fills `rect` (clipped to the plane) with `value`.
pub fn fill_rect(plane: &mut Plane, rect: Rect, value: f32) {
    let c = rect.clamped(plane.width(), plane.height());
    for y in c.y..c.bottom() {
        for x in c.x..c.right() {
            plane.set(x, y, value);
        }
    }
}

/// Draws the 1-pixel outline of `rect` (clipped) with `value`.
pub fn draw_rect_outline(plane: &mut Plane, rect: Rect, value: f32) {
    let c = rect.clamped(plane.width(), plane.height());
    if c.is_degenerate() {
        return;
    }
    for x in c.x..c.right() {
        plane.set(x, c.y, value);
        plane.set(x, c.bottom() - 1, value);
    }
    for y in c.y..c.bottom() {
        plane.set(c.x, y, value);
        plane.set(c.right() - 1, y, value);
    }
}

/// Fills the axis-aligned ellipse inscribed in `rect` with `value`.
pub fn fill_ellipse(plane: &mut Plane, rect: Rect, value: f32) {
    let c = rect.clamped(plane.width(), plane.height());
    if c.is_degenerate() {
        return;
    }
    let (cx, cy) = rect.center();
    let rx = rect.w as f32 / 2.0;
    let ry = rect.h as f32 / 2.0;
    for y in c.y..c.bottom() {
        for x in c.x..c.right() {
            let dx = (x as f32 + 0.5 - cx) / rx;
            let dy = (y as f32 + 0.5 - cy) / ry;
            if dx * dx + dy * dy <= 1.0 {
                plane.set(x, y, value);
            }
        }
    }
}

/// Additively blends a Gaussian blob centred at `(cx, cy)` with standard
/// deviation `sigma` and peak `amplitude`. Contributions beyond `3 sigma`
/// are skipped.
pub fn add_gaussian_blob(plane: &mut Plane, cx: f32, cy: f32, sigma: f32, amplitude: f32) {
    let radius = (3.0 * sigma).ceil() as i64;
    let x0 = ((cx as i64) - radius).max(0);
    let x1 = ((cx as i64) + radius + 1).min(plane.width() as i64);
    let y0 = ((cy as i64) - radius).max(0);
    let y1 = ((cy as i64) + radius + 1).min(plane.height() as i64);
    let inv = 1.0 / (2.0 * sigma * sigma);
    for y in y0..y1 {
        for x in x0..x1 {
            let dx = x as f32 + 0.5 - cx;
            let dy = y as f32 + 0.5 - cy;
            let g = (-(dx * dx + dy * dy) * inv).exp();
            let v = plane.get(x as u32, y as u32) + amplitude * g;
            plane.set(x as u32, y as u32, v);
        }
    }
}

/// Horizontal gradient from `left` to `right` across the whole plane.
pub fn fill_gradient_h(plane: &mut Plane, left: f32, right: f32) {
    let w = plane.width();
    for y in 0..plane.height() {
        for x in 0..w {
            let t = if w > 1 { x as f32 / (w - 1) as f32 } else { 0.0 };
            plane.set(x, y, left + (right - left) * t);
        }
    }
}

/// Checkerboard with `cell`-pixel squares alternating `a` and `b`, written
/// into `rect` (clipped).
pub fn fill_checkerboard(plane: &mut Plane, rect: Rect, cell: u32, a: f32, b: f32) {
    let cell = cell.max(1);
    let c = rect.clamped(plane.width(), plane.height());
    for y in c.y..c.bottom() {
        for x in c.x..c.right() {
            let parity = ((x - c.x) / cell + (y - c.y) / cell) % 2;
            plane.set(x, y, if parity == 0 { a } else { b });
        }
    }
}

/// Draws a straight line from `(x0, y0)` to `(x1, y1)` with `value`
/// (Bresenham).
pub fn draw_line(plane: &mut Plane, x0: i64, y0: i64, x1: i64, y1: i64, value: f32) {
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    let (mut x, mut y) = (x0, y0);
    loop {
        if x >= 0 && y >= 0 && (x as u32) < plane.width() && (y as u32) < plane.height() {
            plane.set(x as u32, y as u32, value);
        }
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
}

/// Tiny self-contained xorshift64* PRNG for texture synthesis. Deliberately
/// independent of the `rand` crate so this foundation crate stays
/// dependency-free; scene-level randomness uses `rand` in `hirise-scene`.
#[derive(Debug, Clone)]
pub struct TextureRng {
    state: u64,
}

impl TextureRng {
    /// Creates a generator from a nonzero seed (zero is mapped to a fixed
    /// constant).
    pub fn new(seed: u64) -> Self {
        Self { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f32` in `0.0..1.0`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform `f32` in `lo..hi`.
    pub fn range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }
}

/// Fills `rect` (clipped) with uniform noise in `base ± amplitude`,
/// deterministically derived from `seed`.
pub fn noise_texture(plane: &mut Plane, rect: Rect, base: f32, amplitude: f32, seed: u64) {
    let mut rng = TextureRng::new(seed);
    let c = rect.clamped(plane.width(), plane.height());
    for y in c.y..c.bottom() {
        for x in c.x..c.right() {
            plane.set(x, y, base + amplitude * (rng.next_f32() * 2.0 - 1.0));
        }
    }
}

/// Fills `rect` with horizontal stripes of period `period`, alternating
/// `a` and `b` — a cheap "hair/texture" pattern whose high spatial frequency
/// is destroyed by pooling, which is what makes small ROIs hard for the
/// stage-2 model (the paper's Fig. 1 argument).
pub fn fill_stripes(plane: &mut Plane, rect: Rect, period: u32, a: f32, b: f32) {
    let period = period.max(1);
    let c = rect.clamped(plane.width(), plane.height());
    for y in c.y..c.bottom() {
        for x in c.x..c.right() {
            let v = if ((y - c.y) / period).is_multiple_of(2) { a } else { b };
            plane.set(x, y, v);
        }
    }
}

/// Convenience: fills a rect with an RGB colour on a colour image.
pub fn fill_rect_rgb(img: &mut RgbImage, rect: Rect, (r, g, b): (f32, f32, f32)) {
    let [pr, pg, pb] = img.planes_mut();
    fill_rect(pr, rect, r);
    fill_rect(pg, rect, g);
    fill_rect(pb, rect, b);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_rect_clips() {
        let mut p = Plane::new(4, 4);
        fill_rect(&mut p, Rect::new(2, 2, 10, 10), 1.0);
        assert_eq!(p.get(3, 3), 1.0);
        assert_eq!(p.get(1, 1), 0.0);
    }

    #[test]
    fn outline_is_hollow() {
        let mut p = Plane::new(8, 8);
        draw_rect_outline(&mut p, Rect::new(1, 1, 5, 5), 1.0);
        assert_eq!(p.get(1, 1), 1.0);
        assert_eq!(p.get(5, 5), 1.0);
        assert_eq!(p.get(3, 3), 0.0);
    }

    #[test]
    fn ellipse_inside_and_corners_out() {
        let mut p = Plane::new(10, 10);
        fill_ellipse(&mut p, Rect::new(0, 0, 10, 10), 1.0);
        assert_eq!(p.get(5, 5), 1.0); // center in
        assert_eq!(p.get(0, 0), 0.0); // corner out
    }

    #[test]
    fn gaussian_blob_peaks_at_center() {
        let mut p = Plane::new(21, 21);
        add_gaussian_blob(&mut p, 10.5, 10.5, 3.0, 1.0);
        let center = p.get(10, 10);
        assert!(center > 0.9);
        assert!(p.get(0, 0) < center);
        // symmetric
        assert!((p.get(8, 10) - p.get(12, 10)).abs() < 1e-5);
    }

    #[test]
    fn gradient_endpoints() {
        let mut p = Plane::new(5, 2);
        fill_gradient_h(&mut p, 0.0, 1.0);
        assert_eq!(p.get(0, 0), 0.0);
        assert_eq!(p.get(4, 1), 1.0);
        assert!((p.get(2, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn checkerboard_alternates() {
        let mut p = Plane::new(4, 4);
        fill_checkerboard(&mut p, Rect::new(0, 0, 4, 4), 1, 0.0, 1.0);
        assert_eq!(p.get(0, 0), 0.0);
        assert_eq!(p.get(1, 0), 1.0);
        assert_eq!(p.get(0, 1), 1.0);
        assert_eq!(p.get(1, 1), 0.0);
    }

    #[test]
    fn line_endpoints_drawn() {
        let mut p = Plane::new(8, 8);
        draw_line(&mut p, 0, 0, 7, 7, 1.0);
        assert_eq!(p.get(0, 0), 1.0);
        assert_eq!(p.get(7, 7), 1.0);
        assert_eq!(p.get(4, 4), 1.0);
    }

    #[test]
    fn line_clips_offscreen() {
        let mut p = Plane::new(4, 4);
        draw_line(&mut p, -5, -5, 10, 10, 1.0); // must not panic
        assert_eq!(p.get(2, 2), 1.0);
    }

    #[test]
    fn texture_rng_deterministic() {
        let mut a = TextureRng::new(42);
        let mut b = TextureRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TextureRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn texture_rng_f32_in_unit_interval() {
        let mut rng = TextureRng::new(7);
        for _ in 0..1000 {
            let v = rng.next_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn noise_texture_bounded() {
        let mut p = Plane::new(16, 16);
        noise_texture(&mut p, Rect::new(0, 0, 16, 16), 0.5, 0.1, 1);
        for &v in p.as_slice() {
            assert!((0.4..=0.6).contains(&v));
        }
    }

    #[test]
    fn noise_texture_reproducible() {
        let mut a = Plane::new(8, 8);
        let mut b = Plane::new(8, 8);
        noise_texture(&mut a, Rect::new(0, 0, 8, 8), 0.5, 0.2, 99);
        noise_texture(&mut b, Rect::new(0, 0, 8, 8), 0.5, 0.2, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn stripes_alternate_with_period() {
        let mut p = Plane::new(4, 8);
        fill_stripes(&mut p, Rect::new(0, 0, 4, 8), 2, 1.0, 0.0);
        assert_eq!(p.get(0, 0), 1.0);
        assert_eq!(p.get(0, 1), 1.0);
        assert_eq!(p.get(0, 2), 0.0);
        assert_eq!(p.get(0, 4), 1.0);
    }

    #[test]
    fn rgb_fill_sets_all_channels() {
        let mut img = RgbImage::new(4, 4);
        fill_rect_rgb(&mut img, Rect::new(0, 0, 2, 2), (0.1, 0.2, 0.3));
        assert_eq!(img.pixel(1, 1), (0.1, 0.2, 0.3));
        assert_eq!(img.pixel(3, 3), (0.0, 0.0, 0.0));
    }
}
