//! Greedy non-maximum suppression.

use crate::eval::Detection;

/// Reusable buffers for [`nms_in_place`], so repeated frames run the
/// suppression sweep without heap allocation once warmed up.
#[derive(Debug, Clone, Default)]
pub struct NmsScratch {
    /// Index permutation for the allocation-free stable score sort.
    pub order: Vec<u32>,
    /// Spill buffer for sorting and for collecting survivors.
    pub spill: Vec<Detection>,
    /// Box areas, computed once per sweep instead of per IoU test.
    areas: Vec<u64>,
    /// Suppression bitmask, one bit per sorted detection.
    suppressed: Vec<u64>,
}

impl NmsScratch {
    /// Creates empty buffers; they grow to their steady-state size on
    /// first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Suppresses detections overlapping a higher-scored one by more than
/// `iou_threshold`. Matching is class-agnostic (the detector classifies
/// after suppression). Returns survivors sorted by descending score.
pub fn nms(mut detections: Vec<Detection>, iou_threshold: f64) -> Vec<Detection> {
    nms_in_place(&mut detections, iou_threshold, &mut NmsScratch::new());
    detections
}

/// In-place variant of [`nms`], for the zero-allocation frame path:
/// survivors replace the contents of `dets`, and the scratch buffers are
/// caller-owned so repeated calls reuse their capacity. Produces exactly
/// the same survivors in the same order as a candidate-vs-kept greedy
/// sweep.
///
/// The sweep is forward-marking: every kept detection suppresses later
/// overlapping ones via a bitmask, with box areas precomputed once and
/// the kept box's edges hoisted out of the inner loop — no per-pair
/// `Rect` recomputation.
// lint: zero-alloc
pub fn nms_in_place(dets: &mut Vec<Detection>, iou_threshold: f64, scratch: &mut NmsScratch) {
    let NmsScratch { order, spill, areas, suppressed } = scratch;
    sort_by_score_desc(dets, order, spill);
    let n = dets.len();
    areas.clear();
    areas.extend(dets.iter().map(|d| d.bbox.area()));
    suppressed.clear();
    suppressed.resize(n.div_ceil(64), 0);
    spill.clear();
    for i in 0..n {
        if suppressed[i / 64] >> (i % 64) & 1 == 1 {
            continue;
        }
        let det = dets[i];
        spill.push(det);
        let (kx0, ky0) = (det.bbox.x, det.bbox.y);
        let (kx1, ky1) = (det.bbox.right(), det.bbox.bottom());
        let kept_area = areas[i];
        for j in i + 1..n {
            if suppressed[j / 64] >> (j % 64) & 1 == 1 {
                continue;
            }
            let b = &dets[j].bbox;
            let x0 = kx0.max(b.x);
            let y0 = ky0.max(b.y);
            let x1 = kx1.min(b.right());
            let y1 = ky1.min(b.bottom());
            if x0 < x1 && y0 < y1 {
                let inter = (x1 - x0) as u64 * (y1 - y0) as u64;
                let union = kept_area + areas[j] - inter;
                if union > 0 && inter as f64 / union as f64 > iou_threshold {
                    suppressed[j / 64] |= 1 << (j % 64);
                }
            }
        }
    }
    std::mem::swap(dets, spill);
}

/// Sorts detections by descending score without allocating: ties keep
/// their input order (the result is identical to a *stable* sort), which
/// matters because truncation after sorting must pick a deterministic
/// subset. `order` and `spill` are reusable scratch buffers.
// lint: zero-alloc
pub fn sort_by_score_desc(
    dets: &mut Vec<Detection>,
    order: &mut Vec<u32>,
    spill: &mut Vec<Detection>,
) {
    order.clear();
    order.extend(0..dets.len() as u32);
    // sort_unstable never allocates; the index tiebreak restores
    // stability. NaN scores — of either sign — sort behind every real
    // score in input order (same policy as `detections_to_rois_into`):
    // the old `partial_cmp().expect()` panicked on one poisoned window,
    // killing the whole frame.
    order.sort_unstable_by(|&a, &b| {
        let (sa, sb) = (dets[a as usize].score, dets[b as usize].score);
        sa.is_nan()
            .cmp(&sb.is_nan())
            .then_with(|| if sa.is_nan() { std::cmp::Ordering::Equal } else { sb.total_cmp(&sa) })
            .then(a.cmp(&b))
    });
    spill.clear();
    spill.extend(order.iter().map(|&i| dets[i as usize]));
    std::mem::swap(dets, spill);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_imaging::Rect;

    fn det(x: u32, y: u32, w: u32, h: u32, score: f32) -> Detection {
        Detection { class: 0, bbox: Rect::new(x, y, w, h), score }
    }

    #[test]
    fn empty_input() {
        assert!(nms(vec![], 0.5).is_empty());
    }

    #[test]
    fn nan_scores_sort_last_without_panicking() {
        // One poisoned window must not kill the frame: NaN scores — of
        // either sign — rank behind every real score in input order,
        // and the finite prefix keeps its descending order.
        let mut dets = vec![
            det(0, 0, 4, 4, 0.5),
            det(20, 0, 4, 4, f32::NAN),
            det(40, 0, 4, 4, 0.9),
            det(60, 0, 4, 4, -f32::NAN),
        ];
        let mut order = Vec::new();
        let mut spill = Vec::new();
        sort_by_score_desc(&mut dets, &mut order, &mut spill);
        assert_eq!(dets[0].score, 0.9);
        assert_eq!(dets[1].score, 0.5);
        assert!(dets[2].score.is_nan() && dets[2].bbox.x == 20, "NaNs keep input order");
        assert!(dets[3].score.is_nan() && dets[3].bbox.x == 60);
        // The full NMS pass over NaN-scored overlaps must not panic
        // either.
        let kept = nms(vec![det(0, 0, 10, 10, f32::NAN), det(1, 1, 10, 10, 0.9)], 0.4);
        assert_eq!(kept[0].score, 0.9);
    }

    #[test]
    fn keeps_highest_of_overlapping_pair() {
        let kept = nms(vec![det(0, 0, 10, 10, 0.5), det(1, 1, 10, 10, 0.9)], 0.4);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 0.9);
    }

    #[test]
    fn keeps_disjoint_boxes() {
        let kept =
            nms(vec![det(0, 0, 5, 5, 0.5), det(20, 20, 5, 5, 0.9), det(40, 0, 5, 5, 0.7)], 0.4);
        assert_eq!(kept.len(), 3);
        // Sorted by descending score.
        assert!(kept[0].score >= kept[1].score && kept[1].score >= kept[2].score);
    }

    #[test]
    fn threshold_controls_merging() {
        // ~1/3 IoU pair: suppressed at 0.2 threshold, kept at 0.5.
        let pair = vec![det(0, 0, 10, 10, 0.9), det(0, 5, 10, 10, 0.8)];
        assert_eq!(nms(pair.clone(), 0.2).len(), 1);
        assert_eq!(nms(pair, 0.5).len(), 2);
    }

    #[test]
    fn in_place_variant_matches_allocating_nms() {
        let dets = vec![
            det(0, 0, 10, 10, 0.9),
            det(0, 5, 10, 10, 0.8),
            det(0, 10, 10, 10, 0.7),
            det(30, 30, 5, 5, 0.8), // score tie with index 1
        ];
        let expected = nms(dets.clone(), 0.3);
        let mut in_place = dets;
        let mut scratch = NmsScratch::new();
        nms_in_place(&mut in_place, 0.3, &mut scratch);
        assert_eq!(in_place, expected);
        // Scratch reuse across differently-sized inputs stays correct.
        let mut second = vec![det(0, 0, 10, 10, 0.5), det(1, 1, 10, 10, 0.9)];
        nms_in_place(&mut second, 0.4, &mut scratch);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].score, 0.9);
    }

    #[test]
    fn forward_marking_matches_candidate_vs_kept_reference() {
        // Dense overlapping grid: compare against the naive
        // candidate-vs-kept greedy sweep the bitmask version replaced.
        let mut dets = Vec::new();
        for i in 0..12u32 {
            for j in 0..6u32 {
                dets.push(det(i * 3, j * 4, 10, 12, ((i * 7 + j * 13) % 29) as f32 / 29.0));
            }
        }
        let naive = |mut input: Vec<Detection>, thr: f64| -> Vec<Detection> {
            let mut scratch = NmsScratch::new();
            sort_by_score_desc(&mut input, &mut scratch.order, &mut scratch.spill);
            let mut kept: Vec<Detection> = Vec::new();
            'candidates: for d in input {
                for k in &kept {
                    if k.bbox.iou(&d.bbox) > thr {
                        continue 'candidates;
                    }
                }
                kept.push(d);
            }
            kept
        };
        for thr in [0.0, 0.2, 0.5, 0.8] {
            assert_eq!(nms(dets.clone(), thr), naive(dets.clone(), thr), "threshold {thr}");
        }
    }

    #[test]
    fn score_sort_is_stable_on_ties() {
        let mut dets = vec![det(0, 0, 1, 1, 0.5), det(1, 0, 1, 1, 0.9), det(2, 0, 1, 1, 0.5)];
        let (mut order, mut spill) = (Vec::new(), Vec::new());
        sort_by_score_desc(&mut dets, &mut order, &mut spill);
        assert_eq!(dets[0].bbox.x, 1);
        // The two 0.5-scored boxes keep their input order.
        assert_eq!(dets[1].bbox.x, 0);
        assert_eq!(dets[2].bbox.x, 2);
    }

    #[test]
    fn chain_suppression_is_greedy() {
        // A-B overlap (IoU 1/3), B-C overlap, A-C do not: greedy keeps A and C.
        let chain = vec![det(0, 0, 10, 10, 0.9), det(0, 5, 10, 10, 0.8), det(0, 10, 10, 10, 0.7)];
        let kept = nms(chain, 0.3);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].bbox.y, 0);
        assert_eq!(kept[1].bbox.y, 10);
    }
}
