//! Greedy non-maximum suppression.

use crate::eval::Detection;

/// Suppresses detections overlapping a higher-scored one by more than
/// `iou_threshold`. Matching is class-agnostic (the detector classifies
/// after suppression). Returns survivors sorted by descending score.
pub fn nms(mut detections: Vec<Detection>, iou_threshold: f64) -> Vec<Detection> {
    detections.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
    let mut keep: Vec<Detection> = Vec::with_capacity(detections.len());
    'candidates: for det in detections {
        for kept in &keep {
            if kept.bbox.iou(&det.bbox) > iou_threshold {
                continue 'candidates;
            }
        }
        keep.push(det);
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_imaging::Rect;

    fn det(x: u32, y: u32, w: u32, h: u32, score: f32) -> Detection {
        Detection { class: 0, bbox: Rect::new(x, y, w, h), score }
    }

    #[test]
    fn empty_input() {
        assert!(nms(vec![], 0.5).is_empty());
    }

    #[test]
    fn keeps_highest_of_overlapping_pair() {
        let kept = nms(vec![det(0, 0, 10, 10, 0.5), det(1, 1, 10, 10, 0.9)], 0.4);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 0.9);
    }

    #[test]
    fn keeps_disjoint_boxes() {
        let kept =
            nms(vec![det(0, 0, 5, 5, 0.5), det(20, 20, 5, 5, 0.9), det(40, 0, 5, 5, 0.7)], 0.4);
        assert_eq!(kept.len(), 3);
        // Sorted by descending score.
        assert!(kept[0].score >= kept[1].score && kept[1].score >= kept[2].score);
    }

    #[test]
    fn threshold_controls_merging() {
        // ~1/3 IoU pair: suppressed at 0.2 threshold, kept at 0.5.
        let pair = vec![det(0, 0, 10, 10, 0.9), det(0, 5, 10, 10, 0.8)];
        assert_eq!(nms(pair.clone(), 0.2).len(), 1);
        assert_eq!(nms(pair, 0.5).len(), 2);
    }

    #[test]
    fn chain_suppression_is_greedy() {
        // A-B overlap (IoU 1/3), B-C overlap, A-C do not: greedy keeps A and C.
        let chain = vec![det(0, 0, 10, 10, 0.9), det(0, 5, 10, 10, 0.8), det(0, 10, 10, 10, 0.7)];
        let kept = nms(chain, 0.3);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].bbox.y, 0);
        assert_eq!(kept[1].bbox.y, 10);
    }
}
