//! Greedy non-maximum suppression.

use crate::eval::Detection;

/// Suppresses detections overlapping a higher-scored one by more than
/// `iou_threshold`. Matching is class-agnostic (the detector classifies
/// after suppression). Returns survivors sorted by descending score.
pub fn nms(mut detections: Vec<Detection>, iou_threshold: f64) -> Vec<Detection> {
    let (mut order, mut spill) = (Vec::new(), Vec::new());
    nms_in_place(&mut detections, iou_threshold, &mut order, &mut spill);
    detections
}

/// In-place variant of [`nms`], for the zero-allocation frame path:
/// survivors replace the contents of `dets`, and the `order`/`spill`
/// buffers are caller-owned so repeated calls reuse their capacity.
/// Produces exactly the same survivors in the same order as [`nms`].
pub fn nms_in_place(
    dets: &mut Vec<Detection>,
    iou_threshold: f64,
    order: &mut Vec<u32>,
    spill: &mut Vec<Detection>,
) {
    sort_by_score_desc(dets, order, spill);
    spill.clear();
    'candidates: for det in dets.iter() {
        for kept in spill.iter() {
            if kept.bbox.iou(&det.bbox) > iou_threshold {
                continue 'candidates;
            }
        }
        spill.push(*det);
    }
    std::mem::swap(dets, spill);
}

/// Sorts detections by descending score without allocating: ties keep
/// their input order (the result is identical to a *stable* sort), which
/// matters because truncation after sorting must pick a deterministic
/// subset. `order` and `spill` are reusable scratch buffers.
pub fn sort_by_score_desc(
    dets: &mut Vec<Detection>,
    order: &mut Vec<u32>,
    spill: &mut Vec<Detection>,
) {
    order.clear();
    order.extend(0..dets.len() as u32);
    // sort_unstable never allocates; the index tiebreak restores
    // stability.
    order.sort_unstable_by(|&a, &b| {
        dets[b as usize]
            .score
            .partial_cmp(&dets[a as usize].score)
            .expect("scores are finite")
            .then(a.cmp(&b))
    });
    spill.clear();
    spill.extend(order.iter().map(|&i| dets[i as usize]));
    std::mem::swap(dets, spill);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_imaging::Rect;

    fn det(x: u32, y: u32, w: u32, h: u32, score: f32) -> Detection {
        Detection { class: 0, bbox: Rect::new(x, y, w, h), score }
    }

    #[test]
    fn empty_input() {
        assert!(nms(vec![], 0.5).is_empty());
    }

    #[test]
    fn keeps_highest_of_overlapping_pair() {
        let kept = nms(vec![det(0, 0, 10, 10, 0.5), det(1, 1, 10, 10, 0.9)], 0.4);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 0.9);
    }

    #[test]
    fn keeps_disjoint_boxes() {
        let kept =
            nms(vec![det(0, 0, 5, 5, 0.5), det(20, 20, 5, 5, 0.9), det(40, 0, 5, 5, 0.7)], 0.4);
        assert_eq!(kept.len(), 3);
        // Sorted by descending score.
        assert!(kept[0].score >= kept[1].score && kept[1].score >= kept[2].score);
    }

    #[test]
    fn threshold_controls_merging() {
        // ~1/3 IoU pair: suppressed at 0.2 threshold, kept at 0.5.
        let pair = vec![det(0, 0, 10, 10, 0.9), det(0, 5, 10, 10, 0.8)];
        assert_eq!(nms(pair.clone(), 0.2).len(), 1);
        assert_eq!(nms(pair, 0.5).len(), 2);
    }

    #[test]
    fn in_place_variant_matches_allocating_nms() {
        let dets = vec![
            det(0, 0, 10, 10, 0.9),
            det(0, 5, 10, 10, 0.8),
            det(0, 10, 10, 10, 0.7),
            det(30, 30, 5, 5, 0.8), // score tie with index 1
        ];
        let expected = nms(dets.clone(), 0.3);
        let mut in_place = dets;
        let (mut order, mut spill) = (Vec::new(), Vec::new());
        nms_in_place(&mut in_place, 0.3, &mut order, &mut spill);
        assert_eq!(in_place, expected);
    }

    #[test]
    fn score_sort_is_stable_on_ties() {
        let mut dets = vec![det(0, 0, 1, 1, 0.5), det(1, 0, 1, 1, 0.9), det(2, 0, 1, 1, 0.5)];
        let (mut order, mut spill) = (Vec::new(), Vec::new());
        sort_by_score_desc(&mut dets, &mut order, &mut spill);
        assert_eq!(dets[0].bbox.x, 1);
        // The two 0.5-scored boxes keep their input order.
        assert_eq!(dets[1].bbox.x, 0);
        assert_eq!(dets[2].bbox.x, 2);
    }

    #[test]
    fn chain_suppression_is_greedy() {
        // A-B overlap (IoU 1/3), B-C overlap, A-C do not: greedy keeps A and C.
        let chain = vec![det(0, 0, 10, 10, 0.9), det(0, 5, 10, 10, 0.8), det(0, 10, 10, 10, 0.7)];
        let kept = nms(chain, 0.3);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].bbox.y, 0);
        assert_eq!(kept[1].bbox.y, 10);
    }
}
