//! Detection evaluation: greedy IoU matching, precision/recall and
//! COCO-style 101-point interpolated average precision.

// BTreeMap, not HashMap: evaluation code shares the deterministic
// crates' no-unordered-iteration lint contract, and the ordered map
// costs nothing here.
use std::collections::BTreeMap;

use hirise_imaging::Rect;

/// One predicted box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Predicted class id.
    pub class: usize,
    /// Predicted box.
    pub bbox: Rect,
    /// Confidence score (higher = more confident).
    pub score: f32,
}

/// One ground-truth box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroundTruth {
    /// True class id.
    pub class: usize,
    /// True box.
    pub bbox: Rect,
}

/// Per-class APs and their mean.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// `(class id, AP)` for every class present in the ground truth,
    /// sorted by class id.
    pub per_class: Vec<(usize, f64)>,
    /// Mean AP over those classes.
    pub map: f64,
}

impl EvalResult {
    /// AP of a single class, if evaluated.
    pub fn ap(&self, class: usize) -> Option<f64> {
        self.per_class.iter().find(|(c, _)| *c == class).map(|(_, ap)| *ap)
    }
}

/// Average precision for one class at one IoU threshold, over a set of
/// images (`detections[i]` and `ground_truths[i]` belong to image `i`).
///
/// Matching is COCO-style greedy: detections are visited in descending
/// score order; each claims the highest-IoU unmatched ground-truth box of
/// its class in its image, provided IoU ≥ `iou_threshold`. AP integrates
/// the precision envelope over 101 recall points.
///
/// Returns 0 when the class has no ground-truth instances.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn average_precision(
    detections: &[Vec<Detection>],
    ground_truths: &[Vec<GroundTruth>],
    class: usize,
    iou_threshold: f64,
) -> f64 {
    assert_eq!(
        detections.len(),
        ground_truths.len(),
        "detections and ground truths must cover the same images"
    );
    let total_gt: usize =
        ground_truths.iter().map(|g| g.iter().filter(|b| b.class == class).count()).sum();
    if total_gt == 0 {
        return 0.0;
    }

    // Flatten detections of this class with their image index.
    let mut flat: Vec<(usize, Detection)> = Vec::new();
    for (img, dets) in detections.iter().enumerate() {
        for d in dets.iter().filter(|d| d.class == class) {
            flat.push((img, *d));
        }
    }
    // NaN scores rank last (same policy as the NMS sort) instead of the
    // old `partial_cmp().expect()` panic on one poisoned detection.
    flat.sort_by(|a, b| {
        let (sa, sb) = (a.1.score, b.1.score);
        sa.is_nan().cmp(&sb.is_nan()).then_with(|| {
            if sa.is_nan() {
                std::cmp::Ordering::Equal
            } else {
                sb.total_cmp(&sa)
            }
        })
    });

    let mut matched: BTreeMap<(usize, usize), bool> = BTreeMap::new();
    let mut tp = vec![0u32; flat.len()];
    let mut fp = vec![0u32; flat.len()];
    for (rank, (img, det)) in flat.iter().enumerate() {
        let gts = &ground_truths[*img];
        let mut best: Option<(usize, f64)> = None;
        for (gi, gt) in gts.iter().enumerate() {
            if gt.class != class || matched.contains_key(&(*img, gi)) {
                continue;
            }
            let iou = det.bbox.iou(&gt.bbox);
            if iou >= iou_threshold && best.is_none_or(|(_, b)| iou > b) {
                best = Some((gi, iou));
            }
        }
        match best {
            Some((gi, _)) => {
                matched.insert((*img, gi), true);
                tp[rank] = 1;
            }
            None => fp[rank] = 1,
        }
    }

    // Cumulative precision/recall.
    let mut cum_tp = 0u32;
    let mut cum_fp = 0u32;
    let mut precisions = Vec::with_capacity(flat.len());
    let mut recalls = Vec::with_capacity(flat.len());
    for i in 0..flat.len() {
        cum_tp += tp[i];
        cum_fp += fp[i];
        precisions.push(cum_tp as f64 / (cum_tp + cum_fp) as f64);
        recalls.push(cum_tp as f64 / total_gt as f64);
    }

    // Precision envelope (monotone non-increasing from the right).
    for i in (0..precisions.len().saturating_sub(1)).rev() {
        if precisions[i] < precisions[i + 1] {
            precisions[i] = precisions[i + 1];
        }
    }

    // 101-point interpolation.
    let mut ap = 0.0;
    for step in 0..=100 {
        let r = step as f64 / 100.0;
        let p = recalls.iter().position(|&rec| rec >= r).map_or(0.0, |idx| precisions[idx]);
        ap += p;
    }
    ap / 101.0
}

/// Evaluates every class present in the ground truth at one IoU threshold
/// (the paper's tables report mAP@0.5-style numbers).
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn evaluate(
    detections: &[Vec<Detection>],
    ground_truths: &[Vec<GroundTruth>],
    iou_threshold: f64,
) -> EvalResult {
    let mut classes: Vec<usize> =
        ground_truths.iter().flat_map(|g| g.iter().map(|b| b.class)).collect();
    classes.sort_unstable();
    classes.dedup();
    let per_class: Vec<(usize, f64)> = classes
        .iter()
        .map(|&c| (c, average_precision(detections, ground_truths, c, iou_threshold)))
        .collect();
    let map = if per_class.is_empty() {
        0.0
    } else {
        per_class.iter().map(|(_, ap)| ap).sum::<f64>() / per_class.len() as f64
    };
    EvalResult { per_class, map }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gt(class: usize, x: u32, y: u32, w: u32, h: u32) -> GroundTruth {
        GroundTruth { class, bbox: Rect::new(x, y, w, h) }
    }

    fn det(class: usize, x: u32, y: u32, w: u32, h: u32, score: f32) -> Detection {
        Detection { class, bbox: Rect::new(x, y, w, h), score }
    }

    #[test]
    fn perfect_detector_scores_one() {
        let gts = vec![vec![gt(0, 10, 10, 20, 20), gt(0, 50, 50, 10, 10)]];
        let dets = vec![vec![det(0, 10, 10, 20, 20, 0.9), det(0, 50, 50, 10, 10, 0.8)]];
        let ap = average_precision(&dets, &gts, 0, 0.5);
        assert!(ap > 0.999, "ap {ap}");
    }

    #[test]
    fn nan_scores_rank_last_without_panicking() {
        // A poisoned detection ranks behind every real one (so it can
        // only cost precision, never a panic — the old
        // `partial_cmp().expect("finite scores")` died here).
        let gts = vec![vec![gt(0, 10, 10, 20, 20)]];
        let dets = vec![vec![det(0, 10, 10, 20, 20, f32::NAN), det(0, 10, 10, 20, 20, 0.9)]];
        let ap = average_precision(&dets, &gts, 0, 0.5);
        assert!(ap.is_finite() && (0.0..=1.0).contains(&ap), "ap {ap}");
        assert!(ap > 0.999, "the finite-scored true positive ranks first: {ap}");
    }

    #[test]
    fn no_detections_scores_zero() {
        let gts = vec![vec![gt(0, 10, 10, 20, 20)]];
        let dets: Vec<Vec<Detection>> = vec![vec![]];
        assert_eq!(average_precision(&dets, &gts, 0, 0.5), 0.0);
    }

    #[test]
    fn all_false_positives_score_zero() {
        let gts = vec![vec![gt(0, 10, 10, 20, 20)]];
        let dets = vec![vec![det(0, 100, 100, 20, 20, 0.9)]];
        assert_eq!(average_precision(&dets, &gts, 0, 0.5), 0.0);
    }

    #[test]
    fn half_recall_halves_ap() {
        // Two GTs, one perfect detection, no FPs: AP ≈ recall = 0.5.
        let gts = vec![vec![gt(0, 10, 10, 20, 20), gt(0, 100, 100, 20, 20)]];
        let dets = vec![vec![det(0, 10, 10, 20, 20, 0.9)]];
        let ap = average_precision(&dets, &gts, 0, 0.5);
        assert!((ap - 0.5).abs() < 0.02, "ap {ap}");
    }

    #[test]
    fn duplicate_detections_count_as_fp() {
        let gts = vec![vec![gt(0, 10, 10, 20, 20)]];
        // Two identical detections: second is a duplicate -> FP at rank 2.
        let dets = vec![vec![det(0, 10, 10, 20, 20, 0.9), det(0, 11, 11, 20, 20, 0.8)]];
        let ap = average_precision(&dets, &gts, 0, 0.5);
        // Recall reaches 1.0 at precision 1.0 before the duplicate; the
        // envelope keeps AP at 1.0.
        assert!(ap > 0.99);
        // But precision at full depth is 0.5 — verify through evaluate on a
        // second image where the duplicate outranks the true positive.
        let gts2 = vec![vec![gt(0, 10, 10, 20, 20)]];
        let dets2 = vec![vec![det(0, 100, 100, 20, 20, 0.95), det(0, 10, 10, 20, 20, 0.8)]];
        let ap2 = average_precision(&dets2, &gts2, 0, 0.5);
        assert!((ap2 - 0.5).abs() < 0.02, "ap2 {ap2}");
    }

    #[test]
    fn iou_threshold_gates_matches() {
        let gts = vec![vec![gt(0, 0, 0, 10, 10)]];
        // Offset box: intersection 60, union 140 -> IoU ≈ 0.43.
        let dets = vec![vec![det(0, 0, 4, 10, 10, 0.9)]];
        assert_eq!(average_precision(&dets, &gts, 0, 0.5), 0.0);
        let ap_low = average_precision(&dets, &gts, 0, 0.4);
        assert!(ap_low > 0.99);
    }

    #[test]
    fn class_confusion_is_punished() {
        let gts = vec![vec![gt(1, 10, 10, 20, 20)]];
        let dets = vec![vec![det(0, 10, 10, 20, 20, 0.9)]];
        // Wrong class: AP for class 1 is 0 (no detection), class 0 has no GT.
        assert_eq!(average_precision(&dets, &gts, 1, 0.5), 0.0);
        assert_eq!(average_precision(&dets, &gts, 0, 0.5), 0.0);
    }

    #[test]
    fn evaluate_averages_over_present_classes() {
        let gts = vec![vec![gt(0, 10, 10, 20, 20), gt(3, 50, 50, 20, 20)]];
        let dets = vec![vec![det(0, 10, 10, 20, 20, 0.9)]];
        let result = evaluate(&dets, &gts, 0.5);
        assert_eq!(result.per_class.len(), 2);
        assert!(result.ap(0).unwrap() > 0.99);
        assert_eq!(result.ap(3).unwrap(), 0.0);
        assert!((result.map - 0.5).abs() < 0.01);
        assert_eq!(result.ap(7), None);
    }

    #[test]
    fn greedy_matching_prefers_higher_iou() {
        // One detection overlapping two GTs: must claim the higher-IoU one.
        let gts = vec![vec![gt(0, 0, 0, 10, 10), gt(0, 2, 0, 10, 10)]];
        let dets = vec![vec![det(0, 2, 0, 10, 10, 0.9), det(0, 0, 0, 10, 10, 0.8)]];
        let ap = average_precision(&dets, &gts, 0, 0.5);
        assert!(ap > 0.99, "both GTs should be matched, ap {ap}");
    }

    #[test]
    fn multi_image_evaluation() {
        let gts = vec![
            vec![gt(0, 10, 10, 20, 20)],
            vec![gt(0, 30, 30, 20, 20)],
            vec![gt(0, 50, 50, 20, 20)],
        ];
        let dets =
            vec![vec![det(0, 10, 10, 20, 20, 0.9)], vec![], vec![det(0, 50, 50, 20, 20, 0.7)]];
        let ap = average_precision(&dets, &gts, 0, 0.5);
        assert!((ap - 2.0 / 3.0).abs() < 0.02, "ap {ap}");
    }

    #[test]
    #[should_panic(expected = "same images")]
    fn mismatched_lengths_panic() {
        let gts = vec![vec![gt(0, 0, 0, 4, 4)]];
        let dets: Vec<Vec<Detection>> = vec![vec![], vec![]];
        average_precision(&dets, &gts, 0, 0.5);
    }
}
