//! Multi-scale sliding-window detector.
//!
//! The detector scans geometric scale steps and a small set of aspect
//! ratios, scoring each window from four normalised cues:
//!
//! * luminance standard deviation (objects are internally structured),
//! * gradient/texture energy (fine texture survives only at sufficient
//!   resolution — the cue pooling destroys),
//! * centre–surround contrast (objects pop out from the background),
//! * colour saturation (present only in RGB mode — the cue grayscale
//!   operation loses).
//!
//! Candidates above a score threshold go through class-agnostic NMS and
//! are then assigned the class whose canonical aspect ratio is nearest.
//!
//! [`Detector::calibrate_threshold`] grid-searches the score threshold for
//! maximum mAP on a calibration set — the reproduction's analogue of the
//! paper's per-dataset fine-tuning of YOLOv8n (200 epochs). Re-calibrating
//! in grayscale mode mirrors the paper's grayscale retraining experiment.

use hirise_imaging::{Image, Rect};

use crate::eval::{evaluate, Detection, GroundTruth};
use crate::features::{FeatureMaps, FeatureScratch};
use crate::nms::{nms_in_place, sort_by_score_desc, NmsScratch};

/// Detector hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Smallest window height scanned, pixels.
    pub min_object_h: u32,
    /// Smallest window height as a fraction of image height (combined with
    /// [`DetectorConfig::min_object_h`] by taking the larger). Set from the
    /// dataset's known object-scale range — the reproduction's analogue of
    /// anchor tuning.
    pub min_object_frac: f64,
    /// Largest window height as a fraction of image height.
    pub max_object_frac: f64,
    /// Geometric scale progression between window heights.
    pub scale_step: f64,
    /// Aspect ratios (w/h) scanned at each scale.
    pub aspects: Vec<f32>,
    /// Stride as a fraction of window height.
    pub stride_frac: f64,
    /// Contrast-ring width as a fraction of window height.
    pub ring_frac: f64,
    /// Cue weights: standard deviation, texture, contrast, saturation,
    /// ring-texture penalty (subtracted).
    pub weights: [f64; 5],
    /// Cue normalisation constants (value that saturates each cue):
    /// standard deviation, texture, contrast, saturation.
    pub cue_scales: [f64; 4],
    /// Score threshold in `0.0..1.0`.
    pub score_threshold: f64,
    /// IoU above which NMS suppresses the lower-scored box.
    pub nms_iou: f64,
    /// Hard cap on detections per image (highest scores kept).
    pub max_detections: usize,
    /// Flat-region gate: windows whose luminance-stddev cue falls below
    /// this normalised value are skipped before full scoring (pure
    /// speed-up; plain background sits well under it).
    pub stddev_gate: f64,
    /// Fill level treated as "fully covered": the positive score is scaled
    /// by `min(fill / fill_norm, 1)`, demoting loose boxes and cluster
    /// boxes whose interior is partly background.
    pub fill_norm: f64,
    /// `(class id, canonical aspect)` pairs for post-NMS classification.
    /// Empty means every detection is reported as class 0.
    pub class_aspects: Vec<(usize, f32)>,
    /// Intersection-over-minimum above which a small box counts as a *part*
    /// of a larger one.
    pub part_containment: f64,
    /// A part must be at most this fraction of the container's area.
    pub part_area_ratio: f64,
    /// Per-part boost factor; the summed boost multiplies the container's
    /// own score and is capped at [`DetectorConfig::part_boost_cap`].
    pub part_boost: f64,
    /// Upper bound on the total multiplicative boost (the container score
    /// is multiplied by at most `1 + part_boost_cap`).
    pub part_boost_cap: f64,
    /// A part is suppressed when its container's (boosted) score reaches
    /// this fraction of the part's score.
    pub part_suppress_ratio: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            min_object_h: 8,
            min_object_frac: 0.0,
            max_object_frac: 0.55,
            scale_step: 1.22,
            aspects: vec![0.4, 0.7, 1.0, 1.9],
            stride_frac: 0.18,
            ring_frac: 0.30,
            weights: [1.0, 1.3, 1.1, 0.7, 0.8],
            cue_scales: [0.16, 0.055, 0.13, 0.35],
            score_threshold: 0.42,
            nms_iou: 0.35,
            max_detections: 80,
            stddev_gate: 0.18,
            fill_norm: 0.45,
            class_aspects: Vec::new(),
            part_containment: 0.7,
            part_area_ratio: 0.35,
            part_boost: 0.8,
            part_boost_cap: 1.0,
            part_suppress_ratio: 0.7,
        }
    }
}

/// Reusable working memory for [`Detector::detect_with_scratch`].
///
/// Holds the feature-map stack, candidate buffers and sorting scratch so
/// the steady-state detection path performs no heap allocation once the
/// buffers have grown to their working size. One scratch serves any
/// sequence of images (sizes and colour modes may vary between calls).
#[derive(Debug, Clone, Default)]
pub struct DetectorScratch {
    maps: FeatureMaps,
    features: FeatureScratch,
    /// Candidate boxes of the current frame; holds the final detections
    /// after a `detect_with_scratch` call returns.
    detections: Vec<Detection>,
    /// Sort/suppression buffers shared by the NMS sweeps; its `spill`
    /// also serves as the part-grouping originals buffer.
    nms: NmsScratch,
    /// Boosted-score copy used by the part-suppression pass.
    boosted: Vec<Detection>,
    /// Aspect ratios scanned this frame.
    aspects: Vec<f32>,
}

impl DetectorScratch {
    /// Creates an empty scratch; buffers grow to their steady-state size
    /// during the first detection.
    pub fn new() -> Self {
        Self::default()
    }

    /// The detections produced by the most recent
    /// [`Detector::detect_with_scratch`] call.
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }
}

/// The stage-1 detector.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Detector {
    config: DetectorConfig,
}

impl Detector {
    /// Creates a detector with the given configuration.
    pub fn new(config: DetectorConfig) -> Self {
        Self { config }
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Mutable access (used by calibration and ablations).
    pub fn config_mut(&mut self) -> &mut DetectorConfig {
        &mut self.config
    }

    fn score(&self, f: &crate::features::WindowFeatures) -> f64 {
        let [w_sd, w_tx, w_ct, w_sat, w_ring] = self.config.weights;
        let [n_sd, n_tx, n_ct, n_sat] = self.config.cue_scales;
        let sd = (f.stddev / n_sd).min(1.0);
        let tx = (f.texture / n_tx).min(1.0);
        let ct = (f.contrast / n_ct).min(1.0);
        let sat = (f.saturation / n_sat).min(1.0);
        let ring = (f.ring_texture / n_tx).min(1.0);
        let fill = (f.fill / self.config.fill_norm).min(1.0);
        let positive =
            (w_sd * sd + w_tx * tx + w_ct * ct + w_sat * sat) / (w_sd + w_tx + w_ct + w_sat);
        (positive * fill - w_ring * ring).max(0.0)
    }

    fn classify(&self, bbox: Rect) -> usize {
        if self.config.class_aspects.is_empty() {
            return 0;
        }
        let aspect = bbox.w as f32 / bbox.h.max(1) as f32;
        self.config
            .class_aspects
            .iter()
            .min_by(|(_, a), (_, b)| {
                let da = (aspect / a).ln().abs();
                let db = (aspect / b).ln().abs();
                // `total_cmp` keeps the argmin total when a
                // non-positive configured aspect makes `ln()` go NaN
                // (the old `partial_cmp().expect()` panicked): NaN
                // distances rank behind every real one.
                da.total_cmp(&db)
            })
            .map(|(c, _)| *c)
            .expect("non-empty class list")
    }

    /// Part-to-whole grouping: windows firing on object *parts* (a head, a
    /// wheel) transfer evidence to windows that contain them, and are then
    /// suppressed once a container explains them. Without this step the
    /// cleanest small blobs — object parts — outrank whole-object boxes,
    /// which is the classical failure mode of purely local window scoring.
    fn group_parts_in_place(
        &self,
        dets: &mut Vec<Detection>,
        originals: &mut Vec<Detection>,
        boosted: &mut Vec<Detection>,
    ) {
        if dets.is_empty() {
            return;
        }
        originals.clear();
        originals.extend_from_slice(dets);
        for container in dets.iter_mut() {
            let ca = container.bbox.area();
            if ca == 0 {
                continue;
            }
            let mut boost = 0.0f64;
            for part in originals.iter() {
                let pa = part.bbox.area();
                if pa == 0 || pa as f64 > self.config.part_area_ratio * ca as f64 {
                    continue;
                }
                let inter = container.bbox.intersection_area(&part.bbox);
                if inter as f64 >= self.config.part_containment * pa as f64 {
                    boost +=
                        self.config.part_boost * part.score as f64 * (pa as f64 / ca as f64).sqrt();
                }
            }
            container.score *= 1.0 + boost.min(self.config.part_boost_cap) as f32;
        }
        // Suppress parts explained by a (boosted) container.
        boosted.clear();
        boosted.extend_from_slice(dets);
        dets.retain(|part| {
            let pa = part.bbox.area();
            !boosted.iter().any(|container| {
                let ca = container.bbox.area();
                ca as f64 * self.config.part_area_ratio >= pa as f64
                    && container.bbox.intersection_area(&part.bbox) as f64
                        >= self.config.part_containment * pa as f64
                    && container.score as f64 >= self.config.part_suppress_ratio * part.score as f64
            })
        });
    }

    /// Aspect ratios to scan: the configured class aspects when available
    /// (deduplicated within 10 %), otherwise the generic list.
    fn scan_aspects_into(&self, out: &mut Vec<f32>) {
        out.clear();
        if self.config.class_aspects.is_empty() {
            out.extend_from_slice(&self.config.aspects);
            return;
        }
        for &(_, a) in &self.config.class_aspects {
            if !out.iter().any(|&b| (a / b).ln().abs() < 0.1) {
                out.push(a);
            }
        }
    }

    /// Runs detection on one image (allocating convenience wrapper over
    /// [`Detector::detect_with_scratch`]).
    pub fn detect(&self, image: &Image) -> Vec<Detection> {
        let mut scratch = DetectorScratch::new();
        self.detect_with_scratch(image, &mut scratch);
        scratch.detections
    }

    /// Runs detection on one image, reusing `scratch` for every buffer.
    /// After warm-up (buffers grown to their working size) this path
    /// performs no heap allocation. Results are identical to
    /// [`Detector::detect`].
    pub fn detect_with_scratch<'s>(
        &self,
        image: &Image,
        scratch: &'s mut DetectorScratch,
    ) -> &'s [Detection] {
        let DetectorScratch { maps, features, detections, nms, boosted, aspects } = scratch;
        maps.recompute(image, features);
        let (iw, ih) = (maps.width(), maps.height());
        self.scan_aspects_into(aspects);
        let sd_gate = self.config.stddev_gate * self.config.cue_scales[0];
        let candidates = detections;
        candidates.clear();
        let mut h = (self.config.min_object_h as f64).max(self.config.min_object_frac * ih as f64);
        let max_h = self.config.max_object_frac * ih as f64;
        while h <= max_h {
            let wh = h as u32;
            for &aspect in aspects.iter() {
                let ww = ((h * aspect as f64) as u32).max(2);
                if ww >= iw || wh >= ih || wh < 2 {
                    continue;
                }
                let stride = ((h * self.config.stride_frac) as u32).max(1);
                let ring = ((h * self.config.ring_frac) as u32).max(1);
                let mut y = 0;
                while y + wh <= ih {
                    // The stddev gate runs over hoisted table rows; only
                    // passing windows pay full feature extraction.
                    maps.scan_row_gated(y, ww, wh, stride, sd_gate, |x| {
                        let rect = Rect::new(x, y, ww, wh);
                        let f = maps.window(rect, ring);
                        let score = self.score(&f);
                        if score > self.config.score_threshold {
                            candidates.push(Detection {
                                class: 0,
                                bbox: rect,
                                score: score as f32,
                            });
                        }
                    });
                    y += stride;
                }
            }
            h *= self.config.scale_step;
        }
        // Bound the candidate set (top scores) so the n² grouping and NMS
        // stay tractable on busy scenes, then dedup, group, suppress.
        const MAX_CANDIDATES: usize = 4000;
        if candidates.len() > MAX_CANDIDATES {
            sort_by_score_desc(candidates, &mut nms.order, &mut nms.spill);
            candidates.truncate(MAX_CANDIDATES);
        }
        nms_in_place(candidates, 0.8, nms);
        self.group_parts_in_place(candidates, &mut nms.spill, boosted);
        nms_in_place(candidates, self.config.nms_iou, nms);
        candidates.truncate(self.config.max_detections);
        for det in candidates.iter_mut() {
            det.class = self.classify(det.bbox);
        }
        candidates
    }

    /// Grid-searches `thresholds` for the best mAP on a calibration set and
    /// installs the winner. Returns `(best threshold, best mAP)`.
    ///
    /// # Panics
    ///
    /// Panics if `thresholds` is empty or the slices disagree in length.
    pub fn calibrate_threshold(
        &mut self,
        images: &[Image],
        ground_truths: &[Vec<GroundTruth>],
        thresholds: &[f64],
        iou_threshold: f64,
    ) -> (f64, f64) {
        assert!(!thresholds.is_empty(), "need at least one candidate threshold");
        assert_eq!(images.len(), ground_truths.len());
        // Detect once at the most permissive threshold, then re-filter.
        let min_thr = thresholds.iter().cloned().fold(f64::INFINITY, f64::min);
        let saved = self.config.score_threshold;
        self.config.score_threshold = min_thr;
        let mut scratch = DetectorScratch::new();
        let raw: Vec<Vec<Detection>> =
            images.iter().map(|img| self.detect_with_scratch(img, &mut scratch).to_vec()).collect();
        self.config.score_threshold = saved;

        let mut best = (thresholds[0], -1.0);
        for &thr in thresholds {
            let filtered: Vec<Vec<Detection>> = raw
                .iter()
                .map(|dets| dets.iter().filter(|d| d.score as f64 >= thr).copied().collect())
                .collect();
            let result = evaluate(&filtered, ground_truths, iou_threshold);
            if result.map > best.1 {
                best = (thr, result.map);
            }
        }
        self.config.score_threshold = best.0;
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_imaging::{draw, GrayImage, Plane, RgbImage};

    /// One bright, finely textured object on a darker flat background.
    fn blob_image() -> Image {
        let mut plane = Plane::filled(96, 96, 0.35);
        draw::fill_stripes(&mut plane, Rect::new(32, 28, 20, 40), 2, 0.85, 0.15);
        GrayImage::from_plane(plane).into()
    }

    #[test]
    fn classify_survives_nan_aspect_distances() {
        // A non-positive configured aspect makes the log-distance NaN;
        // the argmin must pick the finite candidate instead of panicking
        // (the old `partial_cmp().expect("aspects are positive")`).
        let config =
            DetectorConfig { class_aspects: vec![(7, -1.0), (3, 1.0)], ..Default::default() };
        let detector = Detector::new(config);
        assert_eq!(detector.classify(Rect::new(0, 0, 10, 10)), 3);
    }

    #[test]
    fn finds_textured_blob() {
        let detector = Detector::default();
        let dets = detector.detect(&blob_image());
        assert!(!dets.is_empty(), "no detections");
        let target = Rect::new(32, 28, 20, 40);
        let best = dets.iter().map(|d| d.bbox.iou(&target)).fold(0.0, f64::max);
        assert!(best > 0.4, "best IoU {best}");
    }

    #[test]
    fn scratch_reuse_matches_fresh_detection() {
        let detector = Detector::default();
        let blob = blob_image();
        let rgb: Image = RgbImage::from_fn(64, 64, |x, y| {
            let on = (24..40).contains(&x) && (20..44).contains(&y);
            if on && (x + y) % 2 == 0 {
                (0.9, 0.4, 0.2)
            } else if on {
                (0.2, 0.2, 0.2)
            } else {
                (0.4, 0.4, 0.4)
            }
        })
        .into();
        let mut scratch = DetectorScratch::new();
        // Alternate image sizes and colour modes through one scratch.
        for img in [&blob, &rgb, &blob, &rgb] {
            let with_scratch = detector.detect_with_scratch(img, &mut scratch).to_vec();
            assert_eq!(with_scratch, detector.detect(img));
            assert_eq!(scratch.detections(), with_scratch.as_slice());
        }
    }

    #[test]
    fn flat_image_yields_nothing() {
        let detector = Detector::default();
        let img: Image = GrayImage::from_fn(96, 96, |_, _| 0.5).into();
        assert!(detector.detect(&img).is_empty());
    }

    #[test]
    fn detection_count_capped() {
        let cfg = DetectorConfig {
            max_detections: 3,
            score_threshold: 0.0, // everything passes
            ..Default::default()
        };
        let detector = Detector::new(cfg);
        let dets = detector.detect(&blob_image());
        assert!(dets.len() <= 3);
    }

    #[test]
    fn saturated_color_raises_score_in_rgb_mode() {
        // Same geometry and identical mean luminance (0.55): the saturated
        // variant differs only in the colour cue.
        let mk = |saturated: bool| -> Image {
            let mut img = RgbImage::from_fn(96, 96, |_, _| (0.35, 0.35, 0.35));
            let color = if saturated { (0.95, 0.5, 0.2) } else { (0.55, 0.55, 0.55) };
            draw::fill_rect_rgb(&mut img, Rect::new(36, 30, 20, 36), color);
            img.into()
        };
        let cfg = DetectorConfig { score_threshold: 0.05, ..Default::default() };
        let detector = Detector::new(cfg);
        let top = |img: &Image| detector.detect(img).iter().map(|d| d.score).fold(0.0f32, f32::max);
        assert!(top(&mk(true)) > top(&mk(false)));
    }

    #[test]
    fn classification_by_aspect() {
        let cfg = DetectorConfig { class_aspects: vec![(0, 0.4), (3, 1.9)], ..Default::default() };
        let detector = Detector::new(cfg);
        assert_eq!(detector.classify(Rect::new(0, 0, 10, 25)), 0); // tall
        assert_eq!(detector.classify(Rect::new(0, 0, 40, 20)), 3); // wide
    }

    #[test]
    fn empty_class_list_reports_class_zero() {
        let detector = Detector::default();
        assert_eq!(detector.classify(Rect::new(0, 0, 50, 10)), 0);
    }

    #[test]
    fn calibration_picks_threshold_maximising_map() {
        let img = blob_image();
        let gts = vec![vec![GroundTruth { class: 0, bbox: Rect::new(32, 28, 20, 40) }]];
        let mut detector = Detector::default();
        let (thr, map) = detector.calibrate_threshold(
            std::slice::from_ref(&img),
            &gts,
            &[0.1, 0.3, 0.5, 0.7, 0.9],
            0.4,
        );
        assert!(map > 0.3, "calibrated mAP {map}");
        assert_eq!(detector.config().score_threshold, thr);
    }

    #[test]
    fn small_objects_vanish_at_low_resolution() {
        // The Table-2 mechanism: pool the blob image 4x and the 20x40 object
        // becomes 5x10 with its stripes averaged away; the top IoU-matching
        // score drops.
        use hirise_imaging::ops;
        let img = blob_image();
        let pooled: Image = match &img {
            Image::Gray(g) => ops::avg_pool_gray(g, 4).unwrap().into(),
            Image::Rgb(_) => unreachable!(),
        };
        // Zero part-boost: containment boosts would obscure the
        // texture-loss effect under comparison here.
        let cfg = DetectorConfig {
            score_threshold: 0.05,
            min_object_h: 4,
            part_boost: 0.0,
            ..Default::default()
        };
        let detector = Detector::new(cfg);
        let score_at = |image: &Image, target: Rect| -> f32 {
            detector
                .detect(image)
                .iter()
                .filter(|d| d.bbox.iou(&target) > 0.3)
                .map(|d| d.score)
                .fold(0.0f32, f32::max)
        };
        let hi = score_at(&img, Rect::new(32, 28, 20, 40));
        let lo = score_at(&pooled, Rect::new(8, 7, 5, 10));
        assert!(hi > lo, "texture loss did not reduce score: hi={hi} lo={lo}");
    }
}
