//! Box association for cross-frame tracking.
//!
//! The temporal pipeline (`hirise::temporal`) persists ROIs across video
//! frames and must decide, on every re-detection, which fresh box is the
//! same physical object as which existing track. That is a bipartite
//! matching problem; this module implements the standard greedy IoU
//! assignment used by classical trackers (SORT-style without the Kalman
//! machinery): candidates are visited in order and each claims the
//! highest-IoU unmatched reference at or above a gate.
//!
//! The greedy scan is O(candidates × references) with no heap allocation
//! once the caller-owned scratch buffers have grown — both box sets are
//! small (bounded by `max_rois`), so quadratic is the right trade against
//! the allocation-free frame-path contract.

use hirise_imaging::Rect;

/// Reusable buffers for [`greedy_iou_associate`], so the per-frame
/// tracking path associates without heap allocation once warmed up.
#[derive(Debug, Clone, Default)]
pub struct AssociateScratch {
    used: Vec<bool>,
}

impl AssociateScratch {
    /// Creates empty scratch; buffers grow to their working size on
    /// first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Greedily matches `candidates` against `references` by IoU.
///
/// `out` is resized to `candidates.len()`; `out[i] = Some(j)` means
/// `candidates[i]` claimed `references[j]`. Candidates are visited in
/// slice order (callers pass them sorted by detection score, so stronger
/// detections pick first); each takes its highest-IoU unmatched
/// reference with IoU ≥ `min_iou` (ties keep the lowest reference
/// index). Every reference is claimed at most once. The result is a pure
/// function of the inputs — no hashing or RNG — so cross-frame tracking
/// built on it stays bit-deterministic.
pub fn greedy_iou_associate(
    candidates: &[Rect],
    references: &[Rect],
    min_iou: f64,
    scratch: &mut AssociateScratch,
    out: &mut Vec<Option<u32>>,
) {
    scratch.used.clear();
    scratch.used.resize(references.len(), false);
    out.clear();
    for cand in candidates {
        let mut best: Option<(u32, f64)> = None;
        for (j, r) in references.iter().enumerate() {
            if scratch.used[j] {
                continue;
            }
            let iou = cand.iou(r);
            if iou >= min_iou && best.is_none_or(|(_, b)| iou > b) {
                best = Some((j as u32, iou));
            }
        }
        if let Some((j, _)) = best {
            scratch.used[j as usize] = true;
        }
        out.push(best.map(|(j, _)| j));
    }
}

/// Allocating convenience wrapper around [`greedy_iou_associate`].
pub fn associate(candidates: &[Rect], references: &[Rect], min_iou: f64) -> Vec<Option<u32>> {
    let mut out = Vec::new();
    greedy_iou_associate(candidates, references, min_iou, &mut AssociateScratch::new(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_identical_boxes() {
        let boxes = [Rect::new(0, 0, 10, 10), Rect::new(40, 40, 8, 8)];
        let assoc = associate(&boxes, &boxes, 0.5);
        assert_eq!(assoc, vec![Some(0), Some(1)]);
    }

    #[test]
    fn gate_rejects_weak_overlap() {
        let cands = [Rect::new(0, 0, 10, 10)];
        let refs = [Rect::new(9, 9, 10, 10)]; // IoU = 1/199
        assert_eq!(associate(&cands, &refs, 0.3), vec![None]);
        assert_eq!(associate(&cands, &refs, 0.0), vec![Some(0)]);
    }

    #[test]
    fn each_reference_claimed_once_in_candidate_order() {
        // Both candidates overlap reference 0 best; the first (stronger)
        // candidate takes it, the second falls through to reference 1.
        let cands = [Rect::new(0, 0, 10, 10), Rect::new(2, 0, 10, 10)];
        let refs = [Rect::new(1, 0, 10, 10), Rect::new(6, 0, 10, 10)];
        let assoc = associate(&cands, &refs, 0.1);
        assert_eq!(assoc, vec![Some(0), Some(1)]);
    }

    #[test]
    fn prefers_highest_iou_with_index_tiebreak() {
        let cands = [Rect::new(10, 10, 10, 10)];
        // Same IoU both sides: lowest index wins deterministically.
        let refs = [Rect::new(5, 10, 10, 10), Rect::new(15, 10, 10, 10)];
        assert_eq!(associate(&cands, &refs, 0.1), vec![Some(0)]);
        // A strictly better third reference wins outright.
        let refs = [Rect::new(5, 10, 10, 10), Rect::new(15, 10, 10, 10), Rect::new(11, 10, 10, 10)];
        assert_eq!(associate(&cands, &refs, 0.1), vec![Some(2)]);
    }

    #[test]
    fn empty_inputs_and_degenerate_boxes() {
        assert!(associate(&[], &[Rect::new(0, 0, 4, 4)], 0.5).is_empty());
        assert_eq!(associate(&[Rect::new(0, 0, 4, 4)], &[], 0.5), vec![None]);
        // Degenerate boxes have zero IoU with everything.
        let empty = Rect::new(2, 2, 0, 5);
        assert_eq!(associate(&[empty], &[empty], 0.0), vec![Some(0)]);
        assert_eq!(associate(&[empty], &[empty], 0.1), vec![None]);
    }

    #[test]
    fn scratch_reuse_matches_allocating_path() {
        let mut scratch = AssociateScratch::new();
        let mut out = Vec::new();
        let sets: [(&[Rect], &[Rect]); 3] = [
            (&[Rect::new(0, 0, 8, 8)], &[Rect::new(1, 1, 8, 8), Rect::new(20, 20, 8, 8)]),
            (&[], &[]),
            (&[Rect::new(5, 5, 4, 4), Rect::new(6, 5, 4, 4)], &[Rect::new(5, 5, 4, 4)]),
        ];
        for (cands, refs) in sets {
            greedy_iou_associate(cands, refs, 0.2, &mut scratch, &mut out);
            assert_eq!(out, associate(cands, refs, 0.2));
        }
    }
}
