//! Summed-area tables for O(1) window statistics.

use hirise_imaging::{Plane, Rect};

/// A summed-area table over a [`Plane`], with `f64` accumulation.
///
/// # Example
///
/// ```
/// use hirise_detect::IntegralImage;
/// use hirise_imaging::{Plane, Rect};
///
/// let p = Plane::filled(8, 8, 0.5);
/// let ii = IntegralImage::new(&p);
/// assert!((ii.sum(Rect::new(2, 2, 4, 4)) - 8.0).abs() < 1e-9);
/// assert!((ii.mean(Rect::new(0, 0, 8, 8)) - 0.5).abs() < 1e-9);
/// ```
/// The default is an empty 0×0 table (no allocation): a cheap placeholder
/// for scratch structures that [`IntegralImage::recompute`] over it before
/// first use. Every query on the default reports zero.
#[derive(Debug, Clone, Default)]
pub struct IntegralImage {
    width: u32,
    height: u32,
    /// `(width + 1) * (height + 1)` table; entry `(x, y)` holds the sum of
    /// all pixels strictly above and to the left.
    table: Vec<f64>,
}

impl IntegralImage {
    /// Builds the table from a plane.
    pub fn new(plane: &Plane) -> Self {
        Self::from_fn(plane.width(), plane.height(), |x, y| plane.get(x, y) as f64)
    }

    /// Builds the table of squared values (for variance computation).
    pub fn squared(plane: &Plane) -> Self {
        Self::from_fn(plane.width(), plane.height(), |x, y| {
            let v = plane.get(x, y) as f64;
            v * v
        })
    }

    /// Builds a table from an arbitrary per-pixel function.
    pub fn from_fn(width: u32, height: u32, f: impl FnMut(u32, u32) -> f64) -> Self {
        let mut ii = Self::default();
        ii.recompute_from_fn(width, height, f);
        ii
    }

    /// Rebuilds the table from a plane, reusing the existing buffer
    /// (allocation-free once the table has reached its steady-state size).
    ///
    /// Runs over row slices: a running prefix sum along the source row
    /// plus the previous table row, with no per-pixel 2-D index
    /// arithmetic. Bit-identical to the per-pixel formulation.
    pub fn recompute(&mut self, plane: &Plane) {
        self.resize_table(plane.width(), plane.height());
        let w1 = plane.width() as usize + 1;
        for (y, src) in plane.rows().enumerate() {
            let (prev, cur) = self.table[y * w1..(y + 2) * w1].split_at_mut(w1);
            let mut row_sum = 0.0f64;
            for ((&v, c), &p) in src.iter().zip(&mut cur[1..]).zip(&prev[1..]) {
                row_sum += v as f64;
                *c = p + row_sum;
            }
        }
    }

    /// Rebuilds the table of squared values in place (same row-slice
    /// structure as [`IntegralImage::recompute`]).
    pub fn recompute_squared(&mut self, plane: &Plane) {
        self.resize_table(plane.width(), plane.height());
        let w1 = plane.width() as usize + 1;
        for (y, src) in plane.rows().enumerate() {
            let (prev, cur) = self.table[y * w1..(y + 2) * w1].split_at_mut(w1);
            let mut row_sum = 0.0f64;
            for ((&v, c), &p) in src.iter().zip(&mut cur[1..]).zip(&prev[1..]) {
                let v = v as f64;
                row_sum += v * v;
                *c = p + row_sum;
            }
        }
    }

    /// Sets dimensions and re-zeroes the `(w+1)·(h+1)` table without
    /// shrinking capacity (the border row/column must read as zero).
    fn resize_table(&mut self, width: u32, height: u32) {
        let w1 = width as usize + 1;
        let h1 = height as usize + 1;
        self.width = width;
        self.height = height;
        self.table.clear();
        self.table.resize(w1 * h1, 0.0);
    }

    /// Rebuilds the table from an arbitrary per-pixel function in place.
    pub fn recompute_from_fn(
        &mut self,
        width: u32,
        height: u32,
        mut f: impl FnMut(u32, u32) -> f64,
    ) {
        self.resize_table(width, height);
        let w1 = width as usize + 1;
        for y in 0..height as usize {
            let (prev, cur) = self.table[y * w1..(y + 2) * w1].split_at_mut(w1);
            let mut row_sum = 0.0;
            for x in 0..width as usize {
                row_sum += f(x as u32, y as u32);
                cur[x + 1] = prev[x + 1] + row_sum;
            }
        }
    }

    /// The raw `(width + 1)`-stride summed-area table, for scan loops that
    /// hoist row offsets (see `FeatureMaps::scan_row_gated`).
    #[inline]
    pub(crate) fn table(&self) -> &[f64] {
        &self.table
    }

    /// Corner combination of the raw table: sum over the window whose
    /// top/bottom table rows start at `y0b`/`y1b` and whose column range
    /// is `x0..x1`. Callers guarantee the window is in bounds.
    #[inline]
    pub(crate) fn sum_raw(table: &[f64], y0b: usize, y1b: usize, x0: usize, x1: usize) -> f64 {
        table[y1b + x1] + table[y0b + x0] - table[y0b + x1] - table[y1b + x0]
    }

    /// Table width (source plane width).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Table height (source plane height).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Sum of pixel values in `rect` (clamped to the image).
    #[inline]
    pub fn sum(&self, rect: Rect) -> f64 {
        let r = rect.clamped(self.width, self.height);
        if r.is_degenerate() {
            return 0.0;
        }
        let w1 = self.width as usize + 1;
        Self::sum_raw(
            &self.table,
            r.y as usize * w1,
            r.bottom() as usize * w1,
            r.x as usize,
            r.right() as usize,
        )
    }

    /// Mean pixel value in `rect` (0 for empty windows).
    #[inline]
    pub fn mean(&self, rect: Rect) -> f64 {
        let r = rect.clamped(self.width, self.height);
        if r.is_degenerate() {
            return 0.0;
        }
        let w1 = self.width as usize + 1;
        let s = Self::sum_raw(
            &self.table,
            r.y as usize * w1,
            r.bottom() as usize * w1,
            r.x as usize,
            r.right() as usize,
        );
        s / r.area() as f64
    }
}

/// Variance of a window given plain and squared integral images.
pub fn window_variance(ii: &IntegralImage, ii_sq: &IntegralImage, rect: Rect) -> f64 {
    let m = ii.mean(rect);
    (ii_sq.mean(rect) - m * m).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker(w: u32, h: u32) -> Plane {
        Plane::from_fn(w, h, |x, y| ((x + y) % 2) as f32)
    }

    #[test]
    fn sum_matches_naive() {
        let p = Plane::from_fn(7, 5, |x, y| (x * 3 + y * 11) as f32 % 13.0);
        let ii = IntegralImage::new(&p);
        for rect in [
            Rect::new(0, 0, 7, 5),
            Rect::new(1, 1, 3, 2),
            Rect::new(6, 4, 1, 1),
            Rect::new(2, 0, 5, 5),
        ] {
            let naive: f64 = (rect.y..rect.bottom())
                .flat_map(|y| (rect.x..rect.right()).map(move |x| (x, y)))
                .map(|(x, y)| p.get(x, y) as f64)
                .sum();
            assert!((ii.sum(rect) - naive).abs() < 1e-9, "rect {rect}");
        }
    }

    #[test]
    fn clamps_out_of_range_windows() {
        let p = Plane::filled(4, 4, 1.0);
        let ii = IntegralImage::new(&p);
        assert_eq!(ii.sum(Rect::new(2, 2, 10, 10)), 4.0);
        assert_eq!(ii.sum(Rect::new(8, 8, 2, 2)), 0.0);
        assert_eq!(ii.mean(Rect::new(8, 8, 2, 2)), 0.0);
    }

    #[test]
    fn checkerboard_mean_is_half() {
        let p = checker(8, 8);
        let ii = IntegralImage::new(&p);
        assert!((ii.mean(Rect::new(0, 0, 8, 8)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn variance_of_checkerboard() {
        let p = checker(8, 8);
        let ii = IntegralImage::new(&p);
        let sq = IntegralImage::squared(&p);
        // Bernoulli(0.5): variance 0.25.
        let v = window_variance(&ii, &sq, Rect::new(0, 0, 8, 8));
        assert!((v - 0.25).abs() < 1e-9);
        // Constant window: variance 0.
        let flat = Plane::filled(4, 4, 0.7);
        let fi = IntegralImage::new(&flat);
        let fsq = IntegralImage::squared(&flat);
        assert!(window_variance(&fi, &fsq, Rect::new(0, 0, 4, 4)) < 1e-12);
    }

    #[test]
    fn variance_never_negative() {
        // Numerical cancellation must not produce negative variance.
        let p = Plane::filled(16, 16, 0.123456);
        let ii = IntegralImage::new(&p);
        let sq = IntegralImage::squared(&p);
        for w in 1..8 {
            let v = window_variance(&ii, &sq, Rect::new(3, 3, w, w));
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn recompute_matches_fresh_construction() {
        let a = Plane::from_fn(5, 4, |x, y| (x * 2 + y) as f32 / 7.0);
        let b = Plane::from_fn(9, 6, |x, y| ((x + y) % 3) as f32);
        // Reuse one table across differently-sized planes, both directions.
        let mut ii = IntegralImage::new(&a);
        ii.recompute(&b);
        let fresh = IntegralImage::new(&b);
        for rect in [Rect::new(0, 0, 9, 6), Rect::new(2, 1, 4, 3)] {
            assert!((ii.sum(rect) - fresh.sum(rect)).abs() < 1e-12);
        }
        ii.recompute_squared(&a);
        let fresh_sq = IntegralImage::squared(&a);
        assert!(
            (ii.sum(Rect::new(0, 0, 5, 4)) - fresh_sq.sum(Rect::new(0, 0, 5, 4))).abs() < 1e-12
        );
        assert_eq!((ii.width(), ii.height()), (5, 4));
    }

    #[test]
    fn single_pixel_windows() {
        let p = Plane::from_fn(3, 3, |x, y| (y * 3 + x) as f32);
        let ii = IntegralImage::new(&p);
        for y in 0..3 {
            for x in 0..3 {
                assert!((ii.sum(Rect::new(x, y, 1, 1)) - p.get(x, y) as f64).abs() < 1e-9);
            }
        }
    }
}
