//! Summed-area tables for O(1) window statistics.

use hirise_imaging::{Plane, Rect};

/// A summed-area table over a [`Plane`], with `f64` accumulation.
///
/// # Example
///
/// ```
/// use hirise_detect::IntegralImage;
/// use hirise_imaging::{Plane, Rect};
///
/// let p = Plane::filled(8, 8, 0.5);
/// let ii = IntegralImage::new(&p);
/// assert!((ii.sum(Rect::new(2, 2, 4, 4)) - 8.0).abs() < 1e-9);
/// assert!((ii.mean(Rect::new(0, 0, 8, 8)) - 0.5).abs() < 1e-9);
/// ```
/// The default is an empty 0×0 table (no allocation): a cheap placeholder
/// for scratch structures that [`IntegralImage::recompute`] over it before
/// first use. Every query on the default reports zero.
#[derive(Debug, Clone, Default)]
pub struct IntegralImage {
    width: u32,
    height: u32,
    /// `(width + 1) * (height + 1)` table; entry `(x, y)` holds the sum of
    /// all pixels strictly above and to the left.
    table: Vec<f64>,
}

impl IntegralImage {
    /// Builds the table from a plane.
    pub fn new(plane: &Plane) -> Self {
        Self::from_fn(plane.width(), plane.height(), |x, y| plane.get(x, y) as f64)
    }

    /// Builds the table of squared values (for variance computation).
    pub fn squared(plane: &Plane) -> Self {
        Self::from_fn(plane.width(), plane.height(), |x, y| {
            let v = plane.get(x, y) as f64;
            v * v
        })
    }

    /// Builds a table from an arbitrary per-pixel function.
    pub fn from_fn(width: u32, height: u32, f: impl FnMut(u32, u32) -> f64) -> Self {
        let mut ii = Self::default();
        ii.recompute_from_fn(width, height, f);
        ii
    }

    /// Rebuilds the table from a plane, reusing the existing buffer
    /// (allocation-free once the table has reached its steady-state size).
    pub fn recompute(&mut self, plane: &Plane) {
        self.recompute_from_fn(plane.width(), plane.height(), |x, y| plane.get(x, y) as f64);
    }

    /// Rebuilds the table of squared values in place.
    pub fn recompute_squared(&mut self, plane: &Plane) {
        self.recompute_from_fn(plane.width(), plane.height(), |x, y| {
            let v = plane.get(x, y) as f64;
            v * v
        });
    }

    /// Rebuilds the table from an arbitrary per-pixel function in place.
    pub fn recompute_from_fn(
        &mut self,
        width: u32,
        height: u32,
        mut f: impl FnMut(u32, u32) -> f64,
    ) {
        let w1 = width as usize + 1;
        let h1 = height as usize + 1;
        self.width = width;
        self.height = height;
        // clear + resize re-zeroes the border row/column without
        // shrinking capacity.
        self.table.clear();
        self.table.resize(w1 * h1, 0.0);
        for y in 0..height as usize {
            let mut row_sum = 0.0;
            for x in 0..width as usize {
                row_sum += f(x as u32, y as u32);
                self.table[(y + 1) * w1 + (x + 1)] = self.table[y * w1 + (x + 1)] + row_sum;
            }
        }
    }

    /// Table width (source plane width).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Table height (source plane height).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Sum of pixel values in `rect` (clamped to the image).
    pub fn sum(&self, rect: Rect) -> f64 {
        let r = rect.clamped(self.width, self.height);
        if r.is_degenerate() {
            return 0.0;
        }
        let w1 = self.width as usize + 1;
        let (x0, y0) = (r.x as usize, r.y as usize);
        let (x1, y1) = (r.right() as usize, r.bottom() as usize);
        self.table[y1 * w1 + x1] + self.table[y0 * w1 + x0]
            - self.table[y0 * w1 + x1]
            - self.table[y1 * w1 + x0]
    }

    /// Mean pixel value in `rect` (0 for empty windows).
    pub fn mean(&self, rect: Rect) -> f64 {
        let r = rect.clamped(self.width, self.height);
        if r.is_degenerate() {
            return 0.0;
        }
        self.sum(r) / r.area() as f64
    }
}

/// Variance of a window given plain and squared integral images.
pub fn window_variance(ii: &IntegralImage, ii_sq: &IntegralImage, rect: Rect) -> f64 {
    let m = ii.mean(rect);
    (ii_sq.mean(rect) - m * m).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker(w: u32, h: u32) -> Plane {
        Plane::from_fn(w, h, |x, y| ((x + y) % 2) as f32)
    }

    #[test]
    fn sum_matches_naive() {
        let p = Plane::from_fn(7, 5, |x, y| (x * 3 + y * 11) as f32 % 13.0);
        let ii = IntegralImage::new(&p);
        for rect in [
            Rect::new(0, 0, 7, 5),
            Rect::new(1, 1, 3, 2),
            Rect::new(6, 4, 1, 1),
            Rect::new(2, 0, 5, 5),
        ] {
            let naive: f64 = (rect.y..rect.bottom())
                .flat_map(|y| (rect.x..rect.right()).map(move |x| (x, y)))
                .map(|(x, y)| p.get(x, y) as f64)
                .sum();
            assert!((ii.sum(rect) - naive).abs() < 1e-9, "rect {rect}");
        }
    }

    #[test]
    fn clamps_out_of_range_windows() {
        let p = Plane::filled(4, 4, 1.0);
        let ii = IntegralImage::new(&p);
        assert_eq!(ii.sum(Rect::new(2, 2, 10, 10)), 4.0);
        assert_eq!(ii.sum(Rect::new(8, 8, 2, 2)), 0.0);
        assert_eq!(ii.mean(Rect::new(8, 8, 2, 2)), 0.0);
    }

    #[test]
    fn checkerboard_mean_is_half() {
        let p = checker(8, 8);
        let ii = IntegralImage::new(&p);
        assert!((ii.mean(Rect::new(0, 0, 8, 8)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn variance_of_checkerboard() {
        let p = checker(8, 8);
        let ii = IntegralImage::new(&p);
        let sq = IntegralImage::squared(&p);
        // Bernoulli(0.5): variance 0.25.
        let v = window_variance(&ii, &sq, Rect::new(0, 0, 8, 8));
        assert!((v - 0.25).abs() < 1e-9);
        // Constant window: variance 0.
        let flat = Plane::filled(4, 4, 0.7);
        let fi = IntegralImage::new(&flat);
        let fsq = IntegralImage::squared(&flat);
        assert!(window_variance(&fi, &fsq, Rect::new(0, 0, 4, 4)) < 1e-12);
    }

    #[test]
    fn variance_never_negative() {
        // Numerical cancellation must not produce negative variance.
        let p = Plane::filled(16, 16, 0.123456);
        let ii = IntegralImage::new(&p);
        let sq = IntegralImage::squared(&p);
        for w in 1..8 {
            let v = window_variance(&ii, &sq, Rect::new(3, 3, w, w));
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn recompute_matches_fresh_construction() {
        let a = Plane::from_fn(5, 4, |x, y| (x * 2 + y) as f32 / 7.0);
        let b = Plane::from_fn(9, 6, |x, y| ((x + y) % 3) as f32);
        // Reuse one table across differently-sized planes, both directions.
        let mut ii = IntegralImage::new(&a);
        ii.recompute(&b);
        let fresh = IntegralImage::new(&b);
        for rect in [Rect::new(0, 0, 9, 6), Rect::new(2, 1, 4, 3)] {
            assert!((ii.sum(rect) - fresh.sum(rect)).abs() < 1e-12);
        }
        ii.recompute_squared(&a);
        let fresh_sq = IntegralImage::squared(&a);
        assert!(
            (ii.sum(Rect::new(0, 0, 5, 4)) - fresh_sq.sum(Rect::new(0, 0, 5, 4))).abs() < 1e-12
        );
        assert_eq!((ii.width(), ii.height()), (5, 4));
    }

    #[test]
    fn single_pixel_windows() {
        let p = Plane::from_fn(3, 3, |x, y| (y * 3 + x) as f32);
        let ii = IntegralImage::new(&p);
        for y in 0..3 {
            for x in 0..3 {
                assert!((ii.sum(Rect::new(x, y, 1, 1)) - p.get(x, y) as f64).abs() < 1e-9);
            }
        }
    }
}
