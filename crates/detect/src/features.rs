//! Per-image feature maps consumed by the sliding-window detector.

use hirise_imaging::{color, Image, Plane, Rect};

use crate::integral::{window_variance, IntegralImage};

/// Gradient-magnitude map (L1 of central differences), the detector's
/// texture/edge-energy cue. Fine textures (hair, cloth weave) dominate this
/// map at high resolution and vanish under pooling — the mechanism behind
/// the paper's accuracy-vs-resolution trend.
pub fn gradient_magnitude(luma: &Plane) -> Plane {
    let mut out = Plane::new(luma.width(), luma.height());
    gradient_magnitude_into(luma, &mut out);
    out
}

/// In-place variant of [`gradient_magnitude`]: writes the map into `out`
/// (reshaped to the luma plane's dimensions).
pub fn gradient_magnitude_into(luma: &Plane, out: &mut Plane) {
    let (w, h) = luma.dimensions();
    out.reshape_for_overwrite(w, h);
    for y in 0..h {
        for x in 0..w {
            let xm = luma.get(x.saturating_sub(1), y);
            let xp = luma.get((x + 1).min(w - 1), y);
            let ym = luma.get(x, y.saturating_sub(1));
            let yp = luma.get(x, (y + 1).min(h - 1));
            out.set(x, y, ((xp - xm).abs() + (yp - ym).abs()) * 0.5);
        }
    }
}

/// Gradient magnitude above which a pixel counts as "active" for the fill
/// cue.
const ACTIVE_GRAD_THRESHOLD: f32 = 0.02;

/// Saturation above which a pixel counts as "active" (RGB inputs only).
const ACTIVE_SAT_THRESHOLD: f32 = 0.15;

/// Precomputed integral-image stack for one input image.
///
/// The default is an empty (0×0) stack — a cheap placeholder that
/// [`FeatureMaps::recompute`] fills before first use.
#[derive(Debug, Clone, Default)]
pub struct FeatureMaps {
    width: u32,
    height: u32,
    luma: IntegralImage,
    luma_sq: IntegralImage,
    grad: IntegralImage,
    /// Saturation table, retained across recomputes even for gray inputs
    /// (where it is stale and unused) so alternating colour modes stay
    /// allocation-free; `has_color` gates every read.
    saturation: Option<IntegralImage>,
    has_color: bool,
    /// Integral of the binary "active" mask (textured or colour-saturated
    /// pixels). `mean` over a window gives the *fill* — how much of the
    /// window is covered by object-like content. Loose boxes and boxes
    /// spanning several objects have low fill.
    active: IntegralImage,
}

/// Summary statistics of one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowFeatures {
    /// Mean luminance inside the window.
    pub mean: f64,
    /// Luminance standard deviation inside the window.
    pub stddev: f64,
    /// Mean gradient magnitude (texture energy).
    pub texture: f64,
    /// Minimum over the four side rings of |mean(window) − mean(ring)| —
    /// blob contrast that must hold on every side.
    pub contrast: f64,
    /// Mean colour saturation (0 in gray mode).
    pub saturation: f64,
    /// Mean gradient energy of the side rings. A box tightly enclosing an
    /// object sits on quiet background, so this is low; a box straddling
    /// an object edge or placed inside texture has noisy rings. Used as a
    /// score penalty.
    pub ring_texture: f64,
    /// Fraction of window pixels that are "active" (textured or saturated).
    /// Tight single-object boxes approach 1; loose boxes and multi-object
    /// cluster boxes contain background gaps and score lower.
    pub fill: f64,
}

/// Reusable plane buffers consumed by [`FeatureMaps::recompute`].
///
/// Holds the intermediate luminance, gradient and saturation rasters so a
/// steady-state detector rebuilds its feature stack without touching the
/// heap.
#[derive(Debug, Clone)]
pub struct FeatureScratch {
    luma: Plane,
    grad: Plane,
    sat: Plane,
}

impl Default for FeatureScratch {
    fn default() -> Self {
        Self { luma: Plane::new(1, 1), grad: Plane::new(1, 1), sat: Plane::new(1, 1) }
    }
}

impl FeatureScratch {
    /// Creates the scratch with minimal placeholder buffers; they grow to
    /// their steady-state size on the first [`FeatureMaps::recompute`].
    pub fn new() -> Self {
        Self::default()
    }
}

impl FeatureMaps {
    /// Builds the stack. RGB inputs also get a saturation map; gray inputs
    /// report zero saturation (which is exactly the cue the paper's
    /// grayscale mode loses).
    pub fn new(image: &Image) -> Self {
        let mut maps = Self::default();
        maps.recompute(image, &mut FeatureScratch::default());
        maps
    }

    /// Rebuilds the stack for a new image, reusing every integral table
    /// plus the `scratch` rasters (allocation-free once the buffers have
    /// reached their steady-state size). Behaviourally identical to
    /// [`FeatureMaps::new`].
    pub fn recompute(&mut self, image: &Image, scratch: &mut FeatureScratch) {
        color::to_gray_into(image, &mut scratch.luma);
        gradient_magnitude_into(&scratch.luma, &mut scratch.grad);
        let has_color = match image.as_rgb() {
            Some(rgb) => {
                color::saturation_into(rgb, &mut scratch.sat);
                true
            }
            None => false,
        };
        let (w, h) = scratch.luma.dimensions();
        self.width = w;
        self.height = h;
        let (grad_plane, sat_plane) = (&scratch.grad, &scratch.sat);
        self.active.recompute_from_fn(w, h, |x, y| {
            let textured = grad_plane.get(x, y) > ACTIVE_GRAD_THRESHOLD;
            let colored = has_color && sat_plane.get(x, y) > ACTIVE_SAT_THRESHOLD;
            if textured || colored {
                1.0
            } else {
                0.0
            }
        });
        self.luma.recompute(&scratch.luma);
        self.luma_sq.recompute_squared(&scratch.luma);
        self.grad.recompute(&scratch.grad);
        self.has_color = has_color;
        if has_color {
            // Gray frames leave the table in place (stale but unread), so
            // alternating colour modes never reallocate it.
            self.saturation.get_or_insert_with(IntegralImage::default).recompute(&scratch.sat);
        }
    }

    /// Source image width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Source image height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Whether a colour-saturation cue is available.
    pub fn has_color(&self) -> bool {
        self.has_color
    }

    /// Luminance standard deviation of a window alone — a cheap (two
    /// integral lookups) pre-filter used to skip flat background windows
    /// before full feature extraction.
    pub fn luma_stddev(&self, rect: Rect) -> f64 {
        window_variance(&self.luma, &self.luma_sq, rect).sqrt()
    }

    /// Extracts window statistics for `rect`; the contrast rings extend
    /// `ring` pixels beyond the window on each side.
    ///
    /// Contrast is the **minimum** luminance difference between the window
    /// and its four side rings (top/bottom/left/right). Requiring contrast
    /// on *every* side rejects windows that straddle an object boundary or
    /// sit inside a textured region — only whole-object windows pop out on
    /// all sides. Side rings clipped away by the image border are skipped;
    /// a window with no surviving ring reports zero contrast.
    pub fn window(&self, rect: Rect, ring: u32) -> WindowFeatures {
        let mean = self.luma.mean(rect);
        let var = window_variance(&self.luma, &self.luma_sq, rect);
        let texture = self.grad.mean(rect);

        let sides = [
            // Top ring.
            Rect::new(rect.x, rect.y.saturating_sub(ring), rect.w, ring.min(rect.y)),
            // Bottom ring.
            Rect::new(rect.x, rect.bottom(), rect.w, ring),
            // Left ring.
            Rect::new(rect.x.saturating_sub(ring), rect.y, ring.min(rect.x), rect.h),
            // Right ring.
            Rect::new(rect.right(), rect.y, ring, rect.h),
        ];
        let mut contrast = f64::INFINITY;
        let mut ring_texture = 0.0;
        let mut side_count = 0usize;
        for side in sides {
            let clipped = side.clamped(self.width, self.height);
            if clipped.is_degenerate() {
                continue;
            }
            side_count += 1;
            let side_mean = self.luma.mean(clipped);
            contrast = contrast.min((mean - side_mean).abs());
            ring_texture += self.grad.mean(clipped);
        }
        if side_count == 0 {
            contrast = 0.0;
        } else {
            ring_texture /= side_count as f64;
        }
        let saturation = if self.has_color {
            self.saturation.as_ref().expect("has_color implies a saturation table").mean(rect)
        } else {
            0.0
        };
        let fill = self.active.mean(rect);
        WindowFeatures {
            mean,
            stddev: var.sqrt(),
            texture,
            contrast,
            saturation,
            ring_texture,
            fill,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_imaging::{draw, GrayImage, RgbImage};

    #[test]
    fn gradient_zero_on_flat_image() {
        let p = Plane::filled(8, 8, 0.5);
        let g = gradient_magnitude(&p);
        assert!(g.max() < 1e-9);
    }

    #[test]
    fn gradient_peaks_on_edges() {
        let p = Plane::from_fn(8, 8, |x, _| if x < 4 { 0.0 } else { 1.0 });
        let g = gradient_magnitude(&p);
        assert!(g.get(4, 4) > 0.4);
        assert!(g.get(1, 1) < 1e-9);
    }

    #[test]
    fn window_features_of_blob() {
        let mut plane = Plane::filled(32, 32, 0.2);
        draw::fill_rect(&mut plane, Rect::new(12, 12, 8, 8), 0.9);
        let img: Image = GrayImage::from_plane(plane).into();
        let maps = FeatureMaps::new(&img);
        let on_blob = maps.window(Rect::new(12, 12, 8, 8), 4);
        let off_blob = maps.window(Rect::new(0, 0, 8, 8), 4);
        assert!(on_blob.contrast > 0.4, "blob contrast {}", on_blob.contrast);
        assert!(off_blob.contrast < 0.2);
        assert!((on_blob.mean - 0.9).abs() < 1e-6);
        assert_eq!(on_blob.saturation, 0.0); // gray input
        assert!(!maps.has_color());
    }

    #[test]
    fn saturation_cue_present_only_for_rgb() {
        let rgb = RgbImage::from_fn(16, 16, |_, _| (0.9, 0.1, 0.1));
        let img: Image = rgb.into();
        let maps = FeatureMaps::new(&img);
        assert!(maps.has_color());
        let f = maps.window(Rect::new(4, 4, 8, 8), 2);
        assert!(f.saturation > 0.7);
    }

    #[test]
    fn texture_cue_tracks_high_frequency_content() {
        let mut textured = Plane::filled(32, 32, 0.5);
        draw::fill_stripes(&mut textured, Rect::new(8, 8, 16, 16), 1, 0.1, 0.9);
        let img: Image = GrayImage::from_plane(textured).into();
        let maps = FeatureMaps::new(&img);
        let on = maps.window(Rect::new(8, 8, 16, 16), 2);
        let off = maps.window(Rect::new(0, 0, 8, 8), 2);
        assert!(on.texture > 10.0 * (off.texture + 1e-9));
        assert!(on.stddev > 0.3);
    }

    #[test]
    fn recompute_matches_fresh_maps_across_modes() {
        let rgb: Image = RgbImage::from_fn(24, 20, |x, y| {
            (x as f32 / 24.0, y as f32 / 20.0, ((x * y) % 5) as f32 / 5.0)
        })
        .into();
        let gray: Image = GrayImage::from_fn(16, 16, |x, y| ((x + 2 * y) % 7) as f32 / 7.0).into();
        let mut scratch = FeatureScratch::new();
        let mut maps = FeatureMaps::new(&gray);
        // Reuse the same maps across mode and size changes.
        for img in [&rgb, &gray, &rgb] {
            maps.recompute(img, &mut scratch);
            let fresh = FeatureMaps::new(img);
            assert_eq!(maps.has_color(), fresh.has_color());
            let rect = Rect::new(2, 2, 8, 8);
            assert_eq!(maps.window(rect, 3), fresh.window(rect, 3));
            assert_eq!(maps.luma_stddev(rect), fresh.luma_stddev(rect));
        }
    }

    #[test]
    fn ring_at_image_border_is_clipped_not_panicking() {
        let img: Image = GrayImage::new(16, 16).into();
        let maps = FeatureMaps::new(&img);
        let f = maps.window(Rect::new(0, 0, 16, 16), 8);
        assert_eq!(f.contrast, 0.0); // ring fully clipped away
    }
}
