//! Per-image feature maps consumed by the sliding-window detector.

use hirise_imaging::{color, Image, Plane, Rect};

use crate::integral::{window_variance, IntegralImage};

/// Gradient-magnitude map (L1 of central differences), the detector's
/// texture/edge-energy cue. Fine textures (hair, cloth weave) dominate this
/// map at high resolution and vanish under pooling — the mechanism behind
/// the paper's accuracy-vs-resolution trend.
pub fn gradient_magnitude(luma: &Plane) -> Plane {
    let mut out = Plane::new(luma.width(), luma.height());
    gradient_magnitude_into(luma, &mut out);
    out
}

/// In-place variant of [`gradient_magnitude`]: writes the map into `out`
/// (reshaped to the luma plane's dimensions).
///
/// Runs a three-row sliding window (previous / current / next row slices,
/// edge-clamped) so the interior loop is pure slice arithmetic that
/// autovectorizes. Bit-identical to the per-pixel formulation.
pub fn gradient_magnitude_into(luma: &Plane, out: &mut Plane) {
    let (w, h) = luma.dimensions();
    out.reshape_for_overwrite(w, h);
    let wu = w as usize;
    for (y, dst) in out.rows_mut().enumerate() {
        let y = y as u32;
        let row = luma.row(y);
        let above = luma.row(y.saturating_sub(1));
        let below = luma.row((y + 1).min(h - 1));
        // Left/right edges clamp horizontally; handle them outside the
        // interior loop so it carries no per-pixel index clamping.
        dst[0] = ((row[1.min(wu - 1)] - row[0]).abs() + (below[0] - above[0]).abs()) * 0.5;
        if wu == 1 {
            continue;
        }
        let last = wu - 1;
        dst[last] = ((row[last] - row[last - 1]).abs() + (below[last] - above[last]).abs()) * 0.5;
        for x in 1..last {
            dst[x] = ((row[x + 1] - row[x - 1]).abs() + (below[x] - above[x]).abs()) * 0.5;
        }
    }
}

/// Gradient magnitude above which a pixel counts as "active" for the fill
/// cue.
const ACTIVE_GRAD_THRESHOLD: f32 = 0.02;

/// Saturation above which a pixel counts as "active" (RGB inputs only).
const ACTIVE_SAT_THRESHOLD: f32 = 0.15;

/// Precomputed integral-image stack for one input image.
///
/// The default is an empty (0×0) stack — a cheap placeholder that
/// [`FeatureMaps::recompute`] fills before first use.
#[derive(Debug, Clone, Default)]
pub struct FeatureMaps {
    width: u32,
    height: u32,
    luma: IntegralImage,
    luma_sq: IntegralImage,
    grad: IntegralImage,
    /// Saturation table, retained across recomputes even for gray inputs
    /// (where it is stale and unused) so alternating colour modes stay
    /// allocation-free; `has_color` gates every read.
    saturation: Option<IntegralImage>,
    has_color: bool,
    /// Integral of the binary "active" mask (textured or colour-saturated
    /// pixels). `mean` over a window gives the *fill* — how much of the
    /// window is covered by object-like content. Loose boxes and boxes
    /// spanning several objects have low fill.
    active: IntegralImage,
}

/// Summary statistics of one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowFeatures {
    /// Mean luminance inside the window.
    pub mean: f64,
    /// Luminance standard deviation inside the window.
    pub stddev: f64,
    /// Mean gradient magnitude (texture energy).
    pub texture: f64,
    /// Minimum over the four side rings of |mean(window) − mean(ring)| —
    /// blob contrast that must hold on every side.
    pub contrast: f64,
    /// Mean colour saturation (0 in gray mode).
    pub saturation: f64,
    /// Mean gradient energy of the side rings. A box tightly enclosing an
    /// object sits on quiet background, so this is low; a box straddling
    /// an object edge or placed inside texture has noisy rings. Used as a
    /// score penalty.
    pub ring_texture: f64,
    /// Fraction of window pixels that are "active" (textured or saturated).
    /// Tight single-object boxes approach 1; loose boxes and multi-object
    /// cluster boxes contain background gaps and score lower.
    pub fill: f64,
}

/// Reusable plane buffers consumed by [`FeatureMaps::recompute`].
///
/// Holds the intermediate luminance, gradient and saturation rasters so a
/// steady-state detector rebuilds its feature stack without touching the
/// heap.
#[derive(Debug, Clone)]
pub struct FeatureScratch {
    luma: Plane,
    grad: Plane,
    sat: Plane,
    /// Binary "active" mask raster, thresholded from `grad`/`sat` as one
    /// flat pass before integration.
    active: Plane,
}

impl Default for FeatureScratch {
    fn default() -> Self {
        Self {
            luma: Plane::new(1, 1),
            grad: Plane::new(1, 1),
            sat: Plane::new(1, 1),
            active: Plane::new(1, 1),
        }
    }
}

impl FeatureScratch {
    /// Creates the scratch with minimal placeholder buffers; they grow to
    /// their steady-state size on the first [`FeatureMaps::recompute`].
    pub fn new() -> Self {
        Self::default()
    }
}

impl FeatureMaps {
    /// Builds the stack. RGB inputs also get a saturation map; gray inputs
    /// report zero saturation (which is exactly the cue the paper's
    /// grayscale mode loses).
    pub fn new(image: &Image) -> Self {
        let mut maps = Self::default();
        maps.recompute(image, &mut FeatureScratch::default());
        maps
    }

    /// Rebuilds the stack for a new image, reusing every integral table
    /// plus the `scratch` rasters (allocation-free once the buffers have
    /// reached their steady-state size). Behaviourally identical to
    /// [`FeatureMaps::new`].
    pub fn recompute(&mut self, image: &Image, scratch: &mut FeatureScratch) {
        color::to_gray_into(image, &mut scratch.luma);
        gradient_magnitude_into(&scratch.luma, &mut scratch.grad);
        let has_color = match image.as_rgb() {
            Some(rgb) => {
                color::saturation_into(rgb, &mut scratch.sat);
                true
            }
            None => false,
        };
        let (w, h) = scratch.luma.dimensions();
        self.width = w;
        self.height = h;
        // Threshold the activity mask as a flat slice pass, then integrate
        // it like any other plane (values are exactly 0.0/1.0, so the
        // table is bit-identical to the closure-driven formulation).
        scratch.active.reshape_for_overwrite(w, h);
        let active = scratch.active.as_mut_slice();
        if has_color {
            for ((a, &g), &s) in
                active.iter_mut().zip(scratch.grad.as_slice()).zip(scratch.sat.as_slice())
            {
                *a = if g > ACTIVE_GRAD_THRESHOLD || s > ACTIVE_SAT_THRESHOLD { 1.0 } else { 0.0 };
            }
        } else {
            for (a, &g) in active.iter_mut().zip(scratch.grad.as_slice()) {
                *a = if g > ACTIVE_GRAD_THRESHOLD { 1.0 } else { 0.0 };
            }
        }
        self.active.recompute(&scratch.active);
        self.luma.recompute(&scratch.luma);
        self.luma_sq.recompute_squared(&scratch.luma);
        self.grad.recompute(&scratch.grad);
        self.has_color = has_color;
        if has_color {
            // Gray frames leave the table in place (stale but unread), so
            // alternating colour modes never reallocate it.
            self.saturation.get_or_insert_with(IntegralImage::default).recompute(&scratch.sat);
        }
    }

    /// Source image width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Source image height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Whether a colour-saturation cue is available.
    pub fn has_color(&self) -> bool {
        self.has_color
    }

    /// Luminance standard deviation of a window alone — a cheap (two
    /// integral lookups) pre-filter used to skip flat background windows
    /// before full feature extraction.
    pub fn luma_stddev(&self, rect: Rect) -> f64 {
        window_variance(&self.luma, &self.luma_sq, rect).sqrt()
    }

    /// Slides a `ww × wh` window along row `y` in steps of `stride` and
    /// calls `visit(x)` for every position whose luminance standard
    /// deviation reaches `gate`.
    ///
    /// This is the detector's hot loop: the table row offsets are hoisted
    /// out of the scan so each gate test is eight sequential `f64` loads
    /// plus the variance arithmetic — no per-window `Rect` construction,
    /// clamping, or 2-D index math. The accepted set is bit-identical to
    /// filtering with `luma_stddev(rect) >= gate`.
    ///
    /// # Panics
    ///
    /// Panics if the window row does not fit the image
    /// (`ww > width || y + wh > height`) or `stride == 0`.
    pub fn scan_row_gated(
        &self,
        y: u32,
        ww: u32,
        wh: u32,
        stride: u32,
        gate: f64,
        mut visit: impl FnMut(u32),
    ) {
        assert!(ww <= self.width && y + wh <= self.height, "scan row out of bounds");
        assert!(stride > 0, "stride must be nonzero");
        let w1 = self.width as usize + 1;
        let luma = self.luma.table();
        let luma_sq = self.luma_sq.table();
        let y0b = y as usize * w1;
        let y1b = (y + wh) as usize * w1;
        let area = (ww as u64 * wh as u64) as f64;
        let mut x = 0u32;
        while x + ww <= self.width {
            let (x0, x1) = (x as usize, (x + ww) as usize);
            let mean = IntegralImage::sum_raw(luma, y0b, y1b, x0, x1) / area;
            let sq_mean = IntegralImage::sum_raw(luma_sq, y0b, y1b, x0, x1) / area;
            let var = (sq_mean - mean * mean).max(0.0);
            if var.sqrt() >= gate {
                visit(x);
            }
            x += stride;
        }
    }

    /// Extracts window statistics for `rect`; the contrast rings extend
    /// `ring` pixels beyond the window on each side.
    ///
    /// Contrast is the **minimum** luminance difference between the window
    /// and its four side rings (top/bottom/left/right). Requiring contrast
    /// on *every* side rejects windows that straddle an object boundary or
    /// sit inside a textured region — only whole-object windows pop out on
    /// all sides. Side rings clipped away by the image border are skipped;
    /// a window with no surviving ring reports zero contrast.
    pub fn window(&self, rect: Rect, ring: u32) -> WindowFeatures {
        if rect.fits_within(self.width, self.height) && !rect.is_degenerate() {
            return self.window_in_bounds(rect, ring);
        }
        self.window_generic(rect, ring)
    }

    /// Hot-path window extraction for a fully in-bounds window: every
    /// integral mean is computed exactly once from raw table offsets with
    /// the `(width + 1)` stride hoisted, and the side rings are clipped
    /// arithmetically instead of through per-side `Rect` clamping.
    /// Bit-identical to [`FeatureMaps::window_generic`].
    fn window_in_bounds(&self, rect: Rect, ring: u32) -> WindowFeatures {
        let w1 = self.width as usize + 1;
        let luma = self.luma.table();
        let grad = self.grad.table();
        let (x0, x1) = (rect.x as usize, rect.right() as usize);
        let y0b = rect.y as usize * w1;
        let y1b = rect.bottom() as usize * w1;
        let area = rect.area() as f64;
        let mean = IntegralImage::sum_raw(luma, y0b, y1b, x0, x1) / area;
        let sq_mean = IntegralImage::sum_raw(self.luma_sq.table(), y0b, y1b, x0, x1) / area;
        let var = (sq_mean - mean * mean).max(0.0);
        let texture = IntegralImage::sum_raw(grad, y0b, y1b, x0, x1) / area;

        let mut contrast = f64::INFINITY;
        let mut ring_texture = 0.0;
        let mut side_count = 0usize;
        let mut side = |sx0: usize, sy0: usize, sx1: usize, sy1: usize| {
            let b0 = sy0 * w1;
            let b1 = sy1 * w1;
            let side_area = ((sx1 - sx0) as u64 * (sy1 - sy0) as u64) as f64;
            let side_mean = IntegralImage::sum_raw(luma, b0, b1, sx0, sx1) / side_area;
            contrast = contrast.min((mean - side_mean).abs());
            ring_texture += IntegralImage::sum_raw(grad, b0, b1, sx0, sx1) / side_area;
            side_count += 1;
        };
        // Top / bottom / left / right rings, clipped at the image border
        // (same clipping — and the same visit order for the floating-point
        // ring-texture fold — as the generic path).
        let top = ring.min(rect.y);
        if top > 0 {
            side(x0, (rect.y - top) as usize, x1, rect.y as usize);
        }
        let bottom = ring.min(self.height - rect.bottom());
        if bottom > 0 {
            side(x0, rect.bottom() as usize, x1, (rect.bottom() + bottom) as usize);
        }
        let left = ring.min(rect.x);
        if left > 0 {
            side((rect.x - left) as usize, rect.y as usize, x0, rect.bottom() as usize);
        }
        let right = ring.min(self.width - rect.right());
        if right > 0 {
            side(x1, rect.y as usize, (rect.right() + right) as usize, rect.bottom() as usize);
        }
        if side_count == 0 {
            contrast = 0.0;
        } else {
            ring_texture /= side_count as f64;
        }
        let saturation = if self.has_color {
            let table = self.saturation.as_ref().expect("has_color implies a saturation table");
            IntegralImage::sum_raw(table.table(), y0b, y1b, x0, x1) / area
        } else {
            0.0
        };
        let fill = IntegralImage::sum_raw(self.active.table(), y0b, y1b, x0, x1) / area;
        WindowFeatures {
            mean,
            stddev: var.sqrt(),
            texture,
            contrast,
            saturation,
            ring_texture,
            fill,
        }
    }

    /// Reference window extraction through the clamped [`IntegralImage`]
    /// queries; handles windows that protrude past the image.
    fn window_generic(&self, rect: Rect, ring: u32) -> WindowFeatures {
        let mean = self.luma.mean(rect);
        let var = window_variance(&self.luma, &self.luma_sq, rect);
        let texture = self.grad.mean(rect);

        let sides = [
            // Top ring.
            Rect::new(rect.x, rect.y.saturating_sub(ring), rect.w, ring.min(rect.y)),
            // Bottom ring.
            Rect::new(rect.x, rect.bottom(), rect.w, ring),
            // Left ring.
            Rect::new(rect.x.saturating_sub(ring), rect.y, ring.min(rect.x), rect.h),
            // Right ring.
            Rect::new(rect.right(), rect.y, ring, rect.h),
        ];
        let mut contrast = f64::INFINITY;
        let mut ring_texture = 0.0;
        let mut side_count = 0usize;
        for side in sides {
            let clipped = side.clamped(self.width, self.height);
            if clipped.is_degenerate() {
                continue;
            }
            side_count += 1;
            let side_mean = self.luma.mean(clipped);
            contrast = contrast.min((mean - side_mean).abs());
            ring_texture += self.grad.mean(clipped);
        }
        if side_count == 0 {
            contrast = 0.0;
        } else {
            ring_texture /= side_count as f64;
        }
        let saturation = if self.has_color {
            self.saturation.as_ref().expect("has_color implies a saturation table").mean(rect)
        } else {
            0.0
        };
        let fill = self.active.mean(rect);
        WindowFeatures {
            mean,
            stddev: var.sqrt(),
            texture,
            contrast,
            saturation,
            ring_texture,
            fill,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_imaging::{draw, GrayImage, RgbImage};

    #[test]
    fn gradient_zero_on_flat_image() {
        let p = Plane::filled(8, 8, 0.5);
        let g = gradient_magnitude(&p);
        assert!(g.max() < 1e-9);
    }

    #[test]
    fn gradient_peaks_on_edges() {
        let p = Plane::from_fn(8, 8, |x, _| if x < 4 { 0.0 } else { 1.0 });
        let g = gradient_magnitude(&p);
        assert!(g.get(4, 4) > 0.4);
        assert!(g.get(1, 1) < 1e-9);
    }

    #[test]
    fn window_features_of_blob() {
        let mut plane = Plane::filled(32, 32, 0.2);
        draw::fill_rect(&mut plane, Rect::new(12, 12, 8, 8), 0.9);
        let img: Image = GrayImage::from_plane(plane).into();
        let maps = FeatureMaps::new(&img);
        let on_blob = maps.window(Rect::new(12, 12, 8, 8), 4);
        let off_blob = maps.window(Rect::new(0, 0, 8, 8), 4);
        assert!(on_blob.contrast > 0.4, "blob contrast {}", on_blob.contrast);
        assert!(off_blob.contrast < 0.2);
        assert!((on_blob.mean - 0.9).abs() < 1e-6);
        assert_eq!(on_blob.saturation, 0.0); // gray input
        assert!(!maps.has_color());
    }

    #[test]
    fn saturation_cue_present_only_for_rgb() {
        let rgb = RgbImage::from_fn(16, 16, |_, _| (0.9, 0.1, 0.1));
        let img: Image = rgb.into();
        let maps = FeatureMaps::new(&img);
        assert!(maps.has_color());
        let f = maps.window(Rect::new(4, 4, 8, 8), 2);
        assert!(f.saturation > 0.7);
    }

    #[test]
    fn texture_cue_tracks_high_frequency_content() {
        let mut textured = Plane::filled(32, 32, 0.5);
        draw::fill_stripes(&mut textured, Rect::new(8, 8, 16, 16), 1, 0.1, 0.9);
        let img: Image = GrayImage::from_plane(textured).into();
        let maps = FeatureMaps::new(&img);
        let on = maps.window(Rect::new(8, 8, 16, 16), 2);
        let off = maps.window(Rect::new(0, 0, 8, 8), 2);
        assert!(on.texture > 10.0 * (off.texture + 1e-9));
        assert!(on.stddev > 0.3);
    }

    #[test]
    fn recompute_matches_fresh_maps_across_modes() {
        let rgb: Image = RgbImage::from_fn(24, 20, |x, y| {
            (x as f32 / 24.0, y as f32 / 20.0, ((x * y) % 5) as f32 / 5.0)
        })
        .into();
        let gray: Image = GrayImage::from_fn(16, 16, |x, y| ((x + 2 * y) % 7) as f32 / 7.0).into();
        let mut scratch = FeatureScratch::new();
        let mut maps = FeatureMaps::new(&gray);
        // Reuse the same maps across mode and size changes.
        for img in [&rgb, &gray, &rgb] {
            maps.recompute(img, &mut scratch);
            let fresh = FeatureMaps::new(img);
            assert_eq!(maps.has_color(), fresh.has_color());
            let rect = Rect::new(2, 2, 8, 8);
            assert_eq!(maps.window(rect, 3), fresh.window(rect, 3));
            assert_eq!(maps.luma_stddev(rect), fresh.luma_stddev(rect));
        }
    }

    #[test]
    fn ring_at_image_border_is_clipped_not_panicking() {
        let img: Image = GrayImage::new(16, 16).into();
        let maps = FeatureMaps::new(&img);
        let f = maps.window(Rect::new(0, 0, 16, 16), 8);
        assert_eq!(f.contrast, 0.0); // ring fully clipped away
    }
}
