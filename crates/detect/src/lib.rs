//! # hirise-detect
//!
//! Stage-1 detection substrate: a real (non-neural) multi-scale object
//! detector plus a COCO-style mAP evaluator.
//!
//! The paper's stage-1 model is YOLOv8-Nano. What Table 2 actually tests is
//! *parity*: whether a detector trained/calibrated on digitally scaled
//! images performs identically on analog in-sensor scaled images, and how
//! accuracy scales with resolution. Any detector whose score is a smooth
//! function of pixel statistics exposes both effects, so this crate
//! implements a classical pipeline that is fully deterministic and fast:
//!
//! * [`integral::IntegralImage`] — O(1) window sums,
//! * [`features::FeatureMaps`] — luminance, variance, gradient-energy and
//!   colour-saturation maps,
//! * [`detector::Detector`] — multi-scale sliding windows scored by
//!   centre–surround contrast, texture energy and saturation, pruned by
//!   [`nms::nms`], with a threshold-calibration routine standing in for the
//!   paper's per-dataset training,
//! * [`eval`] — greedy IoU matching, precision/recall, 101-point
//!   interpolated average precision, per-class and mean AP,
//! * [`associate`] — allocation-free greedy IoU box association for the
//!   cross-frame ROI tracker in `hirise::temporal`.
//!
//! # Example
//!
//! ```
//! use hirise_detect::eval::{average_precision, Detection, GroundTruth};
//! use hirise_imaging::Rect;
//!
//! let gts = vec![vec![GroundTruth { class: 0, bbox: Rect::new(10, 10, 20, 20) }]];
//! let dets = vec![vec![Detection { class: 0, bbox: Rect::new(11, 11, 20, 20), score: 0.9 }]];
//! let ap = average_precision(&dets, &gts, 0, 0.5);
//! assert!(ap > 0.99);
//! ```

pub mod associate;
pub mod detector;
pub mod eval;
pub mod features;
pub mod integral;
pub mod nms;

pub use associate::{greedy_iou_associate, AssociateScratch};
pub use detector::{Detector, DetectorConfig, DetectorScratch};
pub use eval::{evaluate, Detection, EvalResult, GroundTruth};
pub use features::{FeatureMaps, FeatureScratch};
pub use integral::IntegralImage;
