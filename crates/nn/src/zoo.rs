//! Model zoo: sequential graphs calibrated to the memory footprints the
//! paper reports for its off-the-shelf models.
//!
//! | model | paper figure | this zoo |
//! |---|---|---|
//! | MCUNetV2 person detector (stage 1) | 337 kB peak SRAM / 296 kB flash | [`mcunet_v2_detector`] |
//! | MCUNetV2 classifier (stage 2) | 398 kB peak / ~1 MB flash at its native input; 6.4→168 kB peak across 14→112 px ROIs | [`mcunet_v2_classifier`] |
//! | MobileNetV2 classifier (stage 2) | 12.5→624 kB peak across 14→112 px ROIs | [`mobilenet_v2_classifier`] |
//! | YOLOv8n (stage-1 trainer baseline) | ~3.2 M parameters | [`yolov8n_like`] |
//!
//! Exact layer-by-layer replication of the originals is neither possible
//! (their checkpoints are not distributable) nor necessary: the experiments
//! consume **peak activation** and **flash** footprints as functions of the
//! input resolution. The topologies below use the same building blocks
//! (stride-2 stems, depthwise-separable bottlenecks, expansion layers) with
//! widths chosen so the planner's outputs land on the paper's numbers.

use crate::graph::ModelGraph;

fn conv_params(k: usize, ci: usize, co: usize) -> usize {
    k * k * ci * co + co
}

fn dw_params(k: usize, c: usize) -> usize {
    k * k * c + c
}

fn dense_params(i: usize, o: usize) -> usize {
    i * o + o
}

/// Pushes a depthwise-separable block `ci -> co` with optional stride-2
/// spatial reduction. Returns the new spatial size.
fn dw_block(
    g: &mut ModelGraph,
    name: &str,
    (h, w): (usize, usize),
    ci: usize,
    co: usize,
    stride: usize,
) -> (usize, usize) {
    let (oh, ow) = ((h / stride).max(1), (w / stride).max(1));
    g.push_op(format!("{name}_dw"), &[oh, ow, ci], dw_params(3, ci));
    g.push_op(format!("{name}_pw"), &[oh, ow, co], conv_params(1, ci, co));
    (oh, ow)
}

/// MCUNetV2-like person detector, the paper's stage-1 model.
///
/// Operates on the pooled **grayscale** stage-1 image (the paper's Fig. 6
/// case study keeps the stage-1 image under 114 kB, which requires gray at
/// 320×240). Calibrated to ≈337 kB peak activation and ≈296 kB int8 flash
/// at the native 320×240 input.
pub fn mcunet_v2_detector(width: usize, height: usize) -> ModelGraph {
    let mut g = ModelGraph::new("mcunet-v2-det", &[height, width, 1], 1);
    let (mut h, mut w) = (height / 2, width / 2);
    // Stride-2 stem sized so input + stem output ≈ 337 kB at 320×240 gray.
    g.push_op("stem_s2", &[h, w, 14], conv_params(3, 1, 14));
    (h, w) = dw_block(&mut g, "b1", (h, w), 14, 16, 2);
    (h, w) = dw_block(&mut g, "b2", (h, w), 16, 24, 2);
    (h, w) = dw_block(&mut g, "b3", (h, w), 24, 40, 2);
    (h, w) = dw_block(&mut g, "b4", (h, w), 40, 96, 1);
    (h, w) = dw_block(&mut g, "b5", (h, w), 96, 192, 1);
    (h, w) = dw_block(&mut g, "b6", (h, w), 192, 384, 1);
    (h, w) = dw_block(&mut g, "b6b", (h, w), 384, 320, 1);
    (h, w) = dw_block(&mut g, "b7", (h, w), 320, 192, 1);
    // Detection head: 5 values (box + objectness) × 3 anchors per cell.
    g.push_op("det_head", &[h, w, 15], conv_params(1, 192, 15));
    g
}

/// MCUNetV2-like image classifier, the paper's stage-2 model, at an
/// `input × input` RGB ROI. Peak activation is calibrated to the paper's
/// Table-3 "Peak Act" column (≈168 kB at 112 px) and flash to ≈1 MB int8.
pub fn mcunet_v2_classifier(input: usize) -> ModelGraph {
    let s = input.max(4);
    let mut g = ModelGraph::new("mcunet-v2-cls", &[s, s, 3], 1);
    // Full-resolution 11-channel stem: 3·s² + 11·s² ≈ 168 kB at s = 112.
    g.push_op("stem_s1", &[s, s, 11], conv_params(3, 3, 11));
    let (mut h, mut w) = dw_block(&mut g, "b1", (s, s), 11, 24, 2);
    (h, w) = dw_block(&mut g, "b2", (h, w), 24, 48, 2);
    (h, w) = dw_block(&mut g, "b3", (h, w), 48, 96, 2);
    (h, w) = dw_block(&mut g, "b4", (h, w), 96, 192, 2);
    (h, w) = dw_block(&mut g, "b5", (h, w), 192, 384, 1);
    (h, w) = dw_block(&mut g, "b6", (h, w), 384, 512, 1);
    let _ = dw_block(&mut g, "b7", (h, w), 512, 768, 1);
    g.push_op("gap", &[1, 1, 768], 0);
    g.push_op("fc1", &[384], dense_params(768, 384));
    g.push_op("fc2", &[7], dense_params(384, 7));
    g
}

/// MobileNetV2-like classifier at an `input × input` RGB ROI. The early
/// 6×-expansion bottleneck at half resolution dominates peak memory,
/// matching the paper's 12.5 kB (14 px) → 624 kB (112 px) column.
pub fn mobilenet_v2_classifier(input: usize) -> ModelGraph {
    let s = input.max(4);
    let mut g = ModelGraph::new("mobilenet-v2-cls", &[s, s, 3], 1);
    let (mut h, mut w) = ((s / 2).max(1), (s / 2).max(1));
    g.push_op("stem_s2", &[h, w, 32], conv_params(3, 3, 32));
    // First inverted residual: expand 32 -> 160 at half resolution — the
    // peak-memory hot spot (≈624 kB at 112 px input); the stride-2 lives
    // in the depthwise stage, as in the original network.
    g.push_op("b1_expand", &[h, w, 160], conv_params(1, 32, 160));
    (h, w) = ((h / 2).max(1), (w / 2).max(1));
    g.push_op("b1_dw_s2", &[h, w, 160], dw_params(3, 160));
    g.push_op("b1_project", &[h, w, 24], conv_params(1, 160, 24));
    // Standard MobileNetV2 width progression 24-32-64-96-160-320.
    for (i, (ci, co, stride)) in
        [(24usize, 32usize, 2usize), (32, 64, 2), (64, 96, 1), (96, 160, 2), (160, 320, 1)]
            .into_iter()
            .enumerate()
    {
        let t = 6;
        g.push_op(format!("b{}_expand", i + 2), &[h, w, ci * t], conv_params(1, ci, ci * t));
        let (nh, nw) = ((h / stride).max(1), (w / stride).max(1));
        g.push_op(format!("b{}_dw", i + 2), &[nh, nw, ci * t], dw_params(3, ci * t));
        g.push_op(format!("b{}_project", i + 2), &[nh, nw, co], conv_params(1, ci * t, co));
        (h, w) = (nh, nw);
    }
    g.push_op("conv_last", &[h, w, 1280], conv_params(1, 320, 1280));
    g.push_op("gap", &[1, 1, 1280], 0);
    g.push_op("fc", &[7], dense_params(1280, 7));
    g
}

/// YOLOv8n-like single-stage detector graph at `width × height` RGB input
/// (the model the paper fine-tunes for Table 2). Calibrated to ≈3.2 M
/// parameters.
pub fn yolov8n_like(width: usize, height: usize) -> ModelGraph {
    let mut g = ModelGraph::new("yolov8n-like", &[height, width, 3], 1);
    let (mut h, mut w) = (height, width);
    let mut ci = 3usize;
    for (stage, co) in [16usize, 32, 64, 128, 256].into_iter().enumerate() {
        (h, w) = ((h / 2).max(1), (w / 2).max(1));
        g.push_op(format!("stage{}_conv_s2", stage), &[h, w, co], conv_params(3, ci, co));
        g.push_op(
            format!("stage{}_csp", stage),
            &[h, w, co],
            2 * conv_params(3, co / 2, co / 2) + conv_params(1, co, co),
        );
        ci = co;
    }
    // Neck + heads at three scales (approximate parameter budget).
    g.push_op("neck_p4", &[(h * 2).max(1), (w * 2).max(1), 128], conv_params(3, 256 + 128, 128));
    g.push_op("neck_p3", &[(h * 4).max(1), (w * 4).max(1), 64], conv_params(3, 128 + 64, 64));
    g.push_op(
        "head_p3",
        &[(h * 4).max(1), (w * 4).max(1), 64],
        conv_params(3, 64, 64) + conv_params(1, 64, 64),
    );
    g.push_op(
        "head_p4",
        &[(h * 2).max(1), (w * 2).max(1), 128],
        conv_params(3, 128, 128) + conv_params(1, 128, 128),
    );
    g.push_op("head_p5", &[h, w, 256], conv_params(3, 256, 256) + conv_params(1, 256, 256));
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: f64 = 1024.0;

    #[test]
    fn detector_matches_paper_footprints() {
        let g = mcunet_v2_detector(320, 240);
        let peak_kb = g.peak_activation_bytes() as f64 / KB;
        let flash_kb = g.flash_bytes(1) as f64 / KB;
        // Paper: 337 kB peak SRAM, 296 kB flash.
        assert!((peak_kb - 337.0).abs() < 25.0, "peak {peak_kb} kB");
        assert!((flash_kb - 296.0).abs() < 60.0, "flash {flash_kb} kB");
    }

    #[test]
    fn mcunet_classifier_tracks_table3_peaks() {
        // Paper Table 3 Peak Act column for MCUNetV2.
        let expectations = [(14usize, 6.4f64), (56, 46.6), (112, 168.0)];
        for (roi, expected_kb) in expectations {
            let peak_kb = mcunet_v2_classifier(roi).peak_activation_bytes() as f64 / KB;
            // Same order of magnitude and within 2x at the small end,
            // tight at the large end where the stem dominates.
            let ratio = peak_kb / expected_kb;
            assert!(
                (0.4..=1.6).contains(&ratio),
                "mcunet@{roi}: {peak_kb:.1} kB vs paper {expected_kb} kB"
            );
        }
    }

    #[test]
    fn mobilenet_classifier_tracks_table3_peaks() {
        let expectations = [(14usize, 12.5f64), (56, 161.0), (112, 624.0)];
        for (roi, expected_kb) in expectations {
            let peak_kb = mobilenet_v2_classifier(roi).peak_activation_bytes() as f64 / KB;
            let ratio = peak_kb / expected_kb;
            assert!(
                (0.4..=1.6).contains(&ratio),
                "mobilenet@{roi}: {peak_kb:.1} kB vs paper {expected_kb} kB"
            );
        }
    }

    #[test]
    fn mobilenet_needs_more_sram_than_mcunet_everywhere() {
        for roi in [14, 28, 42, 56, 70, 84, 98, 112] {
            let mcu = mcunet_v2_classifier(roi).peak_activation_bytes();
            let mob = mobilenet_v2_classifier(roi).peak_activation_bytes();
            assert!(mob > mcu, "at roi {roi}: mobilenet {mob} <= mcunet {mcu}");
        }
    }

    #[test]
    fn peaks_grow_monotonically_with_roi() {
        let mut last = 0;
        for roi in [14, 28, 42, 56, 70, 84, 98, 112] {
            let peak = mcunet_v2_classifier(roi).peak_activation_bytes();
            assert!(peak > last, "non-monotone at {roi}");
            last = peak;
        }
    }

    #[test]
    fn yolov8n_parameter_budget() {
        let g = yolov8n_like(640, 640);
        let params_m = g.param_count() as f64 / 1e6;
        // YOLOv8n is ~3.2 M parameters.
        assert!((1.5..=5.0).contains(&params_m), "params {params_m} M");
    }

    #[test]
    fn classifier_flash_near_one_megabyte() {
        let g = mcunet_v2_classifier(112);
        let flash_mb = g.flash_bytes(1) as f64 / (1024.0 * 1024.0);
        assert!((0.6..=1.4).contains(&flash_mb), "flash {flash_mb} MB");
    }

    #[test]
    fn two_stage_fits_stm32h743_budget() {
        // The paper's deployment constraint: peak act of each model below
        // 512 kB and total flash below 2 MB.
        let stage1 = mcunet_v2_detector(320, 240);
        let stage2 = mcunet_v2_classifier(112);
        assert!(stage1.peak_activation_bytes() < 512 * 1024);
        assert!(stage2.peak_activation_bytes() < 512 * 1024);
        let total_flash = stage1.flash_bytes(1) + stage2.flash_bytes(1);
        assert!(total_flash < 2 * 1024 * 1024, "flash {total_flash}");
    }

    #[test]
    fn tiny_inputs_do_not_panic() {
        for roi in [1usize, 2, 4, 7] {
            let _ = mcunet_v2_classifier(roi).peak_activation_bytes();
            let _ = mobilenet_v2_classifier(roi).peak_activation_bytes();
        }
    }
}
