//! TFLite-Micro-style arena memory planner.
//!
//! Embedded interpreters execute a model's ops in a fixed order and place
//! every activation tensor at a static offset inside one scratch arena.
//! Two tensors may share memory iff their lifetimes (first-use..last-use op
//! index) do not overlap. The planner here reproduces TFLM's
//! `GreedyMemoryPlanner`: tensors are placed in decreasing size order, each
//! at the lowest offset that does not collide with an already-placed,
//! lifetime-overlapping tensor. The arena high-water mark is the **peak
//! SRAM** figure the paper reports in Fig. 6 and Table 3.

/// One activation tensor's size and lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorInfo {
    /// Stable identifier (index into the graph's tensor list).
    pub id: usize,
    /// Size in bytes.
    pub size_bytes: u64,
    /// Index of the op that produces the tensor (or 0 for model inputs).
    pub first_use: usize,
    /// Index of the last op that consumes it.
    pub last_use: usize,
}

impl TensorInfo {
    fn overlaps(&self, other: &TensorInfo) -> bool {
        self.first_use <= other.last_use && other.first_use <= self.last_use
    }
}

/// A computed arena layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaPlan {
    /// `(tensor id, offset)` assignments, in placement order.
    pub offsets: Vec<(usize, u64)>,
    /// Arena high-water mark in bytes — the peak SRAM requirement.
    pub peak_bytes: u64,
}

impl ArenaPlan {
    /// Offset assigned to a tensor id, if it was planned.
    pub fn offset_of(&self, id: usize) -> Option<u64> {
        self.offsets.iter().find(|(t, _)| *t == id).map(|(_, o)| *o)
    }
}

/// Greedy-by-size arena planning (TFLM's algorithm).
///
/// Zero-sized tensors are skipped. The result is deterministic: ties in
/// size break by tensor id.
pub fn plan_greedy(tensors: &[TensorInfo]) -> ArenaPlan {
    let mut order: Vec<&TensorInfo> = tensors.iter().filter(|t| t.size_bytes > 0).collect();
    order.sort_by(|a, b| b.size_bytes.cmp(&a.size_bytes).then(a.id.cmp(&b.id)));

    let mut placed: Vec<(TensorInfo, u64)> = Vec::with_capacity(order.len());
    let mut peak = 0u64;
    for t in order {
        // Collect forbidden intervals from lifetime-overlapping tensors.
        let mut intervals: Vec<(u64, u64)> = placed
            .iter()
            .filter(|(p, _)| p.overlaps(t))
            .map(|(p, off)| (*off, off + p.size_bytes))
            .collect();
        intervals.sort_unstable();
        // First-fit scan over the gaps.
        let mut offset = 0u64;
        for (lo, hi) in intervals {
            if offset + t.size_bytes <= lo {
                break;
            }
            offset = offset.max(hi);
        }
        peak = peak.max(offset + t.size_bytes);
        placed.push((*t, offset));
    }
    placed.sort_by_key(|(t, _)| t.id);
    ArenaPlan { offsets: placed.into_iter().map(|(t, o)| (t.id, o)).collect(), peak_bytes: peak }
}

/// Peak without any reuse: the sum of all tensor sizes. This is what a
/// naive allocator would need; the ablation bench contrasts it with the
/// greedy plan.
pub fn naive_peak(tensors: &[TensorInfo]) -> u64 {
    tensors.iter().map(|t| t.size_bytes).sum()
}

/// Lower bound: the largest sum of simultaneously-live tensor sizes over
/// the execution order. No planner can do better.
pub fn liveness_lower_bound(tensors: &[TensorInfo]) -> u64 {
    let max_op = tensors.iter().map(|t| t.last_use).max().unwrap_or(0);
    let mut best = 0u64;
    for op in 0..=max_op {
        let live: u64 = tensors
            .iter()
            .filter(|t| t.first_use <= op && op <= t.last_use)
            .map(|t| t.size_bytes)
            .sum();
        best = best.max(live);
    }
    best
}

/// Validates that a plan never maps two lifetime-overlapping tensors to
/// overlapping byte ranges (test/debug helper; the planner upholds this by
/// construction).
pub fn plan_is_valid(tensors: &[TensorInfo], plan: &ArenaPlan) -> bool {
    let lookup = |id: usize| tensors.iter().find(|t| t.id == id);
    for (i, (id_a, off_a)) in plan.offsets.iter().enumerate() {
        let Some(a) = lookup(*id_a) else { return false };
        for (id_b, off_b) in plan.offsets.iter().skip(i + 1) {
            let Some(b) = lookup(*id_b) else { return false };
            if !a.overlaps(b) {
                continue;
            }
            let disjoint = off_a + a.size_bytes <= *off_b || off_b + b.size_bytes <= *off_a;
            if !disjoint {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: usize, size: u64, first: usize, last: usize) -> TensorInfo {
        TensorInfo { id, size_bytes: size, first_use: first, last_use: last }
    }

    #[test]
    fn sequential_chain_reuses_memory() {
        // op0: A -> B, op1: B -> C; A and C never coexist.
        let tensors = [t(0, 100, 0, 0), t(1, 80, 0, 1), t(2, 100, 1, 1)];
        let plan = plan_greedy(&tensors);
        assert!(plan_is_valid(&tensors, &plan));
        // A and C can share; peak = 100 + 80.
        assert_eq!(plan.peak_bytes, 180);
        assert_eq!(naive_peak(&tensors), 280);
        assert_eq!(liveness_lower_bound(&tensors), 180);
    }

    #[test]
    fn all_overlapping_cannot_share() {
        let tensors = [t(0, 10, 0, 5), t(1, 20, 0, 5), t(2, 30, 0, 5)];
        let plan = plan_greedy(&tensors);
        assert!(plan_is_valid(&tensors, &plan));
        assert_eq!(plan.peak_bytes, 60);
    }

    #[test]
    fn disjoint_lifetimes_all_share() {
        let tensors = [t(0, 50, 0, 0), t(1, 40, 1, 1), t(2, 30, 2, 2)];
        let plan = plan_greedy(&tensors);
        assert!(plan_is_valid(&tensors, &plan));
        assert_eq!(plan.peak_bytes, 50);
        for (_, off) in &plan.offsets {
            assert_eq!(*off, 0);
        }
    }

    #[test]
    fn gap_filling_first_fit() {
        // Big tensor (0..2), small early (0..0), small late (2..2): the two
        // small ones overlap the big one but not each other.
        let tensors = [t(0, 100, 0, 2), t(1, 10, 0, 0), t(2, 10, 2, 2)];
        let plan = plan_greedy(&tensors);
        assert!(plan_is_valid(&tensors, &plan));
        // Small tensors share the region above the big one.
        assert_eq!(plan.peak_bytes, 110);
        assert_eq!(plan.offset_of(1), plan.offset_of(2));
    }

    #[test]
    fn zero_sized_tensors_skipped() {
        let tensors = [t(0, 0, 0, 5), t(1, 10, 0, 1)];
        let plan = plan_greedy(&tensors);
        assert_eq!(plan.offsets.len(), 1);
        assert_eq!(plan.peak_bytes, 10);
    }

    #[test]
    fn empty_input() {
        let plan = plan_greedy(&[]);
        assert_eq!(plan.peak_bytes, 0);
        assert!(plan.offsets.is_empty());
        assert_eq!(naive_peak(&[]), 0);
        assert_eq!(liveness_lower_bound(&[]), 0);
    }

    #[test]
    fn plan_never_below_lower_bound_random() {
        // Pseudo-random lifetimes: greedy must stay between the liveness
        // lower bound and the naive sum.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state
        };
        for _ in 0..20 {
            let tensors: Vec<TensorInfo> = (0..12)
                .map(|id| {
                    let a = (next() % 10) as usize;
                    let b = (next() % 10) as usize;
                    t(id, 1 + next() % 100, a.min(b), a.max(b))
                })
                .collect();
            let plan = plan_greedy(&tensors);
            assert!(plan_is_valid(&tensors, &plan), "invalid plan");
            assert!(plan.peak_bytes >= liveness_lower_bound(&tensors));
            assert!(plan.peak_bytes <= naive_peak(&tensors));
        }
    }

    #[test]
    fn validator_catches_bad_plans() {
        let tensors = [t(0, 10, 0, 1), t(1, 10, 0, 1)];
        let bad = ArenaPlan { offsets: vec![(0, 0), (1, 5)], peak_bytes: 15 };
        assert!(!plan_is_valid(&tensors, &bad));
        let unknown = ArenaPlan { offsets: vec![(9, 0)], peak_bytes: 10 };
        assert!(!plan_is_valid(&tensors, &unknown));
    }
}
