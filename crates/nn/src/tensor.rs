//! A minimal dense `f32` tensor in HWC layout (height, width, channels).

use crate::{NnError, Result};

/// A dense `f32` tensor. Rank-3 `[h, w, c]` for feature maps and rank-1
/// `[n]` for vectors; the layout is row-major with channels innermost.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty() && shape.iter().all(|&d| d > 0), "bad shape {shape:?}");
        let numel = shape.iter().product();
        Self { shape: shape.to_vec(), data: vec![0.0; numel] }
    }

    /// Builds a tensor from data.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the element count disagrees.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self> {
        let numel: usize = shape.iter().product();
        if numel != data.len() || shape.is_empty() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{numel} elements for shape {shape:?}"),
                actual: format!("{} elements", data.len()),
            });
        }
        Ok(Self { shape: shape.to_vec(), data })
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Flat read access.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat write access.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// HWC indexed read for rank-3 tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-3 or the index is out of bounds.
    #[inline]
    pub fn at(&self, y: usize, x: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 3);
        let (_h, w, ch) = (self.shape[0], self.shape[1], self.shape[2]);
        self.data[(y * w + x) * ch + c]
    }

    /// HWC indexed write for rank-3 tensors.
    ///
    /// # Panics
    ///
    /// See [`Tensor::at`].
    #[inline]
    pub fn set(&mut self, y: usize, x: usize, c: usize, v: f32) {
        debug_assert_eq!(self.shape.len(), 3);
        let (_h, w, ch) = (self.shape[0], self.shape[1], self.shape[2]);
        self.data[(y * w + x) * ch + c] = v;
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if element counts differ.
    pub fn reshaped(mut self, shape: &[usize]) -> Result<Self> {
        let numel: usize = shape.iter().product();
        if numel != self.data.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} elements", self.data.len()),
                actual: format!("shape {shape:?} = {numel}"),
            });
        }
        self.shape = shape.to_vec();
        Ok(self)
    }

    /// Index of the maximum element (ties break to the lower index).
    pub fn argmax(&self) -> usize {
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_numel() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.numel(), 24);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "bad shape")]
    fn zero_dim_panics() {
        Tensor::zeros(&[2, 0, 3]);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Tensor::from_vec(&[2, 2], vec![0.0; 3]).is_err());
        assert!(Tensor::from_vec(&[2, 2], vec![0.0; 4]).is_ok());
        assert!(Tensor::from_vec(&[], vec![]).is_err());
    }

    #[test]
    fn hwc_indexing() {
        let mut t = Tensor::zeros(&[2, 3, 2]);
        t.set(1, 2, 1, 7.0);
        assert_eq!(t.at(1, 2, 1), 7.0);
        // Channel-innermost layout: flat index (1*3+2)*2+1 = 11.
        assert_eq!(t.as_slice()[11], 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|v| v as f32).collect()).unwrap();
        let r = t.reshaped(&[6]).unwrap();
        assert_eq!(r.shape(), &[6]);
        assert_eq!(r.as_slice()[4], 4.0);
        assert!(r.reshaped(&[7]).is_err());
    }

    #[test]
    fn argmax_ties_and_basics() {
        let t = Tensor::from_vec(&[4], vec![0.1, 0.9, 0.9, 0.2]).unwrap();
        assert_eq!(t.argmax(), 1);
        let z = Tensor::zeros(&[3]);
        assert_eq!(z.argmax(), 0);
    }
}
