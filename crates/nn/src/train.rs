//! A small trainable classifier: MLP with softmax cross-entropy and SGD.
//!
//! Used as the stage-2 expression-recognition model for the Table-3
//! accuracy column: for each ROI size, the patch is flattened into the MLP
//! input. Backpropagation is implemented exactly (no autograd shortcuts),
//! and training is deterministic given the RNG seed.
//!
//! The capacity knob (hidden width) stands in for the paper's model choice:
//! the "MobileNetV2" configuration uses a wider hidden layer than the
//! "MCUNetV2" one and should score higher at every ROI size.

use rand::Rng;

use crate::{NnError, Result};

/// A two-layer MLP classifier (`input -> hidden -> classes`).
#[derive(Debug, Clone)]
pub struct Mlp {
    input: usize,
    hidden: usize,
    classes: usize,
    w1: Vec<f32>,
    b1: Vec<f32>,
    w2: Vec<f32>,
    b2: Vec<f32>,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Full passes over the training set.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to 10 %).
    pub learning_rate: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 30, learning_rate: 0.05, weight_decay: 1e-4 }
    }
}

impl Mlp {
    /// Creates a randomly initialised MLP.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] on zero dimensions.
    pub fn new<R: Rng + ?Sized>(
        input: usize,
        hidden: usize,
        classes: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if input == 0 || hidden == 0 || classes < 2 {
            return Err(NnError::InvalidLayer {
                layer: "mlp",
                reason: format!("input={input} hidden={hidden} classes={classes}"),
            });
        }
        let s1 = (2.0 / input as f32).sqrt();
        let s2 = (2.0 / hidden as f32).sqrt();
        Ok(Self {
            input,
            hidden,
            classes,
            w1: (0..input * hidden).map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * s1).collect(),
            b1: vec![0.0; hidden],
            w2: (0..hidden * classes).map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * s2).collect(),
            b2: vec![0.0; classes],
        })
    }

    /// Input feature count.
    pub fn input_features(&self) -> usize {
        self.input
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.w1.len() + self.b1.len() + self.w2.len() + self.b2.len()
    }

    fn forward_cached(&self, x: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let mut h = vec![0.0f32; self.hidden];
        for (j, hj) in h.iter_mut().enumerate() {
            let mut acc = self.b1[j];
            for (i, &xi) in x.iter().enumerate() {
                acc += xi * self.w1[i * self.hidden + j];
            }
            *hj = acc.max(0.0); // ReLU
        }
        let mut logits = vec![0.0f32; self.classes];
        for (k, lk) in logits.iter_mut().enumerate() {
            let mut acc = self.b2[k];
            for (j, &hj) in h.iter().enumerate() {
                acc += hj * self.w2[j * self.classes + k];
            }
            *lk = acc;
        }
        (h, logits)
    }

    /// Class probabilities for one sample.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for wrong feature counts.
    pub fn predict_proba(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.input {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} features", self.input),
                actual: format!("{}", x.len()),
            });
        }
        let (_, logits) = self.forward_cached(x);
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        Ok(exps.into_iter().map(|e| e / sum).collect())
    }

    /// Predicted class for one sample.
    ///
    /// # Errors
    ///
    /// See [`Mlp::predict_proba`].
    pub fn predict(&self, x: &[f32]) -> Result<usize> {
        let p = self.predict_proba(x)?;
        // `total_cmp` keeps the argmax total when a degenerate network
        // emits NaN probabilities (the old `partial_cmp().expect()`
        // panicked on the first NaN instead of returning *a* class).
        Ok(p.iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    /// Trains with plain SGD on softmax cross-entropy; sample order is
    /// reshuffled (Fisher–Yates with `rng`) every epoch. Returns the final
    /// epoch's mean training loss.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidTrainingData`] for empty or inconsistent
    /// data or out-of-range labels.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        samples: &[(Vec<f32>, usize)],
        config: &TrainConfig,
        rng: &mut R,
    ) -> Result<f32> {
        if samples.is_empty() {
            return Err(NnError::InvalidTrainingData { reason: "no samples".into() });
        }
        for (x, y) in samples {
            if x.len() != self.input {
                return Err(NnError::InvalidTrainingData {
                    reason: format!("sample has {} features, expected {}", x.len(), self.input),
                });
            }
            if *y >= self.classes {
                return Err(NnError::InvalidTrainingData {
                    reason: format!("label {y} out of range (classes {})", self.classes),
                });
            }
        }

        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut last_loss = 0.0f32;
        for epoch in 0..config.epochs {
            // Linear LR decay to 10 % of the initial rate.
            let progress = epoch as f32 / config.epochs.max(1) as f32;
            let lr = config.learning_rate * (1.0 - 0.9 * progress);
            // Fisher–Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut loss_acc = 0.0f32;
            for &idx in &order {
                let (x, y) = &samples[idx];
                let (h, logits) = self.forward_cached(x);
                // Softmax + cross-entropy gradient: p - onehot(y).
                let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
                let sum: f32 = exps.iter().sum();
                let probs: Vec<f32> = exps.iter().map(|e| e / sum).collect();
                loss_acc += -(probs[*y].max(1e-12)).ln();
                let dlogits: Vec<f32> = probs
                    .iter()
                    .enumerate()
                    .map(|(k, &p)| p - if k == *y { 1.0 } else { 0.0 })
                    .collect();
                // Backprop into layer 2.
                let mut dh = vec![0.0f32; self.hidden];
                for (j, dhj) in dh.iter_mut().enumerate() {
                    for (k, &dl) in dlogits.iter().enumerate() {
                        *dhj += dl * self.w2[j * self.classes + k];
                    }
                }
                for (j, &hj) in h.iter().enumerate() {
                    for (k, &dl) in dlogits.iter().enumerate() {
                        let w = &mut self.w2[j * self.classes + k];
                        *w -= lr * (dl * hj + config.weight_decay * *w);
                    }
                }
                for (k, &dl) in dlogits.iter().enumerate() {
                    self.b2[k] -= lr * dl;
                }
                // ReLU gate then layer 1.
                for (j, d) in dh.iter_mut().enumerate() {
                    if h[j] <= 0.0 {
                        *d = 0.0;
                    }
                }
                for (i, &xi) in x.iter().enumerate() {
                    if xi == 0.0 {
                        // Gradient contribution is zero; skip the row.
                        continue;
                    }
                    for (j, &dj) in dh.iter().enumerate() {
                        let w = &mut self.w1[i * self.hidden + j];
                        *w -= lr * (dj * xi + config.weight_decay * *w);
                    }
                }
                for (j, &dj) in dh.iter().enumerate() {
                    self.b1[j] -= lr * dj;
                }
            }
            last_loss = loss_acc / samples.len() as f32;
        }
        Ok(last_loss)
    }

    /// Classification accuracy on a labelled set.
    ///
    /// # Errors
    ///
    /// See [`Mlp::predict`].
    pub fn accuracy(&self, samples: &[(Vec<f32>, usize)]) -> Result<f64> {
        if samples.is_empty() {
            return Err(NnError::InvalidTrainingData { reason: "no samples".into() });
        }
        let mut correct = 0usize;
        for (x, y) in samples {
            if self.predict(x)? == *y {
                correct += 1;
            }
        }
        Ok(correct as f64 / samples.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two Gaussian-ish blobs in 2-D, linearly separable.
    fn blobs(n: usize, rng: &mut StdRng) -> Vec<(Vec<f32>, usize)> {
        (0..n)
            .map(|i| {
                let class = i % 2;
                let cx = if class == 0 { -1.0 } else { 1.0 };
                let x = cx + (rng.gen::<f32>() - 0.5) * 0.8;
                let y = cx + (rng.gen::<f32>() - 0.5) * 0.8;
                (vec![x, y], class)
            })
            .collect()
    }

    #[test]
    fn predict_survives_nan_features() {
        // A NaN feature propagates NaN through every logit; the argmax
        // must still return *a* class instead of panicking (the old
        // `partial_cmp().expect("finite")` killed the caller).
        let mut rng = StdRng::seed_from_u64(11);
        let mlp = Mlp::new(2, 4, 3, &mut rng).unwrap();
        let class = mlp.predict(&[f32::NAN, 0.25]).unwrap();
        assert!(class < 3, "predicted class {class} out of range");
    }

    #[test]
    fn rejects_bad_construction() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(Mlp::new(0, 4, 2, &mut rng).is_err());
        assert!(Mlp::new(4, 0, 2, &mut rng).is_err());
        assert!(Mlp::new(4, 4, 1, &mut rng).is_err());
    }

    #[test]
    fn learns_linearly_separable_blobs() {
        let mut rng = StdRng::seed_from_u64(7);
        let train = blobs(200, &mut rng);
        let test = blobs(100, &mut rng);
        let mut mlp = Mlp::new(2, 8, 2, &mut rng).unwrap();
        let before = mlp.accuracy(&test).unwrap();
        mlp.train(&train, &TrainConfig::default(), &mut rng).unwrap();
        let after = mlp.accuracy(&test).unwrap();
        assert!(after > 0.95, "accuracy {after} (was {before})");
    }

    #[test]
    fn learns_xor_with_hidden_layer() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut data = Vec::new();
        for _ in 0..100 {
            for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                let label = ((a as i32) ^ (b as i32)) as usize;
                let jitter = |v: f32, r: &mut StdRng| v + (r.gen::<f32>() - 0.5) * 0.1;
                data.push((vec![jitter(a, &mut rng), jitter(b, &mut rng)], label));
            }
        }
        let mut mlp = Mlp::new(2, 16, 2, &mut rng).unwrap();
        let cfg = TrainConfig { epochs: 60, learning_rate: 0.1, weight_decay: 0.0 };
        mlp.train(&data, &cfg, &mut rng).unwrap();
        assert!(mlp.accuracy(&data).unwrap() > 0.95);
    }

    #[test]
    fn loss_decreases_with_training() {
        let mut rng = StdRng::seed_from_u64(11);
        let train = blobs(100, &mut rng);
        let mut mlp = Mlp::new(2, 8, 2, &mut rng).unwrap();
        let short = TrainConfig { epochs: 1, ..TrainConfig::default() };
        let loss1 = mlp.train(&train, &short, &mut rng).unwrap();
        let long = TrainConfig { epochs: 20, ..TrainConfig::default() };
        let loss2 = mlp.train(&train, &long, &mut rng).unwrap();
        assert!(loss2 < loss1, "loss did not decrease: {loss1} -> {loss2}");
    }

    #[test]
    fn wider_hidden_layer_helps_hard_problems() {
        // A noisy radial problem where capacity matters.
        let mut rng = StdRng::seed_from_u64(5);
        let ring = |n: usize, rng: &mut StdRng| -> Vec<(Vec<f32>, usize)> {
            (0..n)
                .map(|_| {
                    let a = rng.gen::<f32>() * std::f32::consts::TAU;
                    let class = rng.gen_range(0..2usize);
                    let r = if class == 0 { 0.5 } else { 1.0 } + (rng.gen::<f32>() - 0.5) * 0.3;
                    (vec![r * a.cos(), r * a.sin()], class)
                })
                .collect()
        };
        let train = ring(300, &mut rng);
        let test = ring(150, &mut rng);
        let cfg = TrainConfig { epochs: 40, learning_rate: 0.08, weight_decay: 0.0 };
        let mut narrow = Mlp::new(2, 2, 2, &mut StdRng::seed_from_u64(1)).unwrap();
        narrow.train(&train, &cfg, &mut StdRng::seed_from_u64(2)).unwrap();
        let mut wide = Mlp::new(2, 32, 2, &mut StdRng::seed_from_u64(1)).unwrap();
        wide.train(&train, &cfg, &mut StdRng::seed_from_u64(2)).unwrap();
        let (a_narrow, a_wide) = (narrow.accuracy(&test).unwrap(), wide.accuracy(&test).unwrap());
        assert!(a_wide >= a_narrow, "wide {a_wide} should not lose to narrow {a_narrow}");
    }

    #[test]
    fn validates_training_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mlp = Mlp::new(2, 4, 2, &mut rng).unwrap();
        assert!(mlp.train(&[], &TrainConfig::default(), &mut rng).is_err());
        let bad_dim = vec![(vec![1.0, 2.0, 3.0], 0usize)];
        assert!(mlp.train(&bad_dim, &TrainConfig::default(), &mut rng).is_err());
        let bad_label = vec![(vec![1.0, 2.0], 5usize)];
        assert!(mlp.train(&bad_label, &TrainConfig::default(), &mut rng).is_err());
        assert!(mlp.predict(&[1.0]).is_err());
        assert!(mlp.accuracy(&[]).is_err());
    }

    #[test]
    fn deterministic_given_seeds() {
        let data = blobs(50, &mut StdRng::seed_from_u64(9));
        let run = || {
            let mut mlp = Mlp::new(2, 8, 2, &mut StdRng::seed_from_u64(1)).unwrap();
            mlp.train(&data, &TrainConfig::default(), &mut StdRng::seed_from_u64(2)).unwrap();
            mlp.predict_proba(&[0.3, -0.2]).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn param_count() {
        let mlp = Mlp::new(10, 4, 3, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(mlp.param_count(), 10 * 4 + 4 + 4 * 3 + 3);
        assert_eq!(mlp.input_features(), 10);
    }
}
