//! # hirise-nn
//!
//! Tiny-ML substrate: the pieces of an embedded inference stack that the
//! HiRISE memory and accuracy experiments need.
//!
//! * [`tensor`] — a minimal HWC `f32` tensor,
//! * [`layers`] — forward implementations of the layer types used by
//!   MCUNet/MobileNet-class models (conv, depthwise, pooling, dense,
//!   activations),
//! * [`graph`] — sequential model graphs with per-op activation sizes and
//!   parameter (flash) accounting,
//! * [`planner`] — a TFLite-Micro-style **arena memory planner**: tensor
//!   lifetimes from the execution order, greedy-by-size offset assignment,
//!   peak-SRAM reporting. This is the machinery behind the paper's Fig. 6
//!   and the SRAM columns of Table 3,
//! * [`zoo`] — model definitions calibrated to the paper's reported
//!   footprints (MCUNetV2 person detector: 337 kB peak / 296 kB flash;
//!   MCUNetV2 classifier: 398 kB / 1 MB; MobileNetV2; YOLOv8n-like
//!   parameter budget),
//! * [`quant`] — int8 affine quantisation,
//! * [`train`] — a backprop-trained MLP classifier (SGD, softmax
//!   cross-entropy) used as the stage-2 expression-recognition model for
//!   Table 3's accuracy column.
//!
//! # Example: peak SRAM of a model
//!
//! ```
//! use hirise_nn::zoo;
//!
//! let model = zoo::mcunet_v2_classifier(112);
//! let peak = model.peak_activation_bytes();
//! assert!(peak > 0);
//! ```

pub mod graph;
pub mod layers;
pub mod planner;
pub mod quant;
pub mod sequential;
pub mod tensor;
pub mod train;
pub mod zoo;

mod error;

pub use error::NnError;
pub use graph::ModelGraph;
pub use planner::{plan_greedy, ArenaPlan, TensorInfo};
pub use sequential::Sequential;
pub use tensor::Tensor;
pub use train::Mlp;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
