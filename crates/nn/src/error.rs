use std::error::Error;
use std::fmt;

/// Error type for the tiny-ML substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// Tensor shapes are incompatible with the requested operation.
    ShapeMismatch {
        /// What was expected (formatted shape or constraint).
        expected: String,
        /// What was provided.
        actual: String,
    },
    /// A layer hyper-parameter is invalid (zero kernel, zero stride, ...).
    InvalidLayer {
        /// Layer kind.
        layer: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// Training data was empty or inconsistently sized.
    InvalidTrainingData {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            NnError::InvalidLayer { layer, reason } => {
                write!(f, "invalid {layer} layer: {reason}")
            }
            NnError::InvalidTrainingData { reason } => {
                write!(f, "invalid training data: {reason}")
            }
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_nonempty() {
        let errs = [
            NnError::ShapeMismatch { expected: "[1,2]".into(), actual: "[3]".into() },
            NnError::InvalidLayer { layer: "conv2d", reason: "stride 0".into() },
            NnError::InvalidTrainingData { reason: "empty".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
