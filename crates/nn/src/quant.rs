//! Affine int8 quantisation (the deployment format whose 1 byte/element
//! footprint underlies all memory accounting).

use crate::tensor::Tensor;

/// Affine quantisation parameters: `real = scale * (q - zero_point)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Step size.
    pub scale: f32,
    /// Zero offset in quantised space.
    pub zero_point: i32,
}

impl QuantParams {
    /// Chooses parameters covering `lo..=hi` with int8 (`-128..=127`),
    /// guaranteeing that 0.0 is exactly representable (required so zero
    /// padding stays exact, as in TFLite).
    pub fn from_range(lo: f32, hi: f32) -> Self {
        let lo = lo.min(0.0);
        let hi = hi.max(0.0);
        let scale = if hi > lo { (hi - lo) / 255.0 } else { 1.0 };
        let zero_point = (-128.0 - lo / scale).round() as i32;
        Self { scale, zero_point: zero_point.clamp(-128, 127) }
    }

    /// Quantises one value.
    pub fn quantize(&self, v: f32) -> i8 {
        ((v / self.scale).round() as i32 + self.zero_point).clamp(-128, 127) as i8
    }

    /// Dequantises one value.
    pub fn dequantize(&self, q: i8) -> f32 {
        self.scale * (q as i32 - self.zero_point) as f32
    }
}

/// A quantised tensor (shape + int8 payload + params).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    shape: Vec<usize>,
    data: Vec<i8>,
    params: QuantParams,
}

impl QuantTensor {
    /// Quantises a float tensor with range-derived parameters.
    pub fn quantize(t: &Tensor) -> Self {
        let lo = t.as_slice().iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = t.as_slice().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let params = QuantParams::from_range(lo, hi);
        Self {
            shape: t.shape().to_vec(),
            data: t.as_slice().iter().map(|&v| params.quantize(v)).collect(),
            params,
        }
    }

    /// Reconstructs the float tensor.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            &self.shape,
            self.data.iter().map(|&q| self.params.dequantize(q)).collect(),
        )
        .expect("shape preserved")
    }

    /// Quantisation parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Storage footprint in bytes (1 per element).
    pub fn storage_bytes(&self) -> u64 {
        self.data.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_exact() {
        let p = QuantParams::from_range(-0.37, 1.21);
        assert_eq!(p.dequantize(p.quantize(0.0)), 0.0);
    }

    #[test]
    fn roundtrip_error_below_half_step() {
        let p = QuantParams::from_range(-1.0, 1.0);
        for i in 0..100 {
            let v = -1.0 + 2.0 * i as f32 / 99.0;
            let err = (p.dequantize(p.quantize(v)) - v).abs();
            assert!(err <= p.scale / 2.0 + 1e-6, "err {err} at {v}");
        }
    }

    #[test]
    fn clamps_outside_range() {
        let p = QuantParams::from_range(0.0, 1.0);
        assert_eq!(p.quantize(100.0), 127);
        assert_eq!(p.quantize(-100.0), -128);
    }

    #[test]
    fn degenerate_range_handled() {
        let p = QuantParams::from_range(0.5, 0.5);
        let q = p.quantize(0.5);
        assert!((p.dequantize(q) - 0.5).abs() <= 1.0);
    }

    #[test]
    fn tensor_roundtrip() {
        let t = Tensor::from_vec(&[2, 2], vec![-0.5, 0.0, 0.25, 0.9]).unwrap();
        let q = QuantTensor::quantize(&t);
        assert_eq!(q.storage_bytes(), 4);
        let back = q.dequantize();
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= q.params().scale);
        }
    }

    #[test]
    fn int8_halves_then_quarters_storage_vs_f32() {
        let t = Tensor::zeros(&[10, 10, 3]);
        let q = QuantTensor::quantize(&t);
        assert_eq!(q.storage_bytes() * 4, (t.numel() * 4) as u64);
    }
}
