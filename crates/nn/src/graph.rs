//! Sequential model graphs for memory and parameter accounting.
//!
//! A [`ModelGraph`] records, per op, the activation tensor it produces and
//! the parameters it owns. It feeds the arena planner with tensor
//! lifetimes derived from the sequential execution order, yielding the
//! peak-SRAM and flash numbers the paper reports for its stage-1/stage-2
//! models.

use crate::planner::{plan_greedy, ArenaPlan, TensorInfo};

/// Descriptor of one op in a sequential graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpInfo {
    /// Human-readable op name.
    pub name: String,
    /// Output activation shape (HWC or flat).
    pub output_shape: Vec<usize>,
    /// Bytes per activation element (1 for int8 deployment, 4 for f32).
    pub bytes_per_elem: u32,
    /// Parameter count of this op.
    pub params: usize,
}

impl OpInfo {
    /// Output activation size in bytes.
    pub fn output_bytes(&self) -> u64 {
        self.output_shape.iter().product::<usize>() as u64 * self.bytes_per_elem as u64
    }
}

/// A sequential model graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelGraph {
    name: String,
    input_shape: Vec<usize>,
    input_bytes_per_elem: u32,
    ops: Vec<OpInfo>,
}

impl ModelGraph {
    /// Starts a graph with the model input tensor.
    pub fn new(name: impl Into<String>, input_shape: &[usize], bytes_per_elem: u32) -> Self {
        Self {
            name: name.into(),
            input_shape: input_shape.to_vec(),
            input_bytes_per_elem: bytes_per_elem,
            ops: Vec::new(),
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Model input shape.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Appends an op producing `output_shape` with `params` parameters,
    /// using the same activation width as the input.
    pub fn push_op(&mut self, name: impl Into<String>, output_shape: &[usize], params: usize) {
        self.ops.push(OpInfo {
            name: name.into(),
            output_shape: output_shape.to_vec(),
            bytes_per_elem: self.input_bytes_per_elem,
            params,
        });
    }

    /// Ops in execution order.
    pub fn ops(&self) -> &[OpInfo] {
        &self.ops
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.ops.iter().map(|o| o.params).sum()
    }

    /// Flash footprint: parameters at `bytes_per_param` bytes each
    /// (1 for int8 deployment).
    pub fn flash_bytes(&self, bytes_per_param: u32) -> u64 {
        self.param_count() as u64 * bytes_per_param as u64
    }

    /// Tensor lifetime table for the arena planner. Tensor 0 is the model
    /// input (live from op 0 until its consumer, op 0); tensor `i + 1` is
    /// the output of op `i`, live from op `i` until op `i + 1` (or the end
    /// for the final output).
    pub fn tensor_lifetimes(&self) -> Vec<TensorInfo> {
        let n = self.ops.len();
        let mut tensors = Vec::with_capacity(n + 1);
        let input_bytes =
            self.input_shape.iter().product::<usize>() as u64 * self.input_bytes_per_elem as u64;
        tensors.push(TensorInfo { id: 0, size_bytes: input_bytes, first_use: 0, last_use: 0 });
        for (i, op) in self.ops.iter().enumerate() {
            tensors.push(TensorInfo {
                id: i + 1,
                size_bytes: op.output_bytes(),
                first_use: i,
                last_use: (i + 1).min(n.saturating_sub(1)),
            });
        }
        tensors
    }

    /// Plans the activation arena.
    pub fn plan(&self) -> ArenaPlan {
        plan_greedy(&self.tensor_lifetimes())
    }

    /// Peak activation SRAM in bytes (arena high-water mark).
    pub fn peak_activation_bytes(&self) -> u64 {
        self.plan().peak_bytes
    }

    /// Largest single activation tensor, bytes.
    pub fn largest_activation_bytes(&self) -> u64 {
        self.tensor_lifetimes().iter().map(|t| t.size_bytes).max().unwrap_or(0)
    }

    /// One-line-per-op textual summary (op name, output shape, activation
    /// kB, parameter count).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: input {:?} ({} B/elem)",
            self.name, self.input_shape, self.input_bytes_per_elem
        );
        for op in &self.ops {
            let _ = writeln!(
                out,
                "  {:24} -> {:?} ({:.1} kB act, {} params)",
                op.name,
                op.output_shape,
                op.output_bytes() as f64 / 1024.0,
                op.params
            );
        }
        let _ = writeln!(
            out,
            "  peak act {:.1} kB, flash {:.1} kB (int8)",
            self.peak_activation_bytes() as f64 / 1024.0,
            self.flash_bytes(1) as f64 / 1024.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// input [4,4,1] -> conv to [4,4,8] -> pool to [2,2,8] -> dense to [10]
    fn toy_graph() -> ModelGraph {
        let mut g = ModelGraph::new("toy", &[4, 4, 1], 1);
        g.push_op("conv", &[4, 4, 8], 80);
        g.push_op("pool", &[2, 2, 8], 0);
        g.push_op("dense", &[10], 330);
        g
    }

    #[test]
    fn param_and_flash_accounting() {
        let g = toy_graph();
        assert_eq!(g.param_count(), 410);
        assert_eq!(g.flash_bytes(1), 410);
        assert_eq!(g.flash_bytes(4), 1640);
    }

    #[test]
    fn lifetimes_chain_correctly() {
        let g = toy_graph();
        let ts = g.tensor_lifetimes();
        assert_eq!(ts.len(), 4);
        // Input lives only during op 0.
        assert_eq!((ts[0].first_use, ts[0].last_use), (0, 0));
        // conv output lives from op 0 to op 1.
        assert_eq!((ts[1].first_use, ts[1].last_use), (0, 1));
        // Final output lives until the last op.
        assert_eq!((ts[3].first_use, ts[3].last_use), (2, 2));
    }

    #[test]
    fn peak_is_adjacent_pair_for_chains() {
        let g = toy_graph();
        // Peak op is the pool: conv output (128) + pool output (32) live
        // together; the input (16) and dense output (10) reuse those bytes.
        assert_eq!(g.peak_activation_bytes(), 128 + 32);
        assert_eq!(g.largest_activation_bytes(), 128);
    }

    #[test]
    fn peak_scales_with_input_resolution() {
        // The Fig. 6 / Table 3 mechanism: same topology, growing input.
        let build = |side: usize| {
            let mut g = ModelGraph::new("scaled", &[side, side, 3], 1);
            g.push_op("conv", &[side / 2, side / 2, 16], 448);
            g.push_op("conv", &[side / 4, side / 4, 32], 4640);
            g.push_op("gap", &[1, 1, 32], 0);
            g.push_op("dense", &[7], 231);
            g
        };
        let small = build(16).peak_activation_bytes();
        let large = build(64).peak_activation_bytes();
        assert!(large > 10 * small, "peak did not scale: {small} vs {large}");
    }

    #[test]
    fn empty_graph_peak_is_input() {
        let g = ModelGraph::new("empty", &[8, 8, 3], 1);
        assert_eq!(g.peak_activation_bytes(), 192);
        assert_eq!(g.param_count(), 0);
    }

    #[test]
    fn summary_mentions_every_op() {
        let g = toy_graph();
        let s = g.summary();
        for op in ["conv", "pool", "dense", "peak act"] {
            assert!(s.contains(op), "summary missing {op}: {s}");
        }
    }

    #[test]
    fn f32_activations_are_4x_int8() {
        let mut g8 = ModelGraph::new("a", &[8, 8, 3], 1);
        g8.push_op("conv", &[8, 8, 8], 0);
        let mut g32 = ModelGraph::new("b", &[8, 8, 3], 4);
        g32.push_op("conv", &[8, 8, 8], 0);
        assert_eq!(4 * g8.peak_activation_bytes(), g32.peak_activation_bytes());
    }
}
