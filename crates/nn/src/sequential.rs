//! A runnable sequential model: chains [`Layer`] implementations and
//! doubles as a [`ModelGraph`] source, so the same object can be executed
//! *and* memory-planned. The quickstart inference path and the layer-level
//! numerics tests run through this container.

use rand::Rng;

use crate::graph::ModelGraph;
use crate::layers::{AvgPool2d, Conv2d, Dense, DepthwiseConv2d, GlobalAvgPool, Layer, Relu6};
use crate::tensor::Tensor;
use crate::{NnError, Result};

/// A feed-forward stack of layers executed in order.
#[derive(Debug, Default)]
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty model.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), layers: Vec::new() }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Shape inference through the whole stack.
    ///
    /// # Errors
    ///
    /// Returns the first layer's [`NnError::ShapeMismatch`] if shapes do
    /// not chain.
    pub fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        let mut shape = input.to_vec();
        for layer in &self.layers {
            shape = layer.output_shape(&shape)?;
        }
        Ok(shape)
    }

    /// Runs the model.
    ///
    /// # Errors
    ///
    /// Propagates the first shape failure.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Converts the stack into a [`ModelGraph`] for arena planning, given
    /// the input shape and activation width in bytes.
    ///
    /// # Errors
    ///
    /// Propagates shape-chaining failures.
    pub fn to_graph(&self, input: &[usize], bytes_per_elem: u32) -> Result<ModelGraph> {
        let mut graph = ModelGraph::new(self.name.clone(), input, bytes_per_elem);
        let mut shape = input.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            shape = layer.output_shape(&shape)?;
            graph.push_op(format!("{}_{}", layer.name(), i), &shape, layer.param_count());
        }
        Ok(graph)
    }
}

/// Builds a small runnable depthwise-separable classifier (random
/// weights): a miniature of the zoo's MCUNet-style topology that can be
/// executed end to end in tests and examples.
///
/// # Errors
///
/// Returns [`NnError::InvalidLayer`] for degenerate inputs (guarded by
/// construction here).
pub fn tiny_classifier<R: Rng + ?Sized>(
    input_side: usize,
    classes: usize,
    rng: &mut R,
) -> Result<Sequential> {
    if input_side < 8 || classes < 2 {
        return Err(NnError::InvalidLayer {
            layer: "tiny_classifier",
            reason: format!("input {input_side}, classes {classes}"),
        });
    }
    let model = Sequential::new("tiny-classifier")
        .push(Conv2d::new(3, 8, 3, 2, 1)?.init_random(rng))
        .push(Relu6)
        .push(DepthwiseConv2d::new(8, 3, 1, 1)?.init_random(rng))
        .push(Conv2d::new(8, 16, 1, 1, 0)?.init_random(rng))
        .push(Relu6)
        .push(AvgPool2d::new(2)?)
        .push(GlobalAvgPool)
        .push(Dense::new(16, classes)?.init_random(rng));
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::softmax;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_model_is_identity() {
        let model = Sequential::new("empty");
        assert!(model.is_empty());
        let x = Tensor::from_vec(&[2, 2, 1], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(model.forward(&x).unwrap(), x);
        assert_eq!(model.output_shape(&[2, 2, 1]).unwrap(), vec![2, 2, 1]);
    }

    #[test]
    fn tiny_classifier_runs_end_to_end() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = tiny_classifier(16, 7, &mut rng).unwrap();
        let input = Tensor::zeros(&[16, 16, 3]);
        let logits = model.forward(&input).unwrap();
        assert_eq!(logits.shape(), &[7]);
        let probs = softmax(&logits);
        let sum: f32 = probs.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn shape_inference_matches_execution() {
        let mut rng = StdRng::seed_from_u64(6);
        let model = tiny_classifier(24, 4, &mut rng).unwrap();
        let inferred = model.output_shape(&[24, 24, 3]).unwrap();
        let executed = model.forward(&Tensor::zeros(&[24, 24, 3])).unwrap();
        assert_eq!(inferred, executed.shape());
    }

    #[test]
    fn to_graph_matches_layer_params() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = tiny_classifier(16, 3, &mut rng).unwrap();
        let graph = model.to_graph(&[16, 16, 3], 1).unwrap();
        assert_eq!(graph.param_count(), model.param_count());
        assert_eq!(graph.ops().len(), model.len());
        assert!(graph.peak_activation_bytes() > 0);
    }

    #[test]
    fn mismatched_input_is_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        let model = tiny_classifier(16, 3, &mut rng).unwrap();
        // Wrong channel count.
        assert!(model.forward(&Tensor::zeros(&[16, 16, 4])).is_err());
        assert!(model.output_shape(&[16, 16, 4]).is_err());
    }

    #[test]
    fn tiny_classifier_guards_inputs() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(tiny_classifier(4, 3, &mut rng).is_err());
        assert!(tiny_classifier(16, 1, &mut rng).is_err());
    }

    #[test]
    fn deterministic_weights_per_seed() {
        let a = tiny_classifier(16, 3, &mut StdRng::seed_from_u64(1)).unwrap();
        let b = tiny_classifier(16, 3, &mut StdRng::seed_from_u64(1)).unwrap();
        let x =
            Tensor::from_vec(&[16, 16, 3], (0..768).map(|i| i as f32 / 768.0).collect()).unwrap();
        assert_eq!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
    }

    #[test]
    fn different_inputs_produce_different_logits() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = tiny_classifier(16, 5, &mut rng).unwrap();
        let zeros = model.forward(&Tensor::zeros(&[16, 16, 3])).unwrap();
        let ones = model.forward(&Tensor::from_vec(&[16, 16, 3], vec![1.0; 768]).unwrap()).unwrap();
        assert_ne!(zeros, ones);
    }
}
